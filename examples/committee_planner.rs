//! Deployment planner: given a global party pool and corruption ratio,
//! derive the sortition parameter, committee sizes, gap and packing
//! factor using the paper's §6 analysis — then validate the tail
//! bounds by Monte-Carlo sampling at reduced security parameters.
//!
//! ```text
//! cargo run --release --example committee_planner
//! ```

use rand::SeedableRng;
use yoso_pss::runtime::sortition::sample_committee;
use yoso_pss::sortition::{montecarlo, GapAnalysis, SecurityParams};

fn main() {
    let n_global: u64 = 1_000_000;
    let f = 0.10; // 10% of the global pool is corrupt

    println!("global pool N = {n_global}, corruption ratio f = {f}\n");
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>12}",
        "C", "t", "c", "c'", "ε", "packing k", "online gain"
    );

    // Sweep candidate sortition parameters and show the trade-off.
    for c_param in [2000.0, 5000.0, 10000.0, 20000.0] {
        match GapAnalysis::compute(c_param, f, SecurityParams::default()) {
            Some(a) => println!(
                "{:>8} {:>8} {:>8} {:>8} {:>8.3} {:>10} {:>11}×",
                c_param as u64,
                a.t,
                a.c,
                a.c_prime,
                a.eps,
                a.k,
                a.improvement_factor()
            ),
            None => println!("{:>8}  infeasible (no positive gap)", c_param as u64),
        }
    }

    // Pick one configuration and sanity-check it empirically.
    let chosen = 10000.0;
    let analysis = GapAnalysis::compute(chosen, f, SecurityParams::default())
        .expect("feasible configuration");
    println!(
        "\nchosen C = {}: committees of ≈{} members, ≤{} corrupt w.h.p., packing k = {}",
        chosen as u64, analysis.c, analysis.t, analysis.k
    );
    println!(
        "committee overhead vs. gap-free sizing: {:.1}% — for a {}× online saving",
        100.0 * analysis.committee_overhead(),
        analysis.k
    );

    // Sample real committees and report realized corruption.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut worst = 0.0f64;
    for _ in 0..1000 {
        let c = sample_committee(&mut rng, n_global, f, chosen);
        worst = worst.max(c.corruption_ratio());
    }
    println!("\n1000 sampled committees: worst realized corruption ratio {worst:.4}");
    println!("(analysis bound: t/c = {:.4})", analysis.t as f64 / analysis.c as f64);

    // Monte-Carlo validation of the tail bounds at reduced security.
    let sec = SecurityParams { k1: 4, k2: 10, k3: 10 };
    let report = montecarlo::validate(&mut rng, n_global, 2000.0, f, sec, 5000)
        .expect("feasible at reduced security");
    println!(
        "\nMonte-Carlo at k₂=k₃=10 (bound 2⁻¹⁰ ≈ 0.001): corruption-bound failures {}/{}, \
         honest-floor failures {}/{}",
        report.corruption_failures, report.trials, report.size_failures, report.trials
    );
}
