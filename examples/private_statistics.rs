//! Federated statistics under active attack: five hospitals compute
//! the mean and variance of their pooled measurements without revealing
//! individual values, while `t` committee roles per committee behave
//! maliciously — guaranteed output delivery carries the computation
//! through.
//!
//! ```text
//! cargo run --release --example private_statistics
//! ```

use rand::SeedableRng;
use yoso_pss::circuit::generators;
use yoso_pss::core::{Engine, ExecutionConfig, ProtocolParams};
use yoso_pss::field::{F61, PrimeField};
use yoso_pss::runtime::{ActiveAttack, Adversary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);

    const HOSPITALS: usize = 5;
    const PER_HOSPITAL: usize = 4;

    // Σx and Σx² over all 20 private measurements.
    let circuit = generators::federated_stats::<F61>(HOSPITALS, PER_HOSPITAL)?;

    // Committee n = 14, t = 3 active corruptions, packing k = 2.
    let params = ProtocolParams::new(14, 3, 2)?;
    let engine = Engine::new(params, ExecutionConfig::default());

    // Synthetic measurements (e.g. blood pressure readings).
    let data: Vec<Vec<u64>> = vec![
        vec![118, 121, 135, 128],
        vec![142, 110, 125, 131],
        vec![119, 127, 122, 138],
        vec![133, 129, 117, 124],
        vec![126, 140, 132, 120],
    ];
    let inputs: Vec<Vec<F61>> =
        data.iter().map(|row| row.iter().map(|&v| F61::from(v)).collect()).collect();

    // Every committee is hit by 3 actively malicious roles that post
    // wrong shares with unverifiable proofs.
    let adversary = Adversary::active(3, ActiveAttack::WrongValue);
    let run = engine.run(&mut rng, &circuit, &inputs, &adversary)?;

    let count = (HOSPITALS * PER_HOSPITAL) as f64;
    let sum = run.outputs[0][0].as_u64() as f64;
    let sq_sum = run.outputs[0][1].as_u64() as f64;
    let mean = sum / count;
    let variance = sq_sum / count - mean * mean;

    // Cleartext reference.
    let all: Vec<f64> = data.iter().flatten().map(|&v| v as f64).collect();
    let ref_mean = all.iter().sum::<f64>() / count;
    let ref_var = all.iter().map(|v| (v - ref_mean) * (v - ref_mean)).sum::<f64>() / count;

    println!("pooled measurements : {}", HOSPITALS * PER_HOSPITAL);
    println!("malicious roles     : 3 per committee (WrongValue attack)");
    println!("mean     (MPC)      = {mean:.3}   (cleartext {ref_mean:.3})");
    println!("variance (MPC)      = {variance:.3}   (cleartext {ref_var:.3})");
    assert!((mean - ref_mean).abs() < 1e-9);
    assert!((variance - ref_var).abs() < 1e-6);

    println!(
        "\nonline cost: {:.1} elements/gate across {} multiplication gates",
        run.online_elements_per_gate(),
        run.mul_gates
    );
    println!("output delivered despite the attack — GOD holds.");
    Ok(())
}
