//! Quickstart: two clients compute the inner product of their private
//! vectors through the full three-phase YOSO protocol.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use yoso_pss::circuit::generators;
use yoso_pss::core::{Engine, ExecutionConfig, ProtocolParams};
use yoso_pss::field::F61;
use yoso_pss::runtime::Adversary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // The function: <x, y> for 8-dimensional private vectors.
    let circuit = generators::inner_product::<F61>(8)?;

    // Committees of n = 16 with gap ε = 0.2: tolerates t = 3 active
    // corruptions per committee while packing k = 4 gates per sharing.
    let params = ProtocolParams::from_gap(16, 0.2)?;
    println!(
        "committee n = {}, corruption t = {}, packing k = {} (reconstruction from {} shares)",
        params.n,
        params.t,
        params.k,
        params.reconstruction_threshold()
    );

    let x: Vec<F61> = (1..=8u64).map(F61::from).collect();
    let y: Vec<F61> = (11..=18u64).map(F61::from).collect();
    let expected: u64 = (1..=8u64).zip(11..=18u64).map(|(a, b)| a * b).sum();

    let engine = Engine::new(params, ExecutionConfig::default());
    let run = engine.run(&mut rng, &circuit, &[x, y], &Adversary::none())?;

    println!("inner product (MPC)      = {}", run.outputs[0][0]);
    println!("inner product (expected) = {expected}");
    assert_eq!(run.outputs[0][0], F61::from(expected));

    println!("\ncommunication (ring elements) by phase:");
    for (phase, stats) in &run.phases {
        println!("  {phase:<28} {:>10} elements in {:>6} posts", stats.elements, stats.messages);
    }
    println!(
        "\nonline multiplication cost: {:.1} elements/gate (committee size {})",
        run.online_elements_per_gate(),
        params.n
    );
    Ok(())
}
