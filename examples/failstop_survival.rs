//! Fail-stop survival (paper §5.4): with the packing factor halved,
//! the protocol completes even when `n·ε` honest roles crash mid-online
//! phase *on top of* `t` active corruptions — while the full-packing
//! configuration cannot spare those roles.
//!
//! ```text
//! cargo run --release --example failstop_survival
//! ```

use rand::SeedableRng;
use yoso_pss::circuit::generators;
use yoso_pss::core::{crash_phases, Engine, ExecutionConfig, ProtocolParams};
use yoso_pss::core::failstop::FailstopTradeoff;
use yoso_pss::field::F61;
use yoso_pss::runtime::{ActiveAttack, Adversary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 40;
    let epsilon = 0.2;
    let tradeoff = FailstopTradeoff::derive(n, epsilon)?;
    println!("committee size n = {n}, gap ε = {epsilon}");
    println!(
        "full packing   : k = {}, tolerates ≤ {} crashes",
        tradeoff.full.k,
        FailstopTradeoff::max_crashes(&tradeoff.full)
    );
    println!(
        "halved packing : k = {}, tolerates ≤ {} crashes (provisioned {})",
        tradeoff.halved.k,
        FailstopTradeoff::max_crashes(&tradeoff.halved),
        tradeoff.halved.failstops
    );
    println!("online-cost ratio paid for the tolerance: {:.2}×\n", tradeoff.online_cost_ratio());

    let circuit = generators::weighted_average::<F61>(3)?;
    let inputs = vec![
        vec![F61::from(80u64), F61::from(2u64)],
        vec![F61::from(95u64), F61::from(1u64)],
        vec![F61::from(70u64), F61::from(3u64)],
    ];
    let expected = circuit.evaluate(&inputs)?;
    let crashes = tradeoff.halved.failstops;

    // Halved packing under t active + nε crashes: must succeed.
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let adversary = Adversary::active(tradeoff.halved.t, ActiveAttack::WrongValue)
        .with_failstops(crashes, crash_phases::ONLINE_MULT);
    let engine = Engine::new(tradeoff.halved, ExecutionConfig::default());
    let run = engine.run(&mut rng, &circuit, &inputs, &adversary)?;
    assert_eq!(run.outputs, expected);
    println!(
        "halved packing survived {} active + {} crashed roles per committee ✓",
        tradeoff.halved.t, crashes
    );
    println!(
        "weighted average = {} / {} (delivered to every client)",
        run.outputs[0][0], run.outputs[0][1]
    );

    // Full packing with the same crash count is not even a valid
    // configuration: the GOD margin is gone.
    let full_with_crashes = ProtocolParams::with_failstops(
        tradeoff.full.n,
        tradeoff.full.t,
        tradeoff.full.k,
        crashes,
    );
    match full_with_crashes {
        Err(e) => println!("\nfull packing + {crashes} crashes rejected as expected:\n  {e}"),
        Ok(_) => unreachable!("full packing must not tolerate nε crashes"),
    }
    Ok(())
}
