//! The real-cryptography backbone: threshold Paillier (built on the
//! from-scratch bignum) executing the offline-phase algebra — Beaver
//! triple consumption over ciphertexts with verified partial
//! decryptions and a committee key handover.
//!
//! This validates that the protocol's CDN-style homomorphic pipeline
//! works over the faithful `Z_N` instantiation, not just the fast mock
//! field scheme (see DESIGN.md §3 for the substitution discussion).
//!
//! ```text
//! cargo run --release --example paillier_backbone
//! ```

use rand::SeedableRng;
use yoso_pss::bignum::{Int, Nat};
use yoso_pss::the::paillier::{nizk, ThresholdPaillier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2025);
    let (n, t, bits) = (4usize, 1usize, 192usize);

    println!("generating a {}-bit threshold Paillier key for n = {n}, t = {t} …", 2 * bits);
    let (pk, shares) = ThresholdPaillier::keygen(&mut rng, bits, n, t)?;
    println!("N has {} bits\n", pk.n_mod.bit_len());

    // Secret inputs x, y held as ciphertexts (as in the offline phase).
    let x = Nat::from(31_415u64);
    let y = Nat::from(27_182u64);
    let (c_x, _) = ThresholdPaillier::encrypt(&mut rng, &pk, &x);
    let (c_y, _) = ThresholdPaillier::encrypt(&mut rng, &pk, &y);

    // A Beaver triple (a, b, ab), also encrypted.
    let a = Nat::from(123_456u64);
    let b = Nat::from(654_321u64);
    let ab = (&a * &b) % &pk.n_mod;
    let (c_a, _) = ThresholdPaillier::encrypt(&mut rng, &pk, &a);
    let (c_b, _) = ThresholdPaillier::encrypt(&mut rng, &pk, &b);
    let (c_ab, _) = ThresholdPaillier::encrypt(&mut rng, &pk, &ab);

    // ε = x + a and δ = y + b, threshold-decrypted with NIZK-verified
    // partials.
    let one = Int::from(1i64);
    let c_eps = ThresholdPaillier::eval(&pk, &[&c_x, &c_a], &[one.clone(), one.clone()])?;
    let c_del = ThresholdPaillier::eval(&pk, &[&c_y, &c_b], &[one.clone(), one.clone()])?;

    let mut open = |ct: &yoso_pss::the::paillier::Ciphertext| -> Result<Nat, Box<dyn std::error::Error>> {
        let mut partials = Vec::new();
        for share in &shares {
            let pd = ThresholdPaillier::partial_decrypt(&pk, share, ct);
            let proof = nizk::prove_pdec(&mut rng, &pk, ct, share, &pd);
            assert!(nizk::verify_pdec(&pk, ct, &pd, &proof), "partial decryption proof");
            partials.push(pd);
        }
        Ok(ThresholdPaillier::combine(&pk, &partials, &Nat::one())?)
    };

    let eps = open(&c_eps)?;
    let del = open(&c_del)?;
    println!("ε = x + a = {eps}");
    println!("δ = y + b = {del}");

    // c_xy = δ·c_x + ε·c_b − ε·δ + c_ab  encrypts x·y:
    //   δx + εb − εδ + ab = δx + b(ε − δ) ... expanded: (ε−a)(δ−b).
    // Use the standard identity xy = εδ − εb − δa + ab.
    let minus_eps = -Int::from_nat(eps.clone());
    let minus_del = -Int::from_nat(del.clone());
    let mut c_xy = ThresholdPaillier::eval(&pk, &[&c_b, &c_a, &c_ab], &[minus_eps, minus_del, one])?;
    let epsdel = eps.mod_mul(&del, &pk.n_mod);
    c_xy = ThresholdPaillier::add_plain(&pk, &c_xy, &epsdel);

    let xy = open(&c_xy)?;
    let expect = (&x * &y) % &pk.n_mod;
    println!("\nx·y (threshold-decrypted) = {xy}");
    println!("x·y (cleartext)           = {expect}");
    assert_eq!(xy, expect);

    // Hand the key to a fresh committee and decrypt again.
    println!("\nre-sharing the decryption key to a new committee (Δ = n! scaling) …");
    let msgs: Vec<_> = shares.iter().map(|s| ThresholdPaillier::reshare(&mut rng, &pk, s)).collect();
    for (i, m) in msgs.iter().enumerate() {
        for j in 0..n {
            assert!(
                ThresholdPaillier::reshare_subshare_is_valid(&pk, m, j),
                "reshare {i} → {j} verifies"
            );
        }
    }
    let chosen: Vec<&_> = msgs.iter().take(t + 1).collect();
    let new_shares: Vec<_> = (0..n)
        .map(|j| ThresholdPaillier::recombine_key(&pk, j, &chosen, &Nat::one()))
        .collect::<Result<_, _>>()?;
    let again = ThresholdPaillier::decrypt_with_shares(&pk, &c_xy, &new_shares)?;
    assert_eq!(again, expect);
    println!("new committee decrypts the same ciphertext: {again} ✓");
    Ok(())
}
