//! Information-theoretic semi-honest YOSO MPC (paper §7 future work):
//! a SIMD batch of private pairwise products plus an inner product,
//! computed with packed BGW across committees — no cryptographic
//! assumptions at the protocol level.
//!
//! ```text
//! cargo run --release --example it_simd
//! ```

use rand::SeedableRng;
use yoso_pss::core::itbgw::{ItEngine, LaneOp, LaneProgram};
use yoso_pss::core::ProtocolParams;
use yoso_pss::field::F61;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let (n, t, k) = (16usize, 3usize, 4usize);
    let params = ProtocolParams::new(n, t, k)?;
    let engine = ItEngine::new(params)?;

    // Two clients hold 4-lane vectors; compute the lanewise product and
    // its cross-lane sum (= inner product) in one program.
    let program = LaneProgram {
        k,
        ops: vec![
            LaneOp::Input { client: 0 }, // 0: x
            LaneOp::Input { client: 1 }, // 1: y
            LaneOp::Mul(0, 1),           // 2: x ⊙ y
            LaneOp::SumLanes(2),         // 3: <x, y> in every lane
            LaneOp::Output(2, 0),        // products to client 0
            LaneOp::Output(3, 1),        // inner product to client 1
        ],
    };

    let x: Vec<F61> = [3u64, 1, 4, 1].map(F61::from).to_vec();
    let y: Vec<F61> = [2u64, 7, 1, 8].map(F61::from).to_vec();
    let inputs = vec![vec![x.clone()], vec![y.clone()]];

    let run = engine.run(&mut rng, &program, &inputs)?;
    println!("n = {n}, t = {t}, k = {k} lanes (semi-honest, information-theoretic)");
    println!("x ⊙ y        = {:?}", run.outputs[0][0]);
    println!("<x, y>       = {} (every lane)", run.outputs[1][0][0]);
    assert_eq!(run.outputs[1][0][0], F61::from(2 * 3 + 7 + 4 + 8u64));

    println!("\ncommunication (ring elements):");
    for (phase, stats) in &run.phases {
        println!("  {phase:<14} {:>8}", stats.elements);
    }
    println!(
        "\nper lane-gate: {:.0} elements — Θ(n²/k); compare the computational\n\
         protocol's flat O(1) online cost (see `cargo run -p yoso-bench --bin it_comparison`).",
        run.elements_per_gate()
    );
    Ok(())
}
