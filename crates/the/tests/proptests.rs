//! Property tests for the threshold-encryption layer: homomorphism
//! under random linear combinations, re-share chains, simulatability
//! and NIZK soundness surfaces.

use proptest::prelude::*;
use rand::SeedableRng;
use yoso_field::{F61, PrimeField};
use yoso_the::mock::{LinearPke, MockTe, ReshareMsg};
use yoso_the::nizk;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn felt() -> impl Strategy<Value = F61> {
    any::<u64>().prop_map(F61::from_u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn homomorphism_random_linear_combination(
        seed in any::<u64>(),
        ms in prop::collection::vec(felt(), 1..10),
        cs in prop::collection::vec(felt(), 1..10),
    ) {
        let len = ms.len().min(cs.len());
        let mut r = rng(seed);
        let (pk, shares) = MockTe::<F61>::keygen(&mut r, 7, 3).unwrap();
        let cts: Vec<_> = ms[..len].iter().map(|&m| MockTe::encrypt(&mut r, &pk, m).0).collect();
        let combined = MockTe::eval(&cts, &cs[..len]).unwrap();
        let expect: F61 = ms[..len].iter().zip(&cs[..len]).map(|(&m, &c)| m * c).sum();
        prop_assert_eq!(MockTe::decrypt_with_shares(&pk, &combined, &shares).unwrap(), expect);
    }

    #[test]
    fn any_t_plus_one_subset_agrees(seed in any::<u64>(), m in felt(), subset_seed in any::<u64>()) {
        let mut r = rng(seed);
        let n = 9;
        let t = 4;
        let (pk, shares) = MockTe::<F61>::keygen(&mut r, n, t).unwrap();
        let (ct, _) = MockTe::encrypt(&mut r, &pk, m);
        // Pick a pseudorandom (t+1)-subset.
        let mut idx: Vec<usize> = (0..n).collect();
        let mut sr = rng(subset_seed);
        use rand::seq::SliceRandom;
        idx.shuffle(&mut sr);
        let partials: Vec<_> =
            idx[..t + 1].iter().map(|&i| MockTe::partial_decrypt(&shares[i], &ct)).collect();
        prop_assert_eq!(MockTe::combine(&pk, &ct, &partials).unwrap(), m);
    }

    #[test]
    fn reshare_chain_arbitrary_providers(seed in any::<u64>(), m in felt(), epochs in 1usize..4) {
        let mut r = rng(seed);
        let n = 6;
        let t = 2;
        let (mut pk, mut shares) = MockTe::<F61>::keygen(&mut r, n, t).unwrap();
        let (ct, _) = MockTe::encrypt(&mut r, &pk, m);
        for e in 0..epochs {
            let msgs: Vec<ReshareMsg<F61>> =
                shares.iter().map(|s| MockTe::reshare(&mut r, &pk, s)).collect();
            // Rotate the provider subset each epoch.
            let providers: Vec<&ReshareMsg<F61>> =
                (0..t + 1).map(|j| &msgs[(j + e) % n]).collect();
            shares = (0..n)
                .map(|j| MockTe::recombine_key(&pk, j, &providers).unwrap())
                .collect();
            pk = MockTe::next_public_key(&pk, &providers).unwrap();
        }
        prop_assert_eq!(MockTe::decrypt_with_shares(&pk, &ct, &shares).unwrap(), m);
        // vks stay consistent with the shares.
        for (j, s) in shares.iter().enumerate() {
            prop_assert_eq!(pk.vks[j], s.value * pk.g);
        }
    }

    #[test]
    fn sim_tpdec_perfect_for_any_target(seed in any::<u64>(), m in felt(), target in felt()) {
        let mut r = rng(seed);
        let (pk, shares) = MockTe::<F61>::keygen(&mut r, 7, 3).unwrap();
        let (ct, _) = MockTe::encrypt(&mut r, &pk, m);
        let corrupt: Vec<_> =
            shares[..3].iter().map(|s| MockTe::partial_decrypt(s, &ct)).collect();
        let honest = MockTe::sim_partial_decrypt(
            &mut r, &pk, &ct, target, &corrupt, &[3, 4, 5, 6],
        ).unwrap();
        let mut all = corrupt.clone();
        all.extend_from_slice(&honest);
        prop_assert_eq!(MockTe::combine(&pk, &ct, &all).unwrap(), target);
    }

    #[test]
    fn enc_proof_sound_against_mutation(seed in any::<u64>(), m in felt(), delta in 1u64..1000) {
        let mut r = rng(seed);
        let (pk, _) = MockTe::<F61>::keygen(&mut r, 5, 2).unwrap();
        let (ct, rand_r) = MockTe::encrypt(&mut r, &pk, m);
        let proof = nizk::enc_proof(&mut r, &pk, &ct, m, rand_r);
        prop_assert!(nizk::verify_enc_proof(&pk, &ct, &proof));
        // Any ciphertext mutation invalidates the proof.
        let mut bad = ct;
        bad.v += F61::from_u64(delta);
        prop_assert!(!nizk::verify_enc_proof(&pk, &bad, &proof));
        let mut bad2 = ct;
        bad2.u += F61::from_u64(delta);
        prop_assert!(!nizk::verify_enc_proof(&pk, &bad2, &proof));
    }

    #[test]
    fn pke_roundtrip_and_homomorphism(seed in any::<u64>(), a in felt(), b in felt(), c in felt()) {
        let mut r = rng(seed);
        let kp = LinearPke::<F61>::keygen(&mut r);
        let (ct_a, _) = LinearPke::encrypt(&mut r, &kp.public, a);
        let (ct_b, _) = LinearPke::encrypt(&mut r, &kp.public, b);
        prop_assert_eq!(LinearPke::decrypt(&kp.secret, &ct_a), a);
        // c·ct_a + ct_b decrypts to c·a + b.
        let combo = yoso_the::mock::Ciphertext {
            u: c * ct_a.u + ct_b.u,
            v: c * ct_a.v + ct_b.v,
        };
        prop_assert_eq!(LinearPke::decrypt(&kp.secret, &combo), c * a + b);
    }

    #[test]
    fn share_proof_binds_published_value(seed in any::<u64>(), slope in felt(), offset in felt()) {
        let mut r = rng(seed);
        let kp = LinearPke::<F61>::keygen(&mut r);
        let published = offset - kp.secret.scalar * slope;
        let proof =
            nizk::share_proof(&mut r, &kp.public, slope, offset, published, kp.secret.scalar);
        prop_assert!(nizk::verify_share_proof(&kp.public, slope, offset, published, &proof));
        prop_assert!(!nizk::verify_share_proof(
            &kp.public, slope, offset, published + F61::ONE, &proof
        ));
        // A different key's proof does not transfer.
        let other = LinearPke::<F61>::keygen(&mut r);
        prop_assert!(!nizk::verify_share_proof(&other.public, slope, offset, published, &proof));
    }
}
