//! Property tests: Straus and Pippenger multi-exponentiation agree
//! with naive per-base square-and-multiply for random bases/exponents
//! across window sizes 1–8 and batch sizes 1–64.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use yoso_bignum::{MontgomeryCtx, Nat};
use yoso_the::paillier::multi_exp::{multi_exp_nat, pippenger, straus};

/// A fixed odd 192-bit composite modulus (primes are expensive to
/// sample per proptest case, and the algorithms don't care).
fn modulus() -> Nat {
    let mut r = rand::rngs::StdRng::seed_from_u64(77);
    let p = yoso_bignum::prime::generate_prime(&mut r, 96);
    let q = yoso_bignum::prime::generate_prime(&mut r, 96);
    &p * &q
}

fn naive(ctx: &MontgomeryCtx, bases: &[Nat], exps: &[Nat]) -> Nat {
    let m = ctx.modulus();
    let mut acc = &Nat::one() % m;
    for (b, e) in bases.iter().zip(exps) {
        acc = acc.mod_mul(&b.mod_pow(e, m), m);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn straus_and_pippenger_match_naive(
        seed in any::<u64>(),
        batch in 1usize..=64,
        window in 1usize..=8,
        exp_bits in 1usize..=160,
    ) {
        let m = modulus();
        let ctx = MontgomeryCtx::new(&m);
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let bases: Vec<Nat> = (0..batch).map(|_| Nat::random_below(&mut r, &m)).collect();
        let exps: Vec<Nat> = (0..batch)
            .map(|_| {
                // Mix in zero and tiny exponents alongside full-width ones.
                match r.gen_range(0..4u64) {
                    0 => Nat::from(r.gen_range(0..4u64)),
                    _ => Nat::random_bits(&mut r, exp_bits),
                }
            })
            .collect();
        let expect = naive(&ctx, &bases, &exps);
        prop_assert_eq!(&straus(&ctx, &bases, &exps, window).unwrap(), &expect);
        prop_assert_eq!(&pippenger(&ctx, &bases, &exps, window).unwrap(), &expect);
        // The dispatcher (auto window) agrees too.
        prop_assert_eq!(&multi_exp_nat(&ctx, &bases, &exps).unwrap(), &expect);
    }
}
