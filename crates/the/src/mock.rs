//! A linearly homomorphic key-rerandomizable threshold encryption
//! scheme over a prime field.
//!
//! The scheme is ElGamal written additively over `(F, +)`:
//!
//! - Key generation picks a random non-zero base `g`, a secret `s`, and
//!   publishes `h = s·g`. The secret `s` is Shamir-shared with
//!   threshold `t`; Feldman-style verification keys `vk_i = s_i·g` are
//!   published.
//! - `TEnc(m; r) = (u, v) = (r·g, m + r·h)`.
//! - `TPDec` by party `i`: `d_i = s_i · u`.
//! - `TDec` from `t + 1` partials: Lagrange-combine the `d_i` at point
//!   0 to get `s·u = r·h`, output `m = v − s·u`.
//! - `TEval`: ciphertexts combine linearly component-wise.
//! - `TKRes`/`TKRec`: each member deals a degree-`t` sub-sharing of its
//!   share together with Feldman commitments; the next committee
//!   Lagrange-combines received subshares into fresh shares of the same
//!   `s`, and anyone can derive the next verification keys from the
//!   commitments.
//! - `SimTPDec`: *perfect* partial-decryption simulatability — honest
//!   partials are interpolated through the corrupt partials and the
//!   target value.
//!
//! **Security caveat (by design):** in a 61-bit field, `s = h/g` is
//! trivially computable, and the scheme is only one-time hiding. This
//! instantiation exists to drive large-scale *simulations* of the YOSO
//! protocol where the quantities of interest are communication counts,
//! robustness and protocol structure (see DESIGN.md §3). The faithful
//! cryptographic instantiation is [`crate::paillier`].

use rand::Rng;
use serde::{Deserialize, Serialize};

use yoso_field::{lagrange, PrimeField};
use yoso_pss_sharing::{shamir, Share};

use crate::TeError;

/// Public key of the mock threshold scheme.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct PublicKey<F: PrimeField> {
    /// Committee size.
    pub n: usize,
    /// Corruption threshold (any `t + 1` partials decrypt).
    pub t: usize,
    /// The base `g ≠ 0`.
    pub g: F,
    /// `h = s · g`.
    pub h: F,
    /// Feldman verification keys `vk_i = s_i · g`.
    pub vks: Vec<F>,
}

/// A party's share of the threshold secret key.
// lint:redact: Debug is implemented manually below and prints the party
// index only; Serialize is required because shares cross the wire
// (transport encryption is the protocol layer's responsibility).
#[derive(Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct KeyShare<F: PrimeField> {
    /// 0-based party index.
    pub party: usize,
    /// The Shamir share `s_i = f(party + 1)`.
    pub value: F,
}

// lint:redact: prints the party index only, never the share value.
impl<F: PrimeField> std::fmt::Debug for KeyShare<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyShare")
            .field("party", &self.party)
            .field("value", &"<redacted>")
            .finish()
    }
}

/// A ciphertext `(u, v) = (r·g, m + r·h)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct Ciphertext<F: PrimeField> {
    /// The ephemeral component `r·g`.
    pub u: F,
    /// The payload component `m + r·h`.
    pub v: F,
}

impl<F: PrimeField> Ciphertext<F> {
    /// Serialized size in bytes (two field elements).
    pub const SIZE_BYTES: usize = 16;
}

/// A partial decryption `d_i = s_i · u`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct PartialDec<F: PrimeField> {
    /// 0-based party index.
    pub party: usize,
    /// The value `s_i · u`.
    pub value: F,
}

/// The message a re-sharing party broadcasts: Feldman commitments to
/// its sub-sharing polynomial plus one subshare per recipient.
///
/// In the YOSO protocol the subshares are additionally encrypted to the
/// recipients; encryption happens at the protocol layer so that this
/// module stays a clean algebra layer.
// lint:redact: Debug is implemented manually below and prints no
// subshares; Serialize is required because re-share messages cross the
// wire (recipient-side encryption happens at the protocol layer).
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct ReshareMsg<F: PrimeField> {
    /// 0-based index of the re-sharing (previous-committee) party.
    pub from: usize,
    /// Feldman commitments `C_j = a_j · g` to the polynomial
    /// `g_i(X) = Σ a_j X^j` with `a_0 = s_i`.
    pub commitments: Vec<F>,
    /// `subshares[m] = g_i(m + 1)`, the subshare for recipient `m`.
    pub subshares: Vec<F>,
}

// lint:redact: prints the sender, the (public) Feldman commitments and
// the subshare count — never the subshares themselves.
impl<F: PrimeField> std::fmt::Debug for ReshareMsg<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReshareMsg")
            .field("from", &self.from)
            .field("commitments", &self.commitments)
            .field("subshares", &format_args!("<{} redacted>", self.subshares.len()))
            .finish()
    }
}

/// The mock threshold encryption scheme with fixed `(n, t)`.
///
/// # Example
///
/// ```rust
/// use rand::SeedableRng;
/// use yoso_field::F61;
/// use yoso_the::mock::MockTe;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let (pk, shares) = MockTe::<F61>::keygen(&mut rng, 5, 2)?;
/// let (ct, _r) = MockTe::encrypt(&mut rng, &pk, F61::from(42u64));
/// let partials: Vec<_> = shares[..3]
///     .iter()
///     .map(|s| MockTe::partial_decrypt(s, &ct))
///     .collect();
/// assert_eq!(MockTe::combine(&pk, &ct, &partials)?, F61::from(42u64));
/// # Ok::<(), yoso_the::TeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MockTe<F: PrimeField> {
    _marker: std::marker::PhantomData<F>,
}

impl<F: PrimeField> MockTe<F> {
    /// `TKGen`: samples the key pair and Shamir-shares the secret.
    ///
    /// # Errors
    ///
    /// Returns [`TeError::BadParameters`] if `t >= n` or `n = 0`.
    pub fn keygen<R: Rng + ?Sized>(
        rng: &mut R,
        n: usize,
        t: usize,
    ) -> Result<(PublicKey<F>, Vec<KeyShare<F>>), TeError> {
        if n == 0 || t >= n {
            return Err(TeError::BadParameters { n, t });
        }
        let mut g = F::random(rng);
        while g.is_zero() {
            g = F::random(rng);
        }
        let s = F::random(rng);
        let shares =
            shamir::share(rng, s, n, t).map_err(|_| TeError::BadParameters { n, t })?;
        let vks = shares.iter().map(|sh| sh.value * g).collect();
        let key_shares = shares
            .iter()
            .map(|sh| KeyShare { party: sh.party, value: sh.value })
            .collect();
        Ok((PublicKey { n, t, g, h: s * g, vks }, key_shares))
    }

    /// `TEnc`: encrypts `m`, returning the ciphertext and the
    /// encryption randomness (needed by the prover of
    /// [`crate::nizk::enc_proof`]).
    pub fn encrypt<R: Rng + ?Sized>(rng: &mut R, pk: &PublicKey<F>, m: F) -> (Ciphertext<F>, F) {
        let r = F::random(rng);
        (Self::encrypt_with(pk, m, r), r)
    }

    /// Deterministic encryption with caller-chosen randomness.
    pub fn encrypt_with(pk: &PublicKey<F>, m: F, r: F) -> Ciphertext<F> {
        Ciphertext { u: r * pk.g, v: m + r * pk.h }
    }

    /// `TPDec`: computes party `i`'s partial decryption of `ct`.
    pub fn partial_decrypt(share: &KeyShare<F>, ct: &Ciphertext<F>) -> PartialDec<F> {
        PartialDec { party: share.party, value: share.value * ct.u }
    }

    /// Verifies a partial decryption against the Feldman verification
    /// keys *without* a NIZK: checks `d_i · g == vk_i · u`.
    ///
    /// This algebraic check is possible because the scheme is linear;
    /// the NIZK variant ([`crate::nizk::pdec_proof`]) is what the
    /// protocol uses on the bulletin board, since it also proves
    /// *knowledge* of the share.
    pub fn partial_is_valid(pk: &PublicKey<F>, ct: &Ciphertext<F>, pd: &PartialDec<F>) -> bool {
        pd.party < pk.n && pd.value * pk.g == pk.vks[pd.party] * ct.u
    }

    /// `TDec`: combines at least `t + 1` partial decryptions.
    ///
    /// Surplus partials are used for consistency checking.
    ///
    /// # Errors
    ///
    /// - [`TeError::NotEnoughPartials`] with fewer than `t + 1`.
    /// - [`TeError::BadParty`] on out-of-range or duplicate indices.
    /// - [`TeError::InconsistentPartials`] if the partials do not lie
    ///   on a single degree-`t` polynomial.
    pub fn combine(
        pk: &PublicKey<F>,
        ct: &Ciphertext<F>,
        partials: &[PartialDec<F>],
    ) -> Result<F, TeError> {
        if partials.len() < pk.t + 1 {
            return Err(TeError::NotEnoughPartials { got: partials.len(), need: pk.t + 1 });
        }
        let mut seen = vec![false; pk.n];
        for p in partials {
            if p.party >= pk.n || seen[p.party] {
                return Err(TeError::BadParty(p.party));
            }
            seen[p.party] = true;
        }
        // d_i = s_i·u lie on the degree-t polynomial u·f(X); interpolate
        // at 0 to get u·f(0) = s·u.
        let head = &partials[..pk.t + 1];
        let xs: Vec<F> = head.iter().map(|p| F::from_u64(p.party as u64 + 1)).collect();
        let ys: Vec<F> = head.iter().map(|p| p.value).collect();
        let poly = lagrange::interpolate(&xs, &ys).map_err(|_| TeError::InconsistentPartials)?;
        for p in &partials[pk.t + 1..] {
            if poly.eval(F::from_u64(p.party as u64 + 1)) != p.value {
                return Err(TeError::InconsistentPartials);
            }
        }
        let su = poly.eval(F::ZERO);
        Ok(ct.v - su)
    }

    /// `TEval`: the linear combination `Σ coeffs_i · cts_i` of
    /// ciphertexts, which encrypts `Σ coeffs_i · m_i`.
    ///
    /// # Errors
    ///
    /// Returns [`TeError::LengthMismatch`] if the slices differ in
    /// length or are empty.
    pub fn eval(cts: &[Ciphertext<F>], coeffs: &[F]) -> Result<Ciphertext<F>, TeError> {
        if cts.len() != coeffs.len() || cts.is_empty() {
            return Err(TeError::LengthMismatch { a: cts.len(), b: coeffs.len() });
        }
        let mut u = F::ZERO;
        let mut v = F::ZERO;
        for (ct, &c) in cts.iter().zip(coeffs) {
            u += c * ct.u;
            v += c * ct.v;
        }
        Ok(Ciphertext { u, v })
    }

    /// Adds a public plaintext constant to a ciphertext.
    pub fn add_plain(ct: &Ciphertext<F>, m: F) -> Ciphertext<F> {
        Ciphertext { u: ct.u, v: ct.v + m }
    }

    /// A trivial (randomness-zero) encryption of a public constant.
    pub fn plain_ciphertext(m: F) -> Ciphertext<F> {
        Ciphertext { u: F::ZERO, v: m }
    }

    /// `TKRes`: party `i` deals a degree-`t` sub-sharing of its key
    /// share for the `n` members of the next committee, with Feldman
    /// commitments.
    pub fn reshare<R: Rng + ?Sized>(
        rng: &mut R,
        pk: &PublicKey<F>,
        share: &KeyShare<F>,
    ) -> ReshareMsg<F> {
        let mut coeffs = Vec::with_capacity(pk.t + 1);
        coeffs.push(share.value);
        for _ in 0..pk.t {
            coeffs.push(F::random(rng));
        }
        let commitments = coeffs.iter().map(|&a| a * pk.g).collect();
        let subshares = (1..=pk.n as u64)
            .map(|x| {
                let xf = F::from_u64(x);
                // Horner.
                let mut acc = F::ZERO;
                for &a in coeffs.iter().rev() {
                    acc = acc * xf + a;
                }
                acc
            })
            .collect();
        ReshareMsg { from: share.party, commitments, subshares }
    }

    /// Verifies the Feldman consistency of a re-share message: every
    /// subshare must match the committed polynomial, and the committed
    /// constant term must equal the sender's verification key.
    pub fn reshare_is_valid(pk: &PublicKey<F>, msg: &ReshareMsg<F>) -> bool {
        if msg.from >= pk.n
            || msg.commitments.len() != pk.t + 1
            || msg.subshares.len() != pk.n
            || msg.commitments[0] != pk.vks[msg.from]
        {
            return false;
        }
        for (m, &sub) in msg.subshares.iter().enumerate() {
            let x = F::from_u64(m as u64 + 1);
            // Committed evaluation: Σ_j x^j C_j should equal sub · g.
            let mut acc = F::ZERO;
            for &c in msg.commitments.iter().rev() {
                acc = acc * x + c;
            }
            if acc != sub * pk.g {
                return false;
            }
        }
        true
    }

    /// `TKRec`: recipient `j` combines the subshares addressed to it
    /// from a set of at least `t + 1` verified re-share messages into
    /// its fresh key share.
    ///
    /// # Errors
    ///
    /// - [`TeError::NotEnoughPartials`] with fewer than `t + 1`
    ///   providers.
    /// - [`TeError::BadParty`] on duplicate providers.
    pub fn recombine_key(
        pk: &PublicKey<F>,
        recipient: usize,
        msgs: &[&ReshareMsg<F>],
    ) -> Result<KeyShare<F>, TeError> {
        if msgs.len() < pk.t + 1 {
            return Err(TeError::NotEnoughPartials { got: msgs.len(), need: pk.t + 1 });
        }
        let providers: Vec<usize> = msgs[..pk.t + 1].iter().map(|m| m.from).collect();
        let subs: Vec<F> = msgs[..pk.t + 1].iter().map(|m| m.subshares[recipient]).collect();
        let mut seen = std::collections::HashSet::new();
        for &p in &providers {
            if !seen.insert(p) {
                return Err(TeError::BadParty(p));
            }
        }
        let value = shamir::recombine_subshares(&providers, &subs, pk.t)
            .map_err(|_| TeError::InconsistentPartials)?;
        Ok(KeyShare { party: recipient, value })
    }

    /// Derives the next committee's verification keys and public key
    /// from a set of `t + 1` verified re-share messages — a public
    /// computation any observer can perform.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::recombine_key`].
    pub fn next_public_key(pk: &PublicKey<F>, msgs: &[&ReshareMsg<F>]) -> Result<PublicKey<F>, TeError> {
        if msgs.len() < pk.t + 1 {
            return Err(TeError::NotEnoughPartials { got: msgs.len(), need: pk.t + 1 });
        }
        let head = &msgs[..pk.t + 1];
        let provider_points: Vec<F> =
            head.iter().map(|m| F::from_u64(m.from as u64 + 1)).collect();
        let lag = lagrange::basis_at(&provider_points, F::ZERO)
            .map_err(|_| TeError::InconsistentPartials)?;
        // New vk_j = Σ_i lag_i · (committed evaluation of g_i at j+1).
        let mut vks = Vec::with_capacity(pk.n);
        for j in 0..pk.n {
            let x = F::from_u64(j as u64 + 1);
            let mut vk = F::ZERO;
            for (msg, &li) in head.iter().zip(&lag) {
                let mut acc = F::ZERO;
                for &c in msg.commitments.iter().rev() {
                    acc = acc * x + c;
                }
                vk += li * acc;
            }
            vks.push(vk);
        }
        Ok(PublicKey { n: pk.n, t: pk.t, g: pk.g, h: pk.h, vks })
    }

    /// `SimTPDec`: given a ciphertext, a target plaintext `m`, and at
    /// most `t` corrupt partial decryptions, produces partials for the
    /// requested honest parties such that [`Self::combine`] over any
    /// mix returns `m`. Perfect simulation.
    ///
    /// # Errors
    ///
    /// Returns [`TeError::BadParty`] if more than `t` corrupt partials
    /// are supplied or indices collide.
    pub fn sim_partial_decrypt<R: Rng + ?Sized>(
        rng: &mut R,
        pk: &PublicKey<F>,
        ct: &Ciphertext<F>,
        target: F,
        corrupt: &[PartialDec<F>],
        honest_parties: &[usize],
    ) -> Result<Vec<PartialDec<F>>, TeError> {
        if corrupt.len() > pk.t {
            return Err(TeError::BadParty(corrupt.len()));
        }
        // The partials lie on a degree-t polynomial D with D(0) = v − m.
        // Fix D by the corrupt points, the virtual point 0, and random
        // padding; then evaluate at the honest parties.
        let mut xs = vec![F::ZERO];
        let mut ys = vec![ct.v - target];
        let mut used: std::collections::HashSet<u64> = std::collections::HashSet::new();
        used.insert(0);
        for p in corrupt {
            if p.party >= pk.n || !used.insert(p.party as u64 + 1) {
                return Err(TeError::BadParty(p.party));
            }
            xs.push(F::from_u64(p.party as u64 + 1));
            ys.push(p.value);
        }
        // Pad with random evaluations at points beyond n to reach t+1 nodes.
        let mut pad = pk.n as u64 + 2;
        while xs.len() < pk.t + 1 {
            xs.push(F::from_u64(pad));
            ys.push(F::random(rng));
            pad += 1;
        }
        let poly = lagrange::interpolate(&xs, &ys).map_err(|_| TeError::InconsistentPartials)?;
        Ok(honest_parties
            .iter()
            .map(|&j| PartialDec { party: j, value: poly.eval(F::from_u64(j as u64 + 1)) })
            .collect())
    }

    /// Decrypts directly with a full set of key shares (test helper).
    ///
    /// # Errors
    ///
    /// Propagates [`Self::combine`] errors.
    pub fn decrypt_with_shares(
        pk: &PublicKey<F>,
        ct: &Ciphertext<F>,
        shares: &[KeyShare<F>],
    ) -> Result<F, TeError> {
        let partials: Vec<PartialDec<F>> =
            shares.iter().take(pk.t + 1).map(|s| Self::partial_decrypt(s, ct)).collect();
        Self::combine(pk, ct, &partials)
    }
}

/// Converts key shares to the `yoso-pss-sharing` share type (used by
/// tests that cross-check against the generic Shamir module).
impl<F: PrimeField> From<KeyShare<F>> for Share<F> {
    fn from(ks: KeyShare<F>) -> Share<F> {
        Share { party: ks.party, value: ks.value }
    }
}

/// A single-key linearly homomorphic PKE over the field — the same
/// additive ElGamal as [`MockTe`] but with an unshared key.
///
/// This is the PKE used for YOSO role keys and keys-for-future in the
/// mock world. Because it is linear, every statement about its
/// plaintexts ("this ciphertext re-encrypts that partial decryption")
/// is a linear relation provable with [`crate::nizk::linear`].
///
/// # Example
///
/// ```rust
/// use rand::SeedableRng;
/// use yoso_field::F61;
/// use yoso_the::mock::LinearPke;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let kp = LinearPke::<F61>::keygen(&mut rng);
/// let (ct, _r) = LinearPke::encrypt(&mut rng, &kp.public, F61::from(9u64));
/// assert_eq!(LinearPke::decrypt(&kp.secret, &ct), F61::from(9u64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearPke<F: PrimeField> {
    _marker: std::marker::PhantomData<F>,
}

/// Public key of [`LinearPke`]: base `g` and `h = sk·g`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct PkePublicKey<F: PrimeField> {
    /// The base `g ≠ 0`.
    pub g: F,
    /// `h = sk · g`.
    pub h: F,
}

/// Secret key of [`LinearPke`].
// lint:redact: Debug is implemented manually below and prints nothing of
// the scalar; Serialize is required so clients can persist their keys.
#[derive(Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct PkeSecretKey<F: PrimeField> {
    /// The secret scalar.
    pub scalar: F,
}

// lint:redact: the secret scalar is never printed.
impl<F: PrimeField> std::fmt::Debug for PkeSecretKey<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PkeSecretKey").field("scalar", &"<redacted>").finish()
    }
}

/// A [`LinearPke`] key pair.
// lint:redact: the derived Debug delegates to PkeSecretKey's redacted
// impl, so no secret scalar is printed; Serialize is required so clients
// can persist their keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct PkeKeyPair<F: PrimeField> {
    /// The public portion.
    pub public: PkePublicKey<F>,
    /// The secret portion.
    pub secret: PkeSecretKey<F>,
}

impl<F: PrimeField> LinearPke<F> {
    /// Generates a key pair.
    pub fn keygen<R: Rng + ?Sized>(rng: &mut R) -> PkeKeyPair<F> {
        let mut g = F::random(rng);
        while g.is_zero() {
            g = F::random(rng);
        }
        let scalar = F::random(rng);
        PkeKeyPair { public: PkePublicKey { g, h: scalar * g }, secret: PkeSecretKey { scalar } }
    }

    /// Encrypts `m`, returning the ciphertext and the randomness (for
    /// NIZK provers).
    pub fn encrypt<R: Rng + ?Sized>(
        rng: &mut R,
        pk: &PkePublicKey<F>,
        m: F,
    ) -> (Ciphertext<F>, F) {
        let r = F::random(rng);
        (Self::encrypt_with(pk, m, r), r)
    }

    /// Deterministic encryption with caller-chosen randomness.
    pub fn encrypt_with(pk: &PkePublicKey<F>, m: F, r: F) -> Ciphertext<F> {
        Ciphertext { u: r * pk.g, v: m + r * pk.h }
    }

    /// Decrypts a ciphertext.
    pub fn decrypt(sk: &PkeSecretKey<F>, ct: &Ciphertext<F>) -> F {
        ct.v - sk.scalar * ct.u
    }
}

#[cfg(test)]
mod pke_tests {
    use super::*;
    use rand::SeedableRng;
    use yoso_field::F61;

    #[test]
    fn pke_roundtrip_and_linearity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(50);
        let kp = LinearPke::<F61>::keygen(&mut rng);
        let (c1, _) = LinearPke::encrypt(&mut rng, &kp.public, F61::from(10u64));
        let (c2, _) = LinearPke::encrypt(&mut rng, &kp.public, F61::from(32u64));
        assert_eq!(LinearPke::decrypt(&kp.secret, &c1), F61::from(10u64));
        // Component-wise sum decrypts to the plaintext sum.
        let sum = Ciphertext { u: c1.u + c2.u, v: c1.v + c2.v };
        assert_eq!(LinearPke::decrypt(&kp.secret, &sum), F61::from(42u64));
    }

    #[test]
    fn pke_wrong_key_gives_wrong_plaintext() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(51);
        let kp1 = LinearPke::<F61>::keygen(&mut rng);
        let kp2 = LinearPke::<F61>::keygen(&mut rng);
        let (ct, _) = LinearPke::encrypt(&mut rng, &kp1.public, F61::from(7u64));
        assert_ne!(LinearPke::decrypt(&kp2.secret, &ct), F61::from(7u64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use yoso_field::F61;

    type Te = MockTe<F61>;

    fn f(v: u64) -> F61 {
        F61::from(v)
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    fn setup(n: usize, t: usize) -> (PublicKey<F61>, Vec<KeyShare<F61>>, rand::rngs::StdRng) {
        let mut r = rng();
        let (pk, shares) = Te::keygen(&mut r, n, t).unwrap();
        (pk, shares, r)
    }

    #[test]
    fn keygen_validates() {
        let mut r = rng();
        assert!(Te::keygen(&mut r, 5, 5).is_err());
        assert!(Te::keygen(&mut r, 0, 0).is_err());
        assert!(Te::keygen(&mut r, 1, 0).is_ok());
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (pk, shares, mut r) = setup(7, 3);
        for m in [f(0), f(1), f(123_456), F61::from_i64(-5)] {
            let (ct, _) = Te::encrypt(&mut r, &pk, m);
            let partials: Vec<_> =
                shares.iter().take(4).map(|s| Te::partial_decrypt(s, &ct)).collect();
            assert_eq!(Te::combine(&pk, &ct, &partials).unwrap(), m);
        }
    }

    #[test]
    fn any_t_plus_one_subset_decrypts() {
        let (pk, shares, mut r) = setup(7, 3);
        let (ct, _) = Te::encrypt(&mut r, &pk, f(77));
        for subset in [[0usize, 1, 2, 3], [3, 4, 5, 6], [0, 2, 4, 6]] {
            let partials: Vec<_> =
                subset.iter().map(|&i| Te::partial_decrypt(&shares[i], &ct)).collect();
            assert_eq!(Te::combine(&pk, &ct, &partials).unwrap(), f(77));
        }
    }

    #[test]
    fn t_partials_insufficient() {
        let (pk, shares, mut r) = setup(7, 3);
        let (ct, _) = Te::encrypt(&mut r, &pk, f(1));
        let partials: Vec<_> = shares.iter().take(3).map(|s| Te::partial_decrypt(s, &ct)).collect();
        assert!(matches!(
            Te::combine(&pk, &ct, &partials),
            Err(TeError::NotEnoughPartials { got: 3, need: 4 })
        ));
    }

    #[test]
    fn corrupt_partial_detected_with_surplus() {
        let (pk, shares, mut r) = setup(7, 2);
        let (ct, _) = Te::encrypt(&mut r, &pk, f(1));
        let mut partials: Vec<_> =
            shares.iter().take(5).map(|s| Te::partial_decrypt(s, &ct)).collect();
        partials[4].value += F61::ONE;
        assert_eq!(Te::combine(&pk, &ct, &partials), Err(TeError::InconsistentPartials));
    }

    #[test]
    fn feldman_check_catches_bad_partial() {
        let (pk, shares, mut r) = setup(5, 2);
        let (ct, _) = Te::encrypt(&mut r, &pk, f(9));
        let good = Te::partial_decrypt(&shares[0], &ct);
        assert!(Te::partial_is_valid(&pk, &ct, &good));
        let bad = PartialDec { party: 0, value: good.value + F61::ONE };
        assert!(!Te::partial_is_valid(&pk, &ct, &bad));
    }

    #[test]
    fn homomorphism_linear_combination() {
        let (pk, shares, mut r) = setup(5, 2);
        let ms = [f(10), f(20), f(30)];
        let cts: Vec<_> = ms.iter().map(|&m| Te::encrypt(&mut r, &pk, m).0).collect();
        let coeffs = [f(1), f(2), f(3)];
        let combined = Te::eval(&cts, &coeffs).unwrap();
        let expect = f(10) + f(40) + f(90);
        assert_eq!(Te::decrypt_with_shares(&pk, &combined, &shares).unwrap(), expect);
    }

    #[test]
    fn eval_rejects_mismatch() {
        let (pk, _, mut r) = setup(5, 2);
        let (ct, _) = Te::encrypt(&mut r, &pk, f(1));
        assert!(Te::eval(&[ct], &[]).is_err());
        assert!(Te::eval(&[], &[]).is_err());
    }

    #[test]
    fn add_plain_and_plain_ciphertext() {
        let (pk, shares, mut r) = setup(5, 2);
        let (ct, _) = Te::encrypt(&mut r, &pk, f(5));
        let shifted = Te::add_plain(&ct, f(10));
        assert_eq!(Te::decrypt_with_shares(&pk, &shifted, &shares).unwrap(), f(15));
        let plain = Te::plain_ciphertext(f(33));
        assert_eq!(Te::decrypt_with_shares(&pk, &plain, &shares).unwrap(), f(33));
    }

    #[test]
    fn reshare_preserves_key_and_vks() {
        let (pk, shares, mut r) = setup(6, 2);
        let msgs: Vec<_> = shares.iter().map(|s| Te::reshare(&mut r, &pk, s)).collect();
        for m in &msgs {
            assert!(Te::reshare_is_valid(&pk, m));
        }
        // Next committee uses providers {1, 3, 5}.
        let chosen: Vec<&ReshareMsg<F61>> = vec![&msgs[1], &msgs[3], &msgs[5]];
        let new_shares: Vec<_> =
            (0..6).map(|j| Te::recombine_key(&pk, j, &chosen).unwrap()).collect();
        let new_pk = Te::next_public_key(&pk, &chosen).unwrap();
        // Same h and g, new consistent vks.
        assert_eq!(new_pk.h, pk.h);
        for (j, s) in new_shares.iter().enumerate() {
            assert_eq!(new_pk.vks[j], s.value * pk.g);
        }
        // Fresh shares still decrypt old ciphertexts.
        let (ct, _) = Te::encrypt(&mut r, &pk, f(4242));
        assert_eq!(Te::decrypt_with_shares(&new_pk, &ct, &new_shares).unwrap(), f(4242));
    }

    #[test]
    fn reshare_tampering_detected() {
        let (pk, shares, mut r) = setup(5, 2);
        let mut msg = Te::reshare(&mut r, &pk, &shares[0]);
        assert!(Te::reshare_is_valid(&pk, &msg));
        msg.subshares[2] += F61::ONE;
        assert!(!Te::reshare_is_valid(&pk, &msg));
        let mut msg2 = Te::reshare(&mut r, &pk, &shares[1]);
        msg2.commitments[0] += F61::ONE; // no longer matches vk
        assert!(!Te::reshare_is_valid(&pk, &msg2));
    }

    #[test]
    fn sim_partial_decrypt_is_consistent_with_corrupt_shares() {
        let (pk, shares, mut r) = setup(7, 3);
        let (ct, _) = Te::encrypt(&mut r, &pk, f(1000));
        let target = f(5555); // simulate decryption to a *different* value
        let corrupt: Vec<_> =
            shares[..3].iter().map(|s| Te::partial_decrypt(s, &ct)).collect();
        let honest =
            Te::sim_partial_decrypt(&mut r, &pk, &ct, target, &corrupt, &[3, 4, 5, 6]).unwrap();
        // Mixing corrupt partials with simulated honest ones yields the target.
        let mut all = corrupt.clone();
        all.extend_from_slice(&honest);
        assert_eq!(Te::combine(&pk, &ct, &all).unwrap(), target);
        // Any t+1 subset too.
        let mix = vec![corrupt[0], corrupt[2], honest[1], honest[3]];
        assert_eq!(Te::combine(&pk, &ct, &mix).unwrap(), target);
    }

    #[test]
    fn sim_partial_decrypt_rejects_too_many_corrupt() {
        let (pk, shares, mut r) = setup(5, 1);
        let (ct, _) = Te::encrypt(&mut r, &pk, f(1));
        let corrupt: Vec<_> =
            shares[..2].iter().map(|s| Te::partial_decrypt(s, &ct)).collect();
        assert!(Te::sim_partial_decrypt(&mut r, &pk, &ct, f(0), &corrupt, &[3]).is_err());
    }

    #[test]
    fn debug_output_redacts_key_material() {
        let (pk, shares, mut r) = setup(4, 1);
        // Key shares are random 61-bit field elements: their decimal
        // rendering is ~19 digits, far too long to collide with the
        // party index or struct framing.
        let rendered = format!("{:?}", shares[0]);
        assert!(rendered.contains("redacted"), "{rendered}");
        let digits = shares[0].value.as_u64().to_string();
        assert!(!rendered.contains(&digits), "Debug leaks the share value: {rendered}");

        let msg = Te::reshare(&mut r, &pk, &shares[0]);
        let rendered = format!("{:?}", msg);
        assert!(rendered.contains("redacted"), "{rendered}");
        for sub in &msg.subshares {
            let digits = sub.as_u64().to_string();
            assert!(!rendered.contains(&digits), "Debug leaks a subshare: {rendered}");
        }

        let kp = LinearPke::<F61>::keygen(&mut r);
        let rendered = format!("{:?}", kp);
        assert!(rendered.contains("redacted"), "{rendered}");
        let digits = kp.secret.scalar.as_u64().to_string();
        assert!(!rendered.contains(&digits), "Debug leaks the PKE scalar: {rendered}");
    }
}
