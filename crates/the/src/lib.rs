//! Linearly homomorphic key-rerandomizable threshold encryption (TE)
//! and the NIZK arguments used by the YOSO MPC protocol.
//!
//! The paper (§4.1) specifies a TE scheme with algorithms
//! `TKGen / TEnc / TPDec / TDec / TEval / TKRes / TKRec / SimTPDec` and
//! suggests instantiating it with a Shamir-shared Paillier key. This
//! crate provides **two** instantiations:
//!
//! - [`mock::MockTe`]: a linearly homomorphic threshold scheme over a
//!   prime field (additive-notation ElGamal with a Shamir-shared key).
//!   Structurally faithful — real partial decryptions, Lagrange
//!   combining, Feldman verification keys, key re-sharing, and
//!   *perfect* partial-decryption simulatability — but with a toy
//!   security level (the field is 61 bits and the scheme is only
//!   one-time hiding). This is the engine for large-scale protocol
//!   simulations and communication measurements, where only structure
//!   and sizes matter. See DESIGN.md §3 for the substitution argument.
//! - [`paillier::ThresholdPaillier`]: a faithful threshold Paillier
//!   (Damgård–Jurik style: `Δ = n!` scaled Shamir sharing of the
//!   decryption exponent over the integers) built on the from-scratch
//!   `yoso-bignum`. Plaintext ring `Z_N`. Used in tests and the CDN
//!   baseline demo to validate the offline-phase algebra end-to-end
//!   with real cryptography.
//!
//! The two plaintext rings differ (`F_p` vs `Z_N`), so the crate
//! deliberately exposes two parallel concrete APIs rather than one
//! trait; the MPC core is generic over the *field* and uses `MockTe`.
//!
//! NIZKs ([`nizk`]) are Fiat–Shamir–compiled sigma protocols:
//!
//! - a generic proof of knowledge of a preimage under a public linear
//!   map over a prime field ([`nizk::linear`]), which covers every
//!   relation of the mock world (correct encryption, correct partial
//!   decryption, correct key re-sharing with Feldman commitments);
//! - integer sigma protocols for Paillier (knowledge of plaintext,
//!   correctness of partial decryption via discrete-log equality).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mock;
pub mod nizk;
pub mod paillier;

/// Errors produced by threshold-encryption operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeError {
    /// Parameters are invalid (e.g. `t >= n`).
    BadParameters {
        /// Committee size.
        n: usize,
        /// Corruption threshold.
        t: usize,
    },
    /// Too few partial decryptions to combine.
    NotEnoughPartials {
        /// Partials supplied.
        got: usize,
        /// Partials needed (`t + 1`).
        need: usize,
    },
    /// Partial decryptions are mutually inconsistent (some are wrong).
    InconsistentPartials,
    /// A party index was out of range or duplicated.
    BadParty(usize),
    /// A proof failed to verify.
    ProofRejected,
    /// Mismatched input lengths (e.g. `TEval` ciphertexts vs coefficients).
    LengthMismatch {
        /// First length.
        a: usize,
        /// Second length.
        b: usize,
    },
    /// The ciphertext is malformed for this public key.
    MalformedCiphertext,
}

impl std::fmt::Display for TeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TeError::BadParameters { n, t } => write!(f, "invalid TE parameters: n={n}, t={t}"),
            TeError::NotEnoughPartials { got, need } => {
                write!(f, "not enough partial decryptions: got {got}, need {need}")
            }
            TeError::InconsistentPartials => write!(f, "inconsistent partial decryptions"),
            TeError::BadParty(i) => write!(f, "bad or duplicate party index {i}"),
            TeError::ProofRejected => write!(f, "zero-knowledge proof rejected"),
            TeError::LengthMismatch { a, b } => write!(f, "length mismatch: {a} vs {b}"),
            TeError::MalformedCiphertext => write!(f, "malformed ciphertext"),
        }
    }
}

impl std::error::Error for TeError {}
