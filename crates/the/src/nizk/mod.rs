//! Non-interactive zero-knowledge arguments of knowledge.
//!
//! All proofs here are sigma protocols compiled with the Fiat–Shamir
//! transform over the [`yoso_crypto::Transcript`] random oracle:
//!
//! - [`linear`]: a generic proof of knowledge of a preimage under a
//!   public linear map over a prime field. Every mock-world relation in
//!   the protocol is linear, so this single protocol covers them all.
//! - [`enc_proof`] / [`verify_enc_proof`]: correct encryption under
//!   [`crate::mock::MockTe`] (knowledge of `(m, r)` for a ciphertext).
//! - [`pdec_proof`] / [`verify_pdec_proof`]: correct partial
//!   decryption (knowledge of the key share `s_i` binding the Feldman
//!   verification key `vk_i` to the published `d_i`).
//! - [`reshare_proof`] / [`verify_reshare_proof`]: correct key
//!   re-sharing (knowledge of the sub-sharing polynomial behind the
//!   Feldman commitments, consistent with the published subshare
//!   encryptions under the recipients' keys).
//! - [`share_proof`] / [`verify_share_proof`]: knowledge of the value
//!   and randomness inside a published μ-share contribution (the online
//!   phase's "proof of correctness" attached to every broadcast).
//!
//! Paillier-world proofs live in [`crate::paillier::nizk`].

pub mod linear;

mod mock_proofs;

pub use linear::{prove as prove_linear, verify as verify_linear, Proof as LinearProof};
pub use mock_proofs::{
    enc_proof, pdec_proof, reshare_proof, share_proof, verify_enc_proof, verify_pdec_proof,
    verify_reshare_proof, verify_share_proof, EncProof, PdecProof, ReshareProof, ShareProof,
};
