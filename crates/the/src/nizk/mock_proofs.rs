//! Concrete NIZKs for the mock threshold scheme, built on the generic
//! linear sigma protocol ([`super::linear`]).
//!
//! Domain separators keep the proof types mutually unforgeable.

use rand::Rng;
use serde::{Deserialize, Serialize};

use yoso_field::PrimeField;

use super::linear::{self, Statement};
use crate::mock::{Ciphertext, PkePublicKey, PublicKey};

const DOMAIN_ENC: &[u8] = b"yoso-pss/nizk/enc/v1";
const DOMAIN_PDEC: &[u8] = b"yoso-pss/nizk/pdec/v1";
const DOMAIN_RESHARE: &[u8] = b"yoso-pss/nizk/reshare/v1";
const DOMAIN_SHARE: &[u8] = b"yoso-pss/nizk/share/v1";

/// Proof of correct encryption: knowledge of `(m, r)` with
/// `ct = (r·g, m + r·h)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct EncProof<F: PrimeField> {
    inner: linear::Proof<F>,
}

impl<F: PrimeField> EncProof<F> {
    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }
}

fn enc_statement<F: PrimeField>(g: F, h: F, ct: &Ciphertext<F>) -> Statement<F> {
    // Witness (m, r): u = 0·m + g·r; v = 1·m + h·r.
    Statement::new(
        vec![vec![F::ZERO, g], vec![F::ONE, h]],
        vec![ct.u, ct.v],
    )
}

/// Proves correct encryption under the threshold public key.
pub fn enc_proof<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    pk: &PublicKey<F>,
    ct: &Ciphertext<F>,
    m: F,
    r: F,
) -> EncProof<F> {
    let st = enc_statement(pk.g, pk.h, ct);
    EncProof { inner: linear::prove(rng, DOMAIN_ENC, &st, &[m, r]) }
}

/// Verifies an encryption proof.
pub fn verify_enc_proof<F: PrimeField>(
    pk: &PublicKey<F>,
    ct: &Ciphertext<F>,
    proof: &EncProof<F>,
) -> bool {
    linear::verify(DOMAIN_ENC, &enc_statement(pk.g, pk.h, ct), &proof.inner)
}

/// Proof of correct partial decryption: knowledge of `s_i` with
/// `vk_i = s_i·g` and `d_i = s_i·u`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct PdecProof<F: PrimeField> {
    inner: linear::Proof<F>,
}

impl<F: PrimeField> PdecProof<F> {
    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }
}

fn pdec_statement<F: PrimeField>(g: F, vk: F, u: F, d: F) -> Statement<F> {
    Statement::new(vec![vec![g], vec![u]], vec![vk, d])
}

/// Proves correct partial decryption by party `party`.
pub fn pdec_proof<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    pk: &PublicKey<F>,
    ct: &Ciphertext<F>,
    party: usize,
    share_value: F,
    d: F,
) -> PdecProof<F> {
    let st = pdec_statement(pk.g, pk.vks[party], ct.u, d);
    PdecProof { inner: linear::prove(rng, DOMAIN_PDEC, &st, &[share_value]) }
}

/// Verifies a partial-decryption proof for party `party`.
pub fn verify_pdec_proof<F: PrimeField>(
    pk: &PublicKey<F>,
    ct: &Ciphertext<F>,
    party: usize,
    d: F,
    proof: &PdecProof<F>,
) -> bool {
    if party >= pk.vks.len() {
        return false;
    }
    linear::verify(DOMAIN_PDEC, &pdec_statement(pk.g, pk.vks[party], ct.u, d), &proof.inner)
}

/// Proof of correct key re-sharing with encrypted subshares: knowledge
/// of the sub-sharing polynomial coefficients `(a_0 … a_t)` and the
/// encryption randomness `(r_1 … r_n)` consistent with the published
/// Feldman commitments and the recipients' subshare ciphertexts.
///
/// The verifier additionally checks `C_0 = vk_from` (the constant term
/// really is the sender's key share) outside the sigma protocol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct ReshareProof<F: PrimeField> {
    inner: linear::Proof<F>,
}

impl<F: PrimeField> ReshareProof<F> {
    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }
}

#[allow(clippy::needless_range_loop)]
fn reshare_statement<F: PrimeField>(
    pk: &PublicKey<F>,
    commitments: &[F],
    recipient_pks: &[PkePublicKey<F>],
    encrypted_subshares: &[Ciphertext<F>],
) -> Statement<F> {
    let t1 = commitments.len(); // t + 1 coefficients
    let n = recipient_pks.len();
    let wlen = t1 + n; // (a_0 … a_t, r_1 … r_n)
    let mut matrix = Vec::with_capacity(t1 + 2 * n);
    let mut targets = Vec::with_capacity(t1 + 2 * n);
    // Commitments: C_j = a_j · g.
    for (j, &c) in commitments.iter().enumerate() {
        let mut row = vec![F::ZERO; wlen];
        row[j] = pk.g;
        matrix.push(row);
        targets.push(c);
    }
    // Subshare ciphertexts to recipient m (point x = m + 1):
    //   u_m = r_m · g_m;   v_m = Σ_j x^j a_j + r_m · h_m.
    for (m, (rpk, ct)) in recipient_pks.iter().zip(encrypted_subshares).enumerate() {
        let x = F::from_u64(m as u64 + 1);
        let mut row_u = vec![F::ZERO; wlen];
        row_u[t1 + m] = rpk.g;
        matrix.push(row_u);
        targets.push(ct.u);

        let mut row_v = vec![F::ZERO; wlen];
        let mut xp = F::ONE;
        for j in 0..t1 {
            row_v[j] = xp;
            xp *= x;
        }
        row_v[t1 + m] = rpk.h;
        matrix.push(row_v);
        targets.push(ct.v);
    }
    Statement::new(matrix, targets)
}

/// Proves a re-share message correct with respect to encrypted
/// subshares.
///
/// `coeffs` are the sub-sharing polynomial coefficients (`a_0 = s_i`),
/// `enc_randomness[m]` the randomness used to encrypt subshare `m`.
pub fn reshare_proof<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    pk: &PublicKey<F>,
    msg_commitments: &[F],
    recipient_pks: &[PkePublicKey<F>],
    encrypted_subshares: &[Ciphertext<F>],
    coeffs: &[F],
    enc_randomness: &[F],
) -> ReshareProof<F> {
    let st = reshare_statement(pk, msg_commitments, recipient_pks, encrypted_subshares);
    let mut witness = coeffs.to_vec();
    witness.extend_from_slice(enc_randomness);
    ReshareProof { inner: linear::prove(rng, DOMAIN_RESHARE, &st, &witness) }
}

/// Verifies a re-share proof, including the `C_0 = vk_from` binding.
pub fn verify_reshare_proof<F: PrimeField>(
    pk: &PublicKey<F>,
    from: usize,
    msg_commitments: &[F],
    recipient_pks: &[PkePublicKey<F>],
    encrypted_subshares: &[Ciphertext<F>],
    proof: &ReshareProof<F>,
) -> bool {
    if from >= pk.vks.len()
        || msg_commitments.len() != pk.t + 1
        || msg_commitments.first() != Some(&pk.vks[from])
        || recipient_pks.len() != encrypted_subshares.len()
    {
        return false;
    }
    let st = reshare_statement(pk, msg_commitments, recipient_pks, encrypted_subshares);
    linear::verify(DOMAIN_RESHARE, &st, &proof.inner)
}

/// Proof attached to an online μ-share publication: knowledge of the
/// KFF secret key `k` with `kff_pk.h = k · kff_pk.g` and
/// `published = offset − k · slope` (where `offset`/`slope` are public
/// functions of the on-board ciphertexts and the public μ values; see
/// `yoso-core::online` for the construction).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct ShareProof<F: PrimeField> {
    inner: linear::Proof<F>,
}

impl<F: PrimeField> ShareProof<F> {
    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }
}

fn share_statement<F: PrimeField>(
    kff_pk: &PkePublicKey<F>,
    slope: F,
    offset: F,
    published: F,
) -> Statement<F> {
    // Witness (k): h = k·g; published − offset = −slope·k.
    Statement::new(
        vec![vec![kff_pk.g], vec![-slope]],
        vec![kff_pk.h, published - offset],
    )
}

/// Proves a published value was computed from the KFF-decrypted shares.
pub fn share_proof<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    kff_pk: &PkePublicKey<F>,
    slope: F,
    offset: F,
    published: F,
    kff_sk: F,
) -> ShareProof<F> {
    let st = share_statement(kff_pk, slope, offset, published);
    ShareProof { inner: linear::prove(rng, DOMAIN_SHARE, &st, &[kff_sk]) }
}

/// Verifies a μ-share publication proof.
pub fn verify_share_proof<F: PrimeField>(
    kff_pk: &PkePublicKey<F>,
    slope: F,
    offset: F,
    published: F,
    proof: &ShareProof<F>,
) -> bool {
    linear::verify(DOMAIN_SHARE, &share_statement(kff_pk, slope, offset, published), &proof.inner)
}

fn garbage_inner<F: PrimeField, R: Rng + ?Sized>(rng: &mut R, rows: usize, wit: usize) -> linear::Proof<F> {
    linear::Proof {
        commitment: (0..rows).map(|_| F::random(rng)).collect(),
        response: (0..wit).map(|_| F::random(rng)).collect(),
    }
}

impl<F: PrimeField> EncProof<F> {
    /// A random non-verifying proof — used by the adversary simulation
    /// to model a malicious role posting garbage.
    pub fn garbage<R: Rng + ?Sized>(rng: &mut R) -> Self {
        EncProof { inner: garbage_inner(rng, 2, 2) }
    }
}

impl<F: PrimeField> PdecProof<F> {
    /// A random non-verifying proof (adversary simulation).
    pub fn garbage<R: Rng + ?Sized>(rng: &mut R) -> Self {
        PdecProof { inner: garbage_inner(rng, 2, 1) }
    }
}

impl<F: PrimeField> ReshareProof<F> {
    /// A random non-verifying proof (adversary simulation) for
    /// committee size `n`, threshold `t`.
    pub fn garbage<R: Rng + ?Sized>(rng: &mut R, n: usize, t: usize) -> Self {
        ReshareProof { inner: garbage_inner(rng, (t + 1) + 2 * n, (t + 1) + n) }
    }
}

impl<F: PrimeField> ShareProof<F> {
    /// A random non-verifying proof (adversary simulation).
    pub fn garbage<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ShareProof { inner: garbage_inner(rng, 2, 1) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::{LinearPke, MockTe};
    use rand::SeedableRng;
    use yoso_field::F61;

    type Te = MockTe<F61>;

    fn f(v: u64) -> F61 {
        F61::from(v)
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(314)
    }

    #[test]
    fn enc_proof_roundtrip() {
        let mut r = rng();
        let (pk, _) = Te::keygen(&mut r, 5, 2).unwrap();
        let m = f(42);
        let (ct, rand_r) = Te::encrypt(&mut r, &pk, m);
        let proof = enc_proof(&mut r, &pk, &ct, m, rand_r);
        assert!(verify_enc_proof(&pk, &ct, &proof));
    }

    #[test]
    fn enc_proof_rejects_wrong_ciphertext() {
        let mut r = rng();
        let (pk, _) = Te::keygen(&mut r, 5, 2).unwrap();
        let (ct, rand_r) = Te::encrypt(&mut r, &pk, f(42));
        let proof = enc_proof(&mut r, &pk, &ct, f(42), rand_r);
        let (other_ct, _) = Te::encrypt(&mut r, &pk, f(43));
        assert!(!verify_enc_proof(&pk, &other_ct, &proof));
    }

    #[test]
    fn pdec_proof_roundtrip_and_rejection() {
        let mut r = rng();
        let (pk, shares) = Te::keygen(&mut r, 5, 2).unwrap();
        let (ct, _) = Te::encrypt(&mut r, &pk, f(7));
        let pd = Te::partial_decrypt(&shares[2], &ct);
        let proof = pdec_proof(&mut r, &pk, &ct, 2, shares[2].value, pd.value);
        assert!(verify_pdec_proof(&pk, &ct, 2, pd.value, &proof));
        // Wrong value rejected.
        assert!(!verify_pdec_proof(&pk, &ct, 2, pd.value + F61::ONE, &proof));
        // Wrong party rejected.
        assert!(!verify_pdec_proof(&pk, &ct, 3, pd.value, &proof));
        assert!(!verify_pdec_proof(&pk, &ct, 99, pd.value, &proof));
    }

    #[test]
    fn reshare_proof_roundtrip() {
        let mut r = rng();
        let n = 4;
        let t = 1;
        let (pk, shares) = Te::keygen(&mut r, n, t).unwrap();
        // Party 0 re-shares with explicit coefficients so we can prove.
        let coeffs = vec![shares[0].value, f(777)];
        let recipient_kps: Vec<_> = (0..n).map(|_| LinearPke::<F61>::keygen(&mut r)).collect();
        let recipient_pks: Vec<_> = recipient_kps.iter().map(|kp| kp.public).collect();
        let commitments: Vec<F61> = coeffs.iter().map(|&a| a * pk.g).collect();
        let mut cts = Vec::new();
        let mut rands = Vec::new();
        for (m, rpk) in recipient_pks.iter().enumerate() {
            let x = F61::from(m as u64 + 1);
            let sub = coeffs[0] + coeffs[1] * x;
            let (ct, rr) = LinearPke::encrypt(&mut r, rpk, sub);
            cts.push(ct);
            rands.push(rr);
        }
        let proof =
            reshare_proof(&mut r, &pk, &commitments, &recipient_pks, &cts, &coeffs, &rands);
        assert!(verify_reshare_proof(&pk, 0, &commitments, &recipient_pks, &cts, &proof));
        // Tampered subshare ciphertext rejected.
        let mut bad_cts = cts.clone();
        bad_cts[1].v += F61::ONE;
        assert!(!verify_reshare_proof(&pk, 0, &commitments, &recipient_pks, &bad_cts, &proof));
        // Wrong sender (C_0 != vk) rejected.
        assert!(!verify_reshare_proof(&pk, 1, &commitments, &recipient_pks, &cts, &proof));
    }

    #[test]
    fn share_proof_roundtrip() {
        let mut r = rng();
        let kp = LinearPke::<F61>::keygen(&mut r);
        // published = offset − k·slope.
        let slope = f(17);
        let offset = f(1000);
        let published = offset - kp.secret.scalar * slope;
        let proof = share_proof(&mut r, &kp.public, slope, offset, published, kp.secret.scalar);
        assert!(verify_share_proof(&kp.public, slope, offset, published, &proof));
        assert!(!verify_share_proof(&kp.public, slope, offset, published + F61::ONE, &proof));
    }

    #[test]
    fn proofs_are_domain_separated() {
        // A pdec proof must not verify as an enc proof even with a
        // statement of matching shape.
        let mut r = rng();
        let (pk, shares) = Te::keygen(&mut r, 5, 2).unwrap();
        let (ct, _) = Te::encrypt(&mut r, &pk, f(7));
        let pd = Te::partial_decrypt(&shares[0], &ct);
        let proof = pdec_proof(&mut r, &pk, &ct, 0, shares[0].value, pd.value);
        // Craft an enc-shaped check from the same numbers: shapes differ
        // (witness length 1 vs 2), so this must fail.
        let fake = EncProof { inner: proof.inner.clone() };
        assert!(!verify_enc_proof(&pk, &ct, &fake));
    }
}
