//! A Fiat–Shamir sigma protocol proving knowledge of a preimage under
//! a public linear map over a prime field.
//!
//! **Relation.** For a public matrix `M ∈ F^{r×w}` and target vector
//! `x ∈ F^r`, the prover knows `w ∈ F^w` with `M·w = x`.
//!
//! **Protocol.** Commit `a = M·ρ` for random `ρ`; challenge
//! `e = H(M, x, a)`; response `z = ρ + e·w`. Verify `M·z = a + e·x`.
//!
//! This is special-sound (two accepting transcripts with distinct
//! challenges yield the witness `w = (z − z′)/(e − e′)`) and perfectly
//! honest-verifier zero-knowledge (simulate by sampling `z` and setting
//! `a = M·z − e·x`), hence a NIZKAoK in the random-oracle model.
//!
//! Every relation the mock-world YOSO protocol proves on the bulletin
//! board — correct encryption, correct partial decryption, correct
//! re-sharing, correct μ-share computation, correct re-encryption — is
//! linear over the field, so this single protocol is the NIZK engine of
//! the whole protocol stack.

use serde::{Deserialize, Serialize};

use rand::Rng;
use yoso_crypto::Transcript;
use yoso_field::PrimeField;

/// A public statement: the linear map (dense rows) and the target
/// vector. Row `i` asserts `Σ_j matrix[i][j] · w_j = targets[i]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct Statement<F: PrimeField> {
    /// Dense rows of the linear map, each of length `witness_len`.
    pub matrix: Vec<Vec<F>>,
    /// The target vector, one entry per row.
    pub targets: Vec<F>,
}

impl<F: PrimeField> Statement<F> {
    /// Creates a statement, validating shape.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or the target count
    /// does not match the row count.
    pub fn new(matrix: Vec<Vec<F>>, targets: Vec<F>) -> Self {
        assert_eq!(matrix.len(), targets.len(), "row/target count mismatch");
        if let Some(first) = matrix.first() {
            let w = first.len();
            assert!(matrix.iter().all(|r| r.len() == w), "ragged matrix");
        }
        Statement { matrix, targets }
    }

    /// Number of witness variables.
    pub fn witness_len(&self) -> usize {
        self.matrix.first().map_or(0, |r| r.len())
    }

    /// Applies the map to a vector.
    fn apply(&self, w: &[F]) -> Vec<F> {
        self.matrix
            .iter()
            .map(|row| row.iter().zip(w).map(|(&m, &v)| m * v).sum())
            .collect()
    }

    /// Returns `true` if `w` satisfies the statement (prover-side
    /// sanity check).
    pub fn is_satisfied_by(&self, w: &[F]) -> bool {
        w.len() == self.witness_len() && self.apply(w) == self.targets
    }

    fn absorb_into(&self, t: &mut Transcript) {
        t.absorb_u64(b"rows", self.matrix.len() as u64);
        t.absorb_u64(b"cols", self.witness_len() as u64);
        for row in &self.matrix {
            for &c in row {
                t.absorb_field(b"m", c);
            }
        }
        for &x in &self.targets {
            t.absorb_field(b"x", x);
        }
    }
}

/// A non-interactive proof of knowledge of a preimage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct Proof<F: PrimeField> {
    /// The commitment `a = M·ρ`.
    pub commitment: Vec<F>,
    /// The response `z = ρ + e·w`.
    pub response: Vec<F>,
}

impl<F: PrimeField> Proof<F> {
    /// Serialized size in bytes (8 bytes per field element).
    pub fn size_bytes(&self) -> usize {
        8 * (self.commitment.len() + self.response.len())
    }
}

/// Proves knowledge of `witness` for `statement` under the given
/// domain separator.
///
/// # Panics
///
/// Panics (in debug builds) if the witness does not satisfy the
/// statement — proving a false statement is always a caller bug.
pub fn prove<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    domain: &[u8],
    statement: &Statement<F>,
    witness: &[F],
) -> Proof<F> {
    debug_assert!(statement.is_satisfied_by(witness), "witness does not satisfy statement");
    let rho: Vec<F> = (0..statement.witness_len()).map(|_| F::random(rng)).collect();
    let commitment = statement.apply(&rho);

    let mut t = Transcript::new(domain);
    statement.absorb_into(&mut t);
    for &a in &commitment {
        t.absorb_field(b"a", a);
    }
    let e: F = t.challenge_field(b"e");

    let response = rho.iter().zip(witness).map(|(&r, &w)| r + e * w).collect();
    Proof { commitment, response }
}

/// Verifies a proof.
pub fn verify<F: PrimeField>(domain: &[u8], statement: &Statement<F>, proof: &Proof<F>) -> bool {
    if proof.commitment.len() != statement.targets.len()
        || proof.response.len() != statement.witness_len()
    {
        return false;
    }
    let mut t = Transcript::new(domain);
    statement.absorb_into(&mut t);
    for &a in &proof.commitment {
        t.absorb_field(b"a", a);
    }
    let e: F = t.challenge_field(b"e");

    let lhs = statement.apply(&proof.response);
    lhs.iter()
        .zip(proof.commitment.iter().zip(&statement.targets))
        .all(|(&l, (&a, &x))| l == a + e * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use yoso_field::F61;

    fn f(v: u64) -> F61 {
        F61::from(v)
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1234)
    }

    fn example() -> (Statement<F61>, Vec<F61>) {
        // w = (3, 4); M = [[1, 2], [5, 6], [0, 1]]; x = M·w.
        let w = vec![f(3), f(4)];
        let matrix = vec![vec![f(1), f(2)], vec![f(5), f(6)], vec![f(0), f(1)]];
        let targets = vec![f(11), f(39), f(4)];
        (Statement::new(matrix, targets), w)
    }

    #[test]
    fn prove_verify_roundtrip() {
        let mut r = rng();
        let (st, w) = example();
        assert!(st.is_satisfied_by(&w));
        let proof = prove(&mut r, b"test", &st, &w);
        assert!(verify(b"test", &st, &proof));
    }

    #[test]
    fn wrong_domain_rejected() {
        let mut r = rng();
        let (st, w) = example();
        let proof = prove(&mut r, b"test", &st, &w);
        assert!(!verify(b"other", &st, &proof));
    }

    #[test]
    fn tampered_statement_rejected() {
        let mut r = rng();
        let (st, w) = example();
        let proof = prove(&mut r, b"test", &st, &w);
        let mut st2 = st.clone();
        st2.targets[0] += F61::ONE;
        assert!(!verify(b"test", &st2, &proof));
    }

    #[test]
    fn tampered_proof_rejected() {
        let mut r = rng();
        let (st, w) = example();
        let mut proof = prove(&mut r, b"test", &st, &w);
        proof.response[0] += F61::ONE;
        assert!(!verify(b"test", &st, &proof));
        let mut proof2 = prove(&mut r, b"test", &st, &w);
        proof2.commitment[1] += F61::ONE;
        assert!(!verify(b"test", &st, &proof2));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut r = rng();
        let (st, w) = example();
        let mut proof = prove(&mut r, b"test", &st, &w);
        proof.response.pop();
        assert!(!verify(b"test", &st, &proof));
    }

    #[test]
    fn empty_witness_statement() {
        // Degenerate: no witness variables, rows must target zero.
        let st = Statement::<F61>::new(vec![], vec![]);
        let mut r = rng();
        let proof = prove(&mut r, b"test", &st, &[]);
        assert!(verify(b"test", &st, &proof));
    }

    #[test]
    fn special_soundness_extracts_witness() {
        // With two accepting transcripts for distinct challenges we can
        // extract the witness: simulate by re-running the interactive
        // protocol manually.
        let (_st, w) = example();
        let mut r = rng();
        let rho: Vec<F61> = (0..2).map(|_| yoso_field::PrimeField::random(&mut r)).collect();
        let e1 = f(17);
        let e2 = f(29);
        let z1: Vec<F61> = rho.iter().zip(&w).map(|(&r, &w)| r + e1 * w).collect();
        let z2: Vec<F61> = rho.iter().zip(&w).map(|(&r, &w)| r + e2 * w).collect();
        let inv = (e1 - e2).inv().unwrap();
        let extracted: Vec<F61> = z1.iter().zip(&z2).map(|(&a, &b)| (a - b) * inv).collect();
        assert_eq!(extracted, w);
    }

    #[test]
    fn hvzk_simulation_matches_distribution_shape() {
        // Simulator: sample z and e, set a = M·z − e·x. The verifier
        // equation holds by construction.
        let (st, _) = example();
        let mut r = rng();
        let z: Vec<F61> = (0..2).map(|_| yoso_field::PrimeField::random(&mut r)).collect();
        let e = f(99);
        let mz = [
            st.matrix[0][0] * z[0] + st.matrix[0][1] * z[1],
            st.matrix[1][0] * z[0] + st.matrix[1][1] * z[1],
            st.matrix[2][0] * z[0] + st.matrix[2][1] * z[1],
        ];
        let a: Vec<F61> = mz.iter().zip(&st.targets).map(|(&m, &x)| m - e * x).collect();
        for i in 0..3 {
            assert_eq!(mz[i], a[i] + e * st.targets[i]);
        }
    }
}
