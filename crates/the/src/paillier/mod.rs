//! Threshold Paillier encryption (Damgård–Jurik style).
//!
//! The faithful cryptographic instantiation of the paper's TE scheme
//! (§4.1), built entirely on the from-scratch `yoso-bignum`:
//!
//! - **Key generation** samples an RSA modulus `N = p·q`, sets
//!   `λ = lcm(p−1, q−1)` and the decryption exponent `d` with
//!   `d ≡ 0 (mod λ)`, `d ≡ 1 (mod N)`. `d` is Shamir-shared with a
//!   degree-`t` *integer* polynomial; the classic `Δ = n!` scaling
//!   makes Lagrange combining integral.
//! - **Encryption**: `c = (1+N)^m · r^N mod N²` (the `(1+N)^m` power is
//!   computed as `1 + mN mod N²`).
//! - **Partial decryption** by party `i`: `d_i = c^{2Δ·s_i} mod N²`,
//!   with a discrete-log-equality NIZK against the verification key
//!   `v_i = v^{Δ·s_i}` ([`nizk`]).
//! - **Combining** `t+1` partials with `Δ`-scaled integer Lagrange
//!   coefficients yields `(1+N)^{4Δ²·scale·m}`; the plaintext is
//!   recovered as `L(c′)·(4Δ²·scale)^{-1} mod N` where
//!   `L(u) = (u−1)/N`.
//! - **Key re-sharing** (`TKRes`/`TKRec`): each member deals a
//!   degree-`t` integer sub-sharing of `Δ·s_i` with verification
//!   values `v^{b_l}`; recipients combine with `Δ`-scaled Lagrange
//!   coefficients. Every handover multiplies the tracked `scale`
//!   factor by `Δ²`, which [`ThresholdPaillier::combine`] divides out.
//!   (This is the `n!`-growth the paper mentions when discussing class
//!   groups in §7 — inherent to integer secret sharing.)
//!
//! Partial-decryption *simulatability* holds statistically for this
//! scheme (Damgård–Jurik); the executable `SimTPDec` oracle used by the
//! security tests is implemented on the mock scheme, where simulation
//! is perfect — see DESIGN.md §3.

pub mod fixed_base;
pub mod multi_exp;
pub mod nizk;
pub mod packing;

pub use fixed_base::{EncryptionContext, FixedBaseTable};
pub use multi_exp::{multi_exp, multi_exp_nat};

use rand::Rng;
use serde::{Deserialize, Serialize};

use yoso_bignum::{prime, Int, MontgomeryCtx, Nat, Sign};

use crate::TeError;

/// Public key and threshold parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicKey {
    /// The modulus `N = p·q`.
    pub n_mod: Nat,
    /// `N²` (cached).
    pub n_sq: Nat,
    /// Committee size.
    pub parties: usize,
    /// Corruption threshold (any `t+1` partials decrypt).
    pub threshold: usize,
    /// `Δ = parties!`.
    pub delta: Nat,
    /// Verification base `v` (a random square in `Z_{N²}^*`).
    pub v: Nat,
    /// Verification keys `v_i = v^{Δ·s_i} mod N²`.
    pub vks: Vec<Nat>,
}

/// A party's share of the decryption exponent.
///
/// `value` is `f(party+1)` for the current integer sharing polynomial
/// `f` with `f(0) = scale·d`. Freshly generated keys have `scale = 1`;
/// each re-sharing multiplies `scale` by `Δ²`.
// lint:redact: Debug is implemented manually below and prints no limb
// data; Serialize is required because shares cross the wire (transport
// encryption is the protocol layer's responsibility).
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyShare {
    /// 0-based party index.
    pub party: usize,
    /// The (signed) integer share.
    pub value: Int,
    /// The accumulated scaling factor of the shared secret.
    pub scale: Nat,
}

// lint:redact: prints the party index and share width only — never the
// share limbs themselves.
impl std::fmt::Debug for KeyShare {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyShare")
            .field("party", &self.party)
            .field("value", &format_args!("<redacted {} bits>", self.value.magnitude().bit_len()))
            .field("scale_bits", &self.scale.bit_len())
            .finish()
    }
}

/// A Paillier ciphertext (an element of `Z_{N²}^*`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ciphertext {
    /// The ciphertext value.
    pub value: Nat,
}

/// A partial decryption `d_i = c^{2Δ·s_i} mod N²`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialDec {
    /// 0-based party index.
    pub party: usize,
    /// The partial value.
    pub value: Nat,
}

/// A key re-share message: verification values for the sub-sharing
/// polynomial plus one integer subshare per recipient.
///
/// In a real deployment the subshares travel encrypted to their
/// recipients; this algebra layer exposes them in the clear and the
/// protocol layer handles confidentiality.
// lint:redact: Debug is implemented manually below and prints no
// subshare limbs; Serialize is required because re-share messages cross
// the wire (recipient-side encryption is the protocol layer's job).
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReshareMsg {
    /// 0-based index of the re-sharing party.
    pub from: usize,
    /// Verification values `V_l = v^{b_l} mod N²` for the sub-sharing
    /// polynomial `g(X) = Σ b_l X^l` with `b_0 = Δ·s_i`.
    pub commitments: Vec<Nat>,
    /// `subshares[j] = g(j+1)` for recipient `j`.
    pub subshares: Vec<Int>,
}

// lint:redact: prints the sender, commitment count and subshare count —
// the commitments are public verification values, the subshares are not
// printed.
impl std::fmt::Debug for ReshareMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReshareMsg")
            .field("from", &self.from)
            .field("commitments", &self.commitments.len())
            .field("subshares", &format_args!("<{} redacted>", self.subshares.len()))
            .finish()
    }
}

/// The threshold Paillier scheme (stateless; all state in keys).
#[derive(Debug, Clone, Copy)]
pub struct ThresholdPaillier;

/// Raises `base` to a signed exponent modulo `m` (negative exponents
/// use the modular inverse of the base).
///
/// # Panics
///
/// Panics if the exponent is negative and the base is not invertible.
pub(crate) fn pow_signed(base: &Nat, e: &Int, m: &Nat) -> Nat {
    match e.sign() {
        Sign::Zero => Nat::one(),
        Sign::Positive => base.mod_pow(e.magnitude(), m),
        Sign::Negative => base
            .mod_inv(m)
            // lint:allow(panic): documented `# Panics` contract — callers
            // pass bases in Z_{N²}^*, where inversion cannot fail unless
            // the caller has already factored N.
            .expect("pow_signed: base not invertible")
            .mod_pow(e.magnitude(), m),
    }
}

/// Computes the `Δ`-scaled integer Lagrange coefficient
/// `μ_j = Δ·λ^S_{0,j}` for the node set `points` (1-based x values) at
/// target 0. The `Δ = n!` factor clears all denominators.
pub(crate) fn delta_lagrange_at_zero(delta: &Nat, points: &[u64], j: usize) -> Int {
    let mut num = Int::from_nat(delta.clone());
    let mut den = Int::one();
    let xj = points[j] as i64;
    for (idx, &xm) in points.iter().enumerate() {
        if idx == j {
            continue;
        }
        num = &num * &Int::from(-(xm as i64));
        den = &den * &Int::from(xj - xm as i64);
    }
    num.div_exact(&den)
}

/// Evaluates the polynomial with signed integer coefficients at `x`.
fn poly_eval_int(coeffs: &[Int], x: u64) -> Int {
    let xn = Nat::from(x);
    let mut acc = Int::zero();
    for c in coeffs.iter().rev() {
        acc = &acc.mul_nat(&xn) + c;
    }
    acc
}

impl ThresholdPaillier {
    /// `TKGen`: generates an `N` of `2·prime_bits` bits and shares the
    /// decryption exponent among `parties` with threshold `threshold`.
    ///
    /// # Errors
    ///
    /// Returns [`TeError::BadParameters`] if `threshold >= parties` or
    /// `parties == 0`.
    pub fn keygen<R: Rng + ?Sized>(
        rng: &mut R,
        prime_bits: usize,
        parties: usize,
        threshold: usize,
    ) -> Result<(PublicKey, Vec<KeyShare>), TeError> {
        if parties == 0 || threshold >= parties {
            return Err(TeError::BadParameters { n: parties, t: threshold });
        }
        let (p, q) = prime::generate_paillier_primes(rng, prime_bits);
        let n_mod = &p * &q;
        let n_sq = &n_mod * &n_mod;
        let one = Nat::one();
        let lambda = (&p - &one).lcm(&(&q - &one));
        // d ≡ 0 mod λ, d ≡ 1 mod N:  d = λ·(λ^{-1} mod N).
        // lint:allow(panic): gcd(λ, N) = 1 by construction — λ divides
        // (p−1)(q−1) and N = p·q for distinct primes p, q just generated.
        let lambda_inv = lambda.mod_inv(&n_mod).expect("gcd(λ, N) = 1 by construction");
        let d = &lambda * &lambda_inv;

        // Integer Shamir sharing of d with coefficients below N·λ.
        let coeff_bound = &n_mod * &lambda;
        let mut coeffs: Vec<Int> = vec![Int::from_nat(d)];
        for _ in 0..threshold {
            coeffs.push(Int::from_nat(Nat::random_below(rng, &coeff_bound)));
        }
        let delta = Nat::factorial(parties as u64);
        let shares: Vec<KeyShare> = (0..parties)
            .map(|i| KeyShare {
                party: i,
                value: poly_eval_int(&coeffs, i as u64 + 1),
                scale: Nat::one(),
            })
            .collect();

        // Verification base: a random square in Z_{N²}^*.
        let v = loop {
            let r = Nat::random_below(rng, &n_sq);
            if r.gcd(&n_mod).is_one() {
                break r.mod_mul(&r, &n_sq);
            }
        };
        let vks = shares
            .iter()
            .map(|s| {
                let exp = s.value.mul_nat(&delta);
                pow_signed(&v, &exp, &n_sq)
            })
            .collect();

        Ok((PublicKey { n_mod, n_sq, parties, threshold, delta, v, vks }, shares))
    }

    /// `TEnc`: encrypts `m ∈ [0, N)`, returning the ciphertext and the
    /// randomness `r ∈ Z_N^*` (needed by the NIZK prover).
    ///
    /// # Panics
    ///
    /// Panics if `m >= N`.
    pub fn encrypt<R: Rng + ?Sized>(rng: &mut R, pk: &PublicKey, m: &Nat) -> (Ciphertext, Nat) {
        assert!(m < &pk.n_mod, "plaintext out of range");
        let r = loop {
            let cand = Nat::random_below(rng, &pk.n_mod);
            if !cand.is_zero() && cand.gcd(&pk.n_mod).is_one() {
                break cand;
            }
        };
        (Self::encrypt_with(pk, m, &r), r)
    }

    /// Deterministic encryption with caller-chosen randomness.
    pub fn encrypt_with(pk: &PublicKey, m: &Nat, r: &Nat) -> Ciphertext {
        // (1+N)^m = 1 + mN (mod N²).
        let g_m = (&Nat::one() + &(m.mod_mul(&pk.n_mod, &pk.n_sq))) % &pk.n_sq;
        let r_n = r.mod_pow(&pk.n_mod, &pk.n_sq);
        Ciphertext { value: g_m.mod_mul(&r_n, &pk.n_sq) }
    }

    /// `TEval`: homomorphic linear combination `Σ coeffs_i · m_i`
    /// computed as `Π c_i^{coeff_i} mod N²` — one Straus/Pippenger
    /// multi-exponentiation sharing a single squaring chain across all
    /// terms ([`multi_exp`]), instead of one full ladder per term.
    ///
    /// # Errors
    ///
    /// Returns [`TeError::LengthMismatch`] on malformed input.
    pub fn eval(pk: &PublicKey, cts: &[&Ciphertext], coeffs: &[Int]) -> Result<Ciphertext, TeError> {
        if cts.len() != coeffs.len() || cts.is_empty() {
            return Err(TeError::LengthMismatch { a: cts.len(), b: coeffs.len() });
        }
        let ctx = MontgomeryCtx::new(&pk.n_sq);
        let bases: Vec<Nat> = cts.iter().map(|ct| ct.value.clone()).collect();
        let value = multi_exp::multi_exp(&ctx, &bases, coeffs)?;
        Ok(Ciphertext { value })
    }

    /// Adds a public constant to the plaintext: `c · (1+N)^m`.
    pub fn add_plain(pk: &PublicKey, ct: &Ciphertext, m: &Nat) -> Ciphertext {
        let g_m = (&Nat::one() + &(m.mod_mul(&pk.n_mod, &pk.n_sq))) % &pk.n_sq;
        Ciphertext { value: ct.value.mod_mul(&g_m, &pk.n_sq) }
    }

    /// `TPDec`: `d_i = c^{2Δ·s_i} mod N²`.
    pub fn partial_decrypt(pk: &PublicKey, share: &KeyShare, ct: &Ciphertext) -> PartialDec {
        let exp = share.value.mul_nat(&(&pk.delta * &Nat::from(2u64)));
        PartialDec { party: share.party, value: pow_signed(&ct.value, &exp, &pk.n_sq) }
    }

    /// `TPDec` over a batch of ciphertexts: computes the (large) shared
    /// exponent `2Δ·s_i`, its sign, its window decomposition, and the
    /// Montgomery context for `N²` once, then drives every ciphertext
    /// through [`multi_exp::fixed_exponent_powers`] (shared digit
    /// schedule + dedicated Montgomery squaring).
    pub fn partial_decrypt_batch(
        pk: &PublicKey,
        share: &KeyShare,
        cts: &[Ciphertext],
    ) -> Vec<PartialDec> {
        let exp = share.value.mul_nat(&(&pk.delta * &Nat::from(2u64)));
        let ctx = MontgomeryCtx::new(&pk.n_sq);
        // Resolve the exponent's sign once for the whole batch: a
        // negative share exponentiates the ciphertext *inverses*.
        let bases: Vec<Nat> = match exp.sign() {
            Sign::Zero => return cts.iter().map(|_| PartialDec { party: share.party, value: Nat::one() }).collect(),
            Sign::Positive => cts.iter().map(|ct| ct.value.clone()).collect(),
            Sign::Negative => cts
                .iter()
                .map(|ct| {
                    ct.value
                        .mod_inv(&pk.n_sq)
                        // lint:allow(panic): same contract as `pow_signed` —
                        // ciphertexts live in Z_{N²}^*, so inversion fails
                        // only if N is factored.
                        .expect("partial_decrypt_batch: ciphertext not invertible")
                })
                .collect(),
        };
        multi_exp::fixed_exponent_powers(&ctx, &bases, exp.magnitude())
            .into_iter()
            .map(|value| PartialDec { party: share.party, value })
            .collect()
    }

    /// `TDec`: combines at least `t+1` partial decryptions produced by
    /// shares at the given `scale`.
    ///
    /// # Errors
    ///
    /// - [`TeError::NotEnoughPartials`] with fewer than `t+1`.
    /// - [`TeError::BadParty`] on duplicates / out-of-range.
    /// - [`TeError::MalformedCiphertext`] if the combination does not
    ///   land in the `1 + kN` subgroup (some partial was wrong).
    pub fn combine(
        pk: &PublicKey,
        partials: &[PartialDec],
        scale: &Nat,
    ) -> Result<Nat, TeError> {
        let ctx = MontgomeryCtx::new(&pk.n_sq);
        let inv = Self::combine_scale_inv(pk, scale)?;
        Self::combine_inner(pk, &ctx, partials, None, &inv)
    }

    /// `TDec` over a batch of partial-decryption sets (one set per
    /// ciphertext of an epoch, each holding ≥ `t+1` partials).
    ///
    /// Amortizes across the batch everything `combine` recomputes per
    /// call: the Montgomery context for `N²`, the inverse of
    /// `4Δ²·scale`, and — whenever consecutive sets list the same
    /// parties in the same order, the common case for an epoch's
    /// decryption committee — the `Δ`-scaled Lagrange exponents
    /// `2μ_j`. Each set then costs one Straus multi-exponentiation.
    ///
    /// # Errors
    ///
    /// Same per-set errors as [`Self::combine`].
    pub fn combine_batch(
        pk: &PublicKey,
        partial_sets: &[Vec<PartialDec>],
        scale: &Nat,
    ) -> Result<Vec<Nat>, TeError> {
        let ctx = MontgomeryCtx::new(&pk.n_sq);
        let inv = Self::combine_scale_inv(pk, scale)?;
        let mut cached: Option<(Vec<u64>, Vec<Int>)> = None;
        let mut out = Vec::with_capacity(partial_sets.len());
        for partials in partial_sets {
            let need = pk.threshold + 1;
            if partials.len() >= need {
                let points: Vec<u64> =
                    partials[..need].iter().map(|p| p.party as u64 + 1).collect();
                let reuse = cached.as_ref().is_some_and(|(pts, _)| *pts == points);
                if !reuse {
                    let exps: Vec<Int> = (0..need)
                        .map(|j| &delta_lagrange_at_zero(&pk.delta, &points, j) * &Int::from(2i64))
                        .collect();
                    cached = Some((points, exps));
                }
            }
            let exps = cached.as_ref().map(|(_, e)| e.as_slice());
            out.push(Self::combine_inner(pk, &ctx, partials, exps, &inv)?);
        }
        Ok(out)
    }

    /// `(4Δ²·scale)^{-1} mod N` — the final unscaling factor shared by
    /// every combine of an epoch.
    fn combine_scale_inv(pk: &PublicKey, scale: &Nat) -> Result<Nat, TeError> {
        let four_delta_sq =
            (&(&pk.delta * &pk.delta) * &Nat::from(4u64)).mod_mul(scale, &pk.n_mod);
        four_delta_sq.mod_inv(&pk.n_mod).ok_or(TeError::MalformedCiphertext)
    }

    /// Validates one partial set and combines it. `cached_exps`, when
    /// given, must be the `2μ_j` exponents for exactly this set's first
    /// `t+1` party points (the caller checks).
    fn combine_inner(
        pk: &PublicKey,
        ctx: &MontgomeryCtx,
        partials: &[PartialDec],
        cached_exps: Option<&[Int]>,
        scale_inv: &Nat,
    ) -> Result<Nat, TeError> {
        let need = pk.threshold + 1;
        if partials.len() < need {
            return Err(TeError::NotEnoughPartials { got: partials.len(), need });
        }
        let mut seen = vec![false; pk.parties];
        for p in partials {
            if p.party >= pk.parties || seen[p.party] {
                return Err(TeError::BadParty(p.party));
            }
            seen[p.party] = true;
        }
        let subset = &partials[..need];
        let owned_exps: Vec<Int>;
        let exps: &[Int] = match cached_exps {
            Some(e) => e,
            None => {
                let points: Vec<u64> = subset.iter().map(|p| p.party as u64 + 1).collect();
                owned_exps = (0..need)
                    .map(|j| &delta_lagrange_at_zero(&pk.delta, &points, j) * &Int::from(2i64))
                    .collect();
                &owned_exps
            }
        };
        // acc = Π dⱼ^{2μⱼ} = (1+N)^{4Δ²·scale·m} in one multi-exp.
        let bases: Vec<Nat> = subset.iter().map(|p| p.value.clone()).collect();
        let acc = multi_exp::multi_exp(ctx, &bases, exps)?;
        // Recover via L(u) = (u−1)/N.
        let minus_one = acc.checked_sub(&Nat::one()).ok_or(TeError::MalformedCiphertext)?;
        let (l, rem) = minus_one.div_rem(&pk.n_mod);
        if !rem.is_zero() {
            return Err(TeError::MalformedCiphertext);
        }
        Ok(l.mod_mul(scale_inv, &pk.n_mod))
    }

    /// Verifies a partial decryption against the verification keys via
    /// the DLEQ NIZK. See [`nizk::PdecProof`].
    pub fn partial_is_valid(
        pk: &PublicKey,
        ct: &Ciphertext,
        pd: &PartialDec,
        proof: &nizk::PdecProof,
    ) -> bool {
        nizk::verify_pdec(pk, ct, pd, proof)
    }

    /// `TKRes`: deals a degree-`t` integer sub-sharing of `Δ·s_i` with
    /// verification values.
    pub fn reshare<R: Rng + ?Sized>(
        rng: &mut R,
        pk: &PublicKey,
        share: &KeyShare,
    ) -> ReshareMsg {
        // Coefficient bound: statistically hides Δ·s_i at each point.
        let bound = &(&pk.n_sq * &pk.delta) << 64;
        let mut coeffs: Vec<Int> = vec![share.value.mul_nat(&pk.delta)];
        for _ in 0..pk.threshold {
            coeffs.push(Int::from_nat(Nat::random_below(rng, &bound)));
        }
        let commitments = coeffs.iter().map(|b| pow_signed(&pk.v, b, &pk.n_sq)).collect();
        let subshares = (0..pk.parties).map(|j| poly_eval_int(&coeffs, j as u64 + 1)).collect();
        ReshareMsg { from: share.party, commitments, subshares }
    }

    /// `TKRes` for a whole committee handover: every member of `shares`
    /// deals its sub-sharing, with one fixed-base table for the
    /// verification base `v` shared across all `(t+1)·|shares|`
    /// commitments.
    ///
    /// Draws randomness in the same order as sequential [`Self::reshare`]
    /// calls, so under the same RNG stream the messages are identical.
    pub fn reshare_batch<R: Rng + ?Sized>(
        rng: &mut R,
        pk: &PublicKey,
        shares: &[KeyShare],
    ) -> Vec<ReshareMsg> {
        let bound = &(&pk.n_sq * &pk.delta) << 64;
        // The constant term Δ·s_i can outgrow the random coefficients
        // after repeated handovers (scale grows by Δ² each time); size
        // the table generously and let `pow` fall back beyond it.
        let exp_bits = bound.bit_len()
            + shares.iter().map(|s| s.value.magnitude().bit_len()).max().unwrap_or(0);
        let v_table = FixedBaseTable::new(&pk.v, &pk.n_sq, exp_bits);
        shares
            .iter()
            .map(|share| {
                let mut coeffs: Vec<Int> = vec![share.value.mul_nat(&pk.delta)];
                for _ in 0..pk.threshold {
                    coeffs.push(Int::from_nat(Nat::random_below(rng, &bound)));
                }
                let commitments = coeffs.iter().map(|b| v_table.pow_signed(b)).collect();
                let subshares =
                    (0..pk.parties).map(|j| poly_eval_int(&coeffs, j as u64 + 1)).collect();
                ReshareMsg { from: share.party, commitments, subshares }
            })
            .collect()
    }

    /// Verifies the Feldman-style consistency of a subshare received
    /// from a re-share message: `v^{subshare} == Π V_l^{x^l}` and
    /// `V_0 == vk_from` (the constant term is really `Δ·s_i`).
    pub fn reshare_subshare_is_valid(pk: &PublicKey, msg: &ReshareMsg, recipient: usize) -> bool {
        if msg.from >= pk.parties
            || msg.commitments.len() != pk.threshold + 1
            || msg.subshares.len() != pk.parties
            || recipient >= pk.parties
            || msg.commitments[0] != pk.vks[msg.from]
        {
            return false;
        }
        // Π V_l^{x^l} as one Straus multi-exp over the shared context.
        let ctx = MontgomeryCtx::new(&pk.n_sq);
        let x = Nat::from(recipient as u64 + 1);
        let mut xps = Vec::with_capacity(msg.commitments.len());
        let mut xp = Nat::one();
        for _ in &msg.commitments {
            xps.push(xp.clone());
            xp = &xp * &x;
        }
        let Ok(expected) = multi_exp::multi_exp_nat(&ctx, &msg.commitments, &xps) else {
            return false;
        };
        pow_signed(&pk.v, &msg.subshares[recipient], &pk.n_sq) == expected
    }

    /// `TKRec`: combines the subshares addressed to `recipient` from
    /// `t+1` re-share messages into a fresh key share. The new share's
    /// `scale` is the old scale times `Δ²`.
    ///
    /// # Errors
    ///
    /// - [`TeError::NotEnoughPartials`] with fewer than `t+1` messages.
    /// - [`TeError::BadParty`] on duplicate providers.
    pub fn recombine_key(
        pk: &PublicKey,
        recipient: usize,
        msgs: &[&ReshareMsg],
        old_scale: &Nat,
    ) -> Result<KeyShare, TeError> {
        let need = pk.threshold + 1;
        if msgs.len() < need {
            return Err(TeError::NotEnoughPartials { got: msgs.len(), need });
        }
        let head = &msgs[..need];
        let points: Vec<u64> = head.iter().map(|m| m.from as u64 + 1).collect();
        let mut seen = std::collections::HashSet::new();
        for &p in &points {
            if !seen.insert(p) {
                return Err(TeError::BadParty(p as usize - 1));
            }
        }
        let mut value = Int::zero();
        for (j, msg) in head.iter().enumerate() {
            let mu = delta_lagrange_at_zero(&pk.delta, &points, j);
            value = &value + &(&mu * &msg.subshares[recipient]);
        }
        let scale = &(&pk.delta * &pk.delta) * old_scale;
        Ok(KeyShare { party: recipient, value, scale })
    }

    /// Derives the next committee's verification keys from `t+1`
    /// verified re-share messages — a public computation.
    ///
    /// # Errors
    ///
    /// Returns [`TeError::NotEnoughPartials`] with fewer than `t+1`.
    pub fn next_verification_keys(
        pk: &PublicKey,
        msgs: &[&ReshareMsg],
    ) -> Result<Vec<Nat>, TeError> {
        let need = pk.threshold + 1;
        if msgs.len() < need {
            return Err(TeError::NotEnoughPartials { got: msgs.len(), need });
        }
        let head = &msgs[..need];
        let points: Vec<u64> = head.iter().map(|m| m.from as u64 + 1).collect();
        let ctx = MontgomeryCtx::new(&pk.n_sq);
        let outer_exps: Vec<Int> = (0..need)
            .map(|i| delta_lagrange_at_zero(&pk.delta, &points, i).mul_nat(&pk.delta))
            .collect();
        let mut vks = Vec::with_capacity(pk.parties);
        for j in 0..pk.parties {
            // v^{Δ·s'_j} = Π_i ( Π_l V_{i,l}^{(j+1)^l} )^{Δ·μ_i}
            // where s'_j = Σ μ_i·g_i(j+1); note the extra Δ: the new vks
            // correspond to the new shares at their own scale. Both the
            // inner Feldman evaluations and the outer Lagrange product
            // are Straus multi-exps over the shared context.
            let x = Nat::from(j as u64 + 1);
            let mut inners = Vec::with_capacity(need);
            for msg in head {
                let mut xps = Vec::with_capacity(msg.commitments.len());
                let mut xp = Nat::one();
                for _ in &msg.commitments {
                    xps.push(xp.clone());
                    xp = &xp * &x;
                }
                inners.push(multi_exp::multi_exp_nat(&ctx, &msg.commitments, &xps)?);
            }
            vks.push(multi_exp::multi_exp(&ctx, &inners, &outer_exps)?);
        }
        Ok(vks)
    }

    /// Test helper: decrypts with the first `t+1` shares.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::combine`] errors.
    pub fn decrypt_with_shares(
        pk: &PublicKey,
        ct: &Ciphertext,
        shares: &[KeyShare],
    ) -> Result<Nat, TeError> {
        let partials: Vec<PartialDec> = shares
            .iter()
            .take(pk.threshold + 1)
            .map(|s| Self::partial_decrypt(pk, s, ct))
            .collect();
        let scale = shares.first().map(|s| s.scale.clone()).unwrap_or_else(Nat::one);
        Self::combine(pk, &partials, &scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const BITS: usize = 128; // small primes: fast tests, same algebra

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2024)
    }

    fn setup(n: usize, t: usize) -> (PublicKey, Vec<KeyShare>, rand::rngs::StdRng) {
        let mut r = rng();
        let (pk, shares) = ThresholdPaillier::keygen(&mut r, BITS, n, t).unwrap();
        (pk, shares, r)
    }

    #[test]
    fn keygen_validates() {
        let mut r = rng();
        assert!(ThresholdPaillier::keygen(&mut r, BITS, 3, 3).is_err());
        assert!(ThresholdPaillier::keygen(&mut r, BITS, 0, 0).is_err());
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (pk, shares, mut r) = setup(4, 1);
        for m in [Nat::zero(), Nat::one(), Nat::from(123_456_789u64)] {
            let (ct, _) = ThresholdPaillier::encrypt(&mut r, &pk, &m);
            let got = ThresholdPaillier::decrypt_with_shares(&pk, &ct, &shares).unwrap();
            assert_eq!(got, m);
        }
    }

    #[test]
    fn large_plaintext_near_modulus() {
        let (pk, shares, mut r) = setup(3, 1);
        let m = &pk.n_mod - &Nat::from(7u64);
        let (ct, _) = ThresholdPaillier::encrypt(&mut r, &pk, &m);
        assert_eq!(ThresholdPaillier::decrypt_with_shares(&pk, &ct, &shares).unwrap(), m);
    }

    #[test]
    fn any_subset_decrypts() {
        let (pk, shares, mut r) = setup(5, 2);
        let m = Nat::from(424_242u64);
        let (ct, _) = ThresholdPaillier::encrypt(&mut r, &pk, &m);
        for subset in [[0usize, 1, 2], [2, 3, 4], [0, 2, 4]] {
            let partials: Vec<_> = subset
                .iter()
                .map(|&i| ThresholdPaillier::partial_decrypt(&pk, &shares[i], &ct))
                .collect();
            assert_eq!(ThresholdPaillier::combine(&pk, &partials, &Nat::one()).unwrap(), m);
        }
    }

    #[test]
    fn too_few_partials_rejected() {
        let (pk, shares, mut r) = setup(5, 2);
        let (ct, _) = ThresholdPaillier::encrypt(&mut r, &pk, &Nat::one());
        let partials: Vec<_> = shares[..2]
            .iter()
            .map(|s| ThresholdPaillier::partial_decrypt(&pk, s, &ct))
            .collect();
        assert!(matches!(
            ThresholdPaillier::combine(&pk, &partials, &Nat::one()),
            Err(TeError::NotEnoughPartials { got: 2, need: 3 })
        ));
    }

    #[test]
    fn homomorphic_linear_combination() {
        let (pk, shares, mut r) = setup(3, 1);
        let m1 = Nat::from(100u64);
        let m2 = Nat::from(23u64);
        let (c1, _) = ThresholdPaillier::encrypt(&mut r, &pk, &m1);
        let (c2, _) = ThresholdPaillier::encrypt(&mut r, &pk, &m2);
        // 3·m1 − 2·m2 = 254 (mod N).
        let combo =
            ThresholdPaillier::eval(&pk, &[&c1, &c2], &[Int::from(3i64), Int::from(-2i64)])
                .unwrap();
        let got = ThresholdPaillier::decrypt_with_shares(&pk, &combo, &shares).unwrap();
        assert_eq!(got, Nat::from(254u64));
    }

    #[test]
    fn add_plain_works() {
        let (pk, shares, mut r) = setup(3, 1);
        let (ct, _) = ThresholdPaillier::encrypt(&mut r, &pk, &Nat::from(5u64));
        let shifted = ThresholdPaillier::add_plain(&pk, &ct, &Nat::from(37u64));
        assert_eq!(
            ThresholdPaillier::decrypt_with_shares(&pk, &shifted, &shares).unwrap(),
            Nat::from(42u64)
        );
    }

    #[test]
    fn reshare_preserves_key() {
        let (pk, shares, mut r) = setup(4, 1);
        let msgs: Vec<_> =
            shares.iter().map(|s| ThresholdPaillier::reshare(&mut r, &pk, s)).collect();
        for (i, m) in msgs.iter().enumerate() {
            for j in 0..4 {
                assert!(
                    ThresholdPaillier::reshare_subshare_is_valid(&pk, m, j),
                    "msg {i} recipient {j}"
                );
            }
        }
        let chosen: Vec<&ReshareMsg> = vec![&msgs[1], &msgs[3]];
        let new_shares: Vec<_> = (0..4)
            .map(|j| ThresholdPaillier::recombine_key(&pk, j, &chosen, &Nat::one()).unwrap())
            .collect();
        // New shares decrypt ciphertexts produced under the same pk.
        let m = Nat::from(777u64);
        let (ct, _) = ThresholdPaillier::encrypt(&mut r, &pk, &m);
        let got = ThresholdPaillier::decrypt_with_shares(&pk, &ct, &new_shares).unwrap();
        assert_eq!(got, m);
    }

    #[test]
    fn reshare_tampering_detected() {
        let (pk, shares, mut r) = setup(3, 1);
        let mut msg = ThresholdPaillier::reshare(&mut r, &pk, &shares[0]);
        assert!(ThresholdPaillier::reshare_subshare_is_valid(&pk, &msg, 1));
        msg.subshares[1] = &msg.subshares[1] + &Int::one();
        assert!(!ThresholdPaillier::reshare_subshare_is_valid(&pk, &msg, 1));
    }

    #[test]
    fn partial_decrypt_batch_matches_single() {
        let (pk, shares, mut r) = setup(4, 1);
        let cts: Vec<Ciphertext> = (0..5u64)
            .map(|m| ThresholdPaillier::encrypt(&mut r, &pk, &Nat::from(m)).0)
            .collect();
        for share in &shares {
            let batch = ThresholdPaillier::partial_decrypt_batch(&pk, share, &cts);
            for (ct, pd) in cts.iter().zip(&batch) {
                assert_eq!(pd, &ThresholdPaillier::partial_decrypt(&pk, share, ct));
            }
        }
    }

    #[test]
    fn reshare_batch_matches_sequential() {
        let (pk, shares, r) = setup(4, 1);
        let mut r_a = r.clone();
        let mut r_b = r;
        let batch = ThresholdPaillier::reshare_batch(&mut r_a, &pk, &shares);
        for (share, msg) in shares.iter().zip(&batch) {
            assert_eq!(msg, &ThresholdPaillier::reshare(&mut r_b, &pk, share));
        }
        // And the batched messages drive a full handover.
        let chosen: Vec<&ReshareMsg> = vec![&batch[0], &batch[2]];
        let new_shares: Vec<_> = (0..4)
            .map(|j| ThresholdPaillier::recombine_key(&pk, j, &chosen, &Nat::one()).unwrap())
            .collect();
        let m = Nat::from(31_337u64);
        let (ct, _) = ThresholdPaillier::encrypt(&mut r_a, &pk, &m);
        assert_eq!(ThresholdPaillier::decrypt_with_shares(&pk, &ct, &new_shares).unwrap(), m);
    }

    #[test]
    fn delta_lagrange_interpolates_integer_polynomials() {
        // f(x) = 7 + 3x + 2x², nodes {1, 2, 3}: Δ·f(0) = Σ μ_j f(x_j).
        let delta = Nat::factorial(5);
        let points = [1u64, 2, 3];
        let f = |x: i64| Int::from(7 + 3 * x + 2 * x * x);
        let mut acc = Int::zero();
        for j in 0..3 {
            let mu = delta_lagrange_at_zero(&delta, &points, j);
            acc = &acc + &(&mu * &f(points[j] as i64));
        }
        assert_eq!(acc, Int::from(7i64).mul_nat(&delta));
    }

    #[test]
    fn debug_output_redacts_key_material() {
        let (pk, shares, mut r) = setup(3, 1);
        let rendered = format!("{:?}", shares[0]);
        assert!(rendered.contains("redacted"), "{rendered}");
        // The share value has >= 128 bits, so its decimal rendering is
        // far too long to appear by coincidence.
        let digits = format!("{}", shares[0].value.magnitude());
        assert!(!rendered.contains(&digits), "Debug leaks the share value: {rendered}");

        let msg = ThresholdPaillier::reshare(&mut r, &pk, &shares[0]);
        let rendered = format!("{:?}", msg);
        assert!(rendered.contains("redacted"), "{rendered}");
        for sub in &msg.subshares {
            let digits = format!("{}", sub.magnitude());
            assert!(!rendered.contains(&digits), "Debug leaks a subshare: {rendered}");
        }
    }
}
