//! Fixed-base windowed exponentiation and batched encryption.
//!
//! Threshold Paillier spends almost all of its time exponentiating a
//! *fixed* base: `r^N mod N²` during encryption, `v^{b_l} mod N²` when
//! committing to re-sharing polynomials, `c^{2Δ·s_i}` across a batch of
//! ciphertexts. When the base is known up front, the per-exponentiation
//! squarings of a square-and-multiply ladder can be traded for a
//! one-time table of precomputed powers:
//!
//! `tables[w][d-1] = base^(d · 2^(WINDOW·w)) mod m` (Montgomery form),
//!
//! after which `base^e` costs one Montgomery multiply per non-zero
//! `WINDOW`-bit digit of `e` — no squarings at all. For the ~512-bit
//! exponents of the test parameters that is roughly a 4–5× reduction in
//! multiplies per exponentiation once the table cost is amortized over
//! a committee epoch.
//!
//! [`EncryptionContext`] applies this to `TEnc`. The textbook
//! `c = (1+N)^m · r^N` has a *variable* base `r`; we instead sample
//! `r = ρ^s mod N` for a fixed generator `ρ` and uniform exponent `s`,
//! using the identity
//!
//! `(x mod N)^N ≡ x^N (mod N²)`
//!
//! (expand `x = qN + x₀` binomially: every cross term carries `N²`), so
//! `r^N ≡ (ρ^N)^s (mod N²)`. Both `ρ^s mod N` (the randomness handed to
//! the NIZK prover) and `h^s mod N²` for `h = ρ^N mod N²` are then
//! fixed-base powers. The randomness ranges over the subgroup `⟨ρ⟩` of
//! `Z_N^*` rather than all of it; under the DCR assumption the
//! resulting ciphertext distribution is computationally
//! indistinguishable from textbook Paillier (this is the standard
//! "Paillier with precomputation" optimization).

use rand::Rng;

use yoso_bignum::{Int, MontgomeryCtx, Nat, Sign};

use super::{Ciphertext, PublicKey};

/// Window width in bits. 4 matches the radix used by
/// [`MontgomeryCtx::mod_pow`] and keeps each table level at 15 entries.
const WINDOW: usize = 4;

/// Precomputed powers of a fixed base modulo a fixed odd modulus.
///
/// Covers exponents up to `max_exp_bits` bits; larger exponents fall
/// back to plain windowed exponentiation (still Montgomery-based), so
/// [`FixedBaseTable::pow`] is always correct, just fastest in-range.
#[derive(Debug, Clone)]
pub struct FixedBaseTable {
    ctx: MontgomeryCtx,
    base: Nat,
    /// `tables[w][d-1] = base^(d·2^(WINDOW·w))` in Montgomery form,
    /// for `d` in `1..2^WINDOW`.
    tables: Vec<Vec<Nat>>,
    max_exp_bits: usize,
    /// Montgomery form of 1 (the neutral accumulator seed).
    one_m: Nat,
}

impl FixedBaseTable {
    /// Builds the table for `base` modulo `modulus`, covering exponents
    /// of up to `max_exp_bits` bits.
    ///
    /// Cost: `ceil(max_exp_bits / 4)` levels × (15 multiplies + 4
    /// squarings). Amortizes after a handful of exponentiations.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is even or `< 3` (Montgomery requirement).
    pub fn new(base: &Nat, modulus: &Nat, max_exp_bits: usize) -> Self {
        let ctx = MontgomeryCtx::new(modulus);
        let base = base % modulus;
        let one_m = ctx.to_mont(&Nat::one());
        let levels = max_exp_bits.div_ceil(WINDOW).max(1);
        let mut tables = Vec::with_capacity(levels);
        // level_base = base^(2^(WINDOW·w)) in Montgomery form.
        let mut level_base = ctx.to_mont(&base);
        for _ in 0..levels {
            let mut level = Vec::with_capacity((1 << WINDOW) - 1);
            level.push(level_base.clone());
            for d in 1..(1 << WINDOW) - 1 {
                let prev: &Nat = &level[d - 1];
                level.push(ctx.mont_mul(prev, &level_base));
            }
            // Advance to the next window: WINDOW squarings.
            for _ in 0..WINDOW {
                level_base = ctx.mont_mul(&level_base, &level_base);
            }
            tables.push(level);
        }
        FixedBaseTable { ctx, base, tables, max_exp_bits, one_m }
    }

    /// The modulus the table reduces by.
    pub fn modulus(&self) -> &Nat {
        self.ctx.modulus()
    }

    /// The (reduced) base the table raises.
    pub fn base(&self) -> &Nat {
        &self.base
    }

    /// The largest exponent bit-length served from the table.
    pub fn max_exp_bits(&self) -> usize {
        self.max_exp_bits
    }

    /// `base^e mod modulus`.
    ///
    /// One Montgomery multiply per non-zero 4-bit digit of `e` while
    /// `e` fits in [`Self::max_exp_bits`]; plain windowed
    /// exponentiation beyond that.
    pub fn pow(&self, e: &Nat) -> Nat {
        let bits = e.bit_len();
        if bits > self.max_exp_bits {
            return self.ctx.mod_pow(&self.base, e);
        }
        let mut acc = self.one_m.clone();
        for (w, level) in self.tables.iter().enumerate() {
            let lo = w * WINDOW;
            if lo >= bits {
                break;
            }
            let mut digit = 0usize;
            for b in (0..WINDOW).rev() {
                digit <<= 1;
                let idx = lo + b;
                if idx < bits && e.bit(idx) {
                    digit |= 1;
                }
            }
            if digit != 0 {
                acc = self.ctx.mont_mul(&acc, &level[digit - 1]);
            }
        }
        self.ctx.from_mont(&acc)
    }

    /// `base^e mod modulus` for a signed exponent (negative exponents
    /// invert the result).
    ///
    /// # Panics
    ///
    /// Panics if `e` is negative and `base` is not invertible.
    pub fn pow_signed(&self, e: &Int) -> Nat {
        match e.sign() {
            Sign::Zero => Nat::one(),
            Sign::Positive => self.pow(e.magnitude()),
            Sign::Negative => self
                .pow(e.magnitude())
                .mod_inv(self.ctx.modulus())
                // lint:allow(panic): documented `# Panics` contract — the
                // table base lives in Z_{N²}^*, so inversion fails only
                // if N has been factored.
                .expect("fixed-base pow_signed: base not invertible"),
        }
    }
}

/// Per-epoch encryption context: fixed-base tables that amortize the
/// `r^N mod N²` exponentiation across every encryption a committee
/// performs under one public key.
///
/// Sampled once per epoch (the generator `ρ` is secret to no one — it
/// can even be published; the per-ciphertext secret is the exponent
/// `s`). Produces `(Ciphertext, r)` pairs interchangeable with
/// [`super::ThresholdPaillier::encrypt`]: the returned `r = ρ^s mod N`
/// is valid NIZK randomness for [`super::nizk::prove_enc`].
#[derive(Debug, Clone)]
pub struct EncryptionContext {
    /// `ρ^s mod N` table — recovers the randomness for the prover.
    rho_table: FixedBaseTable,
    /// `h^s mod N²` table for `h = ρ^N mod N²`; equals `r^N mod N²`.
    h_table: FixedBaseTable,
}

impl EncryptionContext {
    /// Samples a fresh generator `ρ ∈ Z_N^*` and precomputes both
    /// tables.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, pk: &PublicKey) -> Self {
        let rho = loop {
            let cand = Nat::random_below(rng, &pk.n_mod);
            if !cand.is_zero() && cand.gcd(&pk.n_mod).is_one() {
                break cand;
            }
        };
        Self::with_generator(pk, &rho)
    }

    /// Builds the context from a caller-chosen generator `ρ` (must be
    /// coprime to `N`).
    pub fn with_generator(pk: &PublicKey, rho: &Nat) -> Self {
        let h = rho.mod_pow(&pk.n_mod, &pk.n_sq);
        let exp_bits = pk.n_mod.bit_len();
        EncryptionContext {
            rho_table: FixedBaseTable::new(rho, &pk.n_mod, exp_bits),
            h_table: FixedBaseTable::new(&h, &pk.n_sq, exp_bits),
        }
    }

    /// `TEnc` via the tables: encrypts `m ∈ [0, N)`, returning the
    /// ciphertext and the randomness `r = ρ^s mod N`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= N` or the context was built for a different key.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        pk: &PublicKey,
        m: &Nat,
    ) -> (Ciphertext, Nat) {
        assert!(m < &pk.n_mod, "plaintext out of range");
        assert_eq!(self.h_table.modulus(), &pk.n_sq, "context built for a different key");
        let s = Nat::random_below(rng, &pk.n_mod);
        let r = self.rho_table.pow(&s);
        // (1+N)^m = 1 + mN (mod N²); r^N = (ρ^N)^s by the mod-N² lift.
        let g_m = (&Nat::one() + &(m.mod_mul(&pk.n_mod, &pk.n_sq))) % &pk.n_sq;
        let r_n = self.h_table.pow(&s);
        (Ciphertext { value: g_m.mod_mul(&r_n, &pk.n_sq) }, r)
    }

    /// Encrypts a batch of plaintexts, amortizing the table cost.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::encrypt`], per element.
    pub fn encrypt_batch<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        pk: &PublicKey,
        ms: &[Nat],
    ) -> Vec<(Ciphertext, Nat)> {
        ms.iter().map(|m| self.encrypt(rng, pk, m)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paillier::{nizk, ThresholdPaillier};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn table_pow_matches_mod_pow() {
        let mut r = rng(7);
        let m = yoso_bignum::prime::generate_prime(&mut r, 96);
        let base = Nat::random_below(&mut r, &m);
        let table = FixedBaseTable::new(&base, &m, 128);
        for _ in 0..40 {
            let e = Nat::random_bits(&mut r, 128);
            assert_eq!(table.pow(&e), base.mod_pow(&e, &m));
        }
        // Edge exponents.
        assert_eq!(table.pow(&Nat::zero()), Nat::one());
        assert_eq!(table.pow(&Nat::one()), &base % &m);
    }

    #[test]
    fn oversized_exponent_falls_back() {
        let mut r = rng(8);
        let m = yoso_bignum::prime::generate_prime(&mut r, 96);
        let base = Nat::random_below(&mut r, &m);
        let table = FixedBaseTable::new(&base, &m, 64);
        let e = Nat::random_bits(&mut r, 300);
        assert_eq!(table.pow(&e), base.mod_pow(&e, &m));
    }

    #[test]
    fn pow_signed_matches_reference() {
        let mut r = rng(9);
        let m = yoso_bignum::prime::generate_prime(&mut r, 96);
        let base = Nat::random_below(&mut r, &m);
        let table = FixedBaseTable::new(&base, &m, 128);
        for sign in [1i64, -1] {
            let e = Int::from(sign).mul_nat(&Nat::random_bits(&mut r, 100));
            assert_eq!(table.pow_signed(&e), crate::paillier::pow_signed(&base, &e, &m));
        }
        assert_eq!(table.pow_signed(&Int::zero()), Nat::one());
    }

    #[test]
    fn context_encryptions_decrypt() {
        let mut r = rng(2024);
        let (pk, shares) = ThresholdPaillier::keygen(&mut r, 128, 4, 1).unwrap();
        let ctx = EncryptionContext::new(&mut r, &pk);
        let ms =
            [Nat::zero(), Nat::one(), Nat::from(123_456_789u64), &pk.n_mod - &Nat::from(3u64)];
        for (m, (ct, _)) in ms.iter().zip(ctx.encrypt_batch(&mut r, &pk, &ms)) {
            assert_eq!(&ThresholdPaillier::decrypt_with_shares(&pk, &ct, &shares).unwrap(), m);
        }
    }

    #[test]
    fn context_randomness_is_consistent() {
        // The (ct, r) pair must satisfy ct == encrypt_with(m, r): the
        // fixed-base path is a drop-in for the variable-base one.
        let mut r = rng(11);
        let (pk, _) = ThresholdPaillier::keygen(&mut r, 128, 3, 1).unwrap();
        let ctx = EncryptionContext::new(&mut r, &pk);
        let m = Nat::from(77_777u64);
        let (ct, rand) = ctx.encrypt(&mut r, &pk, &m);
        assert_eq!(ThresholdPaillier::encrypt_with(&pk, &m, &rand), ct);
    }

    #[test]
    fn context_randomness_proves_in_nizk() {
        let mut r = rng(12);
        let (pk, _) = ThresholdPaillier::keygen(&mut r, 128, 3, 1).unwrap();
        let ctx = EncryptionContext::new(&mut r, &pk);
        let m = Nat::from(42u64);
        let (ct, rand) = ctx.encrypt(&mut r, &pk, &m);
        let proof = nizk::prove_enc(&mut r, &pk, &ct, &m, &rand);
        assert!(nizk::verify_enc(&pk, &ct, &proof));
    }
}
