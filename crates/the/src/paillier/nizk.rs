//! Sigma-protocol NIZKs for threshold Paillier (Fiat–Shamir).
//!
//! Two proofs are needed by the CDN-style offline phase:
//!
//! - [`EncProof`]: knowledge of `(m, r)` with
//!   `c = (1+N)^m · r^N mod N²` (a valid encryption, and the prover
//!   knows the plaintext). Statistical honest-verifier ZK via integer
//!   masking.
//! - [`PdecProof`]: correctness of a partial decryption — a
//!   discrete-log-equality proof that
//!   `log_{c^4}(d_i²) = log_v(v_i) = Δ·s_i` against the public
//!   verification key `v_i`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use yoso_bignum::{Int, MontgomeryCtx, Nat, Sign};
use yoso_crypto::Transcript;

use super::{multi_exp, pow_signed, Ciphertext, KeyShare, PartialDec, PublicKey};

const DOMAIN_ENC: &[u8] = b"yoso-pss/paillier/enc/v1";
const DOMAIN_PDEC: &[u8] = b"yoso-pss/paillier/pdec/v1";

/// Challenge bit-length (statistical soundness `2^{-64}`).
const CHALLENGE_BITS: usize = 64;
/// Extra masking bits for statistical zero-knowledge.
const MASK_BITS: usize = 80;

/// Proof of knowledge of plaintext and randomness for a Paillier
/// ciphertext.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncProof {
    /// Commitment `A = (1+N)^x · u^N mod N²`.
    pub a: Nat,
    /// Response `z_m = x + e·m` over the integers.
    pub z_m: Nat,
    /// Response `z_r = u · r^e mod N²`.
    pub z_r: Nat,
}

impl EncProof {
    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.a.to_bytes_be().len() + self.z_m.to_bytes_be().len() + self.z_r.to_bytes_be().len()
    }
}

fn enc_challenge(pk: &PublicKey, ct: &Ciphertext, a: &Nat) -> Nat {
    let mut t = Transcript::new(DOMAIN_ENC);
    t.absorb_nat(b"N", &pk.n_mod);
    t.absorb_nat(b"c", &ct.value);
    t.absorb_nat(b"A", a);
    t.challenge_nat(b"e", &(Nat::one() << CHALLENGE_BITS))
}

/// Proves knowledge of `(m, r)` for `ct = Enc(m; r)`.
pub fn prove_enc<R: Rng + ?Sized>(
    rng: &mut R,
    pk: &PublicKey,
    ct: &Ciphertext,
    m: &Nat,
    r: &Nat,
) -> EncProof {
    // x masks e·m statistically: e < 2^64, m < N.
    let x_bound = &pk.n_mod << (CHALLENGE_BITS + MASK_BITS);
    let x = Nat::random_below(rng, &x_bound);
    let u = loop {
        let cand = Nat::random_below(rng, &pk.n_mod);
        if !cand.is_zero() && cand.gcd(&pk.n_mod).is_one() {
            break cand;
        }
    };
    // A = (1+N)^x · u^N; (1+N)^x = 1 + (x mod N)·N mod N².
    let g_x = (&Nat::one() + &(x.mod_mul(&pk.n_mod, &pk.n_sq))) % &pk.n_sq;
    let a = g_x.mod_mul(&u.mod_pow(&pk.n_mod, &pk.n_sq), &pk.n_sq);
    let e = enc_challenge(pk, ct, &a);
    let z_m = &x + &(&e * m);
    let z_r = u.mod_mul(&r.mod_pow(&e, &pk.n_sq), &pk.n_sq);
    EncProof { a, z_m, z_r }
}

/// Verifies an [`EncProof`].
pub fn verify_enc(pk: &PublicKey, ct: &Ciphertext, proof: &EncProof) -> bool {
    let e = enc_challenge(pk, ct, &proof.a);
    // (1+N)^{z_m} · z_r^N =? A · c^e  (mod N²).
    let g_zm = (&Nat::one() + &(proof.z_m.mod_mul(&pk.n_mod, &pk.n_sq))) % &pk.n_sq;
    let lhs = g_zm.mod_mul(&proof.z_r.mod_pow(&pk.n_mod, &pk.n_sq), &pk.n_sq);
    let rhs = proof.a.mod_mul(&ct.value.mod_pow(&e, &pk.n_sq), &pk.n_sq);
    lhs == rhs
}

/// Discrete-log-equality proof that a partial decryption used the
/// committed key share: `d_i² = (c⁴)^σ` and `v_i = v^σ` for
/// `σ = Δ·s_i`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PdecProof {
    /// Commitment `A = (c⁴)^ρ`.
    pub a: Nat,
    /// Commitment `B = v^ρ`.
    pub b: Nat,
    /// Response `z = ρ + e·σ` over the integers (signed — shares can
    /// go negative after re-sharing).
    pub z: Int,
}

impl PdecProof {
    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.a.to_bytes_be().len()
            + self.b.to_bytes_be().len()
            + self.z.magnitude().to_bytes_be().len()
            + 1
    }
}

fn pdec_challenge(pk: &PublicKey, ct: &Ciphertext, pd: &PartialDec, a: &Nat, b: &Nat) -> Nat {
    let mut t = Transcript::new(DOMAIN_PDEC);
    t.absorb_nat(b"N", &pk.n_mod);
    t.absorb_nat(b"c", &ct.value);
    t.absorb_u64(b"party", pd.party as u64);
    t.absorb_nat(b"d", &pd.value);
    t.absorb_nat(b"A", a);
    t.absorb_nat(b"B", b);
    t.challenge_nat(b"e", &(Nat::one() << CHALLENGE_BITS))
}

/// Proves that `pd` is the correct partial decryption of `ct` by the
/// holder of `share`.
pub fn prove_pdec<R: Rng + ?Sized>(
    rng: &mut R,
    pk: &PublicKey,
    ct: &Ciphertext,
    share: &KeyShare,
    pd: &PartialDec,
) -> PdecProof {
    let sigma = share.value.mul_nat(&pk.delta);
    // ρ masks e·σ: bound |σ| by its magnitude with statistical slack.
    let sigma_bits = sigma.magnitude().bit_len().max(1);
    let rho_bound = Nat::one() << (sigma_bits + CHALLENGE_BITS + MASK_BITS);
    let rho = Nat::random_below(rng, &rho_bound);
    let c4 = ct.value.mod_pow(&Nat::from(4u64), &pk.n_sq);
    let a = c4.mod_pow(&rho, &pk.n_sq);
    let b = pk.v.mod_pow(&rho, &pk.n_sq);
    let e = pdec_challenge(pk, ct, pd, &a, &b);
    let z = &Int::from_nat(rho) + &sigma.mul_nat(&e);
    PdecProof { a, b, z }
}

/// Verifies a [`PdecProof`] against the verification key of
/// `pd.party`.
pub fn verify_pdec(pk: &PublicKey, ct: &Ciphertext, pd: &PartialDec, proof: &PdecProof) -> bool {
    if pd.party >= pk.vks.len() {
        return false;
    }
    let e = pdec_challenge(pk, ct, pd, &proof.a, &proof.b);
    let c4 = ct.value.mod_pow(&Nat::from(4u64), &pk.n_sq);
    let d_sq = pd.value.mod_mul(&pd.value, &pk.n_sq);
    // (c⁴)^z =? A · (d²)^e  and  v^z =? B · v_i^e.
    let lhs1 = pow_signed(&c4, &proof.z, &pk.n_sq);
    let rhs1 = proof.a.mod_mul(&d_sq.mod_pow(&e, &pk.n_sq), &pk.n_sq);
    if lhs1 != rhs1 {
        return false;
    }
    let lhs2 = pow_signed(&pk.v, &proof.z, &pk.n_sq);
    let rhs2 = proof.b.mod_mul(&pk.vks[pd.party].mod_pow(&e, &pk.n_sq), &pk.n_sq);
    lhs2 == rhs2
}

/// Verifies a batch of [`PdecProof`]s at once via a random linear
/// combination: each item is assigned a fresh nonzero 64-bit scalar
/// `ρ_i` and the two per-item product equalities are checked *once*
/// over the whole batch,
///
/// ```text
/// Π (c_i⁴)^{z_i·ρ_i} == Π A_i^{ρ_i} · (d_i²)^{e_i·ρ_i}
/// v^{Σ z_i·ρ_i}      == Π B_i^{ρ_i} · v_i^{e_i·ρ_i}
/// ```
///
/// each as a single Straus/Pippenger multi-exponentiation sharing one
/// squaring chain ([`multi_exp`]). Negative `z_i` terms move to the
/// other side of their equality instead of inverting bases. A batch
/// with any invalid proof passes with probability ≤ `2^{-64}` (the
/// chance the ρ-combination cancels); an empty batch verifies.
///
/// On `false`, fall back to per-item [`verify_pdec`] to identify the
/// culprits.
pub fn verify_pdec_batch<R: Rng + ?Sized>(
    rng: &mut R,
    pk: &PublicKey,
    items: &[(&Ciphertext, &PartialDec, &PdecProof)],
) -> bool {
    if items.is_empty() {
        return true;
    }
    if items.iter().any(|(_, pd, _)| pd.party >= pk.vks.len()) {
        return false;
    }
    let ctx = MontgomeryCtx::new(&pk.n_sq);
    let mut lhs1_b = Vec::new();
    let mut lhs1_e = Vec::new();
    let mut rhs1_b = Vec::with_capacity(2 * items.len());
    let mut rhs1_e = Vec::with_capacity(2 * items.len());
    let mut rhs2_b = Vec::with_capacity(2 * items.len() + 1);
    let mut rhs2_e = Vec::with_capacity(2 * items.len() + 1);
    // v's merged exponents: Σ|z_i|ρ_i split by the sign of z_i.
    let mut v_pos = Nat::zero();
    let mut v_neg = Nat::zero();
    for (ct, pd, proof) in items {
        let rho = Nat::from(loop {
            let r: u64 = rng.gen();
            if r != 0 {
                break r;
            }
        });
        let e = pdec_challenge(pk, ct, pd, &proof.a, &proof.b);
        let c4 = ct.value.mod_pow(&Nat::from(4u64), &pk.n_sq);
        let d_sq = pd.value.mod_mul(&pd.value, &pk.n_sq);
        let z_rho = proof.z.magnitude() * &rho;
        match proof.z.sign() {
            Sign::Negative => {
                // (c⁴)^{z} with z < 0: move to the RHS product.
                rhs1_b.push(c4);
                rhs1_e.push(z_rho.clone());
                v_neg = &v_neg + &z_rho;
            }
            _ => {
                lhs1_b.push(c4);
                lhs1_e.push(z_rho.clone());
                v_pos = &v_pos + &z_rho;
            }
        }
        rhs1_b.push(proof.a.clone());
        rhs1_e.push(rho.clone());
        rhs1_b.push(d_sq);
        rhs1_e.push(&e * &rho);
        rhs2_b.push(proof.b.clone());
        rhs2_e.push(rho.clone());
        rhs2_b.push(pk.vks[pd.party].clone());
        rhs2_e.push(&e * &rho);
    }
    let (Ok(l1), Ok(r1)) = (
        multi_exp::multi_exp_nat(&ctx, &lhs1_b, &lhs1_e),
        multi_exp::multi_exp_nat(&ctx, &rhs1_b, &rhs1_e),
    ) else {
        return false;
    };
    if l1 != r1 {
        return false;
    }
    // v^{Σ_{z≥0}|z_i|ρ_i} == Π B_i^{ρ_i} · v_i^{e_i·ρ_i} · v^{Σ_{z<0}|z_i|ρ_i}.
    rhs2_b.push(pk.v.clone());
    rhs2_e.push(v_neg);
    let (Ok(l2), Ok(r2)) = (
        multi_exp::multi_exp_nat(&ctx, std::slice::from_ref(&pk.v), &[v_pos]),
        multi_exp::multi_exp_nat(&ctx, &rhs2_b, &rhs2_e),
    ) else {
        return false;
    };
    l2 == r2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paillier::ThresholdPaillier;
    use rand::SeedableRng;

    fn setup() -> (PublicKey, Vec<KeyShare>, rand::rngs::StdRng) {
        let mut r = rand::rngs::StdRng::seed_from_u64(555);
        let (pk, shares) = ThresholdPaillier::keygen(&mut r, 128, 3, 1).unwrap();
        (pk, shares, r)
    }

    #[test]
    fn enc_proof_roundtrip() {
        let (pk, _, mut r) = setup();
        let m = Nat::from(12345u64);
        let (ct, rand_r) = ThresholdPaillier::encrypt(&mut r, &pk, &m);
        let proof = prove_enc(&mut r, &pk, &ct, &m, &rand_r);
        assert!(verify_enc(&pk, &ct, &proof));
    }

    #[test]
    fn enc_proof_rejects_other_ciphertext() {
        let (pk, _, mut r) = setup();
        let m = Nat::from(12345u64);
        let (ct, rand_r) = ThresholdPaillier::encrypt(&mut r, &pk, &m);
        let proof = prove_enc(&mut r, &pk, &ct, &m, &rand_r);
        let (other, _) = ThresholdPaillier::encrypt(&mut r, &pk, &m);
        assert!(!verify_enc(&pk, &other, &proof));
    }

    #[test]
    fn enc_proof_rejects_tampering() {
        let (pk, _, mut r) = setup();
        let m = Nat::from(7u64);
        let (ct, rand_r) = ThresholdPaillier::encrypt(&mut r, &pk, &m);
        let mut proof = prove_enc(&mut r, &pk, &ct, &m, &rand_r);
        proof.z_m = &proof.z_m + &Nat::one();
        assert!(!verify_enc(&pk, &ct, &proof));
    }

    #[test]
    fn pdec_proof_roundtrip() {
        let (pk, shares, mut r) = setup();
        let (ct, _) = ThresholdPaillier::encrypt(&mut r, &pk, &Nat::from(99u64));
        for share in &shares {
            let pd = ThresholdPaillier::partial_decrypt(&pk, share, &ct);
            let proof = prove_pdec(&mut r, &pk, &ct, share, &pd);
            assert!(verify_pdec(&pk, &ct, &pd, &proof));
        }
    }

    #[test]
    fn pdec_proof_rejects_wrong_partial() {
        let (pk, shares, mut r) = setup();
        let (ct, _) = ThresholdPaillier::encrypt(&mut r, &pk, &Nat::from(99u64));
        let pd = ThresholdPaillier::partial_decrypt(&pk, &shares[0], &ct);
        let proof = prove_pdec(&mut r, &pk, &ct, &shares[0], &pd);
        // Claiming the same partial came from party 1 fails.
        let forged = PartialDec { party: 1, value: pd.value.clone() };
        assert!(!verify_pdec(&pk, &ct, &forged, &proof));
        // Tampered value fails.
        let bad = PartialDec { party: 0, value: pd.value.mod_mul(&pd.value, &pk.n_sq) };
        assert!(!verify_pdec(&pk, &ct, &bad, &proof));
    }

    #[test]
    fn pdec_batch_verifies_honest_proofs() {
        let (pk, shares, mut r) = setup();
        let cts: Vec<Ciphertext> = (0..4u64)
            .map(|m| ThresholdPaillier::encrypt(&mut r, &pk, &Nat::from(m)).0)
            .collect();
        let mut pds = Vec::new();
        let mut proofs = Vec::new();
        for ct in &cts {
            for share in &shares {
                let pd = ThresholdPaillier::partial_decrypt(&pk, share, ct);
                let proof = prove_pdec(&mut r, &pk, ct, share, &pd);
                pds.push((ct, pd));
                proofs.push(proof);
            }
        }
        let items: Vec<(&Ciphertext, &PartialDec, &PdecProof)> = pds
            .iter()
            .zip(&proofs)
            .map(|(&(ct, ref pd), proof)| (ct, pd, proof))
            .collect();
        assert!(verify_pdec_batch(&mut r, &pk, &items));
        assert!(verify_pdec_batch(&mut r, &pk, &[]), "empty batch verifies");
    }

    #[test]
    fn pdec_batch_rejects_one_bad_proof() {
        let (pk, shares, mut r) = setup();
        let cts: Vec<Ciphertext> = (0..3u64)
            .map(|m| ThresholdPaillier::encrypt(&mut r, &pk, &Nat::from(m)).0)
            .collect();
        let mut pds = Vec::new();
        let mut proofs = Vec::new();
        for ct in &cts {
            let pd = ThresholdPaillier::partial_decrypt(&pk, &shares[0], ct);
            let proof = prove_pdec(&mut r, &pk, ct, &shares[0], &pd);
            pds.push((ct, pd));
            proofs.push(proof);
        }
        // Tamper with the middle partial only.
        pds[1].1.value = pds[1].1.value.mod_mul(&pds[1].1.value, &pk.n_sq);
        let items: Vec<(&Ciphertext, &PartialDec, &PdecProof)> = pds
            .iter()
            .zip(&proofs)
            .map(|(&(ct, ref pd), proof)| (ct, pd, proof))
            .collect();
        assert!(!verify_pdec_batch(&mut r, &pk, &items));
        // Out-of-range party index is rejected outright.
        let forged = PartialDec { party: pk.vks.len(), value: pds[0].1.value.clone() };
        assert!(!verify_pdec_batch(&mut r, &pk, &[(&cts[0], &forged, &proofs[0])]));
    }

    #[test]
    fn pdec_batch_matches_per_item_verdict_after_reshare() {
        // Re-shared shares can be negative → exercises the negative-z
        // side-switching in the batched checks.
        let (pk, shares, mut r) = setup();
        let msgs: Vec<_> =
            shares.iter().map(|s| ThresholdPaillier::reshare(&mut r, &pk, s)).collect();
        let chosen: Vec<&_> = vec![&msgs[0], &msgs[2]];
        let new_vks = ThresholdPaillier::next_verification_keys(&pk, &chosen).unwrap();
        let mut pk2 = pk.clone();
        pk2.vks = new_vks;
        let new_shares: Vec<_> = (0..pk.parties)
            .map(|j| ThresholdPaillier::recombine_key(&pk, j, &chosen, &Nat::one()).unwrap())
            .collect();
        let cts: Vec<Ciphertext> = (0..3u64)
            .map(|m| ThresholdPaillier::encrypt(&mut r, &pk2, &Nat::from(m)).0)
            .collect();
        let mut pds = Vec::new();
        let mut proofs = Vec::new();
        for ct in &cts {
            for share in &new_shares {
                let pd = ThresholdPaillier::partial_decrypt(&pk2, share, ct);
                let proof = prove_pdec(&mut r, &pk2, ct, share, &pd);
                assert!(verify_pdec(&pk2, ct, &pd, &proof));
                pds.push((ct, pd));
                proofs.push(proof);
            }
        }
        let items: Vec<(&Ciphertext, &PartialDec, &PdecProof)> = pds
            .iter()
            .zip(&proofs)
            .map(|(&(ct, ref pd), proof)| (ct, pd, proof))
            .collect();
        assert!(verify_pdec_batch(&mut r, &pk2, &items));
    }

    #[test]
    fn pdec_proof_after_reshare() {
        let (pk, shares, mut r) = setup();
        let msgs: Vec<_> =
            shares.iter().map(|s| ThresholdPaillier::reshare(&mut r, &pk, s)).collect();
        let chosen: Vec<&_> = vec![&msgs[0], &msgs[2]];
        let new_share = ThresholdPaillier::recombine_key(&pk, 1, &chosen, &Nat::one()).unwrap();
        let new_vks = ThresholdPaillier::next_verification_keys(&pk, &chosen).unwrap();
        let mut pk2 = pk.clone();
        pk2.vks = new_vks;
        let (ct, _) = ThresholdPaillier::encrypt(&mut r, &pk2, &Nat::from(5u64));
        let pd = ThresholdPaillier::partial_decrypt(&pk2, &new_share, &ct);
        let proof = prove_pdec(&mut r, &pk2, &ct, &new_share, &pd);
        assert!(verify_pdec(&pk2, &ct, &pd, &proof));
    }
}
