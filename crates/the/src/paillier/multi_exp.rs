//! Simultaneous multi-exponentiation: Straus and Pippenger.
//!
//! Computes `Π bᵢ^{eᵢ} mod N²` with **one shared squaring chain** for
//! the whole product instead of one chain per factor. Every batched
//! consumer of the threshold Paillier scheme is a product of powers in
//! disguise — `TEval` linear combinations, `Δ`-scaled Lagrange
//! combining, Feldman commitment checks, and the batched
//! partial-decryption NIZK verifier's random-linear-combination checks
//! — so collapsing the `m` per-factor chains (≈ `m·L` squarings for
//! `L`-bit exponents) into a single `L`-squaring chain plus cheap
//! per-factor table multiplies is where batched threshold decryption's
//! verifier-side speedup comes from.
//!
//! Two algorithms, selected by batch size ([`window_size`]):
//!
//! - **Straus** (small batches): one window table of `2^w − 1` powers
//!   per base; the shared chain squares `w` times per window and
//!   multiplies in each base's digit entry. Table setup is per-base, so
//!   it only amortizes for few bases or long exponents.
//! - **Pippenger** (large batches): one *shared* set of `2^w − 1`
//!   digit buckets; each window sorts every base into its digit bucket
//!   and the bucket sums collapse via the running-product trick. Setup
//!   is per-batch, so wider windows pay off as the batch grows —
//!   `w ≈ log₂(m)`.
//!
//! The module also provides [`fixed_exponent_powers`] for the dual
//! shape — many bases raised to one shared exponent (`TPDec` over a
//! ciphertext batch) — where no cross-base sharing is possible but the
//! exponent's window decomposition is computed once and the chain runs
//! on the dedicated Montgomery squaring.
//!
//! Everything here is panic-free: malformed inputs surface as
//! [`TeError`], never as a panic.

use yoso_bignum::{Int, MontgomeryCtx, Nat, Sign};

use crate::TeError;

/// Batch sizes up to this use Straus; larger batches use Pippenger.
///
/// Crossover: Straus pays `2^w − 2` table multiplies *per base* where
/// Pippenger pays `~2·2^w` bucket multiplies *per window*; with the
/// window sizes below the bucket method wins once a few dozen bases
/// share the chain.
const STRAUS_MAX_BASES: usize = 32;

/// Hard cap on window size (table/bucket space is `2^w − 1` entries).
pub const MAX_WINDOW: usize = 8;

/// Picks the window size for [`multi_exp`] from the batch length (and,
/// for small batches, the exponent length).
///
/// - Straus regime (`≤ 32` bases): the per-base table of `2^w − 2`
///   multiplies must amortize against the `≈ bits/2^w·(2^w−1)` digit
///   hits, so `w` grows with the exponent bit-length.
/// - Pippenger regime: per-window bucket maintenance costs `≈ 2·2^w`
///   multiplies against one multiply per base, so `w ≈ log₂(m) − 1`.
pub fn window_size(num_bases: usize, max_exp_bits: usize) -> usize {
    if num_bases <= STRAUS_MAX_BASES {
        match max_exp_bits {
            0..=15 => 1,
            16..=63 => 2,
            64..=255 => 3,
            256..=1023 => 4,
            _ => 5,
        }
    } else {
        let lg = (usize::BITS - 1 - num_bases.leading_zeros()) as usize;
        lg.saturating_sub(1).clamp(3, MAX_WINDOW)
    }
}

/// Window size for [`fixed_exponent_powers`]: no cross-base sharing
/// exists there, so the window is chosen from the exponent length
/// alone (the per-base table must amortize against that base's own
/// digit multiplies).
pub fn shared_exponent_window(exp_bits: usize) -> usize {
    match exp_bits {
        0..=255 => 4,
        256..=2047 => 5,
        _ => 6,
    }
}

/// Extracts window digit `wi` (little-endian window order, `w` bits
/// per window) of `e`.
fn window_digit(e: &Nat, wi: usize, w: usize) -> usize {
    let lo = wi * w;
    let mut d = 0usize;
    for b in (0..w).rev() {
        d <<= 1;
        if e.bit(lo + b) {
            d |= 1;
        }
    }
    d
}

/// `Π bᵢ^{eᵢ} mod m` for signed exponents, dispatching to
/// [`straus`]/[`pippenger`] by batch size.
///
/// Negative exponents invert their base once up front.
///
/// # Errors
///
/// - [`TeError::LengthMismatch`] if `bases` and `exps` differ in length.
/// - [`TeError::MalformedCiphertext`] if a base with a negative
///   exponent is not invertible (only possible if the caller has
///   factored `N`).
pub fn multi_exp(ctx: &MontgomeryCtx, bases: &[Nat], exps: &[Int]) -> Result<Nat, TeError> {
    if bases.len() != exps.len() {
        return Err(TeError::LengthMismatch { a: bases.len(), b: exps.len() });
    }
    let mut adj_bases = Vec::with_capacity(bases.len());
    let mut mags = Vec::with_capacity(exps.len());
    for (b, e) in bases.iter().zip(exps) {
        match e.sign() {
            Sign::Zero => {
                adj_bases.push(Nat::one());
                mags.push(Nat::zero());
            }
            Sign::Positive => {
                adj_bases.push(b.clone());
                mags.push(e.magnitude().clone());
            }
            Sign::Negative => {
                let inv = b.mod_inv(ctx.modulus()).ok_or(TeError::MalformedCiphertext)?;
                adj_bases.push(inv);
                mags.push(e.magnitude().clone());
            }
        }
    }
    multi_exp_nat(ctx, &adj_bases, &mags)
}

/// [`multi_exp`] for unsigned exponents.
///
/// # Errors
///
/// Returns [`TeError::LengthMismatch`] if the slices differ in length.
pub fn multi_exp_nat(ctx: &MontgomeryCtx, bases: &[Nat], exps: &[Nat]) -> Result<Nat, TeError> {
    if bases.len() != exps.len() {
        return Err(TeError::LengthMismatch { a: bases.len(), b: exps.len() });
    }
    let max_bits = exps.iter().map(Nat::bit_len).max().unwrap_or(0);
    let w = window_size(bases.len(), max_bits);
    if bases.len() <= STRAUS_MAX_BASES {
        straus(ctx, bases, exps, w)
    } else {
        pippenger(ctx, bases, exps, w)
    }
}

/// Straus (interleaved window) multi-exponentiation with an explicit
/// window size in `1..=8` (clamped).
///
/// # Errors
///
/// Returns [`TeError::LengthMismatch`] if the slices differ in length.
pub fn straus(
    ctx: &MontgomeryCtx,
    bases: &[Nat],
    exps: &[Nat],
    window: usize,
) -> Result<Nat, TeError> {
    if bases.len() != exps.len() {
        return Err(TeError::LengthMismatch { a: bases.len(), b: exps.len() });
    }
    let w = window.clamp(1, MAX_WINDOW);
    let max_bits = exps.iter().map(Nat::bit_len).max().unwrap_or(0);
    if max_bits == 0 {
        return Ok(&Nat::one() % ctx.modulus());
    }
    // Per-base tables b, b², …, b^(2^w − 1) in Montgomery form.
    let tables: Vec<Vec<Nat>> = bases
        .iter()
        .map(|b| {
            let b_m = ctx.to_mont(b);
            let mut t = Vec::with_capacity((1 << w) - 1);
            t.push(b_m.clone());
            for i in 1..(1 << w) - 1 {
                let prod = ctx.mont_mul(&t[i - 1], &b_m);
                t.push(prod);
            }
            t
        })
        .collect();
    let windows = max_bits.div_ceil(w);
    let mut acc = ctx.one_mont();
    for wi in (0..windows).rev() {
        if wi + 1 != windows {
            for _ in 0..w {
                acc = ctx.mont_sqr(&acc);
            }
        }
        for (table, e) in tables.iter().zip(exps) {
            let d = window_digit(e, wi, w);
            if d != 0 {
                acc = ctx.mont_mul(&acc, &table[d - 1]);
            }
        }
    }
    Ok(ctx.from_mont(&acc))
}

/// Pippenger (bucket) multi-exponentiation with an explicit window
/// size in `1..=8` (clamped).
///
/// # Errors
///
/// Returns [`TeError::LengthMismatch`] if the slices differ in length.
pub fn pippenger(
    ctx: &MontgomeryCtx,
    bases: &[Nat],
    exps: &[Nat],
    window: usize,
) -> Result<Nat, TeError> {
    if bases.len() != exps.len() {
        return Err(TeError::LengthMismatch { a: bases.len(), b: exps.len() });
    }
    let w = window.clamp(1, MAX_WINDOW);
    let max_bits = exps.iter().map(Nat::bit_len).max().unwrap_or(0);
    if max_bits == 0 {
        return Ok(&Nat::one() % ctx.modulus());
    }
    let bases_m: Vec<Nat> = bases.iter().map(|b| ctx.to_mont(b)).collect();
    let windows = max_bits.div_ceil(w);
    let mut acc = ctx.one_mont();
    let mut buckets: Vec<Option<Nat>> = vec![None; (1 << w) - 1];
    for wi in (0..windows).rev() {
        if wi + 1 != windows {
            for _ in 0..w {
                acc = ctx.mont_sqr(&acc);
            }
        }
        for b in buckets.iter_mut() {
            *b = None;
        }
        for (b_m, e) in bases_m.iter().zip(exps) {
            let d = window_digit(e, wi, w);
            if d != 0 {
                buckets[d - 1] = Some(match buckets[d - 1].take() {
                    Some(cur) => ctx.mont_mul(&cur, b_m),
                    None => b_m.clone(),
                });
            }
        }
        // Σ d·Bd via the running-product trick: scanning buckets from
        // the highest digit down, `running` is Π_{d' ≥ d} B_{d'} and
        // multiplying it into `total` once per digit yields Π B_d^d.
        let mut running: Option<Nat> = None;
        let mut total: Option<Nat> = None;
        for b in buckets.iter().rev() {
            if let Some(v) = b {
                running = Some(match &running {
                    Some(r) => ctx.mont_mul(r, v),
                    None => v.clone(),
                });
            }
            if let Some(r) = &running {
                total = Some(match &total {
                    Some(t) => ctx.mont_mul(t, r),
                    None => r.clone(),
                });
            }
        }
        if let Some(t) = &total {
            acc = ctx.mont_mul(&acc, t);
        }
    }
    Ok(ctx.from_mont(&acc))
}

/// Raises every base to the *same* unsigned exponent — the `TPDec`
/// batch shape, where each output is an independent power and no
/// cross-base chain sharing is possible. What *is* shared: the
/// Montgomery context, the exponent's window decomposition (computed
/// once for the whole batch), and the dedicated Montgomery squaring
/// driving each chain. The window grows with the exponent
/// ([`shared_exponent_window`]) since `2Δ·sᵢ` exponents run to
/// thousands of bits.
pub fn fixed_exponent_powers(ctx: &MontgomeryCtx, bases: &[Nat], exp: &Nat) -> Vec<Nat> {
    let bits = exp.bit_len();
    if bits == 0 {
        let one = &Nat::one() % ctx.modulus();
        return vec![one; bases.len()];
    }
    let w = shared_exponent_window(bits);
    let windows = bits.div_ceil(w);
    let digits: Vec<usize> = (0..windows).map(|wi| window_digit(exp, wi, w)).collect();
    bases
        .iter()
        .map(|b| {
            let b_m = ctx.to_mont(b);
            let mut table = Vec::with_capacity((1 << w) - 1);
            table.push(b_m.clone());
            for i in 1..(1 << w) - 1 {
                let prod = ctx.mont_mul(&table[i - 1], &b_m);
                table.push(prod);
            }
            let mut acc = ctx.one_mont();
            for (wi, &d) in digits.iter().enumerate().rev() {
                if wi + 1 != windows {
                    for _ in 0..w {
                        acc = ctx.mont_sqr(&acc);
                    }
                }
                if d != 0 {
                    acc = ctx.mont_mul(&acc, &table[d - 1]);
                }
            }
            ctx.from_mont(&acc)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup(bits: usize) -> (MontgomeryCtx, rand::rngs::StdRng) {
        let mut r = rand::rngs::StdRng::seed_from_u64(9001);
        let p = yoso_bignum::prime::generate_prime(&mut r, bits);
        let q = yoso_bignum::prime::generate_prime(&mut r, bits);
        (MontgomeryCtx::new(&(&p * &q)), r)
    }

    fn naive(ctx: &MontgomeryCtx, bases: &[Nat], exps: &[Nat]) -> Nat {
        let m = ctx.modulus();
        let mut acc = &Nat::one() % m;
        for (b, e) in bases.iter().zip(exps) {
            acc = acc.mod_mul(&b.mod_pow(e, m), m);
        }
        acc
    }

    #[test]
    fn straus_and_pippenger_match_naive() {
        let (ctx, mut r) = setup(96);
        for count in [1usize, 2, 5, 33, 64] {
            let bases: Vec<Nat> =
                (0..count).map(|_| Nat::random_below(&mut r, ctx.modulus())).collect();
            let exps: Vec<Nat> = (0..count).map(|_| Nat::random_bits(&mut r, 120)).collect();
            let expect = naive(&ctx, &bases, &exps);
            for w in [1, 3, 5, 8] {
                assert_eq!(straus(&ctx, &bases, &exps, w).unwrap(), expect, "straus w={w}");
                assert_eq!(pippenger(&ctx, &bases, &exps, w).unwrap(), expect, "pippenger w={w}");
            }
            assert_eq!(multi_exp_nat(&ctx, &bases, &exps).unwrap(), expect);
        }
    }

    #[test]
    fn zero_and_empty_exponent_edge_cases() {
        let (ctx, mut r) = setup(96);
        let one = &Nat::one() % ctx.modulus();
        assert_eq!(multi_exp_nat(&ctx, &[], &[]).unwrap(), one);
        let bases = vec![Nat::random_below(&mut r, ctx.modulus())];
        assert_eq!(straus(&ctx, &bases, &[Nat::zero()], 4).unwrap(), one);
        assert_eq!(pippenger(&ctx, &bases, &[Nat::zero()], 4).unwrap(), one);
        // A zero exponent among live ones contributes nothing.
        let b2 = vec![bases[0].clone(), Nat::random_below(&mut r, ctx.modulus())];
        let e2 = vec![Nat::zero(), Nat::from(7u64)];
        assert_eq!(
            multi_exp_nat(&ctx, &b2, &e2).unwrap(),
            b2[1].mod_pow(&Nat::from(7u64), ctx.modulus())
        );
    }

    #[test]
    fn signed_exponents_invert_bases() {
        let (ctx, mut r) = setup(96);
        let m = ctx.modulus().clone();
        let b = loop {
            let cand = Nat::random_below(&mut r, &m);
            if cand.gcd(&m).is_one() {
                break cand;
            }
        };
        let e = Nat::from(12_345u64);
        let pos = b.mod_pow(&e, &m);
        let neg = multi_exp(&ctx, std::slice::from_ref(&b), &[-Int::from_nat(e)]).unwrap();
        assert_eq!(pos.mod_mul(&neg, &m), Nat::one(), "b^e · b^-e = 1");
    }

    #[test]
    fn length_mismatch_rejected() {
        let (ctx, mut r) = setup(64);
        let b = vec![Nat::random_below(&mut r, ctx.modulus())];
        assert!(matches!(
            multi_exp_nat(&ctx, &b, &[]),
            Err(TeError::LengthMismatch { a: 1, b: 0 })
        ));
        assert!(matches!(
            multi_exp(&ctx, &b, &[]),
            Err(TeError::LengthMismatch { a: 1, b: 0 })
        ));
    }

    #[test]
    fn fixed_exponent_powers_match_mod_pow() {
        let (ctx, mut r) = setup(96);
        for exp_bits in [1usize, 64, 300, 2100] {
            let e = Nat::random_bits(&mut r, exp_bits);
            let bases: Vec<Nat> =
                (0..5).map(|_| Nat::random_below(&mut r, ctx.modulus())).collect();
            let got = fixed_exponent_powers(&ctx, &bases, &e);
            for (b, g) in bases.iter().zip(&got) {
                assert_eq!(g, &b.mod_pow(&e, ctx.modulus()), "exp_bits={exp_bits}");
            }
        }
        assert_eq!(
            fixed_exponent_powers(&ctx, &[Nat::from(5u64)], &Nat::zero()),
            vec![Nat::one()]
        );
    }
}
