//! Homomorphic packing over `Z_N` — offline Step 4 on the faithful
//! threshold-Paillier instantiation.
//!
//! The paper's packing computes, from per-wire mask ciphertexts
//! `c^{λ_1} … c^{λ_k}` and `t` helper-randomness ciphertexts, the `n`
//! encrypted evaluations of the degree-`(t+k−1)` polynomial through
//! `(0, λ_1), (−1, λ_2), …, (−(k−1), λ_k), (1, r_1), …, (t, r_t)` —
//! purely by `TEval` with Lagrange coefficients. Over `Z_N` the
//! coefficients exist because all node differences are tiny integers,
//! coprime to `N` (its prime factors are huge).

use yoso_bignum::{Int, Nat};

use super::{Ciphertext, PublicKey, ThresholdPaillier};
use crate::TeError;

/// Lagrange basis coefficient `l_j(x)` over the nodes, as an element
/// of `Z_N` (signed integers reduced with `mod_floor`).
fn lagrange_coeff(n_mod: &Nat, nodes: &[i64], j: usize, x: i64) -> Result<Nat, TeError> {
    let mut num = Int::from(1i64);
    let mut den = Int::from(1i64);
    for (m, &xm) in nodes.iter().enumerate() {
        if m == j {
            continue;
        }
        num = &num * &Int::from(x - xm);
        den = &den * &Int::from(nodes[j] - xm);
    }
    let den_inv = den
        .mod_floor(n_mod)
        .mod_inv(n_mod)
        .ok_or(TeError::MalformedCiphertext)?;
    Ok(num.mod_floor(n_mod).mod_mul(&den_inv, n_mod))
}

/// Packs `k = wire_cts.len()` mask ciphertexts plus `t` helper
/// ciphertexts into `n` packed-share ciphertexts (share `i` lives at
/// evaluation point `i + 1`).
///
/// # Errors
///
/// Returns [`TeError::LengthMismatch`] on malformed input or
/// [`TeError::MalformedCiphertext`] if a Lagrange denominator is not
/// invertible (impossible for honest `N`).
pub fn pack_ciphertexts(
    pk: &PublicKey,
    n: usize,
    wire_cts: &[Ciphertext],
    helper_cts: &[Ciphertext],
) -> Result<Vec<Ciphertext>, TeError> {
    if wire_cts.is_empty() {
        return Err(TeError::LengthMismatch { a: 0, b: helper_cts.len() });
    }
    let k = wire_cts.len();
    let t = helper_cts.len();
    let mut nodes: Vec<i64> = (0..k as i64).map(|j| -j).collect();
    nodes.extend(1..=t as i64);
    let all: Vec<&Ciphertext> = wire_cts.iter().chain(helper_cts).collect();
    (1..=n as i64)
        .map(|x| {
            let coeffs: Vec<Int> = (0..nodes.len())
                .map(|j| lagrange_coeff(&pk.n_mod, &nodes, j, x).map(Int::from_nat))
                .collect::<Result<_, _>>()?;
            ThresholdPaillier::eval(pk, &all, &coeffs)
        })
        .collect()
}

/// Reconstructs the packed secrets from `degree + 1` *plaintext* share
/// values (share `i` at point `i + 1`), evaluating back at the secret
/// points `0, −1, …, −(k−1)`. Test/client-side helper.
///
/// # Errors
///
/// Returns [`TeError::NotEnoughPartials`] with too few shares.
pub fn reconstruct_packed(
    pk: &PublicKey,
    shares: &[(usize, Nat)],
    k: usize,
    degree: usize,
) -> Result<Vec<Nat>, TeError> {
    if shares.len() < degree + 1 {
        return Err(TeError::NotEnoughPartials { got: shares.len(), need: degree + 1 });
    }
    let nodes: Vec<i64> = shares[..degree + 1].iter().map(|(i, _)| *i as i64 + 1).collect();
    (0..k as i64)
        .map(|j| {
            let target = -j;
            let mut acc = Nat::zero();
            for (idx, (_, v)) in shares[..degree + 1].iter().enumerate() {
                let c = lagrange_coeff(&pk.n_mod, &nodes, idx, target)?;
                acc = acc.mod_add(&c.mod_mul(v, &pk.n_mod), &pk.n_mod);
            }
            Ok(acc)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pack_and_reconstruct_over_z_n() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(808);
        let (n, t) = (5usize, 1usize);
        let (pk, shares) = ThresholdPaillier::keygen(&mut rng, 128, n, t).unwrap();

        let values = [Nat::from(123u64), Nat::from(456u64)];
        let k = values.len();
        let wire_cts: Vec<Ciphertext> = values
            .iter()
            .map(|v| ThresholdPaillier::encrypt(&mut rng, &pk, v).0)
            .collect();
        let helper_cts: Vec<Ciphertext> = (0..t)
            .map(|_| {
                let r = Nat::random_below(&mut rng, &pk.n_mod);
                ThresholdPaillier::encrypt(&mut rng, &pk, &r).0
            })
            .collect();

        let packed = pack_ciphertexts(&pk, n, &wire_cts, &helper_cts).unwrap();
        assert_eq!(packed.len(), n);

        // Threshold-decrypt each packed-share ciphertext.
        let share_vals: Vec<(usize, Nat)> = packed
            .iter()
            .enumerate()
            .map(|(i, ct)| {
                (i, ThresholdPaillier::decrypt_with_shares(&pk, ct, &shares).unwrap())
            })
            .collect();

        // Reconstruct from the minimum number of shares (degree t+k−1).
        let degree = t + k - 1;
        let got = reconstruct_packed(&pk, &share_vals[..degree + 1], k, degree).unwrap();
        assert_eq!(got, values.to_vec());

        // Any other (degree+1)-subset agrees.
        let alt: Vec<(usize, Nat)> = share_vals[n - degree - 1..].to_vec();
        assert_eq!(reconstruct_packed(&pk, &alt, k, degree).unwrap(), values.to_vec());
    }

    #[test]
    fn pack_rejects_empty() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(809);
        let (pk, _) = ThresholdPaillier::keygen(&mut rng, 128, 3, 1).unwrap();
        assert!(pack_ciphertexts(&pk, 3, &[], &[]).is_err());
    }

    #[test]
    fn reconstruct_needs_enough_shares() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(810);
        let (pk, _) = ThresholdPaillier::keygen(&mut rng, 128, 3, 1).unwrap();
        let err =
            reconstruct_packed(&pk, &[(0, Nat::one())], 2, 2).unwrap_err();
        assert!(matches!(err, TeError::NotEnoughPartials { .. }));
    }
}
