//! `board-server` — a standalone bulletin-board server so committee
//! drivers and auditors run as separate OS processes.
//!
//! The server is message-type agnostic: payloads are stored as opaque
//! bytes (one arena copy per post frame), so one server binary serves
//! any protocol built on `yoso_runtime::tcp`. Postings are sequenced
//! in frame-arrival order — a round-clock lock plus per-round append
//! shards, so concurrent clients contend only within a round — which
//! is what makes a remote run's transcript byte-identical to an
//! in-process run, lockstep or pipelined (see DESIGN §10).
//!
//! ```text
//! board-server --listen 127.0.0.1:7310
//! yoso run --circuit inner-product --n 16 --board tcp://127.0.0.1:7310
//! yoso board-stats --board tcp://127.0.0.1:7310 --shutdown
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use yoso_runtime::BoardServer;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = "127.0.0.1:7310".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => match it.next() {
                Some(v) => listen = v.clone(),
                None => {
                    eprintln!("error: --listen requires an address");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "board-server — standalone YOSO bulletin-board server\n\n\
                     USAGE:\n  board-server [--listen HOST:PORT]   [127.0.0.1:7310]\n\n\
                     Use port 0 for an OS-assigned port; the bound address is\n\
                     printed on startup. The server runs until killed or until a\n\
                     client requests shutdown (`yoso board-stats --shutdown`)."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown option {other:?}; try --help");
                return ExitCode::FAILURE;
            }
        }
    }
    let addr: std::net::SocketAddr = match listen.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: listen address {listen:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match BoardServer::bind(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(bound) => println!("board-server listening on tcp://{bound}"),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    server.serve();
    println!("board-server shut down");
    ExitCode::SUCCESS
}
