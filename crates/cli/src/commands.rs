//! Subcommand implementations.

use std::collections::HashMap;

use rand::SeedableRng;

use yoso_bignum::Nat;
use yoso_circuit::{generators, Circuit};
use yoso_core::{
    crash_phases, BoardBackend, Engine, ExecutionConfig, ProtocolParams, RolePartition,
};
use yoso_field::{F61, PrimeField};
use yoso_runtime::{ActiveAttack, Adversary};
use yoso_sortition::{GapAnalysis, SecurityParams};
use yoso_the::paillier::ThresholdPaillier;

type Opts = HashMap<String, String>;

/// Parses a board address: `tcp://HOST:PORT` or bare `HOST:PORT`.
pub fn parse_board_addr(value: &str) -> Result<std::net::SocketAddr, String> {
    let bare = value.strip_prefix("tcp://").unwrap_or(value);
    bare.parse().map_err(|e| format!("board address {value:?}: {e}"))
}

fn get<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
    }
}

fn build_circuit(opts: &Opts) -> Result<Circuit<F61>, String> {
    let name = opts.get("circuit").map(String::as_str).unwrap_or("inner-product");
    let size: usize = get(opts, "size", 8)?;
    let clients: usize = get(opts, "clients", 2)?;
    let circuit = match name {
        "inner-product" => generators::inner_product(size),
        "poly-eval" => generators::poly_eval(size),
        "stats" => generators::federated_stats(clients, size),
        "wide" => generators::wide_layered(size, 2, clients),
        "average" => generators::weighted_average(clients.max(1)),
        "matmul" => generators::matmul(size),
        "set-membership" => generators::set_membership(size),
        other => return Err(format!("unknown circuit {other:?}")),
    };
    circuit.map_err(|e| format!("circuit construction: {e}"))
}

fn parse_attack(opts: &Opts) -> Result<Option<ActiveAttack>, String> {
    match opts.get("attack").map(String::as_str) {
        None | Some("none") => Ok(None),
        Some("wrong-value") => Ok(Some(ActiveAttack::WrongValue)),
        Some("bad-proof") => Ok(Some(ActiveAttack::BadProof)),
        Some("silent") => Ok(Some(ActiveAttack::Silent)),
        Some("additive") => Ok(Some(ActiveAttack::AdditiveOffset)),
        Some(other) => Err(format!("unknown attack {other:?}")),
    }
}

/// Everything a protocol run (or one worker of it) needs, built
/// deterministically from the CLI options. **The construction order is
/// part of the determinism contract**: params → circuit → rng(seed) →
/// inputs → adversary. Every worker of a sharded run rebuilds this
/// identically from the same options, so all processes agree on the
/// full protocol state and only split who posts what.
struct PreparedRun {
    params: ProtocolParams,
    circuit: Circuit<F61>,
    inputs: Vec<Vec<F61>>,
    adversary: Adversary,
    rng: rand::rngs::StdRng,
    config: ExecutionConfig,
}

fn prepare_run(opts: &Opts) -> Result<PreparedRun, String> {
    let n: usize = get(opts, "n", 16)?;
    let eps: f64 = get(opts, "eps", 0.2)?;
    let seed: u64 = get(opts, "seed", 7)?;
    let crashes: usize = get(opts, "crashes", 0)?;

    let mut params = if crashes > 0 {
        ProtocolParams::from_gap_failstop(n, eps).map_err(|e| e.to_string())?
    } else {
        ProtocolParams::from_gap(n, eps).map_err(|e| e.to_string())?
    };
    if crashes > params.failstops {
        return Err(format!(
            "{crashes} crashes exceed the fail-stop budget {} at (n={n}, ε={eps})",
            params.failstops
        ));
    }
    params.failstops = crashes;

    let t_mal: usize = get(opts, "t-mal", params.t)?;
    if t_mal > params.t {
        return Err(format!("--t-mal {t_mal} exceeds the threshold t = {}", params.t));
    }

    let circuit = build_circuit(opts)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let inputs: Vec<Vec<F61>> = circuit
        .inputs_per_client()
        .iter()
        .map(|ws| ws.iter().map(|_| F61::random(&mut rng)).collect())
        .collect();

    let mut adversary = match parse_attack(opts)? {
        Some(attack) => Adversary::active(t_mal, attack),
        None => Adversary::none(),
    };
    if crashes > 0 {
        adversary = adversary.with_failstops(crashes, crash_phases::ONLINE_MULT);
    }

    let threads: usize = get(opts, "threads", 1)?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let mut config = if opts.contains_key("no-proofs") {
        ExecutionConfig::sweep()
    } else {
        ExecutionConfig::default()
    }
    .with_threads(threads);
    if opts.contains_key("dist-transform") {
        config = config.with_dist_transform();
    }
    if let Some(board) = opts.get("board") {
        config = config.with_board(BoardBackend::Tcp(parse_board_addr(board)?));
    }
    let board_window: usize = get(opts, "board-window", 0)?;
    if board_window > 0 {
        if !opts.contains_key("board") && !opts.contains_key("spawn-workers") {
            return Err("--board-window only applies to a TCP board (--board / --spawn-workers)".into());
        }
        config = config.with_board_window(board_window);
    }
    Ok(PreparedRun { params, circuit, inputs, adversary, rng, config })
}

/// Executes a prepared run and prints the standard report.
fn execute_and_report(prepared: PreparedRun) -> Result<(), String> {
    let PreparedRun { params, circuit, inputs, adversary, mut rng, config } = prepared;
    let engine = Engine::new(params, config);
    println!(
        "running: n = {}, t = {}, k = {}, circuit with {} mul gates / {} wires",
        params.n,
        params.t,
        params.k,
        circuit.mul_count(),
        circuit.wire_count()
    );
    let start = std::time::Instant::now();
    let result = engine
        .run(&mut rng, &circuit, &inputs, &adversary)
        .map_err(|e| format!("protocol: {e}"))?;
    let elapsed = start.elapsed();

    let expected = circuit.evaluate(&inputs).map_err(|e| e.to_string())?;
    let correct = result.outputs == expected;
    println!("\noutputs (client 0): {:?}", result.outputs[0]);
    println!("matches cleartext evaluation: {correct}");
    println!("\ncommunication by phase (ring elements):");
    for (phase, stats) in &result.phases {
        println!("  {phase:<28} {:>12}", stats.elements);
    }
    println!(
        "\nonline mult: {:.1} elements/gate   offline: {:.1} elements/gate   wall: {:.2?}",
        result.online_elements_per_gate(),
        result.offline_elements_per_gate(),
        elapsed
    );
    // Where the wall-clock went, stage by stage: over a TCP board the
    // gap between this and a local run is board round trips, which is
    // what the pipelining window shrinks. (CI diffs strip this line
    // along with the wall line above — timings are not deterministic.)
    let stages: Vec<String> = result
        .stage_wall_secs
        .iter()
        .map(|(name, secs)| format!("{name} {secs:.2}s"))
        .collect();
    println!("stage wall: {}", stages.join("   "));
    if !correct {
        return Err("output mismatch".into());
    }
    Ok(())
}

/// `yoso run` — execute the full three-phase protocol. With
/// `--spawn-workers N` the process starts an in-tree board server,
/// forks `N − 1` `yoso worker` children, and itself acts as worker 0
/// (the leader).
pub fn run(opts: &Opts) -> Result<(), String> {
    if opts.contains_key("spawn-workers") {
        let workers: usize = get(opts, "spawn-workers", 4)?;
        return spawn_workers(opts, workers);
    }
    execute_and_report(prepare_run(opts)?)
}

/// Parses a `--roles a..b` half-open range.
fn parse_roles(value: &str) -> Result<(usize, usize), String> {
    let (lo, hi) = value
        .split_once("..")
        .ok_or_else(|| format!("--roles {value:?}: expected a..b (half-open)"))?;
    let lo: usize = lo.trim().parse().map_err(|e| format!("--roles {value:?}: {e}"))?;
    let hi: usize = hi.trim().parse().map_err(|e| format!("--roles {value:?}: {e}"))?;
    if hi < lo {
        return Err(format!("--roles {value:?}: empty-or-backwards range"));
    }
    Ok((lo, hi))
}

/// `yoso worker` — one role-sharded worker of a multi-process run.
///
/// Every worker of a run is launched with identical run options (same
/// seed, circuit, committee) plus its own `--roles a..b` slice and the
/// shared `--board tcp://HOST:PORT`. Workers synchronize only through
/// the board's round clock; the worker owning role 0 acts as leader
/// (dealer/client posts, round ticks). The interleaved transcript is
/// byte-identical to a single-process `yoso run`.
pub fn worker(opts: &Opts) -> Result<(), String> {
    let roles = opts.get("roles").ok_or("worker requires --roles a..b")?;
    let (lo, hi) = parse_roles(roles)?;
    if !opts.contains_key("board") {
        return Err("worker requires --board tcp://HOST:PORT (a shared board-server)".into());
    }
    let mut prepared = prepare_run(opts)?;
    if hi > prepared.params.n {
        return Err(format!(
            "--roles {lo}..{hi} exceeds the committee size n = {}",
            prepared.params.n
        ));
    }
    prepared.config = prepared.config.with_partition(RolePartition::range(lo, hi));
    println!(
        "worker roles [{lo}, {hi}) of n = {} ({}leader)",
        prepared.params.n,
        if prepared.config.partition.is_leader() { "" } else { "not " }
    );
    execute_and_report(prepared)
}

/// Options forwarded verbatim from `run --spawn-workers` to the
/// children, so every worker prepares the identical run.
const FORWARDED_OPTS: [&str; 11] = [
    "circuit", "size", "clients", "n", "eps", "attack", "t-mal", "crashes", "seed", "threads",
    "board-window",
];

/// `yoso run --spawn-workers N`: in-tree board server + N local worker
/// processes (this process is worker 0, the leader).
fn spawn_workers(opts: &Opts, workers: usize) -> Result<(), String> {
    if workers == 0 {
        return Err("--spawn-workers must be at least 1".into());
    }
    if opts.contains_key("board") {
        return Err("--spawn-workers starts its own board server; drop --board".into());
    }
    let mut prepared = prepare_run(opts)?;
    let n = prepared.params.n;

    let server = yoso_runtime::BoardServer::bind(std::net::SocketAddr::from(([127, 0, 0, 1], 0)))
        .map_err(|e| format!("board server: {e}"))?;
    let mut handle = server.spawn().map_err(|e| format!("board server: {e}"))?;
    let addr = handle.addr();
    println!("board server on tcp://{addr}, {workers} workers over n = {n} roles");

    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let mut children = Vec::new();
    for w in 1..workers {
        let part = prepared.params.worker_role_range(w, workers);
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("worker")
            .arg("--roles")
            .arg(format!("{}..{}", part.lo(), part.hi()))
            .arg("--board")
            .arg(format!("tcp://{addr}"));
        for key in FORWARDED_OPTS {
            if let Some(v) = opts.get(key) {
                cmd.arg(format!("--{key}")).arg(v);
            }
        }
        if opts.contains_key("no-proofs") {
            cmd.arg("--no-proofs");
        }
        if opts.contains_key("dist-transform") {
            cmd.arg("--dist-transform");
        }
        // Children report through their exit status; only the leader
        // prints the run summary.
        cmd.stdout(std::process::Stdio::null());
        children.push((w, cmd.spawn().map_err(|e| format!("spawn worker {w}: {e}"))?));
    }

    prepared.config = prepared
        .config
        .with_board(BoardBackend::Tcp(addr))
        .with_partition(prepared.params.worker_role_range(0, workers));
    let result = execute_and_report(prepared);

    let mut failures = Vec::new();
    for (w, mut child) in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => failures.push(format!("worker {w} exited with {status}")),
            Err(e) => failures.push(format!("worker {w}: {e}")),
        }
    }
    handle.shutdown();
    result?;
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    Ok(())
}

/// `yoso board-stats` — remote board auditor: connects to a
/// `board-server`, reads the posting log, and rebuilds the per-phase
/// communication table from the posting metadata (every posting
/// carries its element and byte counts, so an auditor process needs no
/// access to any driver's in-process meter). This is also how a
/// role-sharded worker run is metered: each worker's own meter saw
/// only the posts it appended, but the board holds the interleaved
/// full transcript, so the table here aggregates all workers. With
/// `--dump FILE` the raw posting log is written one line per post
/// (`round|author|phase|message`) for byte-level transcript diffing.
pub fn board_stats(opts: &Opts) -> Result<(), String> {
    use yoso_core::messages::Post;
    use yoso_runtime::BulletinBoard;

    let addr = parse_board_addr(
        opts.get("board").ok_or("board-stats requires --board tcp://HOST:PORT")?,
    )?;
    let board: BulletinBoard<Post> =
        BulletinBoard::connect_tcp(addr).map_err(|e| e.to_string())?;
    let rounds = board.round().map_err(|e| e.to_string())?;

    // One round at a time via the per-round index, so the auditor's
    // memory stays bounded by the largest round instead of the whole
    // posting history (a paper-scale log dwarfs this process).
    let mut by_phase = std::collections::BTreeMap::<String, (u64, u64, u64)>::new();
    let mut posting_count = 0u64;
    for r in 0..=rounds {
        board
            .for_each_in_round(r, |p| {
                let e = by_phase.entry(p.phase.to_string()).or_default();
                e.0 += p.elements;
                e.1 += p.bytes;
                e.2 += 1;
                posting_count += 1;
            })
            .map_err(|e| e.to_string())?;
    }
    println!("board {addr}: {posting_count} postings over {rounds} round(s)\n");
    println!("{:<28} {:>12} {:>12} {:>10}", "phase", "elements", "bytes", "messages");
    let mut total = (0u64, 0u64, 0u64);
    for (phase, (elements, bytes, messages)) in &by_phase {
        println!("{phase:<28} {elements:>12} {bytes:>12} {messages:>10}");
        total.0 += elements;
        total.1 += bytes;
        total.2 += messages;
    }
    println!("{:<28} {:>12} {:>12} {:>10}", "total", total.0, total.1, total.2);

    // The server's own wire counters: posting throughput shape (frames,
    // coalesced acks, largest pipeline window) as the server saw it
    // across every client that ever connected.
    let stats_conn = yoso_runtime::TcpTransport::<Post>::connect(
        addr,
        yoso_runtime::TcpOptions::default(),
    )
    .map_err(|e| e.to_string())?;
    let w = stats_conn.server_stats().map_err(|e| e.to_string())?;
    println!("\nserver wire counters:");
    println!("  request frames       {:>12}", w.frames);
    println!("  post frames          {:>12}", w.post_frames);
    println!("  postings appended    {:>12}", w.postings);
    println!("  payload bytes        {:>12}", w.payload_bytes);
    println!("  coalesced acks       {:>12}", w.sync_acks);
    println!("  pipelined frames     {:>12}", w.acked_frames);
    println!("  max pipeline window  {:>12}", w.max_window);
    println!("  posting reads        {:>12}", w.reads);

    if let Some(path) = opts.get("dump") {
        use std::io::Write as _;
        // Streamed round by round through a buffered writer — the dump
        // is never materialized in memory. The line format is load-
        // bearing: the engine's streaming transcript hash
        // (`yoso_runtime::PhaseAccumulator`) folds exactly these bytes.
        let file = std::fs::File::create(path).map_err(|e| format!("--dump {path}: {e}"))?;
        let mut out = std::io::BufWriter::new(file);
        let mut lines = 0u64;
        let mut write_err: Option<std::io::Error> = None;
        for r in 0..=rounds {
            board
                .for_each_in_round(r, |p| {
                    if write_err.is_some() {
                        return;
                    }
                    match writeln!(out, "{}|{}|{}|{:?}", p.round, p.from, p.phase, p.message) {
                        Ok(()) => lines += 1,
                        Err(e) => write_err = Some(e),
                    }
                })
                .map_err(|e| e.to_string())?;
        }
        if let Some(e) = write_err {
            return Err(format!("--dump {path}: {e}"));
        }
        out.flush().map_err(|e| format!("--dump {path}: {e}"))?;
        println!("\nposting log written to {path} ({lines} lines)");
    }

    if opts.contains_key("shutdown") {
        stats_conn.shutdown_server().map_err(|e| e.to_string())?;
        println!("\nserver shut down");
    }
    Ok(())
}

/// `yoso bench-scale` — the Table-1-scale allocation/RSS profile
/// (tentpole of the paper-scale hot-path work, DESIGN §12). Runs the
/// end-to-end protocol streaming-vs-materialized at each committee
/// size and writes `BENCH_scale.json`; `--smoke` shrinks the sizes for
/// CI and skips the allocation-ratio acceptance gate. Build the CLI
/// with `--features bench-alloc` to include process-wide allocation
/// counts (otherwise only the hot-path counters are reported).
pub fn bench_scale(opts: &Opts) -> Result<(), String> {
    let smoke = opts.contains_key("smoke");
    yoso_bench::scale::run_scale(smoke);
    Ok(())
}

/// `yoso plan` — §6 committee planning.
pub fn plan(opts: &Opts) -> Result<(), String> {
    let pool: u64 = get(opts, "pool", 1_000_000)?;
    let f: f64 = get(opts, "f", 0.1)?;
    if !(0.0..1.0).contains(&f) || f <= 0.0 {
        return Err(format!("--f {f} out of range"));
    }
    let sweep: Vec<f64> = match opts.get("c") {
        Some(v) => vec![v.parse().map_err(|e| format!("--c: {e}"))?],
        None => vec![1000.0, 2000.0, 5000.0, 10000.0, 20000.0, 40000.0],
    };
    println!("pool N = {pool}, corruption f = {f}\n");
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "C", "t", "c", "c'", "eps", "k", "online gain"
    );
    for c_param in sweep {
        match GapAnalysis::compute(c_param, f, SecurityParams::default()) {
            Some(a) => println!(
                "{:>8} {:>8} {:>8} {:>8} {:>8.3} {:>8} {:>11}×",
                c_param as u64,
                a.t,
                a.c,
                a.c_prime,
                a.eps,
                a.k,
                a.improvement_factor()
            ),
            None => println!("{:>8}  infeasible (no positive gap at f = {f})", c_param as u64),
        }
    }
    Ok(())
}

/// `yoso table1` — the paper's Table 1.
pub fn table1() -> Result<(), String> {
    println!("{:>7} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8}", "C", "f", "t", "c", "c'", "eps", "k");
    for r in yoso_sortition::table1() {
        match r.analysis {
            Some(a) => println!(
                "{:>7} {:>6.2} {:>8} {:>8} {:>8} {:>8.2} {:>8}",
                r.c_param as u64, r.f, a.t, a.c, a.c_prime, a.eps, a.k
            ),
            None => println!(
                "{:>7} {:>6.2} {:>8} {:>8} {:>8} {:>8} {:>8}",
                r.c_param as u64, r.f, "-", "-", "-", "-", "-"
            ),
        }
    }
    Ok(())
}

/// `yoso paillier` — threshold-Paillier smoke run with timings.
pub fn paillier(opts: &Opts) -> Result<(), String> {
    let bits: usize = get(opts, "bits", 160)?;
    let parties: usize = get(opts, "parties", 3)?;
    let threshold: usize = get(opts, "threshold", 1)?;
    let seed: u64 = get(opts, "seed", 7)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    let start = std::time::Instant::now();
    let (pk, shares) = ThresholdPaillier::keygen(&mut rng, bits, parties, threshold)
        .map_err(|e| e.to_string())?;
    println!("keygen ({}-bit N, n = {parties}, t = {threshold}): {:.2?}", 2 * bits, start.elapsed());

    let m = Nat::from(123_456_789u64);
    let start = std::time::Instant::now();
    let (ct, _) = ThresholdPaillier::encrypt(&mut rng, &pk, &m);
    println!("encrypt: {:.2?}", start.elapsed());

    let start = std::time::Instant::now();
    let partials: Vec<_> = shares
        .iter()
        .take(threshold + 1)
        .map(|s| ThresholdPaillier::partial_decrypt(&pk, s, &ct))
        .collect();
    println!("{} partial decryptions: {:.2?}", partials.len(), start.elapsed());

    let start = std::time::Instant::now();
    let out = ThresholdPaillier::combine(&pk, &partials, &Nat::one()).map_err(|e| e.to_string())?;
    println!("combine: {:.2?}", start.elapsed());
    println!("\ndecrypted: {out} (expected {m})");
    if out != m {
        return Err("decryption mismatch".into());
    }
    Ok(())
}

/// `yoso experiments` — abbreviated versions of the headline
/// experiments (full versions: `cargo run -p yoso-bench --bin …`).
pub fn experiments() -> Result<(), String> {
    use yoso_circuit::generators;

    println!("== E2 (quick): online elements/gate vs n (ε = 0.25) ==\n");
    println!("{:>6} {:>14} {:>14}", "n", "packed", "baseline");
    for n in [8usize, 16, 32, 64] {
        let params = ProtocolParams::from_gap(n, 0.25).map_err(|e| e.to_string())?;
        let circuit =
            generators::wide_layered::<F61>(params.k * 2, 2, 2).map_err(|e| e.to_string())?;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let inputs: Vec<Vec<F61>> = circuit
            .inputs_per_client()
            .iter()
            .map(|ws| ws.iter().map(|_| F61::random(&mut rng)).collect())
            .collect();
        let packed = Engine::new(params, ExecutionConfig::sweep())
            .run(&mut rng, &circuit, &inputs, &Adversary::none())
            .map_err(|e| e.to_string())?;
        let base_params = ProtocolParams::new(n, params.t, 1).map_err(|e| e.to_string())?;
        let baseline =
            yoso_core::baseline::BaselineEngine::new(base_params, ExecutionConfig::sweep())
                .run(&mut rng, &circuit, &inputs, &Adversary::none())
                .map_err(|e| e.to_string())?;
        println!(
            "{:>6} {:>14.1} {:>14.1}",
            n,
            packed.online_elements_per_gate(),
            baseline.elements("online/mult") as f64 / baseline.mul_gates as f64
        );
    }

    println!("\n== E7 (quick): GOD under every attack (n = 12, t = 3) ==\n");
    let params = ProtocolParams::new(12, 3, 2).map_err(|e| e.to_string())?;
    let circuit = generators::inner_product::<F61>(4).map_err(|e| e.to_string())?;
    for attack in [
        ActiveAttack::WrongValue,
        ActiveAttack::BadProof,
        ActiveAttack::Silent,
        ActiveAttack::AdditiveOffset,
    ] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let inputs: Vec<Vec<F61>> = circuit
            .inputs_per_client()
            .iter()
            .map(|ws| ws.iter().map(|_| F61::random(&mut rng)).collect())
            .collect();
        let expected = circuit.evaluate(&inputs).map_err(|e| e.to_string())?;
        let run = Engine::new(params, ExecutionConfig::default())
            .run(&mut rng, &circuit, &inputs, &Adversary::active(3, attack))
            .map_err(|e| e.to_string())?;
        println!(
            "  {attack:?}: {}",
            if run.outputs == expected { "correct output delivered" } else { "FAILED" }
        );
    }
    println!("\nfull experiment suite: cargo run --release -p yoso-bench --bin <table1|online_comm|offline_comm|improvement|failstop|sortition_mc|god_attack|it_comparison|ablation_packing|ablation_nizk>");
    Ok(())
}
