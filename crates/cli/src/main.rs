//! `yoso` — command-line driver for the packed YOSO MPC stack.
//!
//! ```text
//! yoso run   --circuit inner-product --size 8 --n 16 --eps 0.2
//! yoso run   --circuit stats --size 4 --clients 3 --attack wrong-value
//! yoso run   --spawn-workers 4 --n 16 --eps 0.2
//! yoso worker --roles 0..4 --board tcp://127.0.0.1:7310 --n 16 --eps 0.2
//! yoso plan  --pool 1000000 --f 0.10
//! yoso table1
//! yoso paillier --bits 192
//! yoso help
//! ```

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::process::ExitCode;

mod commands;

// With `--features bench-alloc` every allocation in this process is
// counted, so `yoso bench-scale` can report process-wide allocations
// per gate alongside the hot-path counters. Ordinary builds keep the
// system allocator unwrapped.
#[cfg(feature = "bench-alloc")]
#[global_allocator]
static GLOBAL: &stats_alloc::StatsAlloc<std::alloc::System> = &stats_alloc::INSTRUMENTED_SYSTEM;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        print_help();
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "run" => commands::run(&opts),
        "worker" => commands::worker(&opts),
        "board-stats" => commands::board_stats(&opts),
        "plan" => commands::plan(&opts),
        "table1" => commands::table1(),
        "bench-scale" => commands::bench_scale(&opts),
        "paillier" => commands::paillier(&opts),
        "experiments" => commands::experiments(),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `yoso help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `--key value` pairs (and bare `--flag` as `"true"`).
fn parse_opts(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut opts = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, got {arg:?}"))?;
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
            _ => "true".to_string(),
        };
        opts.insert(key.to_string(), value);
    }
    Ok(opts)
}

fn print_help() {
    println!(
        "yoso — packed YOSO MPC simulator and experiment driver

USAGE:
  yoso run [OPTIONS]         run the full three-phase protocol
  yoso worker [OPTIONS]      one role-sharded worker of a multi-host run
  yoso board-stats [OPTIONS] audit a remote board-server's posting log
  yoso plan [OPTIONS]        committee-size planning (paper §6)
  yoso table1                regenerate the paper's Table 1
  yoso bench-scale [--smoke] allocation/RSS profile at Table-1 sizes
                             (writes BENCH_scale.json; --smoke shrinks
                             the sizes and skips the ratio gates; build
                             with --features bench-alloc for process-
                             wide allocation counts)
  yoso paillier [OPTIONS]    threshold-Paillier smoke run
  yoso experiments           quick versions of the headline experiments
  yoso help                  this message

A board server for multi-process runs is started with the companion
`board-server` binary. A single driver posts to it with `yoso run
--board tcp://HOST:PORT`; a role-sharded fleet splits the committee
work across `yoso worker --roles a..b` processes (one per host if you
like) that share the board — or use `yoso run --spawn-workers N`,
which starts an in-tree server and forks the workers locally. Either
way the transcript is byte-identical to a single-process run, and
`yoso board-stats --board tcp://HOST:PORT` aggregates the per-worker
metering from the shared posting log.

RUN OPTIONS:
  --circuit NAME    inner-product | poly-eval | stats | wide | average |
                    matmul | set-membership                              [inner-product]
  --size N          circuit size parameter                               [8]
  --clients N       clients (stats/average circuits)                     [2]
  --n N             committee size                                       [16]
  --eps F           corruption gap ε in (0, 0.5)                         [0.2]
  --attack NAME     none | wrong-value | bad-proof | silent | additive   [none]
  --t-mal N         malicious roles per committee (≤ t)                  [t]
  --crashes N       fail-stop roles per committee (online mult phase)    [0]
  --seed N          RNG seed                                             [7]
  --threads N       worker threads for triple/gate fan-out
                    (any value yields a byte-identical transcript)       [1]
  --no-proofs       skip NIZK computation (metering unchanged)
  --dist-transform  distribute the offline Step-4 packing transforms
                    across the worker fleet (DESIGN §13): each worker
                    evaluates only its owned share rows and the batch
                    results are exchanged as TransformSlice postings;
                    transcripts stay byte-identical at any worker count
  --board ADDR      post to a shared board-server (tcp://HOST:PORT)
                    instead of the in-process board
  --board-window N  post frames kept in flight per flush on a TCP
                    board: 1 = strict lockstep (one round trip per
                    frame), larger = pipelined with one coalesced ack
                    per window; never affects the transcript  [transport default, 32]
  --spawn-workers N run role-sharded: in-tree board server + N local
                    worker processes (this process leads as worker 0)

WORKER OPTIONS (plus all RUN options, identical across the fleet):
  --roles A..B      the half-open committee-member range this worker
                    owns (proof work + posting); required
  --board ADDR      the shared board-server (tcp://HOST:PORT); required

BOARD-STATS OPTIONS:
  --board ADDR      the board-server to audit (tcp://HOST:PORT), required
  --dump FILE       write the raw posting log (round|author|phase|message
                    per line) for transcript diffing
  --shutdown        ask the server to shut down after reading

PLAN OPTIONS:
  --pool N          global party count                                   [1000000]
  --f F             global corruption ratio                              [0.1]
  --c N             sortition parameter (omit to sweep)

PAILLIER OPTIONS:
  --bits N          prime size in bits (modulus is 2N bits)              [160]
  --parties N       committee size                                       [3]
  --threshold N     corruption threshold                                 [1]
  --seed N          RNG seed                                             [7]"
    );
}
