//! Property-based tests for field axioms, polynomials and
//! Lagrange interpolation.

use proptest::prelude::*;
use yoso_field::{lagrange, EvalDomain, F61, NttDomain, Poly, PrimeField};

fn felt() -> impl Strategy<Value = F61> {
    any::<u64>().prop_map(F61::from_u64)
}

fn poly_strategy(max_deg: usize) -> impl Strategy<Value = Poly<F61>> {
    prop::collection::vec(felt(), 0..=max_deg + 1).prop_map(Poly::new)
}

proptest! {
    #[test]
    fn field_axioms(a in felt(), b in felt(), c in felt()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a + F61::ZERO, a);
        prop_assert_eq!(a * F61::ONE, a);
        prop_assert_eq!(a + (-a), F61::ZERO);
        prop_assert_eq!(a - b, a + (-b));
    }

    #[test]
    fn inverse_is_two_sided(a in felt()) {
        prop_assume!(!a.is_zero());
        let inv = a.inv().unwrap();
        prop_assert_eq!(a * inv, F61::ONE);
        prop_assert_eq!(inv * a, F61::ONE);
        prop_assert_eq!(inv.inv().unwrap(), a);
    }

    #[test]
    fn pow_is_homomorphic(a in felt(), e1 in 0u64..1000, e2 in 0u64..1000) {
        prop_assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
    }

    #[test]
    fn bytes_roundtrip(a in felt()) {
        prop_assert_eq!(F61::from_bytes(&a.to_bytes()).unwrap(), a);
    }

    #[test]
    fn poly_ring_axioms(p in poly_strategy(6), q in poly_strategy(6), r in poly_strategy(4)) {
        prop_assert_eq!(&p + &q, &q + &p);
        prop_assert_eq!(&p * &q, &q * &p);
        prop_assert_eq!(&(&p + &q) * &r, &(&p * &r) + &(&q * &r));
        prop_assert_eq!(&(&p - &q) + &q, p);
    }

    #[test]
    fn poly_eval_is_ring_hom(p in poly_strategy(6), q in poly_strategy(6), x in felt()) {
        prop_assert_eq!((&p + &q).eval(x), p.eval(x) + q.eval(x));
        prop_assert_eq!((&p * &q).eval(x), p.eval(x) * q.eval(x));
    }

    #[test]
    fn interpolation_roundtrip(p in poly_strategy(9)) {
        let deg = p.degree().unwrap_or(0);
        let xs: Vec<F61> = (1..=deg as u64 + 1).map(F61::from_u64).collect();
        let ys = p.eval_many(&xs);
        let q = lagrange::interpolate(&xs, &ys).unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn basis_reproduces_polynomial_values(p in poly_strategy(7), x in felt()) {
        let m = p.degree().unwrap_or(0) + 1;
        let xs: Vec<F61> = (1..=m as u64).map(F61::from_u64).collect();
        let basis = lagrange::basis_at(&xs, x).unwrap();
        let ys = p.eval_many(&xs);
        let via_basis: F61 = basis.iter().zip(&ys).map(|(&b, &y)| b * y).sum();
        prop_assert_eq!(via_basis, p.eval(x));
    }

    #[test]
    fn poly_division_invariant(p in poly_strategy(10), q in poly_strategy(5)) {
        prop_assume!(!q.is_zero());
        let (quot, rem) = p.div_rem(&q);
        prop_assert_eq!(&(&quot * &q) + &rem, p);
        if let Some(rd) = rem.degree() {
            prop_assert!(rd < q.degree().unwrap());
        }
    }

    #[test]
    fn batch_invert_agrees(vals in prop::collection::vec(felt(), 1..40)) {
        prop_assume!(vals.iter().all(|v| !v.is_zero()));
        let inv = lagrange::batch_invert(&vals).unwrap();
        for (v, i) in vals.iter().zip(&inv) {
            prop_assert_eq!(*v * *i, F61::ONE);
        }
    }
}

/// Pairwise-distinct evaluation points (1 ≤ n < 24).
fn distinct_points() -> impl Strategy<Value = Vec<F61>> {
    prop::collection::vec(felt(), 1..24).prop_map(|mut xs| {
        xs.sort_by_key(PrimeField::as_u64);
        xs.dedup();
        xs
    })
}

// Bit-identity of the EvalDomain fast paths against the naive
// reference implementations: exact field arithmetic over canonical
// representations means the cached/barycentric code must agree with
// `lagrange::{basis_at, interpolate}` on every bit, not just up to
// rounding.
proptest! {
    #[test]
    fn domain_basis_bit_identical_to_naive(xs in distinct_points(), x in felt()) {
        let domain = EvalDomain::new(xs.clone()).unwrap();
        let naive = lagrange::basis_at(&xs, x).unwrap();
        // Cold cache, then warm cache: both must equal the reference.
        prop_assert_eq!(&*domain.basis_at(x), &naive);
        prop_assert_eq!(&*domain.basis_at(x), &naive);
    }

    #[test]
    fn domain_basis_at_node_bit_identical(xs in distinct_points(), pick in any::<prop::sample::Index>()) {
        let domain = EvalDomain::new(xs.clone()).unwrap();
        let x = xs[pick.index(xs.len())];
        let naive = lagrange::basis_at(&xs, x).unwrap();
        prop_assert_eq!(&*domain.basis_at(x), &naive);
    }

    #[test]
    fn domain_interpolate_bit_identical_to_naive(xs in distinct_points(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ys: Vec<F61> = xs.iter().map(|_| F61::random(&mut rng)).collect();
        let domain = EvalDomain::new(xs.clone()).unwrap();
        let naive = lagrange::interpolate(&xs, &ys).unwrap();
        prop_assert_eq!(domain.interpolate(&ys).unwrap(), naive.clone());
        // Batched interpolation shares quotient polynomials; still
        // bit-identical.
        let many = domain.interpolate_many(&[ys.clone(), ys]).unwrap();
        prop_assert_eq!(&many[0], &naive);
        prop_assert_eq!(&many[1], &naive);
    }

    #[test]
    fn domain_eval_many_bit_identical_to_naive(
        xs in distinct_points(),
        targets in prop::collection::vec(felt(), 1..8),
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ys: Vec<F61> = xs.iter().map(|_| F61::random(&mut rng)).collect();
        let domain = EvalDomain::new(xs.clone()).unwrap();
        let got = domain.eval_many(&ys, &targets).unwrap();
        for (&t, &g) in targets.iter().zip(&got) {
            prop_assert_eq!(g, lagrange::eval_at(&xs, &ys, t).unwrap());
        }
    }

    #[test]
    fn domain_duplicate_points_rejected_like_naive(xs in distinct_points(), dup in any::<prop::sample::Index>()) {
        // Inject a duplicate node; both paths must report it.
        let mut bad = xs.clone();
        bad.push(xs[dup.index(xs.len())]);
        let ys = vec![F61::ZERO; bad.len()];
        prop_assert_eq!(
            EvalDomain::new(bad.clone()).unwrap_err(),
            lagrange::interpolate(&bad, &ys).unwrap_err()
        );
    }

    #[test]
    fn domain_length_mismatch_rejected(xs in distinct_points(), extra in 1usize..4) {
        let domain = EvalDomain::new(xs.clone()).unwrap();
        let ys = vec![F61::ZERO; xs.len() + extra];
        prop_assert_eq!(
            domain.interpolate(&ys).unwrap_err(),
            lagrange::interpolate(&xs, &ys).unwrap_err()
        );
    }

    #[test]
    fn zero_element_inversion_rejected(vals in prop::collection::vec(felt(), 1..16), at in any::<prop::sample::Index>()) {
        // batch_invert underlies both the naive and the cached paths;
        // a zero element must surface as ZeroInverse, not a wrong row.
        let mut vals = vals;
        let pos = at.index(vals.len());
        vals[pos] = F61::ZERO;
        prop_assert_eq!(
            lagrange::batch_invert(&vals).unwrap_err(),
            yoso_field::FieldError::ZeroInverse
        );
    }
}

/// Smooth divisors of `p − 1 = 2·3²·5²·7·11·13·31·41·61·…` small
/// enough for exhaustive cross-checking against the Lagrange path.
const NTT_SIZES: [usize; 10] = [1, 2, 3, 6, 9, 14, 15, 18, 33, 45];

fn nonzero_felt() -> impl Strategy<Value = F61> {
    any::<u64>().prop_map(|v| F61::from_u64(v.max(1) % (F61::MODULUS - 1) + 1))
}

// Bit-identity of the mixed-radix transform paths against the Lagrange
// reference: the NttDomain evaluates/interpolates the same unique
// polynomial with exact field arithmetic, so forward/inverse must agree
// with Poly::eval_many / lagrange::interpolate / EvalDomain on every
// bit, across subgroup and coset domains.
proptest! {
    #[test]
    fn ntt_forward_bit_identical_to_horner(
        pick in any::<prop::sample::Index>(),
        shift in nonzero_felt(),
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let size = NTT_SIZES[pick.index(NTT_SIZES.len())];
        let domain = NttDomain::<F61>::coset(size, shift).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = Poly::<F61>::random(&mut rng, size - 1);
        prop_assert_eq!(domain.forward(p.coeffs()).unwrap(), p.eval_many(domain.points()));
    }

    #[test]
    fn ntt_interpolate_bit_identical_to_lagrange(
        pick in any::<prop::sample::Index>(),
        shift in nonzero_felt(),
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let size = NTT_SIZES[pick.index(NTT_SIZES.len())];
        let domain = NttDomain::<F61>::coset(size, shift).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ys: Vec<F61> = (0..size).map(|_| F61::random(&mut rng)).collect();
        let fast = domain.interpolate(&ys).unwrap();
        let slow = lagrange::interpolate(domain.points(), &ys).unwrap();
        let cached = EvalDomain::new(domain.points().to_vec()).unwrap();
        prop_assert_eq!(&fast, &slow);
        prop_assert_eq!(&fast, &cached.interpolate(&ys).unwrap());
    }

    #[test]
    fn ntt_roundtrip_recovers_padded_coefficients(
        pick in any::<prop::sample::Index>(),
        shift in nonzero_felt(),
        seed in any::<u64>(),
        deg_frac in 0.0f64..1.0,
    ) {
        use rand::SeedableRng;
        let size = NTT_SIZES[pick.index(NTT_SIZES.len())];
        let domain = NttDomain::<F61>::coset(size, shift).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Degrees below the boundary exercise the zero-padded path.
        let deg = ((size as f64 - 1.0) * deg_frac) as usize;
        let p = Poly::<F61>::random(&mut rng, deg);
        let evals = domain.evaluate(p.coeffs()).unwrap();
        prop_assert_eq!(domain.interpolate(&evals).unwrap(), p);
    }

    #[test]
    fn ntt_from_points_rederives_the_domain(
        pick in any::<prop::sample::Index>(),
        shift in nonzero_felt(),
    ) {
        let size = NTT_SIZES[pick.index(NTT_SIZES.len())];
        let domain = NttDomain::<F61>::coset(size, shift).unwrap();
        let again = NttDomain::from_points(domain.points()).unwrap();
        prop_assert_eq!(again.root(), domain.root());
        prop_assert_eq!(again.shift(), domain.shift());
        prop_assert_eq!(again.points(), domain.points());
    }
}
