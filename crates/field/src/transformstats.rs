//! Hot transform-work counters for the distributed-transform split.
//!
//! The distributed offline path (DESIGN §13) divides the per-batch
//! dealing/degree-reduction transforms across the worker fleet: each
//! worker evaluates only the share rows it owns instead of running the
//! full-domain transform. This module is the ledger that makes the
//! division *measurable*: full mixed-radix transforms report their
//! butterfly multiplications here, and the slice paths (range Horner
//! evaluation, basis-row dot products) report their per-row
//! multiplications, so `yoso bench-scale` can compare total transform
//! work between a solo run (full transforms everywhere) and a fleet
//! run (each worker paying only its slice). The counters are
//! process-global relaxed atomics — like [`crate::allocstats`] they
//! never influence control flow or the transcript.

use std::sync::atomic::{AtomicU64, Ordering};

/// Field multiplications spent inside full mixed-radix transforms
/// (forward, evaluate, inverse): `N · Σ rᵢ` per transform.
static BUTTERFLY_MULS: AtomicU64 = AtomicU64::new(0);

/// Field multiplications spent on slice work: range Horner evaluation
/// and share-row dot products (Lagrange basis rows, recombination).
static SLICE_MULS: AtomicU64 = AtomicU64::new(0);

/// Records `n` butterfly multiplications from a full transform.
#[inline]
pub fn bump_butterflies(n: u64) {
    BUTTERFLY_MULS.fetch_add(n, Ordering::Relaxed);
}

/// Records `n` slice multiplications (Horner steps or dot-product
/// terms on the share-row hot path).
#[inline]
pub fn bump_slice_muls(n: u64) {
    SLICE_MULS.fetch_add(n, Ordering::Relaxed);
}

/// Butterfly multiplications recorded since process start (or the last
/// [`reset`]).
pub fn butterfly_muls() -> u64 {
    BUTTERFLY_MULS.load(Ordering::Relaxed)
}

/// Slice multiplications recorded since process start (or the last
/// [`reset`]).
pub fn slice_muls() -> u64 {
    SLICE_MULS.load(Ordering::Relaxed)
}

/// Total transform work units: butterfly plus slice multiplications.
pub fn transform_ops() -> u64 {
    butterfly_muls().saturating_add(slice_muls())
}

/// Resets both counters to zero (bench harnesses only; concurrent
/// increments from other threads may interleave).
pub fn reset() {
    BUTTERFLY_MULS.store(0, Ordering::Relaxed);
    SLICE_MULS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_independently() {
        // Process-global counters and concurrent tests: assert deltas
        // only, and only lower bounds.
        let (b0, s0) = (butterfly_muls(), slice_muls());
        bump_butterflies(7);
        bump_slice_muls(5);
        assert!(butterfly_muls() >= b0 + 7);
        assert!(slice_muls() >= s0 + 5);
        assert!(transform_ops() >= b0 + s0 + 12);
    }
}
