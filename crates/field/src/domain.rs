//! Precomputed evaluation domains for fast repeated interpolation.
//!
//! The protocol interpolates and recombines over the *same* node sets
//! thousands of times: every share dealt, every μ-reconstruction and
//! every homomorphic packing step reuses one of a handful of point
//! sets (secret slots ∪ party points). [`EvalDomain`] does the
//! node-dependent work once —
//!
//! - barycentric weights `w_j = 1 / Π_{m≠j}(x_j − x_m)`,
//! - the master polynomial `N(x) = Π_j (x − x_j)`,
//! - a cache of recombination (Lagrange basis) vectors keyed by
//!   target point
//!
//! — after which [`basis_at`](EvalDomain::basis_at) costs `O(n)` per
//! fresh target (one batch inversion) and `O(1)` per repeated target,
//! and [`interpolate`](EvalDomain::interpolate) costs `O(n²)` instead
//! of the naive `O(n³)`. Construction itself ([`EvalDomain::new`])
//! remains `O(n²)`: this is the *cold* cost paid once per node set.
//!
//! For node sets that happen to form a multiplicative subgroup coset,
//! [`NttDomain`](crate::NttDomain) drops both the cold construction
//! and interpolation to `O(n log n)`. Note that `F_{2^61−1}` has
//! 2-adicity 1 (`p − 1 = 2·(2^60 − 1)` with `2^60 − 1` odd), so no
//! power-of-two subgroup beyond order 2 exists there; the transform
//! domains are *mixed-radix* over the smooth divisors of `p − 1` (see
//! [`ntt`](crate::ntt)). Arbitrary node sets — e.g. the sequential
//! party points `1..=n` — are not subgroup cosets, and `EvalDomain`
//! remains the general-purpose (and fallback) path for them.
//!
//! All arithmetic is exact field arithmetic over canonical
//! representations, so every fast path returns *bit-identical* results
//! to the reference implementations in [`lagrange`](crate::lagrange),
//! and the transform path returns bit-identical results to this one;
//! property tests in `tests/proptests.rs` pin this down.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use crate::{lagrange, FieldError, Poly, PrimeField};

/// A fixed set of pairwise-distinct evaluation points with
/// precomputed barycentric data and a recombination-vector cache.
#[derive(Debug)]
pub struct EvalDomain<F: PrimeField> {
    points: Vec<F>,
    /// Barycentric weights `w_j = 1 / Π_{m≠j}(x_j − x_m)`.
    weights: Vec<F>,
    /// Master polynomial `N(x) = Π_j (x − x_j)` (monic, degree `n`).
    master: Poly<F>,
    /// Recombination vectors keyed by the canonical `u64` of the
    /// target point.
    basis_cache: RwLock<HashMap<u64, Arc<Vec<F>>>>,
    /// Lazily-built quotient polynomials `N(x)/(x − x_j)`, shared by
    /// batched interpolation.
    quotients: RwLock<Option<Arc<Vec<Vec<F>>>>>,
}

impl<F: PrimeField> Clone for EvalDomain<F> {
    fn clone(&self) -> Self {
        // Clones share nothing mutable; warmed cache entries are
        // carried over as cheap `Arc` copies.
        let basis = read_lock(&self.basis_cache).clone();
        let quotients = read_lock(&self.quotients).clone();
        EvalDomain {
            points: self.points.clone(),
            weights: self.weights.clone(),
            master: self.master.clone(),
            basis_cache: RwLock::new(basis),
            quotients: RwLock::new(quotients),
        }
    }
}

fn read_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<F: PrimeField> EvalDomain<F> {
    /// Builds a domain over `points`.
    ///
    /// Costs `O(n²)` multiplications (weights + master polynomial);
    /// intended to be done once per node set and reused.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::DuplicatePoint`] if any two points
    /// coincide.
    pub fn new(points: Vec<F>) -> Result<Self, FieldError> {
        let mut keys: Vec<u64> = points.iter().map(PrimeField::as_u64).collect();
        keys.sort_unstable();
        if keys.windows(2).any(|w| w[0] == w[1]) {
            return Err(FieldError::DuplicatePoint);
        }
        let master = Poly::from_roots(&points);
        let mut denoms = Vec::with_capacity(points.len());
        for (j, &xj) in points.iter().enumerate() {
            let mut d = F::ONE;
            for (m, &xm) in points.iter().enumerate() {
                if m != j {
                    d *= xj - xm;
                }
            }
            denoms.push(d);
        }
        // Denominators are products of differences of distinct points,
        // hence non-zero; inversion cannot fail.
        let weights = lagrange::batch_invert(&denoms)?;
        Ok(EvalDomain {
            points,
            weights,
            master,
            basis_cache: RwLock::new(HashMap::new()),
            quotients: RwLock::new(None),
        })
    }

    /// The domain's evaluation points, in construction order.
    pub fn points(&self) -> &[F] {
        &self.points
    }

    /// Number of points in the domain.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The recombination vector `(l_1(x), …, l_n(x))` for this node
    /// set: coefficients with `f(x) = Σ_j l_j(x)·f(x_j)` for every
    /// polynomial `f` of degree `< n`.
    ///
    /// First call per target is `O(n)`; repeats are a cache hit.
    /// Bit-identical to [`lagrange::basis_at`] on the same inputs.
    pub fn basis_at(&self, x: F) -> Arc<Vec<F>> {
        let key = x.as_u64();
        if let Some(hit) = read_lock(&self.basis_cache).get(&key) {
            return Arc::clone(hit);
        }
        let row = Arc::new(self.basis_row_uncached(x));
        Arc::clone(write_lock(&self.basis_cache).entry(key).or_insert(row))
    }

    fn basis_row_uncached(&self, x: F) -> Vec<F> {
        // Target on a node: the basis row is an indicator vector.
        if let Some(pos) = self.points.iter().position(|&xj| xj == x) {
            let mut out = vec![F::ZERO; self.points.len()];
            out[pos] = F::ONE;
            return out;
        }
        // First barycentric form: l_j(x) = N(x) · w_j / (x − x_j).
        let diffs: Vec<F> = self.points.iter().map(|&xj| x - xj).collect();
        let n_at_x: F = diffs.iter().copied().product();
        let inv = lagrange::batch_invert(&diffs)
            .expect("diffs are non-zero: x is not a node");
        self.weights
            .iter()
            .zip(inv)
            .map(|(&w, d)| n_at_x * w * d)
            .collect()
    }

    /// Recombination vectors for many targets (cache-backed rows).
    pub fn basis_rows(&self, targets: &[F]) -> Vec<Arc<Vec<F>>> {
        targets.iter().map(|&t| self.basis_at(t)).collect()
    }

    /// Evaluates the interpolating polynomial through
    /// `(points[j], ys[j])` at every target, without constructing the
    /// polynomial: one cached recombination vector and an `O(n)` dot
    /// product per target.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::LengthMismatch`] if `ys` does not match
    /// the domain size.
    pub fn eval_many(&self, ys: &[F], targets: &[F]) -> Result<Vec<F>, FieldError> {
        self.check_len(ys)?;
        Ok(targets
            .iter()
            .map(|&t| {
                let row = self.basis_at(t);
                row.iter().zip(ys).map(|(&b, &y)| b * y).sum()
            })
            .collect())
    }

    /// Interpolates the unique polynomial of degree `< n` through
    /// `(points[j], ys[j])` in `O(n²)` via synthetic division of the
    /// master polynomial, instead of the naive `O(n³)`.
    ///
    /// Bit-identical to [`lagrange::interpolate`] on the same inputs.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::LengthMismatch`] if `ys` does not match
    /// the domain size.
    pub fn interpolate(&self, ys: &[F]) -> Result<Poly<F>, FieldError> {
        self.check_len(ys)?;
        let n = self.points.len();
        if n == 0 {
            return Ok(Poly::zero());
        }
        let master = self.master.coeffs();
        let mut acc = vec![F::ZERO; n];
        let mut quotient = vec![F::ZERO; n];
        for (j, (&xj, &yj)) in self.points.iter().zip(ys).enumerate() {
            let c = yj * self.weights[j];
            if c.is_zero() {
                continue;
            }
            synthetic_quotient(master, xj, &mut quotient);
            for (a, &q) in acc.iter_mut().zip(&quotient) {
                *a += c * q;
            }
        }
        Ok(Poly::new(acc))
    }

    /// Interpolates one polynomial per row of `batches`, sharing the
    /// per-node quotient polynomials `N(x)/(x − x_j)` across the whole
    /// batch (they are computed once per domain and memoised).
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::LengthMismatch`] if any row does not
    /// match the domain size.
    pub fn interpolate_many(&self, batches: &[Vec<F>]) -> Result<Vec<Poly<F>>, FieldError> {
        for ys in batches {
            self.check_len(ys)?;
        }
        let n = self.points.len();
        if n == 0 {
            return Ok(batches.iter().map(|_| Poly::zero()).collect());
        }
        let quotients = self.quotient_polys();
        Ok(batches
            .iter()
            .map(|ys| {
                let mut acc = vec![F::ZERO; n];
                for (j, &yj) in ys.iter().enumerate() {
                    let c = yj * self.weights[j];
                    if c.is_zero() {
                        continue;
                    }
                    for (a, &q) in acc.iter_mut().zip(&quotients[j]) {
                        *a += c * q;
                    }
                }
                Poly::new(acc)
            })
            .collect())
    }

    fn quotient_polys(&self) -> Arc<Vec<Vec<F>>> {
        if let Some(q) = read_lock(&self.quotients).as_ref() {
            return Arc::clone(q);
        }
        let n = self.points.len();
        let master = self.master.coeffs();
        let mut all = Vec::with_capacity(n);
        let mut quotient = vec![F::ZERO; n];
        for &xj in &self.points {
            synthetic_quotient(master, xj, &mut quotient);
            all.push(quotient.clone());
        }
        let arc = Arc::new(all);
        let mut slot = write_lock(&self.quotients);
        if let Some(existing) = slot.as_ref() {
            return Arc::clone(existing);
        }
        *slot = Some(Arc::clone(&arc));
        arc
    }

    fn check_len(&self, ys: &[F]) -> Result<(), FieldError> {
        if ys.len() != self.points.len() {
            return Err(FieldError::LengthMismatch { xs: self.points.len(), ys: ys.len() });
        }
        Ok(())
    }
}

/// Writes the coefficients of `master / (x − root)` into `out`
/// (`out.len() == deg(master)`); exact since `root` is a root of the
/// monic master polynomial.
fn synthetic_quotient<F: PrimeField>(master: &[F], root: F, out: &mut [F]) {
    let n = out.len();
    debug_assert_eq!(master.len(), n + 1);
    out[n - 1] = master[n];
    for i in (0..n - 1).rev() {
        out[i] = master[i + 1] + root * out[i + 1];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::F61;
    use rand::SeedableRng;

    fn f(v: u64) -> F61 {
        F61::from(v)
    }

    fn domain(points: &[u64]) -> EvalDomain<F61> {
        EvalDomain::new(points.iter().copied().map(f).collect()).unwrap()
    }

    #[test]
    fn rejects_duplicates() {
        let err = EvalDomain::new(vec![f(1), f(2), f(1)]).unwrap_err();
        assert_eq!(err, FieldError::DuplicatePoint);
    }

    #[test]
    fn basis_matches_reference() {
        let d = domain(&[1, 2, 3, 4, 5, 6, 7]);
        for x in [f(0), f(3), f(99), F61::from_i64(-4)] {
            let fast = d.basis_at(x);
            let slow = lagrange::basis_at(d.points(), x).unwrap();
            assert_eq!(*fast, slow);
        }
        // Second call hits the cache and returns the same row.
        let again = d.basis_at(f(99));
        assert_eq!(*again, *d.basis_at(f(99)));
    }

    #[test]
    fn interpolate_matches_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let d = domain(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let p = Poly::<F61>::random(&mut rng, 8);
        let ys = p.eval_many(d.points());
        let fast = d.interpolate(&ys).unwrap();
        let slow = lagrange::interpolate(d.points(), &ys).unwrap();
        assert_eq!(fast, slow);
        assert_eq!(fast, p);
    }

    #[test]
    fn interpolate_many_matches_single() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let d = domain(&[3, 1, 4, 15, 9, 2, 6]);
        let batches: Vec<Vec<F61>> = (0..5)
            .map(|_| Poly::<F61>::random(&mut rng, 6).eval_many(d.points()))
            .collect();
        let many = d.interpolate_many(&batches).unwrap();
        for (ys, got) in batches.iter().zip(&many) {
            assert_eq!(got, &d.interpolate(ys).unwrap());
        }
    }

    #[test]
    fn eval_many_transports_values() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let d = domain(&[1, 2, 3, 4, 5]);
        let p = Poly::<F61>::random(&mut rng, 4);
        let ys = p.eval_many(d.points());
        let targets = [f(0), f(7), F61::from_i64(-2), f(3)];
        let got = d.eval_many(&ys, &targets).unwrap();
        for (&t, &g) in targets.iter().zip(&got) {
            assert_eq!(g, p.eval(t));
        }
    }

    #[test]
    fn length_mismatch_is_reported() {
        let d = domain(&[1, 2, 3]);
        assert_eq!(
            d.interpolate(&[f(1)]).unwrap_err(),
            FieldError::LengthMismatch { xs: 3, ys: 1 }
        );
        assert_eq!(
            d.eval_many(&[f(1), f(2)], &[f(0)]).unwrap_err(),
            FieldError::LengthMismatch { xs: 3, ys: 2 }
        );
    }

    #[test]
    fn empty_domain_behaves() {
        let d = EvalDomain::<F61>::new(Vec::new()).unwrap();
        assert!(d.is_empty());
        assert!(d.interpolate(&[]).unwrap().is_zero());
        assert_eq!(d.eval_many(&[], &[f(5)]).unwrap(), vec![F61::ZERO]);
    }

    #[test]
    fn single_point_domain_roundtrips() {
        let d = domain(&[42]);
        assert_eq!(d.len(), 1);
        let p = d.interpolate(&[f(7)]).unwrap();
        assert_eq!(p, Poly::constant(f(7)));
        assert_eq!(d.eval_many(&[f(7)], &[f(0), f(99)]).unwrap(), vec![f(7), f(7)]);
        assert_eq!(*d.basis_at(f(42)), vec![F61::ONE]);
    }

    #[test]
    fn degree_boundary_roundtrip() {
        // Degree exactly n − 1 (leading coefficient pinned nonzero) and
        // degree 0 both survive an interpolate/eval round-trip.
        let d = domain(&[2, 4, 6, 8, 10]);
        let mut coeffs = vec![f(9), f(0), f(0), f(0), f(123)];
        let full = Poly::new(coeffs.clone());
        assert_eq!(full.degree(), Some(4));
        assert_eq!(d.interpolate(&full.eval_many(d.points())).unwrap(), full);
        coeffs.truncate(1);
        let constant = Poly::new(coeffs);
        assert_eq!(d.interpolate(&constant.eval_many(d.points())).unwrap(), constant);
    }

    #[test]
    fn clone_keeps_cache_entries() {
        let d = domain(&[1, 2, 3, 4]);
        let row = d.basis_at(f(9));
        let c = d.clone();
        assert_eq!(*c.basis_at(f(9)), *row);
    }
}
