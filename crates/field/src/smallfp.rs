//! A const-generic small prime field for tests.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::PrimeField;

/// An element of `F_P` for a small prime `P` (must satisfy `P < 2^31`
/// so products fit comfortably in `u64`).
///
/// Exists so unit and property tests can exercise the generic MPC stack
/// over tiny fields where exhaustive checks are feasible.
///
/// # Example
///
/// ```rust
/// use yoso_field::{Fp, PrimeField};
///
/// type F97 = Fp<97>;
/// let a = F97::from_u64(50);
/// let b = F97::from_u64(60);
/// assert_eq!((a + b).as_u64(), 13);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Fp<const P: u64>(u64);

impl<const P: u64> Fp<P> {
    const ASSERT_SMALL: () = assert!(P < (1 << 31), "Fp modulus must be < 2^31");
}

impl<const P: u64> PrimeField for Fp<P> {
    const MODULUS: u64 = P;
    const ZERO: Self = Fp(0);
    const ONE: Self = Fp(1 % P);

    fn from_u64(v: u64) -> Self {
        #[allow(clippy::let_unit_value)]
        let _ = Self::ASSERT_SMALL;
        Fp(v % P)
    }

    fn as_u64(&self) -> u64 {
        self.0
    }
}

impl<const P: u64> fmt::Debug for Fp<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp<{P}>({})", self.0)
    }
}

impl<const P: u64> fmt::Display for Fp<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl<const P: u64> Add for Fp<P> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Fp((self.0 + rhs.0) % P)
    }
}

impl<const P: u64> Sub for Fp<P> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Fp((self.0 + P - rhs.0) % P)
    }
}

impl<const P: u64> Mul for Fp<P> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Fp(self.0 * rhs.0 % P)
    }
}

impl<const P: u64> Neg for Fp<P> {
    type Output = Self;
    fn neg(self) -> Self {
        Fp((P - self.0) % P)
    }
}

impl<const P: u64> AddAssign for Fp<P> {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<const P: u64> SubAssign for Fp<P> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<const P: u64> MulAssign for Fp<P> {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<const P: u64> Sum for Fp<P> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl<const P: u64> Product for Fp<P> {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |a, b| a * b)
    }
}

impl<const P: u64> From<u64> for Fp<P> {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FieldError;

    type F97 = Fp<97>;
    type F13 = Fp<13>;

    #[test]
    fn exhaustive_inverse_f97() {
        for v in 1..97u64 {
            let a = F97::from_u64(v);
            assert_eq!(a * a.inv().unwrap(), F97::ONE);
        }
        assert_eq!(F97::ZERO.inv(), Err(FieldError::ZeroInverse));
    }

    #[test]
    fn exhaustive_field_axioms_f13() {
        for a in 0..13u64 {
            for b in 0..13u64 {
                let (fa, fb) = (F13::from_u64(a), F13::from_u64(b));
                assert_eq!(fa + fb, fb + fa);
                assert_eq!(fa * fb, fb * fa);
                assert_eq!(fa - fb, -(fb - fa));
                for c in 0..13u64 {
                    let fc = F13::from_u64(c);
                    assert_eq!(fa * (fb + fc), fa * fb + fa * fc);
                    assert_eq!((fa + fb) + fc, fa + (fb + fc));
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = F97::from_u64(5);
        let mut acc = F97::ONE;
        for e in 0..30u64 {
            assert_eq!(a.pow(e), acc);
            acc *= a;
        }
    }

    #[test]
    fn from_i64_embedding() {
        assert_eq!(F97::from_i64(-1).as_u64(), 96);
        assert_eq!(F97::from_i64(-97), F97::ZERO);
    }
}
