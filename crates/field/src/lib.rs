//! Prime-field arithmetic, polynomials and Lagrange interpolation.
//!
//! This crate provides the algebra underlying the packed Shamir
//! secret-sharing scheme (`yoso-pss-sharing`), the mock threshold
//! encryption scheme (`yoso-the`) and the MPC protocol itself
//! (`yoso-core`):
//!
//! - [`PrimeField`]: the field abstraction (addition, multiplication,
//!   inversion, exponentiation, sampling, canonical byte encoding).
//! - [`F61`]: the production field `F_p` with the Mersenne prime
//!   `p = 2^61 − 1`, with fast reduction.
//! - [`Fp<P>`](Fp): a tiny const-generic prime field used in tests to
//!   exercise edge cases on small fields (e.g. `F_97`).
//! - [`Poly`]: dense univariate polynomials.
//! - [`lagrange`]: interpolation, Lagrange-basis coefficient vectors
//!   (the recombination vectors used to pack and to reconstruct packed
//!   sharings) and batch inversion.
//! - [`ntt`]: mixed-radix number-theoretic transforms ([`NttDomain`])
//!   over smooth subgroup sizes dividing `p − 1`, giving `O(n log n)`
//!   evaluation and interpolation when the point set is a subgroup
//!   coset. `p = 2^61 − 1` has 2-adicity 1, so the radices are the odd
//!   prime factors of `2^60 − 1` (plus a single factor of 2), not
//!   powers of two.
//!
//! # Example
//!
//! ```rust
//! use yoso_field::{F61, PrimeField};
//!
//! // Interpolate the parabola through (0,1), (1,2), (2,5).
//! let xs = [F61::from(0u64), F61::from(1u64), F61::from(2u64)];
//! let ys = [F61::from(1u64), F61::from(2u64), F61::from(5u64)];
//! let f = yoso_field::lagrange::interpolate(&xs, &ys)?;
//! assert_eq!(f.eval(F61::from(10u64)), F61::from(101u64)); // x^2 + 1
//! # Ok::<(), yoso_field::FieldError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocstats;
mod domain;
mod element;
pub mod lagrange;
pub mod ntt;
mod poly;
mod smallfp;
pub mod transformstats;

pub use domain::EvalDomain;
pub use element::{F61, PrimeField};
pub use ntt::{NttDomain, NttScratch};
pub use poly::Poly;
pub use smallfp::Fp;

/// Errors produced by field-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldError {
    /// Inversion of the zero element was attempted.
    ZeroInverse,
    /// Interpolation received duplicate x-coordinates.
    DuplicatePoint,
    /// Interpolation received mismatched input lengths.
    LengthMismatch {
        /// Number of x-coordinates supplied.
        xs: usize,
        /// Number of y-coordinates supplied.
        ys: usize,
    },
    /// A byte string did not decode to a canonical field element.
    NonCanonicalBytes,
    /// A transform domain size is not realisable in this field: zero,
    /// not a divisor of `p − 1`, not [`ntt::MAX_RADIX`]-smooth, or (for
    /// point-set detection) the points are not a subgroup coset.
    UnsupportedDomainSize {
        /// The requested domain size.
        size: usize,
    },
}

impl std::fmt::Display for FieldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldError::ZeroInverse => write!(f, "inverse of zero field element"),
            FieldError::DuplicatePoint => write!(f, "duplicate x-coordinate in interpolation"),
            FieldError::LengthMismatch { xs, ys } => {
                write!(f, "interpolation length mismatch: {xs} x-coordinates, {ys} y-coordinates")
            }
            FieldError::NonCanonicalBytes => write!(f, "bytes do not encode a canonical field element"),
            FieldError::UnsupportedDomainSize { size } => {
                write!(f, "no smooth multiplicative subgroup of size {size} in this field")
            }
        }
    }
}

impl std::error::Error for FieldError {}
