//! Prime-field arithmetic, polynomials and Lagrange interpolation.
//!
//! This crate provides the algebra underlying the packed Shamir
//! secret-sharing scheme (`yoso-pss-sharing`), the mock threshold
//! encryption scheme (`yoso-the`) and the MPC protocol itself
//! (`yoso-core`):
//!
//! - [`PrimeField`]: the field abstraction (addition, multiplication,
//!   inversion, exponentiation, sampling, canonical byte encoding).
//! - [`F61`]: the production field `F_p` with the Mersenne prime
//!   `p = 2^61 − 1`, with fast reduction.
//! - [`Fp<P>`](Fp): a tiny const-generic prime field used in tests to
//!   exercise edge cases on small fields (e.g. `F_97`).
//! - [`Poly`]: dense univariate polynomials.
//! - [`lagrange`]: interpolation, Lagrange-basis coefficient vectors
//!   (the recombination vectors used to pack and to reconstruct packed
//!   sharings) and batch inversion.
//!
//! # Example
//!
//! ```rust
//! use yoso_field::{F61, PrimeField};
//!
//! // Interpolate the parabola through (0,1), (1,2), (2,5).
//! let xs = [F61::from(0u64), F61::from(1u64), F61::from(2u64)];
//! let ys = [F61::from(1u64), F61::from(2u64), F61::from(5u64)];
//! let f = yoso_field::lagrange::interpolate(&xs, &ys)?;
//! assert_eq!(f.eval(F61::from(10u64)), F61::from(101u64)); // x^2 + 1
//! # Ok::<(), yoso_field::FieldError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod domain;
mod element;
pub mod lagrange;
mod poly;
mod smallfp;

pub use domain::EvalDomain;
pub use element::{F61, PrimeField};
pub use poly::Poly;
pub use smallfp::Fp;

/// Errors produced by field-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldError {
    /// Inversion of the zero element was attempted.
    ZeroInverse,
    /// Interpolation received duplicate x-coordinates.
    DuplicatePoint,
    /// Interpolation received mismatched input lengths.
    LengthMismatch {
        /// Number of x-coordinates supplied.
        xs: usize,
        /// Number of y-coordinates supplied.
        ys: usize,
    },
    /// A byte string did not decode to a canonical field element.
    NonCanonicalBytes,
}

impl std::fmt::Display for FieldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldError::ZeroInverse => write!(f, "inverse of zero field element"),
            FieldError::DuplicatePoint => write!(f, "duplicate x-coordinate in interpolation"),
            FieldError::LengthMismatch { xs, ys } => {
                write!(f, "interpolation length mismatch: {xs} x-coordinates, {ys} y-coordinates")
            }
            FieldError::NonCanonicalBytes => write!(f, "bytes do not encode a canonical field element"),
        }
    }
}

impl std::error::Error for FieldError {}
