//! The [`PrimeField`] trait and the production field [`F61`].

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::FieldError;

/// A prime field element abstraction.
///
/// Implementors are `Copy` value types with canonical representation:
/// two elements are equal iff their representations are equal.
///
/// The MPC stack is generic over this trait so that tests can run over
/// tiny fields ([`crate::Fp<97>`](crate::Fp)) while production runs
/// over [`F61`].
pub trait PrimeField:
    Copy
    + Clone
    + fmt::Debug
    + fmt::Display
    + PartialEq
    + Eq
    + std::hash::Hash
    + Default
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + Product
    + Serialize
    + for<'de> Deserialize<'de>
    + 'static
{
    /// The field modulus, as `u64` (all fields in this workspace fit).
    const MODULUS: u64;

    /// Additive identity.
    const ZERO: Self;

    /// Multiplicative identity.
    const ONE: Self;

    /// Constructs an element by reducing a `u64`.
    fn from_u64(v: u64) -> Self;

    /// Canonical residue in `[0, MODULUS)`.
    fn as_u64(&self) -> u64;

    /// Returns `true` for the additive identity.
    fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }

    /// Multiplicative inverse.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::ZeroInverse`] on zero.
    fn inv(&self) -> Result<Self, FieldError> {
        if self.is_zero() {
            return Err(FieldError::ZeroInverse);
        }
        // Fermat: a^(p-2).
        Ok(self.pow(Self::MODULUS - 2))
    }

    /// Exponentiation by a `u64` exponent (square and multiply).
    fn pow(&self, mut e: u64) -> Self {
        let mut base = *self;
        let mut acc = Self::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            e >>= 1;
        }
        acc
    }

    /// Uniformly random element.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::from_u64(rng.gen::<u64>())
    }

    /// Canonical 8-byte little-endian encoding.
    fn to_bytes(&self) -> [u8; 8] {
        self.as_u64().to_le_bytes()
    }

    /// Decodes a canonical 8-byte little-endian encoding.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::NonCanonicalBytes`] if the value is not
    /// reduced.
    fn from_bytes(bytes: &[u8; 8]) -> Result<Self, FieldError> {
        let v = u64::from_le_bytes(*bytes);
        if v >= Self::MODULUS {
            return Err(FieldError::NonCanonicalBytes);
        }
        Ok(Self::from_u64(v))
    }

    /// The element `-1`.
    fn minus_one() -> Self {
        -Self::ONE
    }

    /// Embeds a signed small integer (used for evaluation points
    /// `-(i-1)` in packed sharing).
    fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Self::from_u64(v as u64)
        } else {
            -Self::from_u64(v.unsigned_abs())
        }
    }
}

/// The Mersenne prime `p = 2^61 − 1`.
pub const P61: u64 = (1u64 << 61) - 1;

/// An element of `F_p` for the Mersenne prime `p = 2^61 − 1`.
///
/// Internally a `u64` kept in `[0, p)`. Products use `u128`
/// intermediates with two-step Mersenne reduction.
///
/// # Example
///
/// ```rust
/// use yoso_field::{F61, PrimeField};
///
/// let a = F61::from(3u64);
/// let b = a.pow(40);
/// assert_eq!(b * b.inv()?, F61::ONE);
/// # Ok::<(), yoso_field::FieldError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct F61(u64);

impl F61 {
    /// Constructs from a raw canonical residue.
    ///
    /// # Panics
    ///
    /// Debug-panics if `v >= p`.
    #[inline]
    pub fn from_canonical(v: u64) -> Self {
        debug_assert!(v < P61);
        F61(v)
    }

    /// Reduces an arbitrary `u128` modulo `p = 2^61 − 1`.
    #[inline]
    fn reduce128(v: u128) -> u64 {
        // Split into 61-bit chunks and add: since p = 2^61 - 1,
        // 2^61 ≡ 1 (mod p).
        let lo = (v & P61 as u128) as u64;
        let mid = ((v >> 61) & P61 as u128) as u64;
        let hi = (v >> 122) as u64;
        let mut s = lo as u128 + mid as u128 + hi as u128;
        if s >= P61 as u128 {
            s -= P61 as u128;
        }
        if s >= P61 as u128 {
            s -= P61 as u128;
        }
        s as u64
    }
}

impl PrimeField for F61 {
    const MODULUS: u64 = P61;
    const ZERO: Self = F61(0);
    const ONE: Self = F61(1);

    #[inline]
    fn from_u64(v: u64) -> Self {
        // v < 2^64 = 8 * 2^61; fold twice.
        let folded = (v & P61) + (v >> 61);
        F61(if folded >= P61 { folded - P61 } else { folded })
    }

    #[inline]
    fn as_u64(&self) -> u64 {
        self.0
    }
}

impl From<u64> for F61 {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl From<u32> for F61 {
    fn from(v: u32) -> Self {
        F61(v as u64)
    }
}

impl fmt::Debug for F61 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F61({})", self.0)
    }
}

impl fmt::Display for F61 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add for F61 {
    type Output = F61;
    #[inline]
    fn add(self, rhs: F61) -> F61 {
        let s = self.0 + rhs.0; // < 2^62, no overflow
        F61(if s >= P61 { s - P61 } else { s })
    }
}

impl Sub for F61 {
    type Output = F61;
    #[inline]
    fn sub(self, rhs: F61) -> F61 {
        let (d, borrow) = self.0.overflowing_sub(rhs.0);
        F61(if borrow { d.wrapping_add(P61) } else { d })
    }
}

impl Mul for F61 {
    type Output = F61;
    #[inline]
    fn mul(self, rhs: F61) -> F61 {
        F61(F61::reduce128(self.0 as u128 * rhs.0 as u128))
    }
}

impl Neg for F61 {
    type Output = F61;
    #[inline]
    fn neg(self) -> F61 {
        if self.0 == 0 {
            self
        } else {
            F61(P61 - self.0)
        }
    }
}

impl AddAssign for F61 {
    #[inline]
    fn add_assign(&mut self, rhs: F61) {
        *self = *self + rhs;
    }
}

impl SubAssign for F61 {
    #[inline]
    fn sub_assign(&mut self, rhs: F61) {
        *self = *self - rhs;
    }
}

impl MulAssign for F61 {
    #[inline]
    fn mul_assign(&mut self, rhs: F61) {
        *self = *self * rhs;
    }
}

impl Sum for F61 {
    fn sum<I: Iterator<Item = F61>>(iter: I) -> F61 {
        iter.fold(F61::ZERO, |a, b| a + b)
    }
}

impl Product for F61 {
    fn product<I: Iterator<Item = F61>>(iter: I) -> F61 {
        iter.fold(F61::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constants() {
        assert_eq!(F61::ZERO.as_u64(), 0);
        assert_eq!(F61::ONE.as_u64(), 1);
        assert_eq!(F61::MODULUS, (1u64 << 61) - 1);
        assert_eq!(F61::default(), F61::ZERO);
    }

    #[test]
    fn from_u64_reduces() {
        assert_eq!(F61::from_u64(P61), F61::ZERO);
        assert_eq!(F61::from_u64(P61 + 5), F61::from(5u64));
        assert_eq!(F61::from_u64(u64::MAX).as_u64(), u64::MAX % P61);
    }

    #[test]
    fn add_sub_wraparound() {
        let a = F61::from_canonical(P61 - 1);
        assert_eq!(a + F61::ONE, F61::ZERO);
        assert_eq!(F61::ZERO - F61::ONE, a);
        assert_eq!(-F61::ONE, a);
        assert_eq!(-F61::ZERO, F61::ZERO);
    }

    #[test]
    fn mul_reduction_matches_u128_reference() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let a = rng.gen::<u64>() % P61;
            let b = rng.gen::<u64>() % P61;
            let expect = ((a as u128 * b as u128) % P61 as u128) as u64;
            assert_eq!((F61(a) * F61(b)).as_u64(), expect);
        }
    }

    #[test]
    fn pow_and_inverse() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for _ in 0..50 {
            let a = F61::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a * a.inv().unwrap(), F61::ONE);
            assert_eq!(a.pow(P61 - 1), F61::ONE); // Fermat
        }
        assert_eq!(F61::ZERO.inv(), Err(FieldError::ZeroInverse));
        assert_eq!(F61::from(5u64).pow(0), F61::ONE);
    }

    #[test]
    fn bytes_roundtrip_and_canonicality() {
        let a = F61::from(0x1234_5678_9abcu64);
        assert_eq!(F61::from_bytes(&a.to_bytes()).unwrap(), a);
        let bad = u64::MAX.to_le_bytes();
        assert_eq!(F61::from_bytes(&bad), Err(FieldError::NonCanonicalBytes));
    }

    #[test]
    fn from_i64_negative_points() {
        assert_eq!(F61::from_i64(-1), -F61::ONE);
        assert_eq!(F61::from_i64(-5) + F61::from(5u64), F61::ZERO);
        assert_eq!(F61::from_i64(7), F61::from(7u64));
    }

    #[test]
    fn sum_and_product() {
        let vals = [1u64, 2, 3, 4].map(F61::from);
        assert_eq!(vals.iter().copied().sum::<F61>(), F61::from(10u64));
        assert_eq!(vals.iter().copied().product::<F61>(), F61::from(24u64));
    }
}
