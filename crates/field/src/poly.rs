//! Dense univariate polynomials over a prime field.

use std::fmt;
use std::ops::{Add, Mul, Sub};

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::PrimeField;

/// A dense univariate polynomial with coefficients in ascending degree
/// order. The zero polynomial has an empty coefficient vector; otherwise
/// the leading coefficient is non-zero.
///
/// # Example
///
/// ```rust
/// use yoso_field::{F61, Poly, PrimeField};
///
/// // f(x) = 1 + 2x + 3x^2
/// let f = Poly::new(vec![F61::from(1u64), F61::from(2u64), F61::from(3u64)]);
/// assert_eq!(f.eval(F61::from(2u64)), F61::from(17u64));
/// assert_eq!(f.degree(), Some(2));
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(bound = "")]
pub struct Poly<F: PrimeField> {
    coeffs: Vec<F>,
}

impl<F: PrimeField> Poly<F> {
    /// Constructs a polynomial from coefficients (constant term first),
    /// trimming leading zeros.
    pub fn new(mut coeffs: Vec<F>) -> Self {
        while coeffs.last().is_some_and(|c| c.is_zero()) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: F) -> Self {
        Poly::new(vec![c])
    }

    /// Returns `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Coefficients in ascending degree order.
    pub fn coeffs(&self) -> &[F] {
        &self.coeffs
    }

    /// Coefficient of `x^i` (zero beyond the degree).
    pub fn coeff(&self, i: usize) -> F {
        self.coeffs.get(i).copied().unwrap_or(F::ZERO)
    }

    /// Horner evaluation at `x`.
    pub fn eval(&self, x: F) -> F {
        let mut acc = F::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Evaluates at many points.
    pub fn eval_many(&self, xs: &[F]) -> Vec<F> {
        xs.iter().map(|&x| self.eval(x)).collect()
    }

    /// A uniformly random polynomial of degree at most `degree`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, degree: usize) -> Self {
        Poly::new((0..=degree).map(|_| F::random(rng)).collect())
    }

    /// A uniformly random polynomial of degree at most `degree` with
    /// the prescribed value at `x = point`.
    pub fn random_with_value<R: Rng + ?Sized>(rng: &mut R, degree: usize, point: F, value: F) -> Self {
        let mut p = Self::random(rng, degree);
        let delta = value - p.eval(point);
        // Adjust the constant term is wrong if point-dependence matters;
        // instead add delta * basis where basis(point) = 1: use constant shift
        // only when it keeps the prescribed value exact — a constant shift
        // changes the value at every point equally, so it is exact.
        p = &p + &Poly::constant(delta);
        debug_assert_eq!(p.eval(point), value);
        p
    }

    /// Multiplies by a scalar.
    pub fn scale(&self, s: F) -> Self {
        Poly::new(self.coeffs.iter().map(|&c| c * s).collect())
    }

    /// The monic polynomial `∏ (x − r)` over the given roots.
    pub fn from_roots(roots: &[F]) -> Self {
        let mut acc = Poly::constant(F::ONE);
        for &r in roots {
            acc = &acc * &Poly::new(vec![-r, F::ONE]);
        }
        acc
    }

    /// Euclidean division: returns `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is the zero polynomial.
    pub fn div_rem(&self, divisor: &Poly<F>) -> (Poly<F>, Poly<F>) {
        assert!(!divisor.is_zero(), "polynomial division by zero");
        let d = divisor.degree().unwrap();
        if self.degree().is_none() || self.degree().unwrap() < d {
            return (Poly::zero(), self.clone());
        }
        let lead_inv = divisor.coeffs[d].inv().expect("leading coefficient is non-zero");
        let mut rem = self.coeffs.clone();
        let mut quot = vec![F::ZERO; rem.len() - d];
        for i in (d..rem.len()).rev() {
            let q = rem[i] * lead_inv;
            quot[i - d] = q;
            if !q.is_zero() {
                for j in 0..=d {
                    let t = divisor.coeffs[j] * q;
                    rem[i - d + j] -= t;
                }
            }
        }
        (Poly::new(quot), Poly::new(rem))
    }
}

impl<F: PrimeField> fmt::Debug for Poly<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "Poly(0)");
        }
        write!(f, "Poly(")?;
        let mut first = true;
        for (i, c) in self.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match i {
                0 => write!(f, "{c}")?,
                1 => write!(f, "{c}·x")?,
                _ => write!(f, "{c}·x^{i}")?,
            }
        }
        write!(f, ")")
    }
}

impl<F: PrimeField> Add for &Poly<F> {
    type Output = Poly<F>;
    fn add(self, rhs: &Poly<F>) -> Poly<F> {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.coeff(i) + rhs.coeff(i));
        }
        Poly::new(out)
    }
}

impl<F: PrimeField> Sub for &Poly<F> {
    type Output = Poly<F>;
    fn sub(self, rhs: &Poly<F>) -> Poly<F> {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.coeff(i) - rhs.coeff(i));
        }
        Poly::new(out)
    }
}

impl<F: PrimeField> Mul for &Poly<F> {
    type Output = Poly<F>;
    fn mul(self, rhs: &Poly<F>) -> Poly<F> {
        if self.is_zero() || rhs.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![F::ZERO; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Poly::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::F61;
    use rand::SeedableRng;

    fn f(v: u64) -> F61 {
        F61::from(v)
    }

    fn poly(cs: &[u64]) -> Poly<F61> {
        Poly::new(cs.iter().map(|&c| f(c)).collect())
    }

    #[test]
    fn construction_trims_leading_zeros() {
        let p = poly(&[1, 2, 0, 0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(Poly::<F61>::new(vec![F61::ZERO; 4]), Poly::zero());
        assert_eq!(Poly::<F61>::zero().degree(), None);
    }

    #[test]
    fn eval_horner() {
        let p = poly(&[1, 2, 3]); // 1 + 2x + 3x^2
        assert_eq!(p.eval(f(0)), f(1));
        assert_eq!(p.eval(f(1)), f(6));
        assert_eq!(p.eval(f(2)), f(17));
        assert_eq!(Poly::<F61>::zero().eval(f(5)), F61::ZERO);
    }

    #[test]
    fn add_sub_mul() {
        let a = poly(&[1, 2]);
        let b = poly(&[3, 4, 5]);
        assert_eq!(&a + &b, poly(&[4, 6, 5]));
        assert_eq!(&(&a + &b) - &b, a);
        // (1+2x)(3+4x+5x^2) = 3 + 10x + 13x^2 + 10x^3
        assert_eq!(&a * &b, poly(&[3, 10, 13, 10]));
        assert_eq!(&a * &Poly::zero(), Poly::zero());
    }

    #[test]
    fn from_roots_vanishes_exactly_there() {
        let roots = [f(1), f(5), f(9)];
        let p = Poly::from_roots(&roots);
        assert_eq!(p.degree(), Some(3));
        for r in roots {
            assert_eq!(p.eval(r), F61::ZERO);
        }
        assert_ne!(p.eval(f(2)), F61::ZERO);
    }

    #[test]
    fn div_rem_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let a = Poly::<F61>::random(&mut rng, 12);
            let b = Poly::<F61>::random(&mut rng, 5);
            if b.is_zero() {
                continue;
            }
            let (q, r) = a.div_rem(&b);
            assert!(r.degree().unwrap_or(0) < b.degree().unwrap() || r.is_zero());
            assert_eq!(&(&q * &b) + &r, a);
        }
    }

    #[test]
    fn random_with_value_hits_target() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        for d in 0..8 {
            let p = Poly::<F61>::random_with_value(&mut rng, d, f(7), f(42));
            assert_eq!(p.eval(f(7)), f(42));
            assert!(p.degree().unwrap_or(0) <= d);
        }
    }

    #[test]
    fn debug_format_is_nonempty() {
        assert_eq!(format!("{:?}", Poly::<F61>::zero()), "Poly(0)");
        assert!(format!("{:?}", poly(&[1, 0, 3])).contains("x^2"));
    }
}
