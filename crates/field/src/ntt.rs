//! Mixed-radix number-theoretic transforms for quasi-linear
//! evaluation and interpolation.
//!
//! # Why mixed-radix
//!
//! The production field `F_{2^61−1}` has 2-adicity **1**:
//! `p − 1 = 2 · (2^60 − 1)` with
//! `2^60 − 1 = 3²·5²·7·11·13·31·41·61·151·331·1321`, so the largest
//! power-of-two multiplicative subgroup has order 2 and a radix-2 NTT
//! does not exist. Instead, [`NttDomain`] runs a mixed-radix
//! Cooley–Tukey decimation-in-time transform over any *smooth*
//! subgroup size dividing `p − 1` (every prime radix at most
//! [`MAX_RADIX`]). The smooth divisors of `p − 1` are dense — 18, 33,
//! 143, 525, 1287, 2002, … — so a suitable size is always within a
//! small factor of any target `n + k`.
//!
//! For a size `N = r·m` the transform splits the coefficient vector
//! into `r` stride-`r` subsequences, recursively transforms each over
//! the order-`m` subgroup, and recombines with `N·r` twiddle
//! multiplications, for a total cost of `N · Σ rᵢ` field
//! multiplications over the prime factorisation `N = Π rᵢ` —
//! `O(N log N)` for smooth `N`, against `O(N²)` for a cold Lagrange
//! interpolation.
//!
//! # Exactness
//!
//! All arithmetic is exact field arithmetic on canonical
//! representations: a transform-based evaluation or interpolation
//! returns *bit-identical* results to the Lagrange path
//! ([`EvalDomain`](crate::EvalDomain), [`lagrange`](crate::lagrange))
//! because both compute exact values of the same unique polynomial.
//! Property tests in `tests/proptests.rs` pin this down.
//!
//! # Determinism
//!
//! This module is in the transcript-determinism lint scope
//! (`yoso-lint`): it uses no hash-based containers, no clocks and no
//! thread-local randomness. Domain construction (generator search,
//! factorisation) is a deterministic function of the field modulus and
//! the requested size.

use crate::allocstats::ensure_filled;
use crate::{FieldError, Poly, PrimeField};

/// Reusable working memory for the `*_into` transform entry points.
///
/// One scratch serves any domain size: buffers grow to the largest size
/// seen and are reused (cleared, never shrunk) afterwards, so a loop
/// dealing thousands of sharings performs no steady-state allocation.
/// Growth events are recorded in [`crate::allocstats`].
#[derive(Debug, Default)]
pub struct NttScratch<F: PrimeField> {
    /// Zero-padded / staged coefficient input.
    pad: Vec<F>,
    /// Coset-scaled input (forward) or raw transform output (inverse).
    staged: Vec<F>,
    /// Recursion working buffer of the in-place mixed-radix DFT.
    work: Vec<F>,
}

impl<F: PrimeField> NttScratch<F> {
    /// A fresh, empty scratch (buffers allocate lazily on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Largest prime radix the transform will decompose into. Subgroup
/// sizes with a prime factor above this bound are rejected as
/// unsupported (the per-radix combine is dense, costing `N·r`
/// multiplications, so very large radices forfeit the speedup).
pub const MAX_RADIX: usize = 64;

/// A multiplicative-coset evaluation domain
/// `{shift · ω^i : 0 ≤ i < size}` for an order-`size` root of unity
/// `ω`, with precomputed twiddle tables for the forward and inverse
/// mixed-radix transforms.
#[derive(Debug, Clone)]
pub struct NttDomain<F: PrimeField> {
    size: usize,
    root: F,
    shift: F,
    shift_inv: F,
    /// `1 / size` in the field (scales the inverse transform).
    size_inv: F,
    /// Prime factors of `size` with multiplicity, descending.
    radices: Vec<usize>,
    /// Forward twiddles `ω^i`, `0 ≤ i < size`.
    powers: Vec<F>,
    /// Inverse twiddles `ω^{−i}`, `0 ≤ i < size`.
    inv_powers: Vec<F>,
    /// The evaluation points `shift · ω^i` in index order.
    points: Vec<F>,
    /// Field multiplications per full transform (`N · Σ rᵢ`), reported
    /// to [`crate::transformstats`] on every forward/inverse run.
    butterfly_ops: u64,
}

impl<F: PrimeField> NttDomain<F> {
    /// Builds the subgroup domain of order `size` (coset shift `1`),
    /// rooted at the canonical generator: `ω = g^{(p−1)/size}` for the
    /// smallest multiplicative generator `g` of `F*`.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::UnsupportedDomainSize`] if `size` is zero,
    /// does not divide `p − 1`, or has a prime factor above
    /// [`MAX_RADIX`].
    pub fn new(size: usize) -> Result<Self, FieldError> {
        Self::coset(size, F::ONE)
    }

    /// Builds the coset domain `{shift · ω^i}` for a nonzero `shift`.
    ///
    /// # Errors
    ///
    /// As [`NttDomain::new`], plus [`FieldError::ZeroInverse`] if
    /// `shift` is zero.
    pub fn coset(size: usize, shift: F) -> Result<Self, FieldError> {
        let order = F::MODULUS - 1;
        if size == 0 || order % (size as u64) != 0 {
            return Err(FieldError::UnsupportedDomainSize { size });
        }
        let g = field_generator::<F>()?;
        let root = g.pow(order / (size as u64));
        Self::build(size, root, shift)
    }

    /// Builds a domain from an explicitly supplied order-`size` root of
    /// unity (e.g. a power of a larger domain's root, so that prefix
    /// domains enumerate the *same* subgroup elements).
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::UnsupportedDomainSize`] if `root` does not
    /// have exact multiplicative order `size`, or `size` is not smooth.
    pub fn with_root(size: usize, root: F, shift: F) -> Result<Self, FieldError> {
        if size == 0 || root.pow(size as u64) != F::ONE {
            return Err(FieldError::UnsupportedDomainSize { size });
        }
        for q in distinct_prime_factors(size as u64) {
            if root.pow(size as u64 / q) == F::ONE {
                return Err(FieldError::UnsupportedDomainSize { size });
            }
        }
        Self::build(size, root, shift)
    }

    /// Recognises an ordered point set of the form
    /// `x_j = shift · ω^j` with `ω` of exact order `len` (a geometric
    /// progression closing into a subgroup coset) and builds the
    /// matching domain — the "transform-friendly" test used by the
    /// sharing schemes to select the NTT reconstruction path.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::UnsupportedDomainSize`] if the points are
    /// not such a progression (including any zero point) or the size is
    /// not smooth.
    pub fn from_points(points: &[F]) -> Result<Self, FieldError> {
        let m = points.len();
        if m == 0 || points[0] == F::ZERO {
            return Err(FieldError::UnsupportedDomainSize { size: m });
        }
        let shift = points[0];
        if m == 1 {
            return Self::build(1, F::ONE, shift);
        }
        if points[1] == F::ZERO {
            return Err(FieldError::UnsupportedDomainSize { size: m });
        }
        let ratio = points[1] * shift.inv()?;
        let mut cur = shift;
        for &x in points {
            if x != cur {
                return Err(FieldError::UnsupportedDomainSize { size: m });
            }
            cur *= ratio;
        }
        // The progression must close: ratio^m = 1 (cur walked m steps
        // from shift), with exact order m.
        if cur != shift {
            return Err(FieldError::UnsupportedDomainSize { size: m });
        }
        Self::with_root(m, ratio, shift)
    }

    /// Shared constructor: `root` is assumed to have exact order
    /// `size`; validates smoothness and builds the tables.
    fn build(size: usize, root: F, shift: F) -> Result<Self, FieldError> {
        let radices = smooth_radices(size)?;
        let root_inv = root.inv()?;
        let shift_inv = shift.inv()?;
        // size | p − 1 < p, so size is a nonzero field element.
        let size_inv = F::from_u64(size as u64).inv()?;
        let mut powers = Vec::with_capacity(size);
        let mut inv_powers = Vec::with_capacity(size);
        let (mut acc, mut inv_acc) = (F::ONE, F::ONE);
        for _ in 0..size {
            powers.push(acc);
            inv_powers.push(inv_acc);
            acc *= root;
            inv_acc *= root_inv;
        }
        let points = powers.iter().map(|&p| shift * p).collect();
        let butterfly_ops = (size as u64) * radices.iter().map(|&r| r as u64).sum::<u64>();
        Ok(NttDomain {
            size,
            root,
            shift,
            shift_inv,
            size_inv,
            radices,
            powers,
            inv_powers,
            points,
            butterfly_ops,
        })
    }

    /// The domain size `N`.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the domain is empty (never true for a built domain).
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The order-`size` root of unity.
    pub fn root(&self) -> F {
        self.root
    }

    /// The coset shift (`1` for plain subgroup domains).
    pub fn shift(&self) -> F {
        self.shift
    }

    /// Prime factors of the size with multiplicity, descending — the
    /// radix chain of the transform.
    pub fn radices(&self) -> &[usize] {
        &self.radices
    }

    /// The evaluation points `shift · ω^i` in index order.
    pub fn points(&self) -> &[F] {
        &self.points
    }

    /// Forward transform: evaluates the polynomial with coefficient
    /// vector `coeffs` (length exactly `size`) at every domain point,
    /// returning `[f(points[0]), …, f(points[N−1])]`.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::LengthMismatch`] unless
    /// `coeffs.len() == size`.
    pub fn forward(&self, coeffs: &[F]) -> Result<Vec<F>, FieldError> {
        let mut out = Vec::new();
        self.forward_into(coeffs, &mut out, &mut NttScratch::new())?;
        Ok(out)
    }

    /// [`NttDomain::forward`] into a caller-supplied output buffer,
    /// reusing `scratch` working memory. Bit-identical results; no
    /// allocation once the buffers have reached the domain size.
    ///
    /// # Errors
    ///
    /// As [`NttDomain::forward`].
    pub fn forward_into(
        &self,
        coeffs: &[F],
        out: &mut Vec<F>,
        scratch: &mut NttScratch<F>,
    ) -> Result<(), FieldError> {
        if coeffs.len() != self.size {
            return Err(FieldError::LengthMismatch { xs: self.size, ys: coeffs.len() });
        }
        let NttScratch { staged, work, .. } = scratch;
        self.forward_impl(coeffs, out, staged, work);
        Ok(())
    }

    /// Length-checked transform core shared by the forward entry
    /// points: `staged` holds the coset-scaled input when needed,
    /// `work` is the recursion buffer.
    fn forward_impl(&self, coeffs: &[F], out: &mut Vec<F>, staged: &mut Vec<F>, work: &mut Vec<F>) {
        crate::transformstats::bump_butterflies(self.butterfly_ops);
        ensure_filled(out, self.size, F::ZERO);
        ensure_filled(work, self.size, F::ZERO);
        // Coset evaluation: f(shift·ω^j) = Σ (a_i·shift^i)·ω^{ij}.
        if self.shift == F::ONE {
            dft_into(coeffs, 0, 1, &self.radices, 1, &self.powers, out, work);
        } else {
            scale_by_powers_into(coeffs, self.shift, F::ONE, staged);
            dft_into(staged, 0, 1, &self.radices, 1, &self.powers, out, work);
        }
    }

    /// Evaluates a polynomial of degree `< size` (coefficients
    /// zero-padded up to the domain size) at every domain point.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::LengthMismatch`] if more than `size`
    /// coefficients are supplied.
    pub fn evaluate(&self, coeffs: &[F]) -> Result<Vec<F>, FieldError> {
        let mut out = Vec::new();
        self.evaluate_into(coeffs, &mut out, &mut NttScratch::new())?;
        Ok(out)
    }

    /// [`NttDomain::evaluate`] into a caller-supplied output buffer,
    /// reusing `scratch` working memory (the zero padding is staged in
    /// the scratch, not a fresh `Vec`).
    ///
    /// # Errors
    ///
    /// As [`NttDomain::evaluate`].
    pub fn evaluate_into(
        &self,
        coeffs: &[F],
        out: &mut Vec<F>,
        scratch: &mut NttScratch<F>,
    ) -> Result<(), FieldError> {
        if coeffs.len() > self.size {
            return Err(FieldError::LengthMismatch { xs: self.size, ys: coeffs.len() });
        }
        let NttScratch { pad, staged, work } = scratch;
        ensure_filled(pad, self.size, F::ZERO);
        pad[..coeffs.len()].copy_from_slice(coeffs);
        self.forward_impl(pad, out, staged, work);
        Ok(())
    }

    /// Evaluates a polynomial of degree `< size` at the domain points
    /// with indices `lo..hi` only, writing `hi − lo` values to `out`
    /// (`out[j] = f(points[lo + j])`).
    ///
    /// This is the slice half of the distributed transform (DESIGN
    /// §13): a worker that owns rows `lo..hi` of a dealing pays
    /// `(hi − lo) · deg` Horner multiplications instead of the full
    /// `N log N` transform. Exactness (module docs) makes the result
    /// *bit-identical* to the matching entries of
    /// [`NttDomain::evaluate`]: both are canonical values of the same
    /// unique polynomial at the same points.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::LengthMismatch`] if more than `size`
    /// coefficients are supplied or the range exceeds the domain.
    pub fn evaluate_range_into(
        &self,
        coeffs: &[F],
        lo: usize,
        hi: usize,
        out: &mut Vec<F>,
    ) -> Result<(), FieldError> {
        if coeffs.len() > self.size || lo > hi || hi > self.size {
            return Err(FieldError::LengthMismatch { xs: self.size, ys: coeffs.len().max(hi) });
        }
        crate::transformstats::bump_slice_muls((hi - lo) as u64 * coeffs.len() as u64);
        ensure_filled(out, hi - lo, F::ZERO);
        for (o, &x) in out.iter_mut().zip(&self.points[lo..hi]) {
            // Horner's rule: exact arithmetic on canonical elements, so
            // the value equals the full transform's output bit for bit.
            *o = coeffs.iter().rev().fold(F::ZERO, |acc, &c| acc * x + c);
        }
        Ok(())
    }

    /// Inverse transform: recovers the full coefficient vector (length
    /// `size`, untrimmed) of the unique polynomial of degree `< size`
    /// with `f(points[i]) = evals[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::LengthMismatch`] unless
    /// `evals.len() == size`.
    pub fn inverse(&self, evals: &[F]) -> Result<Vec<F>, FieldError> {
        let mut out = Vec::new();
        self.inverse_into(evals, &mut out, &mut NttScratch::new())?;
        Ok(out)
    }

    /// [`NttDomain::inverse`] into a caller-supplied output buffer,
    /// reusing `scratch` working memory.
    ///
    /// # Errors
    ///
    /// As [`NttDomain::inverse`].
    pub fn inverse_into(
        &self,
        evals: &[F],
        out: &mut Vec<F>,
        scratch: &mut NttScratch<F>,
    ) -> Result<(), FieldError> {
        if evals.len() != self.size {
            return Err(FieldError::LengthMismatch { xs: self.size, ys: evals.len() });
        }
        crate::transformstats::bump_butterflies(self.butterfly_ops);
        let NttScratch { staged, work, .. } = scratch;
        ensure_filled(staged, self.size, F::ZERO);
        ensure_filled(work, self.size, F::ZERO);
        dft_into(evals, 0, 1, &self.radices, 1, &self.inv_powers, staged, work);
        // Undo the transform scale (1/N) and the coset scale
        // (shift^{−i} on coefficient i) in one pass.
        scale_by_powers_into(staged, self.shift_inv, self.size_inv, out);
        Ok(())
    }

    /// Interpolates the unique polynomial of degree `< size` through
    /// `(points[i], ys[i])`, as a trimmed [`Poly`]. Bit-identical to
    /// [`EvalDomain::interpolate`](crate::EvalDomain::interpolate) and
    /// [`lagrange::interpolate`](crate::lagrange::interpolate) over the
    /// same points.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::LengthMismatch`] unless
    /// `ys.len() == size`.
    pub fn interpolate(&self, ys: &[F]) -> Result<Poly<F>, FieldError> {
        Ok(Poly::new(self.inverse(ys)?))
    }
}

/// Whether `size` indexes a supported transform domain in `F`: it must
/// divide `p − 1` and be [`MAX_RADIX`]-smooth.
pub fn supported_size<F: PrimeField>(size: usize) -> bool {
    size >= 1 && (F::MODULUS - 1) % (size as u64) == 0 && smooth_radices(size).is_ok()
}

/// The subgroup-prefix enumeration of exponents `E` for a radix chain
/// `[r_1, …, r_l]` (product `N`): a permutation of `0..N` such that
/// for every suffix product `m` of the chain, the first `m` entries
/// are exactly the exponent set of the order-`m` subgroup (the
/// multiples of `N/m`).
///
/// `E(1) = [0]`; for `N = r·m`, `E(N)` lists `r·e + b` for `b` in
/// `0..r` (outer) and `e` in `E(m)` (inner). Packed-sharing layouts
/// place nodes in this order so that a prefix of nodes of chain length
/// is itself a transform domain.
pub fn chain_enumeration(radices: &[usize]) -> Vec<usize> {
    let mut e = vec![0usize];
    for &r in radices.iter().rev() {
        let mut next = Vec::with_capacity(e.len() * r);
        for b in 0..r {
            next.extend(e.iter().map(|&x| r * x + b));
        }
        e = next;
    }
    e
}

/// The prefix sizes realised by [`chain_enumeration`]: the suffix
/// products `1, r_l, r_{l−1}·r_l, …, N` of the radix chain, ascending.
pub fn chain_sizes(radices: &[usize]) -> Vec<usize> {
    let mut sizes = vec![1usize];
    let mut acc = 1usize;
    for &r in radices.iter().rev() {
        acc *= r;
        sizes.push(acc);
    }
    sizes
}

/// Prime factors of `size` with multiplicity, sorted descending;
/// rejects factors above [`MAX_RADIX`].
fn smooth_radices(size: usize) -> Result<Vec<usize>, FieldError> {
    if size == 0 {
        return Err(FieldError::UnsupportedDomainSize { size });
    }
    let mut out = Vec::new();
    let mut m = size as u64;
    let mut d = 2u64;
    while d * d <= m {
        while m.is_multiple_of(d) {
            out.push(d as usize);
            m /= d;
        }
        d += if d == 2 { 1 } else { 2 };
    }
    if m > 1 {
        if m > MAX_RADIX as u64 {
            return Err(FieldError::UnsupportedDomainSize { size });
        }
        out.push(m as usize);
    }
    if out.iter().any(|&r| r > MAX_RADIX) {
        return Err(FieldError::UnsupportedDomainSize { size });
    }
    out.sort_unstable_by(|a, b| b.cmp(a));
    Ok(out)
}

/// Distinct prime factors of `m` by trial division. Terminates quickly
/// for the moduli in use: each found factor is divided out, so the
/// loop bound shrinks with the remaining cofactor (for `2^61 − 2` the
/// largest prime factor is 1321).
fn distinct_prime_factors(mut m: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut d = 2u64;
    while d * d <= m {
        if m.is_multiple_of(d) {
            out.push(d);
            while m.is_multiple_of(d) {
                m /= d;
            }
        }
        d += if d == 2 { 1 } else { 2 };
    }
    if m > 1 {
        out.push(m);
    }
    out
}

/// The smallest multiplicative generator of `F*`, found
/// deterministically: the least `g ≥ 2` with `g^{(p−1)/q} ≠ 1` for
/// every prime `q | p − 1`.
fn field_generator<F: PrimeField>() -> Result<F, FieldError> {
    let order = F::MODULUS - 1;
    let primes = distinct_prime_factors(order);
    for g in 2..F::MODULUS {
        let gf = F::from_u64(g);
        if primes.iter().all(|&q| gf.pow(order / q) != F::ONE) {
            return Ok(gf);
        }
    }
    // Unreachable for a prime modulus: F* is cyclic and has a generator.
    Err(FieldError::UnsupportedDomainSize { size: 0 })
}

/// `out[i] = values[i] · first · base^i`, in one pass, reusing `out`'s
/// backing allocation.
fn scale_by_powers_into<F: PrimeField>(values: &[F], base: F, first: F, out: &mut Vec<F>) {
    ensure_filled(out, values.len(), F::ZERO);
    let mut s = first;
    for (o, &v) in out.iter_mut().zip(values) {
        *o = v * s;
        s *= base;
    }
}

/// Recursive mixed-radix decimation-in-time DFT into caller buffers.
///
/// Transforms the `n_cur = Π radices` coefficients
/// `input[offset + i·stride]` with the root `ω_cur = table[tstep]`
/// (where `table[i]` is the `i`-th power of the full domain's root and
/// `n_cur · tstep = table.len()`), writing the `n_cur` evaluations in
/// exponent order to `out[..n_cur]`. For `n_cur = r·m` it splits into
/// `r` stride-`r` subsequences: `A(ω^j) = Σ_t ω^{jt} · B_t[j mod m]`
/// with `B_t` the order-`m` sub-DFT of subsequence `t`.
///
/// `work[..n_cur]` is the recursion buffer: sub-DFT `t` lands in
/// `work[t·m .. (t+1)·m]`, and each child borrows the matching chunk of
/// `out` as its own working space (the chunks are disjoint, so the
/// whole recursion performs no allocation — the old shape allocated a
/// `Vec` per sub-transform per level, `O(N log N)` transient bytes).
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn dft_into<F: PrimeField>(
    input: &[F],
    offset: usize,
    stride: usize,
    radices: &[usize],
    tstep: usize,
    table: &[F],
    out: &mut [F],
    work: &mut [F],
) {
    let Some((&r, rest)) = radices.split_first() else {
        out[0] = input[offset];
        return;
    };
    let m: usize = rest.iter().product();
    let n_cur = r * m;
    let size = table.len();
    for t in 0..r {
        dft_into(
            input,
            offset + t * stride,
            stride * r,
            rest,
            tstep * r,
            table,
            &mut work[t * m..(t + 1) * m],
            &mut out[t * m..(t + 1) * m],
        );
    }
    for j in 0..n_cur {
        let jm = j % m;
        // Twiddle index step (tstep·j) mod size, widened to avoid
        // overflow; per-term indices then advance additively.
        let step = ((tstep as u128 * j as u128) % size as u128) as usize;
        let mut idx = 0usize;
        let mut acc = F::ZERO;
        for t in 0..r {
            acc += table[idx] * work[t * m + jm];
            idx += step;
            if idx >= size {
                idx -= size;
            }
        }
        out[j] = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lagrange, EvalDomain, F61, Fp};
    use rand::SeedableRng;

    type F97 = Fp<97>;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn generator_is_primitive() {
        let g = field_generator::<F61>().unwrap();
        let order = F61::MODULUS - 1;
        assert_eq!(g.pow(order), F61::ONE);
        for q in distinct_prime_factors(order) {
            assert_ne!(g.pow(order / q), F61::ONE, "q = {q}");
        }
        assert_eq!(field_generator::<F97>().unwrap().pow(96), F97::ONE);
    }

    #[test]
    fn rejects_unsupported_sizes() {
        // 2-adicity of F61 is 1: no order-4 subgroup exists.
        assert_eq!(
            NttDomain::<F61>::new(4).unwrap_err(),
            FieldError::UnsupportedDomainSize { size: 4 }
        );
        // 151 divides p − 1 but exceeds MAX_RADIX.
        assert_eq!(
            NttDomain::<F61>::new(151).unwrap_err(),
            FieldError::UnsupportedDomainSize { size: 151 }
        );
        assert_eq!(
            NttDomain::<F61>::new(0).unwrap_err(),
            FieldError::UnsupportedDomainSize { size: 0 }
        );
        assert!(supported_size::<F61>(18));
        assert!(supported_size::<F61>(1287));
        assert!(!supported_size::<F61>(4));
        assert!(!supported_size::<F61>(151));
        assert!(!supported_size::<F61>(0));
    }

    #[test]
    fn size_one_domain_is_trivial() {
        let d = NttDomain::<F61>::new(1).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.points(), &[F61::ONE]);
        let p = d.interpolate(&[F61::from(42u64)]).unwrap();
        assert_eq!(p, Poly::constant(F61::from(42u64)));
        assert_eq!(d.evaluate(p.coeffs()).unwrap(), vec![F61::from(42u64)]);
        // A one-point coset carries the constant at its shift.
        let c = NttDomain::<F61>::from_points(&[F61::from(7u64)]).unwrap();
        assert_eq!(c.interpolate(&[F61::from(9u64)]).unwrap(), Poly::constant(F61::from(9u64)));
    }

    #[test]
    fn forward_matches_direct_evaluation() {
        let mut r = rng(11);
        for size in [2usize, 3, 6, 9, 18, 45] {
            let d = NttDomain::<F61>::new(size).unwrap();
            let p = Poly::<F61>::random(&mut r, size - 1);
            let got = d.forward(p.coeffs()).unwrap();
            assert_eq!(got, p.eval_many(d.points()), "size {size}");
        }
    }

    #[test]
    fn coset_forward_matches_direct_evaluation() {
        let mut r = rng(12);
        let shift = F61::from(123_456_789u64);
        let d = NttDomain::<F61>::coset(18, shift).unwrap();
        let p = Poly::<F61>::random(&mut r, 17);
        assert_eq!(d.forward(p.coeffs()).unwrap(), p.eval_many(d.points()));
    }

    #[test]
    fn interpolate_is_bit_identical_to_lagrange() {
        let mut r = rng(13);
        for size in [2usize, 6, 15, 18, 33] {
            let d = NttDomain::<F61>::coset(size, F61::from(5u64)).unwrap();
            let p = Poly::<F61>::random(&mut r, size - 1);
            let ys = p.eval_many(d.points());
            let fast = d.interpolate(&ys).unwrap();
            let slow = lagrange::interpolate(d.points(), &ys).unwrap();
            let eval_domain = EvalDomain::new(d.points().to_vec()).unwrap();
            assert_eq!(fast, slow, "size {size}");
            assert_eq!(fast, eval_domain.interpolate(&ys).unwrap(), "size {size}");
            assert_eq!(fast, p, "size {size}");
        }
    }

    #[test]
    fn degree_boundary_roundtrip() {
        // Degree exactly size − 1 (leading coefficient nonzero) and a
        // low-degree polynomial (padded coefficients) both round-trip.
        let mut r = rng(14);
        let d = NttDomain::<F61>::new(21).unwrap();
        let full = Poly::<F61>::random(&mut r, 20);
        assert_eq!(d.interpolate(&d.evaluate(full.coeffs()).unwrap()).unwrap(), full);
        let low = Poly::<F61>::random(&mut r, 3);
        assert_eq!(d.interpolate(&d.evaluate(low.coeffs()).unwrap()).unwrap(), low);
    }

    #[test]
    fn power_of_two_sizes_on_small_field() {
        // F97 has 2-adicity 5; exercise repeated radix-2 splits.
        let mut r = rng(15);
        for size in [2usize, 4, 8, 16, 32, 96] {
            let d = NttDomain::<F97>::new(size).unwrap();
            let p = Poly::<F97>::random(&mut r, size - 1);
            let ys = d.forward(p.coeffs()).unwrap();
            assert_eq!(ys, p.eval_many(d.points()), "size {size}");
            assert_eq!(d.interpolate(&ys).unwrap(), p, "size {size}");
        }
    }

    #[test]
    fn from_points_detects_progressions() {
        let d = NttDomain::<F61>::coset(18, F61::from(3u64)).unwrap();
        let again = NttDomain::<F61>::from_points(d.points()).unwrap();
        assert_eq!(again.root(), d.root());
        assert_eq!(again.shift(), d.shift());
        assert_eq!(again.points(), d.points());

        // Sequential points 1..=n are not a progression.
        let seq: Vec<F61> = (1..=6u64).map(F61::from).collect();
        assert!(NttDomain::from_points(&seq).is_err());
        // A progression that does not close into a subgroup (prefix of
        // a larger domain) is rejected.
        assert!(NttDomain::from_points(&d.points()[..6]).is_err());
        // Zero can never lie on a coset.
        assert!(NttDomain::from_points(&[F61::ZERO, F61::ONE]).is_err());
        assert!(NttDomain::<F61>::from_points(&[]).is_err());
        // Duplicate points (ratio 1) are rejected with a typed error,
        // not a panic: the "root" has order 1, never exactly 2.
        assert!(matches!(
            NttDomain::from_points(&[F61::from(3u64), F61::from(3u64)]),
            Err(FieldError::UnsupportedDomainSize { .. })
        ));
    }

    #[test]
    fn with_root_requires_exact_order() {
        let d = NttDomain::<F61>::new(18).unwrap();
        // ω² has order 9, not 18.
        let sq = d.root() * d.root();
        assert!(NttDomain::with_root(18, sq, F61::ONE).is_err());
        assert!(NttDomain::with_root(9, sq, F61::ONE).is_ok());
    }

    #[test]
    fn prefix_domain_shares_subgroup_elements() {
        // The order-m subgroup obtained from the full root's power
        // enumerates exactly the chain-prefix elements of the full
        // domain.
        let full = NttDomain::<F61>::new(18).unwrap();
        let e = chain_enumeration(full.radices());
        let sizes = chain_sizes(full.radices());
        assert_eq!(full.radices(), &[3, 3, 2]);
        assert_eq!(sizes, vec![1, 2, 6, 18]);
        for &m in &sizes {
            let step = 18 / m;
            let sub = NttDomain::with_root(m, full.root().pow(step as u64), F61::ONE).unwrap();
            let mut prefix: Vec<u64> =
                e[..m].iter().map(|&x| full.points()[x].as_u64()).collect();
            let mut subgroup: Vec<u64> = sub.points().iter().map(|p| p.as_u64()).collect();
            prefix.sort_unstable();
            subgroup.sort_unstable();
            assert_eq!(prefix, subgroup, "m = {m}");
        }
    }

    #[test]
    fn chain_enumeration_is_a_permutation() {
        for radices in [vec![3usize, 3, 2], vec![13, 11, 3, 3], vec![2], vec![]] {
            let e = chain_enumeration(&radices);
            let n: usize = radices.iter().product();
            let mut sorted = e.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "radices {radices:?}");
        }
    }

    #[test]
    fn evaluate_range_is_bit_identical_to_full_transform() {
        let mut r = rng(16);
        for size in [2usize, 6, 18, 33, 45] {
            let d = NttDomain::<F61>::coset(size, F61::from(9u64)).unwrap();
            let p = Poly::<F61>::random(&mut r, size / 2);
            let full = d.evaluate(p.coeffs()).unwrap();
            // Every split of the index space, including empty slices,
            // reproduces the matching window of the full transform.
            for lo in 0..=size {
                for hi in lo..=size {
                    let mut out = Vec::new();
                    d.evaluate_range_into(p.coeffs(), lo, hi, &mut out).unwrap();
                    assert_eq!(out, &full[lo..hi], "size {size} range {lo}..{hi}");
                }
            }
        }
    }

    #[test]
    fn evaluate_range_rejects_bad_ranges() {
        let d = NttDomain::<F61>::new(6).unwrap();
        let coeffs = [F61::ONE; 3];
        let mut out = Vec::new();
        assert!(d.evaluate_range_into(&coeffs, 0, 7, &mut out).is_err());
        assert!(d.evaluate_range_into(&coeffs, 4, 2, &mut out).is_err());
        assert!(d.evaluate_range_into(&[F61::ONE; 7], 0, 6, &mut out).is_err());
    }

    #[test]
    fn length_mismatches_are_reported() {
        let d = NttDomain::<F61>::new(6).unwrap();
        assert!(matches!(
            d.forward(&[F61::ONE]).unwrap_err(),
            FieldError::LengthMismatch { xs: 6, ys: 1 }
        ));
        assert!(matches!(
            d.inverse(&[F61::ONE]).unwrap_err(),
            FieldError::LengthMismatch { xs: 6, ys: 1 }
        ));
        assert!(d.evaluate(&[F61::ONE; 7]).is_err());
    }
}
