//! Hot-path allocation counters for the share pipeline.
//!
//! The scale work (DESIGN §12) replaces per-call `Vec` churn on the
//! dealing/reconstruction hot path with reusable scratch buffers. This
//! module is the shared ledger that makes the replacement *measurable*:
//! every scratch buffer in `yoso-field` and `yoso-pss-sharing` reports
//! here when it actually has to grow its backing allocation, so a run
//! in arena mode records only first-touch growths while the legacy
//! fresh-buffers-per-call mode records one event per call. The counters
//! are process-global relaxed atomics — they never influence control
//! flow or the transcript, and reading them costs one atomic load.
//!
//! `yoso bench-scale` samples [`hot_allocs`] around each phase and
//! writes the deltas to `BENCH_scale.json`; the acceptance gate there
//! compares arena vs. fresh-buffer counts at Table-1 committee sizes.

use std::sync::atomic::{AtomicU64, Ordering};

static HOT_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Records one hot-path buffer allocation (or capacity growth).
#[inline]
pub fn bump() {
    HOT_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// Records `n` hot-path buffer allocations at once.
#[inline]
pub fn bump_n(n: u64) {
    HOT_ALLOCS.fetch_add(n, Ordering::Relaxed);
}

/// Total hot-path buffer allocations recorded since process start (or
/// the last [`reset`]).
pub fn hot_allocs() -> u64 {
    HOT_ALLOCS.load(Ordering::Relaxed)
}

/// Resets the counter to zero (bench harnesses only; concurrent
/// increments from other threads may interleave).
pub fn reset() {
    HOT_ALLOCS.store(0, Ordering::Relaxed);
}

/// Clears `buf` and resizes it to `len` copies of `fill`, counting a
/// hot-path allocation whenever the backing capacity has to grow. The
/// shared idiom for every scratch buffer on the share hot path.
#[inline]
pub fn ensure_filled<T: Copy>(buf: &mut Vec<T>, len: usize, fill: T) {
    if buf.capacity() < len {
        bump();
    }
    buf.clear();
    buf.resize(len, fill);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_is_counted_and_reuse_keeps_capacity() {
        // The counter is process-global and tests run concurrently, so
        // only the delta from *this* thread's growth is asserted; the
        // no-count-on-reuse property is pinned via capacity stability.
        let before = hot_allocs();
        let mut buf: Vec<u64> = Vec::new();
        ensure_filled(&mut buf, 64, 0);
        assert!(hot_allocs() > before, "growth must be counted");
        let cap = buf.capacity();
        ensure_filled(&mut buf, 64, 1);
        ensure_filled(&mut buf, 32, 2);
        assert_eq!(buf.capacity(), cap, "reuse must not reallocate");
        assert_eq!(buf, vec![2u64; 32]);
    }
}
