//! Lagrange interpolation and recombination-vector utilities.
//!
//! Packed Shamir secret sharing reduces to two primitives implemented
//! here:
//!
//! - [`interpolate`]: recover the full polynomial through given points.
//! - [`basis_at`]: compute the Lagrange coefficient vector
//!   `(l_1(x*), …, l_m(x*))` such that
//!   `f(x*) = Σ l_j(x*) · f(x_j)` for every polynomial `f` of degree
//!   `< m`. These vectors are exactly the paper's recombination vectors
//!   used in Step 4 of the offline phase (homomorphic packing) and in
//!   the online μ-reconstruction.

use crate::{FieldError, Poly, PrimeField};

/// Batch inversion via Montgomery's trick: inverts all elements with a
/// single field inversion plus `3(n−1)` multiplications.
///
/// # Errors
///
/// Returns [`FieldError::ZeroInverse`] if any element is zero.
pub fn batch_invert<F: PrimeField>(values: &[F]) -> Result<Vec<F>, FieldError> {
    if values.is_empty() {
        return Ok(Vec::new());
    }
    let mut prefix = Vec::with_capacity(values.len());
    let mut acc = F::ONE;
    for &v in values {
        if v.is_zero() {
            return Err(FieldError::ZeroInverse);
        }
        prefix.push(acc);
        acc *= v;
    }
    let mut inv_acc = acc.inv()?;
    let mut out = vec![F::ZERO; values.len()];
    for i in (0..values.len()).rev() {
        out[i] = inv_acc * prefix[i];
        inv_acc *= values[i];
    }
    Ok(out)
}

fn check_points<F: PrimeField>(xs: &[F], ys_len: usize) -> Result<(), FieldError> {
    if xs.len() != ys_len {
        return Err(FieldError::LengthMismatch { xs: xs.len(), ys: ys_len });
    }
    for (i, a) in xs.iter().enumerate() {
        for b in &xs[i + 1..] {
            if a == b {
                return Err(FieldError::DuplicatePoint);
            }
        }
    }
    Ok(())
}

/// Interpolates the unique polynomial of degree `< xs.len()` through
/// the points `(xs[i], ys[i])`.
///
/// # Errors
///
/// Returns [`FieldError::LengthMismatch`] or
/// [`FieldError::DuplicatePoint`] on malformed input.
pub fn interpolate<F: PrimeField>(xs: &[F], ys: &[F]) -> Result<Poly<F>, FieldError> {
    check_points(xs, ys.len())?;
    let mut acc = Poly::zero();
    for (j, (&xj, &yj)) in xs.iter().zip(ys).enumerate() {
        // l_j(x) = Π_{m != j} (x - x_m) / (x_j - x_m)
        let mut numer = Poly::constant(F::ONE);
        let mut denom = F::ONE;
        for (m, &xm) in xs.iter().enumerate() {
            if m == j {
                continue;
            }
            numer = &numer * &Poly::new(vec![-xm, F::ONE]);
            denom *= xj - xm;
        }
        acc = &acc + &numer.scale(yj * denom.inv()?);
    }
    Ok(acc)
}

/// Evaluates the interpolating polynomial through `(xs, ys)` at the
/// single point `x` without constructing the polynomial.
///
/// # Errors
///
/// Same conditions as [`interpolate`].
pub fn eval_at<F: PrimeField>(xs: &[F], ys: &[F], x: F) -> Result<F, FieldError> {
    let basis = basis_at(xs, x)?;
    Ok(basis.iter().zip(ys).map(|(&b, &y)| b * y).sum())
}

/// Computes the Lagrange basis vector `(l_1(x), …, l_m(x))` for the
/// node set `xs`, i.e. coefficients such that
/// `f(x) = Σ_j l_j(x) · f(xs[j])` for every polynomial `f` of degree
/// `< xs.len()`.
///
/// This is the recombination vector used throughout the protocol: for
/// packing the λ-values into packed shares (offline Step 4) and for
/// reconstructing `μ^γ` from the published shares (online phase).
///
/// # Errors
///
/// Returns [`FieldError::DuplicatePoint`] if nodes repeat.
pub fn basis_at<F: PrimeField>(xs: &[F], x: F) -> Result<Vec<F>, FieldError> {
    check_points(xs, xs.len())?;
    // Fast path: x coincides with a node.
    if let Some(pos) = xs.iter().position(|&xj| xj == x) {
        let mut out = vec![F::ZERO; xs.len()];
        out[pos] = F::ONE;
        return Ok(out);
    }
    // prod = Π (x - x_m); l_j(x) = prod / ((x - x_j) · Π_{m≠j} (x_j - x_m))
    let diffs: Vec<F> = xs.iter().map(|&xj| x - xj).collect();
    let prod: F = diffs.iter().copied().product();
    let mut denoms = Vec::with_capacity(xs.len());
    for (j, &xj) in xs.iter().enumerate() {
        let mut d = diffs[j];
        for (m, &xm) in xs.iter().enumerate() {
            if m != j {
                d *= xj - xm;
            }
        }
        denoms.push(d);
    }
    let inv = batch_invert(&denoms)?;
    Ok(inv.into_iter().map(|i| prod * i).collect())
}

/// Computes the full Lagrange basis matrix `L[i][j] = l_j(targets[i])`
/// for node set `xs`: row `i` is the recombination vector taking values
/// at `xs` to the value at `targets[i]`.
///
/// # Errors
///
/// Same conditions as [`basis_at`].
pub fn basis_matrix<F: PrimeField>(xs: &[F], targets: &[F]) -> Result<Vec<Vec<F>>, FieldError> {
    targets.iter().map(|&t| basis_at(xs, t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{F61, Fp, PrimeField};
    use rand::SeedableRng;

    fn f(v: u64) -> F61 {
        F61::from(v)
    }

    #[test]
    fn batch_invert_matches_individual() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(20);
        let vals: Vec<F61> = (0..17).map(|_| F61::random(&mut rng)).collect();
        let inv = batch_invert(&vals).unwrap();
        for (v, i) in vals.iter().zip(&inv) {
            assert_eq!(*v * *i, F61::ONE);
        }
        assert_eq!(batch_invert::<F61>(&[]), Ok(vec![]));
        assert_eq!(batch_invert(&[f(1), F61::ZERO]), Err(FieldError::ZeroInverse));
    }

    #[test]
    fn interpolate_recovers_random_polynomial() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for deg in 0..10usize {
            let p = crate::Poly::<F61>::random(&mut rng, deg);
            let xs: Vec<F61> = (1..=deg as u64 + 1).map(f).collect();
            let ys = p.eval_many(&xs);
            let q = interpolate(&xs, &ys).unwrap();
            assert_eq!(p, q);
        }
    }

    #[test]
    fn interpolate_rejects_bad_input() {
        assert_eq!(
            interpolate(&[f(1)], &[f(1), f(2)]),
            Err(FieldError::LengthMismatch { xs: 1, ys: 2 })
        );
        assert_eq!(
            interpolate(&[f(1), f(1)], &[f(1), f(2)]),
            Err(FieldError::DuplicatePoint)
        );
    }

    #[test]
    fn eval_at_matches_interpolate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let p = crate::Poly::<F61>::random(&mut rng, 6);
        let xs: Vec<F61> = (1..=7u64).map(f).collect();
        let ys = p.eval_many(&xs);
        for x in [f(0), f(100), F61::from_i64(-3)] {
            assert_eq!(eval_at(&xs, &ys, x).unwrap(), p.eval(x));
        }
    }

    #[test]
    fn basis_at_node_is_indicator() {
        let xs: Vec<F61> = (1..=5u64).map(f).collect();
        let b = basis_at(&xs, f(3)).unwrap();
        assert_eq!(b, vec![F61::ZERO, F61::ZERO, F61::ONE, F61::ZERO, F61::ZERO]);
    }

    #[test]
    fn basis_rows_sum_to_one() {
        // Σ_j l_j(x) = 1 for any x (interpolating the constant 1).
        let xs: Vec<F61> = (1..=8u64).map(f).collect();
        for x in [f(0), f(9), f(12345), F61::from_i64(-7)] {
            let b = basis_at(&xs, x).unwrap();
            assert_eq!(b.iter().copied().sum::<F61>(), F61::ONE);
        }
    }

    #[test]
    fn basis_matrix_transports_evaluations() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let p = crate::Poly::<F61>::random(&mut rng, 4);
        let xs: Vec<F61> = (1..=5u64).map(f).collect();
        let targets: Vec<F61> = [0i64, -1, -2, 7].iter().map(|&v| F61::from_i64(v)).collect();
        let m = basis_matrix(&xs, &targets).unwrap();
        let ys = p.eval_many(&xs);
        for (row, &t) in m.iter().zip(&targets) {
            let got: F61 = row.iter().zip(&ys).map(|(&c, &y)| c * y).sum();
            assert_eq!(got, p.eval(t));
        }
    }

    #[test]
    fn small_field_interpolation() {
        type F97 = Fp<97>;
        let xs: Vec<F97> = (1..=4u64).map(F97::from_u64).collect();
        let ys: Vec<F97> = [10u64, 20, 40, 80].iter().map(|&v| F97::from_u64(v)).collect();
        let p = interpolate(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(p.eval(*x), *y);
        }
    }
}
