//! Property-based tests checking `Nat`/`Int` against `u128` reference
//! semantics and algebraic laws.

use proptest::prelude::*;
use yoso_bignum::{Int, Nat};

fn nat_strategy() -> impl Strategy<Value = (u128, Nat)> {
    any::<u128>().prop_map(|v| (v, Nat::from(v)))
}

proptest! {
    #[test]
    fn add_matches_u128((a, na) in nat_strategy(), (b, nb) in nat_strategy()) {
        let (sum, overflow) = a.overflowing_add(b);
        let big = &na + &nb;
        if !overflow {
            prop_assert_eq!(big, Nat::from(sum));
        } else {
            prop_assert_eq!(big.checked_sub(&(Nat::one() << 128)).unwrap(), Nat::from(sum));
        }
    }

    #[test]
    fn sub_matches_u128((a, na) in nat_strategy(), (b, nb) in nat_strategy()) {
        match a.checked_sub(b) {
            Some(d) => prop_assert_eq!(na.checked_sub(&nb), Some(Nat::from(d))),
            None => prop_assert_eq!(na.checked_sub(&nb), None),
        }
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let big = &Nat::from(a) * &Nat::from(b);
        prop_assert_eq!(big, Nat::from(a as u128 * b as u128));
    }

    #[test]
    fn div_rem_matches_u128((a, na) in nat_strategy(), b in 1u128..) {
        let nb = Nat::from(b);
        let (q, r) = na.div_rem(&nb);
        prop_assert_eq!(q, Nat::from(a / b));
        prop_assert_eq!(r, Nat::from(a % b));
    }

    #[test]
    fn mul_commutes_and_associates(a in any::<u128>(), b in any::<u128>(), c in any::<u64>()) {
        let (na, nb, nc) = (Nat::from(a), Nat::from(b), Nat::from(c));
        prop_assert_eq!(&na * &nb, &nb * &na);
        prop_assert_eq!(&(&na * &nb) * &nc, &na * &(&nb * &nc));
    }

    #[test]
    fn distributivity(a in any::<u128>(), b in any::<u128>(), c in any::<u128>()) {
        let (na, nb, nc) = (Nat::from(a), Nat::from(b), Nat::from(c));
        prop_assert_eq!(&nc * &(&na + &nb), &(&nc * &na) + &(&nc * &nb));
    }

    #[test]
    fn bytes_roundtrip((_, na) in nat_strategy()) {
        prop_assert_eq!(Nat::from_bytes_be(&na.to_bytes_be()), na);
    }

    #[test]
    fn display_parse_roundtrip((_, na) in nat_strategy()) {
        let s = na.to_string();
        prop_assert_eq!(s.parse::<Nat>().unwrap(), na);
    }

    #[test]
    fn shift_is_mul_by_power_of_two((a, na) in nat_strategy(), s in 0usize..200) {
        let shifted = na.clone() << s;
        let pow = Nat::one() << s;
        prop_assert_eq!(&na * &pow, shifted.clone());
        prop_assert_eq!(shifted >> s, Nat::from(a));
    }

    #[test]
    fn mod_pow_matches_naive(a in any::<u64>(), e in 0u32..64, m in 2u64..) {
        let nm = Nat::from(m);
        let got = Nat::from(a).mod_pow(&Nat::from(e as u64), &nm);
        let mut expect = 1u128;
        for _ in 0..e {
            expect = expect * (a as u128 % m as u128) % m as u128;
        }
        prop_assert_eq!(got, Nat::from(expect));
    }

    #[test]
    fn mod_inv_is_inverse(a in 1u64.., p in prop::sample::select(vec![65537u64, 1_000_000_007, 2_305_843_009_213_693_951])) {
        let np = Nat::from(p);
        let na = Nat::from(a % p);
        prop_assume!(!na.is_zero());
        let inv = na.mod_inv(&np).unwrap();
        prop_assert_eq!(na.mod_mul(&inv, &np), Nat::one());
    }

    #[test]
    fn gcd_divides_both(a in any::<u128>(), b in any::<u128>()) {
        let (na, nb) = (Nat::from(a), Nat::from(b));
        let g = na.gcd(&nb);
        if !g.is_zero() {
            prop_assert!((&na % &g).is_zero());
            prop_assert!((&nb % &g).is_zero());
        } else {
            prop_assert!(na.is_zero() && nb.is_zero());
        }
    }

    #[test]
    fn int_arithmetic_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let (ia, ib) = (Int::from(a), Int::from(b));
        let sum = a as i128 + b as i128;
        let prod = a as i128 * b as i128;
        prop_assert_eq!((&ia + &ib).to_string(), sum.to_string());
        prop_assert_eq!((&ia - &ib).to_string(), (a as i128 - b as i128).to_string());
        prop_assert_eq!((&ia * &ib).to_string(), prod.to_string());
    }

    #[test]
    fn montgomery_matches_plain_modpow(
        base_seed in any::<u64>(),
        exp_bits in 1usize..300,
        modulus_seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut mr = rand::rngs::StdRng::seed_from_u64(modulus_seed);
        // Random odd modulus of 4+ limbs (the Montgomery fast path).
        let mut m = Nat::random_bits(&mut mr, 260);
        if m.is_even() {
            m = &m + &Nat::one();
        }
        let mut br = rand::rngs::StdRng::seed_from_u64(base_seed);
        let base = Nat::random_below(&mut br, &m);
        let exp = Nat::random_bits(&mut br, exp_bits);
        let ctx = yoso_bignum::MontgomeryCtx::new(&m);
        // Cross-check the two implementations directly.
        let via_ctx = ctx.mod_pow(&base, &exp);
        // Square-and-multiply reference without the Montgomery path.
        let mut acc = Nat::one();
        for i in (0..exp.bit_len()).rev() {
            acc = acc.mod_mul(&acc, &m);
            if exp.bit(i) {
                acc = acc.mod_mul(&base, &m);
            }
        }
        prop_assert_eq!(via_ctx, acc);
    }

    #[test]
    fn int_mod_floor_in_range(a in any::<i64>(), m in 1u64..) {
        let r = Int::from(a).mod_floor(&Nat::from(m));
        prop_assert!(r < Nat::from(m));
        // (a - r) divisible by m: check via i128 arithmetic.
        let rv = r.to_u64().unwrap() as i128;
        prop_assert_eq!((a as i128 - rv).rem_euclid(m as i128), 0);
    }
}
