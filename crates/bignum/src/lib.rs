//! Arbitrary-precision unsigned and modular integer arithmetic.
//!
//! This crate is the numeric substrate for the threshold Paillier
//! encryption scheme used by the YOSO MPC protocol (see the `yoso-the`
//! crate). It is written from scratch and provides:
//!
//! - [`Nat`]: an arbitrary-precision unsigned integer (little-endian
//!   `u64` limbs) with addition, subtraction, multiplication
//!   (schoolbook and Karatsuba), Knuth division, shifting and
//!   comparison.
//! - [`Int`]: a signed wrapper used by the extended Euclidean
//!   algorithm and by Lagrange combining over the integers (the `Δ = n!`
//!   trick of threshold Paillier).
//! - Modular arithmetic: [`Nat::mod_add`], [`Nat::mod_mul`],
//!   [`Nat::mod_pow`], [`Nat::mod_inv`] and [`Nat::gcd`].
//! - Primality testing and prime generation ([`prime`]): Miller–Rabin
//!   with deterministic small witnesses plus random rounds, and
//!   safe-prime generation for Paillier moduli.
//! - Uniform random sampling below a bound ([`Nat::random_below`]).
//!
//! # Example
//!
//! ```rust
//! use yoso_bignum::Nat;
//!
//! let a = Nat::from(123_456_789u64);
//! let b = Nat::from(987_654_321u64);
//! let m = Nat::from(1_000_000_007u64);
//! let c = a.mod_mul(&b, &m);
//! assert_eq!(c, Nat::from(121_932_631_112_635_269u128 % 1_000_000_007u128));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod int;
mod modular;
pub mod montgomery;
mod nat;
pub mod prime;

pub use int::{Int, Sign};
pub use montgomery::MontgomeryCtx;
pub use modular::{crt_pair, extended_gcd};
pub use nat::{Nat, ParseNatError};
