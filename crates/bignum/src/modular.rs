//! Modular arithmetic on [`Nat`]: addition, multiplication,
//! exponentiation (4-bit fixed window), gcd, lcm and modular inversion
//! via the extended Euclidean algorithm.

use crate::{Int, Nat, Sign};

impl Nat {
    /// `(self + rhs) mod m`. Operands need not be reduced.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_add(&self, rhs: &Nat, m: &Nat) -> Nat {
        &(&(self % m) + &(rhs % m)) % m
    }

    /// `(self - rhs) mod m`, mapped into `[0, m)`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_sub(&self, rhs: &Nat, m: &Nat) -> Nat {
        let a = self % m;
        let b = rhs % m;
        match a.checked_sub(&b) {
            Some(d) => d,
            None => &(&a + m) - &b,
        }
    }

    /// `(self * rhs) mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_mul(&self, rhs: &Nat, m: &Nat) -> Nat {
        &(self * rhs) % m
    }

    /// `-self mod m`, mapped into `[0, m)`.
    pub fn mod_neg(&self, m: &Nat) -> Nat {
        let r = self % m;
        if r.is_zero() {
            r
        } else {
            m - &r
        }
    }

    /// `self^exponent mod m` via 4-bit fixed-window exponentiation.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero. `x^0 mod 1` is `0` (everything is `0` mod 1).
    pub fn mod_pow(&self, exponent: &Nat, m: &Nat) -> Nat {
        assert!(!m.is_zero(), "mod_pow: zero modulus");
        if m.is_one() {
            return Nat::zero();
        }
        if exponent.is_zero() {
            return Nat::one();
        }
        let base = self % m;
        if base.is_zero() {
            return Nat::zero();
        }
        // Large odd moduli with long exponents: Montgomery is much
        // faster than division-based reduction.
        if m.is_odd() && m.limbs().len() >= 4 && exponent.bit_len() > 64 {
            return crate::montgomery::MontgomeryCtx::new(m).mod_pow(&base, exponent);
        }

        // Precompute base^0 .. base^15.
        let mut table = Vec::with_capacity(16);
        table.push(Nat::one());
        for i in 1..16 {
            let prev: &Nat = &table[i - 1];
            table.push(prev.mod_mul(&base, m));
        }

        let bits = exponent.bit_len();
        let windows = bits.div_ceil(4);
        let mut acc = Nat::one();
        for w in (0..windows).rev() {
            for _ in 0..4 {
                acc = acc.mod_mul(&acc, m);
            }
            let mut digit = 0usize;
            for b in 0..4 {
                let idx = w * 4 + (3 - b);
                digit <<= 1;
                if idx < bits && exponent.bit(idx) {
                    digit |= 1;
                }
            }
            if digit != 0 {
                acc = acc.mod_mul(&table[digit], m);
            }
        }
        acc
    }

    /// Greatest common divisor (binary-free Euclid; division-based).
    pub fn gcd(&self, other: &Nat) -> Nat {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = &a % &b;
            a = b;
            b = r;
        }
        a
    }

    /// Least common multiple. `lcm(0, x) = 0`.
    pub fn lcm(&self, other: &Nat) -> Nat {
        if self.is_zero() || other.is_zero() {
            return Nat::zero();
        }
        let g = self.gcd(other);
        (self * other).div_rem(&g).0
    }

    /// Modular inverse: `self^{-1} mod m`, or `None` if
    /// `gcd(self, m) != 1`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_inv(&self, m: &Nat) -> Option<Nat> {
        assert!(!m.is_zero(), "mod_inv: zero modulus");
        let (g, x, _) = extended_gcd(&Int::from_nat(self % m), &Int::from_nat(m.clone()));
        if g != Int::one() {
            return None;
        }
        Some(x.mod_floor(m))
    }

    /// Factorial `n!` as a [`Nat`] (used for the `Δ = n!` scaling of
    /// threshold Paillier share combining).
    pub fn factorial(n: u64) -> Nat {
        let mut acc = Nat::one();
        for i in 2..=n {
            acc *= &Nat::from(i);
        }
        acc
    }
}

/// Extended Euclidean algorithm over signed integers.
///
/// Returns `(g, x, y)` with `a*x + b*y = g = gcd(|a|, |b|)` and `g >= 0`.
pub fn extended_gcd(a: &Int, b: &Int) -> (Int, Int, Int) {
    let mut old_r = a.clone();
    let mut r = b.clone();
    let mut old_s = Int::one();
    let mut s = Int::zero();
    let mut old_t = Int::zero();
    let mut t = Int::one();

    while !r.is_zero() {
        let (q_mag, _) = old_r.magnitude().div_rem(r.magnitude());
        let q_sign = match (old_r.sign(), r.sign()) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (x, y) if x == y => Sign::Positive,
            _ => Sign::Negative,
        };
        let q = Int::from_sign_magnitude(q_sign, q_mag);
        // Note: this is truncated division, which is fine for the gcd
        // loop as long as the remainder shrinks in magnitude; we recompute
        // the remainder as old_r - q*r.
        let new_r = &old_r - &(&q * &r);
        old_r = std::mem::replace(&mut r, new_r);
        let new_s = &old_s - &(&q * &s);
        old_s = std::mem::replace(&mut s, new_s);
        let new_t = &old_t - &(&q * &t);
        old_t = std::mem::replace(&mut t, new_t);
    }

    if old_r.is_negative() {
        (-old_r, -old_s, -old_t)
    } else {
        (old_r, old_s, old_t)
    }
}

/// Chinese remainder theorem for two coprime moduli.
///
/// Returns the unique `x in [0, m1*m2)` with `x ≡ r1 (mod m1)` and
/// `x ≡ r2 (mod m2)`, or `None` if `gcd(m1, m2) != 1`.
pub fn crt_pair(r1: &Nat, m1: &Nat, r2: &Nat, m2: &Nat) -> Option<Nat> {
    let m1_inv = m1.mod_inv(m2)?;
    // x = r1 + m1 * ((r2 - r1) * m1^{-1} mod m2)
    let diff = r2.mod_sub(r1, m2);
    let h = diff.mod_mul(&m1_inv, m2);
    Some(&(r1 % m1) + &(m1 * &h))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Nat {
        Nat::from(v)
    }

    #[test]
    fn mod_add_sub_wraparound() {
        let m = n(13);
        assert_eq!(n(10).mod_add(&n(10), &m), n(7));
        assert_eq!(n(3).mod_sub(&n(10), &m), n(6));
        assert_eq!(n(10).mod_sub(&n(3), &m), n(7));
        assert_eq!(n(0).mod_neg(&m), n(0));
        assert_eq!(n(5).mod_neg(&m), n(8));
    }

    #[test]
    fn mod_pow_small_cases() {
        let m = n(1_000_000_007);
        assert_eq!(n(2).mod_pow(&n(10), &m), n(1024));
        assert_eq!(n(2).mod_pow(&n(0), &m), n(1));
        assert_eq!(n(0).mod_pow(&n(5), &m), n(0));
        assert_eq!(n(5).mod_pow(&n(3), &Nat::one()), n(0));
    }

    #[test]
    fn mod_pow_fermat_little_theorem() {
        // p prime => a^(p-1) = 1 mod p
        let p = n(1_000_000_007);
        for a in [2u128, 3, 65537, 999_999_999] {
            assert_eq!(n(a).mod_pow(&(&p - &Nat::one()), &p), Nat::one());
        }
    }

    #[test]
    fn mod_pow_matches_u128_reference() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let m = 0xffff_ffff_0000_0001u128; // Goldilocks-ish modulus
        for _ in 0..20 {
            let a = rng.gen::<u64>() as u128 % m;
            let e = rng.gen::<u32>() as u128;
            let mut expect = 1u128;
            let mut base = a;
            let mut exp = e;
            while exp > 0 {
                if exp & 1 == 1 {
                    expect = expect * base % m;
                }
                base = base * base % m;
                exp >>= 1;
            }
            assert_eq!(n(a).mod_pow(&n(e), &n(m)), n(expect));
        }
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(n(12).gcd(&n(18)), n(6));
        assert_eq!(n(0).gcd(&n(5)), n(5));
        assert_eq!(n(5).gcd(&n(0)), n(5));
        assert_eq!(n(12).lcm(&n(18)), n(36));
        assert_eq!(n(0).lcm(&n(5)), n(0));
    }

    #[test]
    fn extended_gcd_bezout_identity() {
        let a = Int::from(240i64);
        let b = Int::from(46i64);
        let (g, x, y) = extended_gcd(&a, &b);
        assert_eq!(g, Int::from(2i64));
        assert_eq!(&(&a * &x) + &(&b * &y), g);
    }

    #[test]
    fn mod_inv_roundtrip_and_failure() {
        let m = n(97);
        for a in 1u128..97 {
            let inv = n(a).mod_inv(&m).unwrap();
            assert_eq!(n(a).mod_mul(&inv, &m), Nat::one());
        }
        assert_eq!(n(6).mod_inv(&n(9)), None);
        assert_eq!(n(0).mod_inv(&n(9)), None);
    }

    #[test]
    fn crt_reconstructs() {
        let x = crt_pair(&n(2), &n(3), &n(3), &n(5)).unwrap();
        assert_eq!(x, n(8));
        let x = crt_pair(&n(1), &n(4), &n(2), &n(9)).unwrap();
        assert_eq!(&x % &n(4), n(1));
        assert_eq!(&x % &n(9), n(2));
        assert!(crt_pair(&n(1), &n(4), &n(2), &n(6)).is_none());
    }

    #[test]
    fn factorial_small() {
        assert_eq!(Nat::factorial(0), Nat::one());
        assert_eq!(Nat::factorial(1), Nat::one());
        assert_eq!(Nat::factorial(5), n(120));
        assert_eq!(Nat::factorial(20), n(2_432_902_008_176_640_000));
    }
}
