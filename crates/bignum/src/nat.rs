//! The [`Nat`] arbitrary-precision unsigned integer.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of bits per limb.
const LIMB_BITS: usize = 64;

/// Multiplications with both operands above this limb count use Karatsuba.
const KARATSUBA_THRESHOLD: usize = 24;

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian `u64` limbs with the invariant that the most
/// significant limb is non-zero (zero is the empty limb vector).
///
/// All arithmetic allocates; this type favours clarity and correctness
/// over squeezing the last cycles — the hot loops of the MPC protocol
/// run over the fixed 61-bit prime field in `yoso-field`, not here.
///
/// # Example
///
/// ```rust
/// use yoso_bignum::Nat;
///
/// let a: Nat = "340282366920938463463374607431768211456".parse()?; // 2^128
/// assert_eq!(a, Nat::from(1u64) << 128);
/// # Ok::<(), yoso_bignum::ParseNatError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Nat {
    /// Little-endian limbs; no trailing zero limbs.
    limbs: Vec<u64>,
}

/// Error returned when parsing a [`Nat`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNatError {
    kind: ParseNatErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseNatErrorKind {
    Empty,
    InvalidDigit(char),
}

impl fmt::Display for ParseNatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseNatErrorKind::Empty => write!(f, "cannot parse integer from empty string"),
            ParseNatErrorKind::InvalidDigit(c) => write!(f, "invalid digit found in string: {c:?}"),
        }
    }
}

impl std::error::Error for ParseNatError {}

impl Nat {
    /// The value zero.
    pub fn zero() -> Self {
        Nat { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        Nat { limbs: vec![1] }
    }

    /// Returns `true` if `self` is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if `self` is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Returns `true` if the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|l| l & 1 == 1)
    }

    /// Returns `true` if the value is even (zero is even).
    pub fn is_even(&self) -> bool {
        !self.is_odd()
    }

    /// Constructs a value from little-endian limbs, normalizing.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Nat { limbs }
    }

    /// Borrows the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Number of significant bits (zero has zero bits).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * LIMB_BITS + (LIMB_BITS - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / LIMB_BITS;
        let off = i % LIMB_BITS;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Interprets the value as `u64`, if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Interprets the value as `u128`, if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | ((self.limbs[1] as u128) << 64)),
            _ => None,
        }
    }

    /// Big-endian byte encoding without leading zeros (zero encodes as empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..first_nonzero);
        out
    }

    /// Constructs a value from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut buf = [0u8; 8];
            buf[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(buf));
        }
        Nat::from_limbs(limbs)
    }

    /// Checked subtraction: `self - rhs`, or `None` if `rhs > self`.
    pub fn checked_sub(&self, rhs: &Nat) -> Option<Nat> {
        if self < rhs {
            return None;
        }
        Some(self.sub_unchecked(rhs))
    }

    /// Subtraction whose `self >= rhs` precondition is the caller's
    /// responsibility. The O(limbs) comparison guarding
    /// [`Nat::checked_sub`] is only performed under `debug_assertions`
    /// — hot reduction loops (Montgomery REDC, Karatsuba's middle
    /// term) already know the invariant holds and call this directly.
    pub(crate) fn sub_unchecked(&self, rhs: &Nat) -> Nat {
        debug_assert!(self >= rhs, "sub_unchecked underflow");
        let mut out = self.limbs.clone();
        let mut borrow = 0u64;
        for (i, &r) in rhs.limbs.iter().enumerate() {
            let (d1, b1) = out[i].overflowing_sub(r);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        let mut i = rhs.limbs.len();
        while borrow != 0 {
            let (d, b) = out[i].overflowing_sub(borrow);
            out[i] = d;
            borrow = b as u64;
            i += 1;
        }
        Nat::from_limbs(out)
    }

    /// Quotient and remainder of `self / divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Nat) -> (Nat, Nat) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (Nat::zero(), self.clone()),
            Ordering::Equal => return (Nat::one(), Nat::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_limb(divisor.limbs[0]);
            return (q, Nat::from(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Quotient and remainder by a single limb.
    fn div_rem_limb(&self, d: u64) -> (Nat, u64) {
        debug_assert!(d != 0);
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (Nat::from_limbs(q), rem as u64)
    }

    /// Knuth algorithm D long division (both operands multi-limb).
    fn div_rem_knuth(&self, divisor: &Nat) -> (Nat, Nat) {
        // Normalize so the top divisor limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.clone() << shift;
        let v = divisor.clone() << shift;
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        // Working copy of the dividend with one extra high limb.
        let mut un = u.limbs.clone();
        un.push(0);
        let vn = &v.limbs;
        let mut q = vec![0u64; m + 1];

        let v_top = vn[n - 1];
        let v_next = vn[n - 2];

        for j in (0..=m).rev() {
            // Estimate the quotient digit from the top limbs.
            let numerator = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = numerator / v_top as u128;
            let mut rhat = numerator % v_top as u128;
            while qhat >> 64 != 0
                || qhat * v_next as u128 > ((rhat << 64) | un[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += v_top as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }

            // Multiply-subtract qhat * v from un[j .. j+n+1].
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let sub = (un[j + i] as i128) - ((p & u64::MAX as u128) as i128) - borrow;
                un[j + i] = sub as u64;
                borrow = if sub < 0 { 1 } else { 0 };
            }
            let sub = (un[j + n] as i128) - (carry as i128) - borrow;
            un[j + n] = sub as u64;

            q[j] = qhat as u64;
            if sub < 0 {
                // Estimate was one too high: add v back.
                q[j] -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = un[j + i] as u128 + vn[i] as u128 + carry;
                    un[j + i] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
        }

        un.truncate(n);
        let rem = Nat::from_limbs(un) >> shift;
        (Nat::from_limbs(q), rem)
    }

    /// Uniformly random value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &Nat) -> Nat {
        assert!(!bound.is_zero(), "random_below: zero bound");
        let bits = bound.bit_len();
        let limbs = bits.div_ceil(LIMB_BITS);
        let top_mask = if bits.is_multiple_of(LIMB_BITS) {
            u64::MAX
        } else {
            (1u64 << (bits % LIMB_BITS)) - 1
        };
        // Rejection sampling; each trial succeeds with probability > 1/2.
        loop {
            let mut v = Vec::with_capacity(limbs);
            for _ in 0..limbs {
                v.push(rng.gen::<u64>());
            }
            *v.last_mut().unwrap() &= top_mask;
            let candidate = Nat::from_limbs(v);
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// Uniformly random value with exactly `bits` bits (top bit set).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Nat {
        assert!(bits > 0, "random_bits: zero width");
        let limbs = bits.div_ceil(LIMB_BITS);
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
        let top_bit = (bits - 1) % LIMB_BITS;
        let last = v.last_mut().unwrap();
        *last &= if top_bit == 63 { u64::MAX } else { (1u64 << (top_bit + 1)) - 1 };
        *last |= 1u64 << top_bit;
        Nat::from_limbs(v)
    }

    /// Schoolbook multiplication.
    fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + b.len();
            while carry != 0 {
                let cur = out[idx] as u128 + carry;
                out[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        out
    }

    /// Karatsuba multiplication on limb slices.
    fn mul_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
            return Self::mul_schoolbook(a, b);
        }
        let half = a.len().max(b.len()) / 2;
        let (a_lo, a_hi) = a.split_at(half.min(a.len()));
        let (b_lo, b_hi) = b.split_at(half.min(b.len()));
        let a_lo_n = Nat::from_limbs(a_lo.to_vec());
        let a_hi_n = Nat::from_limbs(a_hi.to_vec());
        let b_lo_n = Nat::from_limbs(b_lo.to_vec());
        let b_hi_n = Nat::from_limbs(b_hi.to_vec());

        let z0 = Nat::from_limbs(Self::mul_limbs(&a_lo_n.limbs, &b_lo_n.limbs));
        let z2 = Nat::from_limbs(Self::mul_limbs(&a_hi_n.limbs, &b_hi_n.limbs));
        let sa = &a_lo_n + &a_hi_n;
        let sb = &b_lo_n + &b_hi_n;
        let z1_full = Nat::from_limbs(Self::mul_limbs(&sa.limbs, &sb.limbs));
        // (a_lo+a_hi)(b_lo+b_hi) >= a_lo·b_lo + a_hi·b_hi always holds,
        // so the underflow comparison is debug-only.
        let z1 = z1_full.sub_unchecked(&z0).sub_unchecked(&z2);

        let mut acc = z0;
        acc += &(z1 << (half * LIMB_BITS));
        acc += &(z2 << (2 * half * LIMB_BITS));
        acc.limbs
    }

    /// Squares `self` — the same value as `self * self`, but the
    /// off-diagonal limb products `aᵢ·aⱼ` (i ≠ j) are computed once and
    /// doubled, roughly halving the multiplication work. Squarings
    /// dominate every modular exponentiation chain, which makes this
    /// the single hottest bignum primitive for threshold Paillier.
    pub fn sqr(&self) -> Nat {
        Nat::from_limbs(Self::sqr_limbs(&self.limbs))
    }

    /// Karatsuba-style squaring on limb slices: `a² = a₁²·B² +
    /// ((a₁+a₀)² − a₁² − a₀²)·B + a₀²` recurses into three squarings.
    fn sqr_limbs(a: &[u64]) -> Vec<u64> {
        if a.len() < KARATSUBA_THRESHOLD {
            return Self::sqr_schoolbook(a);
        }
        let half = a.len() / 2;
        let (a_lo, a_hi) = a.split_at(half);
        let a_lo_n = Nat::from_limbs(a_lo.to_vec());
        let a_hi_n = Nat::from_limbs(a_hi.to_vec());
        let z0 = Nat::from_limbs(Self::sqr_limbs(&a_lo_n.limbs));
        let z2 = Nat::from_limbs(Self::sqr_limbs(&a_hi_n.limbs));
        let s = &a_lo_n + &a_hi_n;
        let z1_full = Nat::from_limbs(Self::sqr_limbs(&s.limbs));
        // (a_lo + a_hi)² >= a_lo² + a_hi², so the subtractions cannot
        // underflow; the debug-only comparison inside sub_unchecked
        // re-checks this.
        let z1 = z1_full.sub_unchecked(&z0).sub_unchecked(&z2);
        let mut acc = z0;
        acc += &(z1 << (half * LIMB_BITS));
        acc += &(z2 << (2 * half * LIMB_BITS));
        acc.limbs
    }

    /// Schoolbook squaring: accumulate the strict upper triangle,
    /// double it, then add the diagonal `aᵢ²` terms.
    fn sqr_schoolbook(a: &[u64]) -> Vec<u64> {
        let n = a.len();
        if n == 0 {
            return Vec::new();
        }
        let mut out = vec![0u64; 2 * n];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &aj) in a.iter().enumerate().skip(i + 1) {
                let cur = out[i + j] as u128 + ai as u128 * aj as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + n;
            while carry != 0 {
                let cur = out[idx] as u128 + carry;
                out[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        // Double the cross terms (top bit of the triangle sum is always
        // free: the sum is < 2^(128n−1)).
        let mut carry_bit = 0u64;
        for d in out.iter_mut() {
            let top = *d >> 63;
            *d = (*d << 1) | carry_bit;
            carry_bit = top;
        }
        // Add the diagonal.
        let mut carry = 0u128;
        for (i, &ai) in a.iter().enumerate() {
            let sq = ai as u128 * ai as u128;
            let lo = out[2 * i] as u128 + (sq as u64) as u128 + carry;
            out[2 * i] = lo as u64;
            let hi = out[2 * i + 1] as u128 + (sq >> 64) + (lo >> 64);
            out[2 * i + 1] = hi as u64;
            carry = hi >> 64;
        }
        debug_assert_eq!(carry, 0, "a² fits in 2·len limbs");
        out
    }
}

impl From<u64> for Nat {
    fn from(v: u64) -> Self {
        Nat::from_limbs(vec![v])
    }
}

impl From<u32> for Nat {
    fn from(v: u32) -> Self {
        Nat::from(v as u64)
    }
}

impl From<u128> for Nat {
    fn from(v: u128) -> Self {
        Nat::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl From<usize> for Nat {
    fn from(v: usize) -> Self {
        Nat::from(v as u64)
    }
}

impl FromStr for Nat {
    type Err = ParseNatError;

    /// Parses a decimal string (or hex with an `0x` prefix).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseNatError { kind: ParseNatErrorKind::Empty });
        }
        if let Some(hex) = s.strip_prefix("0x") {
            if hex.is_empty() {
                return Err(ParseNatError { kind: ParseNatErrorKind::Empty });
            }
            let mut acc = Nat::zero();
            for c in hex.chars() {
                let d = c
                    .to_digit(16)
                    .ok_or(ParseNatError { kind: ParseNatErrorKind::InvalidDigit(c) })?;
                acc = (acc << 4) + Nat::from(d as u64);
            }
            return Ok(acc);
        }
        let mut acc = Nat::zero();
        for c in s.chars() {
            let d = c
                .to_digit(10)
                .ok_or(ParseNatError { kind: ParseNatErrorKind::InvalidDigit(c) })?;
            acc = &(&acc * &Nat::from(10u64)) + &Nat::from(d as u64);
        }
        Ok(acc)
    }
}

impl fmt::Display for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        let base = 10_000_000_000_000_000_000u64; // 10^19 fits in u64
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_limb(base);
            digits.push(r);
            cur = q;
        }
        let mut s = digits.pop().unwrap().to_string();
        for d in digits.iter().rev() {
            s.push_str(&format!("{d:019}"));
        }
        f.pad_integral(true, "", &s)
    }
}

impl fmt::Debug for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nat({self})")
    }
}

impl fmt::LowerHex for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut s = format!("{:x}", self.limbs.last().unwrap());
        for limb in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{limb:016x}"));
        }
        f.pad_integral(true, "0x", &s)
    }
}

impl Ord for Nat {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for Nat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<&Nat> for &Nat {
    type Output = Nat;
    fn add(self, rhs: &Nat) -> Nat {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (&self.limbs, &rhs.limbs)
        } else {
            (&rhs.limbs, &self.limbs)
        };
        let mut out = long.clone();
        let mut carry = 0u64;
        for (i, &s) in short.iter().enumerate() {
            let (v1, c1) = out[i].overflowing_add(s);
            let (v2, c2) = v1.overflowing_add(carry);
            out[i] = v2;
            carry = (c1 as u64) + (c2 as u64);
        }
        let mut i = short.len();
        while carry != 0 && i < out.len() {
            let (v, c) = out[i].overflowing_add(carry);
            out[i] = v;
            carry = c as u64;
            i += 1;
        }
        if carry != 0 {
            out.push(carry);
        }
        Nat::from_limbs(out)
    }
}

impl Add for Nat {
    type Output = Nat;
    fn add(self, rhs: Nat) -> Nat {
        &self + &rhs
    }
}

impl AddAssign<&Nat> for Nat {
    fn add_assign(&mut self, rhs: &Nat) {
        *self = &*self + rhs;
    }
}

impl Sub<&Nat> for &Nat {
    type Output = Nat;
    /// # Panics
    /// Panics on underflow; use [`Nat::checked_sub`] to handle that case.
    fn sub(self, rhs: &Nat) -> Nat {
        self.checked_sub(rhs).expect("Nat subtraction underflow")
    }
}

impl Sub for Nat {
    type Output = Nat;
    fn sub(self, rhs: Nat) -> Nat {
        &self - &rhs
    }
}

impl SubAssign<&Nat> for Nat {
    fn sub_assign(&mut self, rhs: &Nat) {
        *self = &*self - rhs;
    }
}

impl Mul<&Nat> for &Nat {
    type Output = Nat;
    fn mul(self, rhs: &Nat) -> Nat {
        Nat::from_limbs(Nat::mul_limbs(&self.limbs, &rhs.limbs))
    }
}

impl Mul for Nat {
    type Output = Nat;
    fn mul(self, rhs: Nat) -> Nat {
        &self * &rhs
    }
}

impl MulAssign<&Nat> for Nat {
    fn mul_assign(&mut self, rhs: &Nat) {
        *self = &*self * rhs;
    }
}

impl Rem<&Nat> for &Nat {
    type Output = Nat;
    fn rem(self, rhs: &Nat) -> Nat {
        self.div_rem(rhs).1
    }
}

impl Rem<&Nat> for Nat {
    type Output = Nat;
    fn rem(self, rhs: &Nat) -> Nat {
        self.div_rem(rhs).1
    }
}

impl Shl<usize> for &Nat {
    type Output = Nat;
    fn shl(self, shift: usize) -> Nat {
        self.clone() << shift
    }
}

impl Shr<usize> for &Nat {
    type Output = Nat;
    fn shr(self, shift: usize) -> Nat {
        self.clone() >> shift
    }
}

impl Shl<usize> for Nat {
    type Output = Nat;
    fn shl(self, shift: usize) -> Nat {
        if self.is_zero() || shift == 0 {
            return self;
        }
        let limb_shift = shift / LIMB_BITS;
        let bit_shift = shift % LIMB_BITS;
        let mut out = vec![0u64; limb_shift];
        #[allow(clippy::manual_is_multiple_of)]
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Nat::from_limbs(out)
    }
}

impl Shr<usize> for Nat {
    type Output = Nat;
    fn shr(self, shift: usize) -> Nat {
        let limb_shift = shift / LIMB_BITS;
        if limb_shift >= self.limbs.len() {
            return Nat::zero();
        }
        let bit_shift = shift % LIMB_BITS;
        let mut out = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            for i in 0..out.len() {
                out[i] >>= bit_shift;
                if i + 1 < out.len() {
                    out[i] |= out[i + 1] << (LIMB_BITS - bit_shift);
                }
            }
        }
        Nat::from_limbs(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn n(v: u128) -> Nat {
        Nat::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(Nat::zero().is_zero());
        assert!(Nat::one().is_one());
        assert!(Nat::zero().is_even());
        assert!(Nat::one().is_odd());
        assert_eq!(Nat::default(), Nat::zero());
    }

    #[test]
    fn add_with_carry_chain() {
        let a = Nat::from_limbs(vec![u64::MAX, u64::MAX]);
        let b = Nat::one();
        let c = &a + &b;
        assert_eq!(c, Nat::from_limbs(vec![0, 0, 1]));
    }

    #[test]
    fn sub_with_borrow_chain() {
        let a = Nat::from_limbs(vec![0, 0, 1]);
        let b = Nat::one();
        assert_eq!(&a - &b, Nat::from_limbs(vec![u64::MAX, u64::MAX]));
        assert_eq!(b.checked_sub(&a), None);
    }

    #[test]
    fn mul_small() {
        assert_eq!(&n(0) * &n(12345), n(0));
        assert_eq!(&n(1 << 40) * &n(1 << 40), n(1 << 80));
        assert_eq!(&n(u64::MAX as u128) * &n(u64::MAX as u128), n((u64::MAX as u128) * (u64::MAX as u128)));
    }

    #[test]
    fn mul_karatsuba_matches_schoolbook() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let a = Nat::random_bits(&mut rng, 64 * 64 + 13);
            let b = Nat::random_bits(&mut rng, 64 * 50 + 5);
            let kar = &a * &b;
            let school = Nat::from_limbs(Nat::mul_schoolbook(a.limbs(), b.limbs()));
            assert_eq!(kar, school);
        }
    }

    #[test]
    fn sqr_matches_mul() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        assert_eq!(Nat::zero().sqr(), Nat::zero());
        assert_eq!(Nat::one().sqr(), Nat::one());
        assert_eq!(n(u64::MAX as u128).sqr(), &n(u64::MAX as u128) * &n(u64::MAX as u128));
        // Bit lengths straddling the Karatsuba threshold, plus odd
        // widths to exercise carry chains.
        for bits in [1usize, 63, 64, 65, 640, 64 * 23, 64 * 24, 64 * 30 + 17, 64 * 50 + 5] {
            for _ in 0..3 {
                let a = Nat::random_bits(&mut rng, bits);
                assert_eq!(a.sqr(), &a * &a, "bits={bits}");
            }
        }
    }

    #[test]
    fn div_rem_basic() {
        let (q, r) = n(1000).div_rem(&n(7));
        assert_eq!((q, r), (n(142), n(6)));
        let (q, r) = n(7).div_rem(&n(1000));
        assert_eq!((q, r), (n(0), n(7)));
        let (q, r) = n(1000).div_rem(&n(1000));
        assert_eq!((q, r), (n(1), n(0)));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = n(5).div_rem(&Nat::zero());
    }

    #[test]
    fn div_rem_multilimb_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let a = Nat::random_bits(&mut rng, 700);
            let b = Nat::random_bits(&mut rng, 320);
            let (q, r) = a.div_rem(&b);
            assert!(r < b);
            assert_eq!(&(&q * &b) + &r, a);
        }
    }

    #[test]
    fn shifts_roundtrip() {
        let a: Nat = "123456789012345678901234567890".parse().unwrap();
        assert_eq!((a.clone() << 133) >> 133, a);
        assert_eq!(a.clone() >> 1000, Nat::zero());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let cases = ["0", "1", "18446744073709551616", "340282366920938463463374607431768211455"];
        for c in cases {
            let v: Nat = c.parse().unwrap();
            assert_eq!(v.to_string(), c);
        }
        assert_eq!("0xff".parse::<Nat>().unwrap(), n(255));
        assert!("".parse::<Nat>().is_err());
        assert!("12a".parse::<Nat>().is_err());
    }

    #[test]
    fn bytes_roundtrip() {
        let v: Nat = "98765432109876543210987654321098765432".parse().unwrap();
        assert_eq!(Nat::from_bytes_be(&v.to_bytes_be()), v);
        assert_eq!(Nat::zero().to_bytes_be(), Vec::<u8>::new());
        assert_eq!(Nat::from_bytes_be(&[]), Nat::zero());
    }

    #[test]
    fn bit_len_and_bit() {
        assert_eq!(Nat::zero().bit_len(), 0);
        assert_eq!(Nat::one().bit_len(), 1);
        assert_eq!(n(1 << 70).bit_len(), 71);
        assert!(n(1 << 70).bit(70));
        assert!(!n(1 << 70).bit(69));
        assert!(!n(1 << 70).bit(500));
    }

    #[test]
    fn random_below_is_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let bound: Nat = "123456789123456789123456789".parse().unwrap();
        for _ in 0..100 {
            let v = Nat::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn random_bits_has_exact_width() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for bits in [1usize, 2, 63, 64, 65, 127, 128, 129, 512] {
            let v = Nat::random_bits(&mut rng, bits);
            assert_eq!(v.bit_len(), bits);
        }
    }

    #[test]
    fn ordering() {
        assert!(n(5) < n(6));
        assert!(Nat::from_limbs(vec![0, 1]) > n(u64::MAX as u128));
        assert_eq!(n(7).cmp(&n(7)), Ordering::Equal);
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(format!("{:x}", n(255)), "ff");
        assert_eq!(format!("{:x}", Nat::from_limbs(vec![0, 1])), "10000000000000000");
        assert_eq!(format!("{:x}", Nat::zero()), "0");
    }
}
