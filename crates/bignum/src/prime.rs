//! Primality testing and prime generation.
//!
//! Used to generate the RSA-style modulus `N = p·q` for the threshold
//! Paillier scheme. The tests are Miller–Rabin with a deterministic set
//! of small witnesses (complete below 3.3 · 10^24) plus extra random
//! rounds for larger candidates.

use rand::Rng;

use crate::Nat;

/// Small primes used for trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89,
    97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199,
];

/// Deterministic Miller–Rabin witnesses, complete for n < 3.3 · 10^24.
const DETERMINISTIC_WITNESSES: [u64; 13] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41];

/// Number of extra random Miller–Rabin rounds for large candidates.
const RANDOM_ROUNDS: usize = 24;

/// Probabilistic primality test (trial division + Miller–Rabin).
///
/// For candidates below 2^81 the witness set is deterministic and the
/// answer is exact; above that the error probability is at most
/// `4^-RANDOM_ROUNDS`.
pub fn is_prime<R: Rng + ?Sized>(n: &Nat, rng: &mut R) -> bool {
    if n < &Nat::from(2u64) {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p = Nat::from(p);
        if n == &p {
            return true;
        }
        if (n % &p).is_zero() {
            return false;
        }
    }

    // Write n - 1 = d * 2^s with d odd.
    let n_minus_1 = n - &Nat::one();
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d >> 1;
        s += 1;
    }

    let witness_fails = |a: &Nat| -> bool {
        // Returns true if `a` proves n composite.
        let mut x = a.mod_pow(&d, n);
        if x.is_one() || x == n_minus_1 {
            return false;
        }
        for _ in 0..s - 1 {
            x = x.mod_mul(&x, n);
            if x == n_minus_1 {
                return false;
            }
        }
        true
    };

    for &w in &DETERMINISTIC_WITNESSES {
        let a = Nat::from(w);
        if &a >= n {
            continue;
        }
        if witness_fails(&a) {
            return false;
        }
    }

    if n.bit_len() > 81 {
        let two = Nat::from(2u64);
        let upper = n - &two; // witnesses in [2, n-2]
        for _ in 0..RANDOM_ROUNDS {
            let a = &Nat::random_below(rng, &upper) + &two;
            if witness_fails(&a) {
                return false;
            }
        }
    }
    true
}

/// Generates a random prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn generate_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Nat {
    assert!(bits >= 2, "generate_prime: need at least 2 bits");
    loop {
        let mut candidate = Nat::random_bits(rng, bits);
        if candidate.is_even() {
            candidate = &candidate + &Nat::one();
            if candidate.bit_len() != bits {
                continue;
            }
        }
        if is_prime(&candidate, rng) {
            return candidate;
        }
    }
}

/// Generates a random safe prime `p = 2q + 1` (both `p` and `q` prime)
/// with exactly `bits` bits.
///
/// Safe primes make the Paillier modulus `N = p·q` have
/// `gcd(N, φ(N)) = 1` and give a large cyclic subgroup for the
/// threshold key sharing.
///
/// # Panics
///
/// Panics if `bits < 3`.
pub fn generate_safe_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Nat {
    assert!(bits >= 3, "generate_safe_prime: need at least 3 bits");
    loop {
        let q = generate_prime(rng, bits - 1);
        let p = &(q.clone() << 1) + &Nat::one();
        if p.bit_len() == bits && is_prime(&p, rng) {
            return p;
        }
    }
}

/// Generates distinct primes `(p, q)` of `bits` bits each suitable for a
/// Paillier modulus: `gcd(pq, (p-1)(q-1)) = 1` is guaranteed by
/// requiring `p != q` and both of the same bit length.
pub fn generate_paillier_primes<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> (Nat, Nat) {
    loop {
        let p = generate_prime(rng, bits);
        let q = generate_prime(rng, bits);
        if p == q {
            continue;
        }
        // gcd(N, phi) = 1 iff neither prime divides the other minus one.
        let p1 = &p - &Nat::one();
        let q1 = &q - &Nat::one();
        if (&p1 % &q).is_zero() || (&q1 % &p).is_zero() {
            continue;
        }
        return (p, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn small_primes_and_composites() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let primes = [2u64, 3, 5, 7, 97, 101, 7919, 1_000_000_007];
        let composites = [0u64, 1, 4, 100, 561, 1105, 1729, 2465, 2821, 6601]; // incl. Carmichael
        for p in primes {
            assert!(is_prime(&Nat::from(p), &mut rng), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_prime(&Nat::from(c), &mut rng), "{c} should be composite");
        }
    }

    #[test]
    fn mersenne_61_is_prime() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let p = Nat::from((1u128 << 61) - 1);
        assert!(is_prime(&p, &mut rng));
    }

    #[test]
    fn large_known_prime() {
        // 2^127 - 1 is a Mersenne prime.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let p = &(Nat::one() << 127) - &Nat::one();
        assert!(is_prime(&p, &mut rng));
        // 2^128 - 1 = (2^64-1)(2^64+1) is composite.
        let c = &(Nat::one() << 128) - &Nat::one();
        assert!(!is_prime(&c, &mut rng));
    }

    #[test]
    fn generated_primes_have_requested_width() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for bits in [16usize, 32, 64, 128] {
            let p = generate_prime(&mut rng, bits);
            assert_eq!(p.bit_len(), bits);
            assert!(is_prime(&p, &mut rng));
        }
    }

    #[test]
    fn safe_prime_structure() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let p = generate_safe_prime(&mut rng, 32);
        assert!(is_prime(&p, &mut rng));
        let q = (&p - &Nat::one()) >> 1;
        assert!(is_prime(&q, &mut rng));
    }

    #[test]
    fn paillier_primes_are_coprime_to_phi() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let (p, q) = generate_paillier_primes(&mut rng, 64);
        assert_ne!(p, q);
        let n = &p * &q;
        let phi = &(&p - &Nat::one()) * &(&q - &Nat::one());
        assert_eq!(n.gcd(&phi), Nat::one());
    }
}
