//! Signed arbitrary-precision integers.
//!
//! [`Int`] is a thin sign-and-magnitude wrapper over [`Nat`]. It exists
//! for the places where subtraction must go negative: the extended
//! Euclidean algorithm, and Lagrange coefficients over the integers
//! used by threshold Paillier share combining (`Δ = n!` scaling).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::Nat;

/// Sign of an [`Int`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Zero.
    Zero,
    /// Strictly positive.
    Positive,
}

/// A signed arbitrary-precision integer (sign and magnitude).
///
/// # Example
///
/// ```rust
/// use yoso_bignum::{Int, Nat};
///
/// let a = Int::from(5i64);
/// let b = Int::from(-9i64);
/// assert_eq!(&a + &b, Int::from(-4i64));
/// assert_eq!((&a + &b).mod_floor(&Nat::from(7u64)), Nat::from(3u64));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Int {
    sign: Sign,
    magnitude: Nat,
}

impl Int {
    /// The value zero.
    pub fn zero() -> Self {
        Int { sign: Sign::Zero, magnitude: Nat::zero() }
    }

    /// The value one.
    pub fn one() -> Self {
        Int { sign: Sign::Positive, magnitude: Nat::one() }
    }

    /// Constructs a non-negative integer from a [`Nat`].
    pub fn from_nat(n: Nat) -> Self {
        if n.is_zero() {
            Int::zero()
        } else {
            Int { sign: Sign::Positive, magnitude: n }
        }
    }

    /// Constructs an integer from an explicit sign and magnitude.
    ///
    /// A zero magnitude always yields the zero integer regardless of `sign`.
    pub fn from_sign_magnitude(sign: Sign, magnitude: Nat) -> Self {
        if magnitude.is_zero() {
            Int::zero()
        } else {
            match sign {
                Sign::Zero => Int::zero(),
                s => Int { sign: s, magnitude },
            }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude `|self|`.
    pub fn magnitude(&self) -> &Nat {
        &self.magnitude
    }

    /// Returns `true` if zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` if strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Euclidean (floor) residue in `[0, m)`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_floor(&self, m: &Nat) -> Nat {
        let r = &self.magnitude % m;
        match self.sign {
            Sign::Negative if !r.is_zero() => m - &r,
            _ => r,
        }
    }

    /// `self * rhs` where `rhs` is an unsigned value.
    pub fn mul_nat(&self, rhs: &Nat) -> Int {
        Int::from_sign_magnitude(self.sign, &self.magnitude * rhs)
    }

    /// Exact division: `self / rhs` when the division leaves no
    /// remainder (used for integer Lagrange coefficients, where the
    /// `Δ = n!` scaling guarantees exactness).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero or does not divide `self` exactly.
    pub fn div_exact(&self, rhs: &Int) -> Int {
        assert!(!rhs.is_zero(), "div_exact: division by zero");
        let (q, r) = self.magnitude.div_rem(&rhs.magnitude);
        assert!(r.is_zero(), "div_exact: inexact division");
        let sign = match (self.sign, rhs.sign) {
            (Sign::Zero, _) => Sign::Zero,
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        };
        Int::from_sign_magnitude(sign, q)
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Less => Int { sign: Sign::Negative, magnitude: Nat::from(v.unsigned_abs()) },
            Ordering::Equal => Int::zero(),
            Ordering::Greater => Int { sign: Sign::Positive, magnitude: Nat::from(v as u64) },
        }
    }
}

impl From<Nat> for Int {
    fn from(n: Nat) -> Self {
        Int::from_nat(n)
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.sign {
            Sign::Negative => write!(f, "-{}", self.magnitude),
            _ => write!(f, "{}", self.magnitude),
        }
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Int({self})")
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        let sign = match self.sign {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        };
        Int { sign, magnitude: self.magnitude }
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        -self.clone()
    }
}

impl Add<&Int> for &Int {
    type Output = Int;
    fn add(self, rhs: &Int) -> Int {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => Int { sign: a, magnitude: &self.magnitude + &rhs.magnitude },
            _ => match self.magnitude.cmp(&rhs.magnitude) {
                Ordering::Equal => Int::zero(),
                Ordering::Greater => {
                    Int { sign: self.sign, magnitude: &self.magnitude - &rhs.magnitude }
                }
                Ordering::Less => Int { sign: rhs.sign, magnitude: &rhs.magnitude - &self.magnitude },
            },
        }
    }
}

impl Add for Int {
    type Output = Int;
    fn add(self, rhs: Int) -> Int {
        &self + &rhs
    }
}

impl Sub<&Int> for &Int {
    type Output = Int;
    fn sub(self, rhs: &Int) -> Int {
        self + &(-rhs)
    }
}

impl Sub for Int {
    type Output = Int;
    fn sub(self, rhs: Int) -> Int {
        &self - &rhs
    }
}

impl Mul<&Int> for &Int {
    type Output = Int;
    fn mul(self, rhs: &Int) -> Int {
        let sign = match (self.sign, rhs.sign) {
            (Sign::Zero, _) | (_, Sign::Zero) => return Int::zero(),
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        };
        Int { sign, magnitude: &self.magnitude * &rhs.magnitude }
    }
}

impl Mul for Int {
    type Output = Int;
    fn mul(self, rhs: Int) -> Int {
        &self * &rhs
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(s: Sign) -> i8 {
            match s {
                Sign::Negative => -1,
                Sign::Zero => 0,
                Sign::Positive => 1,
            }
        }
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => match self.sign {
                Sign::Negative => other.magnitude.cmp(&self.magnitude),
                Sign::Zero => Ordering::Equal,
                Sign::Positive => self.magnitude.cmp(&other.magnitude),
            },
            ord => ord,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Int {
        Int::from(v)
    }

    #[test]
    fn signed_addition_all_sign_combinations() {
        assert_eq!(&i(5) + &i(3), i(8));
        assert_eq!(&i(5) + &i(-3), i(2));
        assert_eq!(&i(3) + &i(-5), i(-2));
        assert_eq!(&i(-3) + &i(-5), i(-8));
        assert_eq!(&i(5) + &i(-5), i(0));
        assert_eq!(&i(0) + &i(-5), i(-5));
        assert_eq!(&i(5) + &i(0), i(5));
    }

    #[test]
    fn signed_subtraction() {
        assert_eq!(&i(5) - &i(9), i(-4));
        assert_eq!(&i(-5) - &i(-9), i(4));
        assert_eq!(&i(-5) - &i(9), i(-14));
    }

    #[test]
    fn signed_multiplication() {
        assert_eq!(&i(5) * &i(-3), i(-15));
        assert_eq!(&i(-5) * &i(-3), i(15));
        assert_eq!(&i(-5) * &i(0), i(0));
    }

    #[test]
    fn mod_floor_maps_negatives_into_range() {
        let m = Nat::from(7u64);
        assert_eq!(i(9).mod_floor(&m), Nat::from(2u64));
        assert_eq!(i(-9).mod_floor(&m), Nat::from(5u64));
        assert_eq!(i(-7).mod_floor(&m), Nat::from(0u64));
        assert_eq!(i(0).mod_floor(&m), Nat::from(0u64));
    }

    #[test]
    fn ordering_across_signs() {
        assert!(i(-10) < i(-2));
        assert!(i(-2) < i(0));
        assert!(i(0) < i(3));
        assert!(i(3) < i(10));
    }

    #[test]
    fn zero_magnitude_normalizes_sign() {
        let z = Int::from_sign_magnitude(Sign::Negative, Nat::zero());
        assert!(z.is_zero());
        assert_eq!(z, Int::zero());
    }

    #[test]
    fn display() {
        assert_eq!(i(-42).to_string(), "-42");
        assert_eq!(i(42).to_string(), "42");
        assert_eq!(i(0).to_string(), "0");
    }
}
