//! Montgomery modular multiplication and exponentiation.
//!
//! Threshold Paillier spends essentially all of its time in `mod_pow`
//! with a fixed odd modulus (`N²`). A [`MontgomeryCtx`] precomputes the
//! Montgomery constants for such a modulus once; exponentiation then
//! replaces every division-based reduction with a multiply-and-shift
//! REDC step.

use crate::Nat;

/// Precomputed context for Montgomery arithmetic modulo an odd `m`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MontgomeryCtx {
    /// The modulus (odd, > 1).
    m: Nat,
    /// Limb count of `m` (the Montgomery radix is `2^(64·limbs)`).
    limbs: usize,
    /// `-m^{-1} mod 2^64` (the REDC constant).
    m_prime: u64,
    /// `R² mod m` for converting into Montgomery form.
    r2: Nat,
    /// `R mod m` (the Montgomery form of 1).
    r1: Nat,
}

impl MontgomeryCtx {
    /// Builds a context for the odd modulus `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is even or `< 3`.
    pub fn new(m: &Nat) -> Self {
        assert!(m.is_odd() && *m > Nat::from(2u64), "Montgomery modulus must be odd and > 2");
        let limbs = m.limbs().len();
        // m' = -m^{-1} mod 2^64 via Newton iteration on the low limb.
        let m0 = m.limbs()[0];
        let mut inv = m0; // correct to 3 bits (for odd m0)
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        let m_prime = inv.wrapping_neg();
        // R = 2^(64·limbs); R mod m and R² mod m by shifting.
        let r1 = &(Nat::one() << (64 * limbs)) % m;
        let r2 = &(&r1 * &r1) % m;
        MontgomeryCtx { m: m.clone(), limbs, m_prime, r2, r1 }
    }

    /// The modulus.
    pub fn modulus(&self) -> &Nat {
        &self.m
    }

    /// Montgomery reduction: given `t < m·R`, returns `t·R^{-1} mod m`.
    fn redc(&self, t: &Nat) -> Nat {
        let n = self.limbs;
        let mlimbs = self.m.limbs();
        let mut acc = vec![0u64; 2 * n + 1];
        let tl = t.limbs();
        acc[..tl.len()].copy_from_slice(tl);

        for i in 0..n {
            let u = acc[i].wrapping_mul(self.m_prime);
            // acc += u · m · 2^(64 i)
            let mut carry = 0u128;
            for (j, &mj) in mlimbs.iter().enumerate() {
                let cur = acc[i + j] as u128 + u as u128 * mj as u128 + carry;
                acc[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + n;
            while carry != 0 {
                let cur = acc[idx] as u128 + carry;
                acc[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        let out = Nat::from_limbs(acc[n..].to_vec());
        if out >= self.m {
            // The branch already established out >= m; skip the second
            // comparison a panicking `Sub` would redo.
            out.sub_unchecked(&self.m)
        } else {
            out
        }
    }

    /// Converts into Montgomery form: `a·R mod m`.
    pub fn to_mont(&self, a: &Nat) -> Nat {
        self.redc(&(&(a % &self.m) * &self.r2))
    }

    /// Converts out of Montgomery form.
    pub fn from_mont(&self, a: &Nat) -> Nat {
        self.redc(a)
    }

    /// Multiplies two Montgomery-form values.
    pub fn mont_mul(&self, a: &Nat, b: &Nat) -> Nat {
        self.redc(&(a * b))
    }

    /// Squares a Montgomery-form value via the dedicated [`Nat::sqr`]
    /// (the off-diagonal limb products are computed once and doubled).
    /// Squaring chains dominate `mod_pow` and the multi-exponentiation
    /// routines built on this context, so the ~25–40% saving per square
    /// compounds across every exponent bit.
    pub fn mont_sqr(&self, a: &Nat) -> Nat {
        self.redc(&a.sqr())
    }

    /// The Montgomery form of `1` (the neutral element for
    /// [`Self::mont_mul`]) — the natural accumulator seed for
    /// externally driven exponentiation loops.
    pub fn one_mont(&self) -> Nat {
        self.r1.clone()
    }

    /// Modular exponentiation `base^exp mod m` (operands in normal
    /// form) via 4-bit windowed Montgomery ladder.
    pub fn mod_pow(&self, base: &Nat, exp: &Nat) -> Nat {
        if exp.is_zero() {
            return Nat::one() % &self.m;
        }
        let base_m = self.to_mont(base);
        // Window table: base^0 .. base^15 in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(self.r1.clone());
        for i in 1..16 {
            let prev: &Nat = &table[i - 1];
            table.push(self.mont_mul(prev, &base_m));
        }
        let bits = exp.bit_len();
        let windows = bits.div_ceil(4);
        let mut acc = self.r1.clone();
        for w in (0..windows).rev() {
            for _ in 0..4 {
                acc = self.mont_sqr(&acc);
            }
            let mut digit = 0usize;
            for b in 0..4 {
                let idx = w * 4 + (3 - b);
                digit <<= 1;
                if idx < bits && exp.bit(idx) {
                    digit |= 1;
                }
            }
            if digit != 0 {
                acc = self.mont_mul(&acc, &table[digit]);
            }
        }
        self.from_mont(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn n(v: u128) -> Nat {
        Nat::from(v)
    }

    #[test]
    fn rejects_even_modulus() {
        let result = std::panic::catch_unwind(|| MontgomeryCtx::new(&n(100)));
        assert!(result.is_err());
    }

    #[test]
    fn roundtrip_mont_form() {
        let ctx = MontgomeryCtx::new(&n(1_000_000_007));
        for v in [0u128, 1, 12345, 999_999_999] {
            let m = ctx.to_mont(&n(v));
            assert_eq!(ctx.from_mont(&m), n(v));
        }
    }

    #[test]
    fn mont_mul_matches_mod_mul() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let m = crate::prime::generate_prime(&mut rng, 256);
        let ctx = MontgomeryCtx::new(&m);
        for _ in 0..50 {
            let a = Nat::random_below(&mut rng, &m);
            let b = Nat::random_below(&mut rng, &m);
            let got = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
            assert_eq!(got, a.mod_mul(&b, &m));
        }
    }

    #[test]
    fn mont_sqr_matches_mont_mul() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let p = crate::prime::generate_prime(&mut rng, 128);
        let q = crate::prime::generate_prime(&mut rng, 128);
        let m = &p * &q;
        let ctx = MontgomeryCtx::new(&m);
        for _ in 0..50 {
            let a = ctx.to_mont(&Nat::random_below(&mut rng, &m));
            assert_eq!(ctx.mont_sqr(&a), ctx.mont_mul(&a, &a));
        }
        assert_eq!(ctx.mont_sqr(&ctx.one_mont()), ctx.one_mont());
    }

    #[test]
    fn mod_pow_matches_plain() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(18);
        let p = crate::prime::generate_prime(&mut rng, 128);
        let q = crate::prime::generate_prime(&mut rng, 128);
        let m = &p * &q; // odd composite, like N²'s factors
        let ctx = MontgomeryCtx::new(&m);
        for _ in 0..10 {
            let base = Nat::random_below(&mut rng, &m);
            let exp = Nat::random_bits(&mut rng, 200);
            assert_eq!(ctx.mod_pow(&base, &exp), base.mod_pow(&exp, &m));
        }
        // Edge exponents.
        let base = Nat::random_below(&mut rng, &m);
        assert_eq!(ctx.mod_pow(&base, &Nat::zero()), Nat::one());
        assert_eq!(ctx.mod_pow(&base, &Nat::one()), base);
    }

    #[test]
    fn fermat_via_montgomery() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        let p = crate::prime::generate_prime(&mut rng, 192);
        let ctx = MontgomeryCtx::new(&p);
        let a = Nat::random_below(&mut rng, &p);
        assert_eq!(ctx.mod_pow(&a, &(&p - &Nat::one())), Nat::one());
    }
}
