//! Fiat–Shamir transcripts.

use yoso_bignum::Nat;
use yoso_field::PrimeField;

use crate::sha256::Sha256;

/// A Fiat–Shamir transcript: absorbs labelled protocol messages and
/// produces challenges that are binding to everything absorbed so far.
///
/// Each absorb operation is length-prefixed and labelled, so distinct
/// message sequences can never collide. Challenges are derived by
/// hashing the running state together with a squeeze counter, and each
/// squeeze also re-keys the state (so later challenges depend on
/// earlier ones).
///
/// # Example
///
/// ```rust
/// use yoso_crypto::Transcript;
///
/// let mut t1 = Transcript::new(b"example-proof");
/// t1.absorb(b"statement", b"x = 42");
/// let c1 = t1.challenge_bytes(b"c");
///
/// let mut t2 = Transcript::new(b"example-proof");
/// t2.absorb(b"statement", b"x = 42");
/// assert_eq!(c1, t2.challenge_bytes(b"c")); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct Transcript {
    state: [u8; 32],
    squeezes: u64,
}

impl Transcript {
    /// Creates a transcript bound to a protocol domain separator.
    pub fn new(domain: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(b"yoso-pss/transcript/v1");
        h.update(&(domain.len() as u64).to_le_bytes());
        h.update(domain);
        Transcript { state: h.finalize(), squeezes: 0 }
    }

    /// Absorbs a labelled message.
    pub fn absorb(&mut self, label: &[u8], message: &[u8]) {
        let mut h = Sha256::new();
        h.update(&self.state);
        h.update(b"absorb");
        h.update(&(label.len() as u64).to_le_bytes());
        h.update(label);
        h.update(&(message.len() as u64).to_le_bytes());
        h.update(message);
        self.state = h.finalize();
    }

    /// Absorbs a `u64` (little-endian).
    pub fn absorb_u64(&mut self, label: &[u8], v: u64) {
        self.absorb(label, &v.to_le_bytes());
    }

    /// Absorbs a field element.
    pub fn absorb_field<F: PrimeField>(&mut self, label: &[u8], v: F) {
        self.absorb(label, &v.to_bytes());
    }

    /// Absorbs a big integer.
    pub fn absorb_nat(&mut self, label: &[u8], v: &Nat) {
        self.absorb(label, &v.to_bytes_be());
    }

    /// Squeezes 32 challenge bytes.
    pub fn challenge_bytes(&mut self, label: &[u8]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&self.state);
        h.update(b"squeeze");
        h.update(&(label.len() as u64).to_le_bytes());
        h.update(label);
        h.update(&self.squeezes.to_le_bytes());
        let out = h.finalize();
        self.squeezes += 1;
        // Re-key so subsequent challenges depend on this one.
        let mut rk = Sha256::new();
        rk.update(&self.state);
        rk.update(b"rekey");
        rk.update(&out);
        self.state = rk.finalize();
        out
    }

    /// Squeezes a field element challenge.
    pub fn challenge_field<F: PrimeField>(&mut self, label: &[u8]) -> F {
        let bytes = self.challenge_bytes(label);
        // lint:allow(panic): infallible — an 8-byte slice of a 32-byte
        // digest always converts into [u8; 8].
        let v = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        F::from_u64(v)
    }

    /// Squeezes a uniformly distributed `Nat` below `bound` (rejection
    /// sampling over successive squeezes).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn challenge_nat(&mut self, label: &[u8], bound: &Nat) -> Nat {
        assert!(!bound.is_zero(), "challenge_nat: zero bound");
        let bytes_needed = bound.bit_len().div_ceil(8);
        loop {
            let mut buf = Vec::with_capacity(bytes_needed);
            while buf.len() < bytes_needed {
                buf.extend_from_slice(&self.challenge_bytes(label));
            }
            buf.truncate(bytes_needed);
            // Mask the top byte to the bound's bit length to keep the
            // rejection probability below 1/2.
            let top_bits = bound.bit_len() % 8;
            if top_bits != 0 {
                buf[0] &= (1u16 << top_bits) as u8 - 1;
            }
            let candidate = Nat::from_bytes_be(&buf);
            if &candidate < bound {
                return candidate;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yoso_field::{F61, PrimeField};

    #[test]
    fn deterministic_for_identical_transcripts() {
        let mut a = Transcript::new(b"t");
        let mut b = Transcript::new(b"t");
        a.absorb(b"m", b"hello");
        b.absorb(b"m", b"hello");
        assert_eq!(a.challenge_bytes(b"c"), b.challenge_bytes(b"c"));
        // After one squeeze, the next challenges still agree.
        assert_eq!(a.challenge_bytes(b"c"), b.challenge_bytes(b"c"));
    }

    #[test]
    fn different_messages_give_different_challenges() {
        let mut a = Transcript::new(b"t");
        let mut b = Transcript::new(b"t");
        a.absorb(b"m", b"hello");
        b.absorb(b"m", b"hellp");
        assert_ne!(a.challenge_bytes(b"c"), b.challenge_bytes(b"c"));
    }

    #[test]
    fn domain_separation() {
        let mut a = Transcript::new(b"proto-a");
        let mut b = Transcript::new(b"proto-b");
        assert_ne!(a.challenge_bytes(b"c"), b.challenge_bytes(b"c"));
    }

    #[test]
    fn length_prefixing_prevents_ambiguity() {
        // ("ab", "c") must differ from ("a", "bc").
        let mut a = Transcript::new(b"t");
        let mut b = Transcript::new(b"t");
        a.absorb(b"ab", b"c");
        b.absorb(b"a", b"bc");
        assert_ne!(a.challenge_bytes(b"c"), b.challenge_bytes(b"c"));
    }

    #[test]
    fn successive_challenges_differ() {
        let mut t = Transcript::new(b"t");
        let c1 = t.challenge_bytes(b"c");
        let c2 = t.challenge_bytes(b"c");
        assert_ne!(c1, c2);
    }

    #[test]
    fn field_challenge_is_canonical() {
        let mut t = Transcript::new(b"t");
        let c: F61 = t.challenge_field(b"c");
        assert!(c.as_u64() < F61::MODULUS);
    }

    #[test]
    fn nat_challenge_below_bound() {
        let mut t = Transcript::new(b"t");
        let bound: Nat = "123456789123456789123456789".parse().unwrap();
        for _ in 0..20 {
            let c = t.challenge_nat(b"c", &bound);
            assert!(c < bound);
        }
    }
}
