//! Public-key encryption for role keys and keys-for-future.
//!
//! The YOSO protocol uses PKE in three places: (1) the role-assignment
//! keys under which messages to future committees are encrypted, (2)
//! the keys-for-future (KFF) generated at setup, and (3) encrypting
//! `tsk` subshares between committees. The protocol only requires
//! IND-CPA security and correct sizes for communication metering.
//!
//! The instantiation here is hybrid Diffie–Hellman over the
//! multiplicative group of `F_p` (`p = 2^61 − 1`): a real asymmetric
//! scheme with real ephemeral ciphertexts, but a **toy security level**
//! (61-bit group). DESIGN.md documents this substitution; nothing in
//! the protocol logic or the communication accounting depends on the
//! group size, which is configurable in the meter.

use rand::Rng;
use serde::{Deserialize, Serialize};

use yoso_field::{F61, PrimeField};

use crate::sha256::Sha256;
use crate::CryptoError;

/// A fixed generator of a large subgroup of `F_p^*` for `p = 2^61 − 1`.
///
/// 3 generates a subgroup of order divisible by the large prime factor
/// `2305843009213693951 / small factors`; for the simulation all that
/// matters is that powers of 3 mix well.
const GENERATOR: u64 = 3;

/// A PKE public key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey {
    /// `g^x` for secret exponent `x`.
    point: u64,
}

/// A PKE secret key.
// lint:redact: Debug is implemented manually below and prints nothing of
// the exponent; Serialize is required so parties can persist role keys.
#[derive(Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretKey {
    exponent: u64,
}

// lint:redact: the secret exponent is never printed.
impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecretKey").field("exponent", &"<redacted>").finish()
    }
}

/// A hybrid ciphertext: ephemeral group element plus masked payload
/// with an integrity tag.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ciphertext {
    ephemeral: u64,
    masked: Vec<u8>,
    tag: [u8; 16],
}

impl Ciphertext {
    /// Serialized size in bytes (for communication metering).
    pub fn size_bytes(&self) -> usize {
        8 + self.masked.len() + 16
    }
}

/// A PKE key pair.
// lint:redact: the derived Debug delegates to SecretKey's redacted impl,
// so no exponent is printed; Serialize is required for key persistence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyPair {
    /// The public portion.
    pub public: PublicKey,
    /// The secret portion.
    pub secret: SecretKey,
}

/// Generates a fresh key pair.
pub fn keygen<R: Rng + ?Sized>(rng: &mut R) -> KeyPair {
    // Exponent in [1, p-1).
    let exponent = 1 + rng.gen::<u64>() % (F61::MODULUS - 2);
    let point = F61::from_u64(GENERATOR).pow(exponent).as_u64();
    KeyPair { public: PublicKey { point }, secret: SecretKey { exponent } }
}

fn derive_stream(shared: u64, ephemeral: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut counter = 0u64;
    while out.len() < len {
        let mut h = Sha256::new();
        h.update(b"yoso-pss/pke/stream");
        h.update(&shared.to_le_bytes());
        h.update(&ephemeral.to_le_bytes());
        h.update(&counter.to_le_bytes());
        out.extend_from_slice(&h.finalize());
        counter += 1;
    }
    out.truncate(len);
    out
}

fn derive_tag(shared: u64, ephemeral: u64, masked: &[u8]) -> [u8; 16] {
    let mut h = Sha256::new();
    h.update(b"yoso-pss/pke/tag");
    h.update(&shared.to_le_bytes());
    h.update(&ephemeral.to_le_bytes());
    h.update(masked);
    let d = h.finalize();
    // lint:allow(panic): infallible — a 16-byte slice of a 32-byte SHA-256
    // digest always converts into [u8; 16].
    d[..16].try_into().expect("16 bytes")
}

/// Encrypts `plaintext` to `pk`.
pub fn encrypt<R: Rng + ?Sized>(rng: &mut R, pk: &PublicKey, plaintext: &[u8]) -> Ciphertext {
    let y = 1 + rng.gen::<u64>() % (F61::MODULUS - 2);
    let ephemeral = F61::from_u64(GENERATOR).pow(y).as_u64();
    let shared = F61::from_u64(pk.point).pow(y).as_u64();
    let stream = derive_stream(shared, ephemeral, plaintext.len());
    let masked: Vec<u8> = plaintext.iter().zip(&stream).map(|(p, s)| p ^ s).collect();
    let tag = derive_tag(shared, ephemeral, &masked);
    Ciphertext { ephemeral, masked, tag }
}

/// Decrypts `ct` with `sk`.
///
/// # Errors
///
/// Returns [`CryptoError::DecryptionFailed`] if the integrity tag does
/// not verify (wrong key or tampered ciphertext).
pub fn decrypt(sk: &SecretKey, ct: &Ciphertext) -> Result<Vec<u8>, CryptoError> {
    let shared = F61::from_u64(ct.ephemeral).pow(sk.exponent).as_u64();
    let tag = derive_tag(shared, ct.ephemeral, &ct.masked);
    if tag != ct.tag {
        return Err(CryptoError::DecryptionFailed);
    }
    // lint:allow(taint-flow): decrypt's contract is returning the plaintext; callers own its hygiene
    let stream = derive_stream(shared, ct.ephemeral, ct.masked.len());
    Ok(ct.masked.iter().zip(&stream).map(|(m, s)| m ^ s).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let kp = keygen(&mut rng);
        let msg = b"the quick brown fox";
        let ct = encrypt(&mut rng, &kp.public, msg);
        assert_eq!(decrypt(&kp.secret, &ct).unwrap(), msg.to_vec());
    }

    #[test]
    fn wrong_key_fails() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let kp1 = keygen(&mut rng);
        let kp2 = keygen(&mut rng);
        let ct = encrypt(&mut rng, &kp1.public, b"secret");
        assert_eq!(decrypt(&kp2.secret, &ct), Err(CryptoError::DecryptionFailed));
    }

    #[test]
    fn tampering_detected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let kp = keygen(&mut rng);
        let mut ct = encrypt(&mut rng, &kp.public, b"secret payload");
        ct.masked[0] ^= 1;
        assert_eq!(decrypt(&kp.secret, &ct), Err(CryptoError::DecryptionFailed));
    }

    #[test]
    fn empty_plaintext() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let kp = keygen(&mut rng);
        let ct = encrypt(&mut rng, &kp.public, b"");
        assert_eq!(decrypt(&kp.secret, &ct).unwrap(), Vec::<u8>::new());
        assert_eq!(ct.size_bytes(), 24);
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let kp = keygen(&mut rng);
        let c1 = encrypt(&mut rng, &kp.public, b"same message");
        let c2 = encrypt(&mut rng, &kp.public, b"same message");
        assert_ne!(c1, c2);
        assert_eq!(decrypt(&kp.secret, &c1).unwrap(), decrypt(&kp.secret, &c2).unwrap());
    }

    #[test]
    fn large_plaintext_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let kp = keygen(&mut rng);
        let msg: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let ct = encrypt(&mut rng, &kp.public, &msg);
        assert_eq!(decrypt(&kp.secret, &ct).unwrap(), msg);
        assert_eq!(ct.size_bytes(), 8 + msg.len() + 16);
    }
}
