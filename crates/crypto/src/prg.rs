//! A deterministic hash-based pseudorandom generator.

use rand::{CryptoRng, RngCore, SeedableRng};

use crate::sha256::Sha256;

/// A deterministic expandable PRG: SHA-256 in counter mode.
///
/// Implements [`rand::RngCore`] so it can drive any sampling code in
/// the workspace. Used wherever reproducibility matters: deriving role
/// randomness from seeds, deterministic test fixtures, and expanding
/// transcript challenges into long masks.
///
/// # Example
///
/// ```rust
/// use rand::{RngCore, SeedableRng};
/// use yoso_crypto::HashPrg;
///
/// let mut a = HashPrg::from_seed([7u8; 32]);
/// let mut b = HashPrg::from_seed([7u8; 32]);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct HashPrg {
    seed: [u8; 32],
    counter: u64,
    buffer: [u8; 32],
    buffer_pos: usize,
}

impl HashPrg {
    /// Creates a PRG from an arbitrary-length seed by hashing it.
    pub fn from_bytes(seed: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(b"yoso-pss/prg/v1");
        h.update(seed);
        HashPrg { seed: h.finalize(), counter: 0, buffer: [0u8; 32], buffer_pos: 32 }
    }

    fn refill(&mut self) {
        let mut h = Sha256::new();
        h.update(&self.seed);
        h.update(&self.counter.to_le_bytes());
        self.buffer = h.finalize();
        self.counter += 1;
        self.buffer_pos = 0;
    }
}

impl SeedableRng for HashPrg {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        HashPrg { seed, counter: 0, buffer: [0u8; 32], buffer_pos: 32 }
    }
}

impl RngCore for HashPrg {
    fn next_u32(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        self.fill_bytes(&mut buf);
        u32::from_le_bytes(buf)
    }

    fn next_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.fill_bytes(&mut buf);
        u64::from_le_bytes(buf)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut written = 0;
        while written < dest.len() {
            if self.buffer_pos == 32 {
                self.refill();
            }
            let take = (32 - self.buffer_pos).min(dest.len() - written);
            dest[written..written + take]
                .copy_from_slice(&self.buffer[self.buffer_pos..self.buffer_pos + take]);
            self.buffer_pos += take;
            written += take;
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl CryptoRng for HashPrg {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = HashPrg::from_seed([1u8; 32]);
        let mut b = HashPrg::from_seed([1u8; 32]);
        let mut c = HashPrg::from_seed([2u8; 32]);
        let va: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..10).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn fill_bytes_is_stream_consistent() {
        // Reading 64 bytes at once equals reading in odd-sized chunks.
        let mut a = HashPrg::from_bytes(b"seed material");
        let mut b = HashPrg::from_bytes(b"seed material");
        let mut big = [0u8; 64];
        a.fill_bytes(&mut big);
        let mut parts = Vec::new();
        for size in [1usize, 7, 13, 32, 11] {
            let mut buf = vec![0u8; size];
            b.fill_bytes(&mut buf);
            parts.extend_from_slice(&buf);
        }
        assert_eq!(parts, big.to_vec());
    }

    #[test]
    fn output_looks_balanced() {
        // Crude sanity check: bit frequency near 50%.
        let mut rng = HashPrg::from_seed([9u8; 32]);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u64().count_ones();
        }
        let ratio = ones as f64 / 64000.0;
        assert!((0.48..0.52).contains(&ratio), "bit ratio {ratio}");
    }
}
