//! Cryptographic primitives built from scratch for the YOSO MPC stack.
//!
//! Contents:
//!
//! - [`sha256`]: the SHA-256 compression function and streaming hasher
//!   (FIPS 180-4), validated against the official test vectors.
//! - [`Transcript`]: a Fiat–Shamir transcript that absorbs labelled
//!   messages and squeezes unpredictable challenges (bytes, field
//!   elements, or big integers below a bound). This is the random
//!   oracle backing every NIZK in the workspace.
//! - [`HashPrg`]: a deterministic expandable pseudorandom generator
//!   (SHA-256 in counter mode) implementing [`rand::RngCore`], used to
//!   derive per-role randomness reproducibly from seeds.
//! - [`pke`]: a public-key encryption abstraction with a hybrid
//!   Diffie–Hellman instantiation over `F_p^*` (`p = 2^61 − 1`). This is
//!   **simulation-grade** crypto: structurally faithful (real key pairs,
//!   real ephemeral ciphertexts, correct sizes for metering) but with a
//!   toy security level, as documented in DESIGN.md.
//! - [`commit`]: hash-based commitments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commit;
pub mod pke;
mod prg;
pub mod sha256;
mod transcript;

pub use prg::HashPrg;
pub use sha256::Sha256;
pub use transcript::Transcript;

/// Errors produced by cryptographic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A ciphertext failed to decrypt (wrong key or corrupted bytes).
    DecryptionFailed,
    /// A ciphertext or key had an invalid encoding.
    Malformed(&'static str),
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::DecryptionFailed => write!(f, "decryption failed"),
            CryptoError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for CryptoError {}
