//! Hash-based commitments.
//!
//! Used by the runtime's equivocation tests and by protocol steps that
//! need binding-before-reveal semantics (e.g. committing to μ-share
//! contributions before the challenge round in the interactive tests).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::sha256::Sha256;

/// A binding, hiding commitment `H(domain ‖ randomness ‖ message)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Commitment {
    digest: [u8; 32],
}

/// The opening of a commitment: the randomness and the message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Opening {
    /// The blinding randomness.
    pub randomness: [u8; 32],
    /// The committed message.
    pub message: Vec<u8>,
}

fn hash(randomness: &[u8; 32], message: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"yoso-pss/commit/v1");
    h.update(randomness);
    h.update(&(message.len() as u64).to_le_bytes());
    h.update(message);
    h.finalize()
}

/// Commits to `message` with fresh randomness.
pub fn commit<R: Rng + ?Sized>(rng: &mut R, message: &[u8]) -> (Commitment, Opening) {
    let mut randomness = [0u8; 32];
    rng.fill_bytes(&mut randomness);
    let digest = hash(&randomness, message);
    (Commitment { digest }, Opening { randomness, message: message.to_vec() })
}

/// Verifies an opening against a commitment.
pub fn verify(commitment: &Commitment, opening: &Opening) -> bool {
    hash(&opening.randomness, &opening.message) == commitment.digest
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn commit_verify_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (c, o) = commit(&mut rng, b"message");
        assert!(verify(&c, &o));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let (c, mut o) = commit(&mut rng, b"message");
        o.message = b"other".to_vec();
        assert!(!verify(&c, &o));
    }

    #[test]
    fn wrong_randomness_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (c, mut o) = commit(&mut rng, b"message");
        o.randomness[0] ^= 1;
        assert!(!verify(&c, &o));
    }

    #[test]
    fn commitments_are_hiding_across_randomness() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let (c1, _) = commit(&mut rng, b"same");
        let (c2, _) = commit(&mut rng, b"same");
        assert_ne!(c1, c2);
    }
}
