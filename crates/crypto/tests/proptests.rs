//! Property tests for the crypto substrate: hash determinism and
//! streaming equivalence, transcript injectivity surfaces, PRG stream
//! consistency, PKE round trips and commitment binding.

use proptest::prelude::*;
use rand::{RngCore, SeedableRng};
use yoso_crypto::{commit, pke, HashPrg, Sha256, Transcript};

proptest! {
    #[test]
    fn sha256_is_deterministic_and_input_sensitive(data in prop::collection::vec(any::<u8>(), 0..300)) {
        let d1 = Sha256::digest(&data);
        let d2 = Sha256::digest(&data);
        prop_assert_eq!(d1, d2);
        if !data.is_empty() {
            let mut flipped = data.clone();
            flipped[0] ^= 1;
            prop_assert_ne!(Sha256::digest(&flipped), d1);
        }
    }

    #[test]
    fn sha256_streaming_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..400),
        split in any::<prop::sample::Index>(),
    ) {
        let cut = split.index(data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha256_length_extension_of_input_changes_digest(
        data in prop::collection::vec(any::<u8>(), 0..100),
        extra in prop::collection::vec(any::<u8>(), 1..50),
    ) {
        let mut extended = data.clone();
        extended.extend_from_slice(&extra);
        prop_assert_ne!(Sha256::digest(&data), Sha256::digest(&extended));
    }

    #[test]
    fn transcript_message_boundaries_matter(
        a in prop::collection::vec(any::<u8>(), 1..40),
        b in prop::collection::vec(any::<u8>(), 1..40),
    ) {
        // absorb(a then b) differs from absorb(a‖b) as one message.
        let mut t1 = Transcript::new(b"t");
        t1.absorb(b"m", &a);
        t1.absorb(b"m", &b);
        let mut t2 = Transcript::new(b"t");
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        t2.absorb(b"m", &joined);
        prop_assert_ne!(t1.challenge_bytes(b"c"), t2.challenge_bytes(b"c"));
    }

    #[test]
    fn transcript_labels_matter(m in prop::collection::vec(any::<u8>(), 0..40)) {
        let mut t1 = Transcript::new(b"t");
        t1.absorb(b"label-a", &m);
        let mut t2 = Transcript::new(b"t");
        t2.absorb(b"label-b", &m);
        prop_assert_ne!(t1.challenge_bytes(b"c"), t2.challenge_bytes(b"c"));
    }

    #[test]
    fn transcript_replay_is_exact(
        msgs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..30), 0..6),
    ) {
        let mut t1 = Transcript::new(b"replay");
        let mut t2 = Transcript::new(b"replay");
        for m in &msgs {
            t1.absorb(b"m", m);
            t2.absorb(b"m", m);
        }
        for _ in 0..3 {
            prop_assert_eq!(t1.challenge_bytes(b"c"), t2.challenge_bytes(b"c"));
        }
    }

    #[test]
    fn prg_chunking_invariance(seed in any::<[u8; 32]>(), sizes in prop::collection::vec(1usize..50, 1..8)) {
        let total: usize = sizes.iter().sum();
        let mut whole = vec![0u8; total];
        HashPrg::from_seed(seed).fill_bytes(&mut whole);
        let mut chunked = Vec::new();
        let mut prg = HashPrg::from_seed(seed);
        for s in &sizes {
            let mut buf = vec![0u8; *s];
            prg.fill_bytes(&mut buf);
            chunked.extend_from_slice(&buf);
        }
        prop_assert_eq!(chunked, whole);
    }

    #[test]
    fn pke_roundtrip_and_size(seed in any::<u64>(), msg in prop::collection::vec(any::<u8>(), 0..200)) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let kp = pke::keygen(&mut rng);
        let ct = pke::encrypt(&mut rng, &kp.public, &msg);
        prop_assert_eq!(pke::decrypt(&kp.secret, &ct).unwrap(), msg.clone());
        prop_assert_eq!(ct.size_bytes(), 24 + msg.len());
    }

    #[test]
    fn pke_wrong_recipient_always_fails(seed in any::<u64>(), msg in prop::collection::vec(any::<u8>(), 1..100)) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let kp1 = pke::keygen(&mut rng);
        let kp2 = pke::keygen(&mut rng);
        prop_assume!(kp1.public != kp2.public);
        let ct = pke::encrypt(&mut rng, &kp1.public, &msg);
        prop_assert!(pke::decrypt(&kp2.secret, &ct).is_err());
    }

    #[test]
    fn commitments_bind(
        seed in any::<u64>(),
        msg in prop::collection::vec(any::<u8>(), 0..100),
        other in prop::collection::vec(any::<u8>(), 0..100),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (c, o) = commit::commit(&mut rng, &msg);
        prop_assert!(commit::verify(&c, &o));
        if other != msg {
            let forged = commit::Opening { randomness: o.randomness, message: other };
            prop_assert!(!commit::verify(&c, &forged));
        }
    }
}
