//! Seeded violation: format macro interpolating a secret binding.
#![forbid(unsafe_code)]

pub fn leak(sk: u64) -> String {
    format!("debugging with key {sk}")
}
