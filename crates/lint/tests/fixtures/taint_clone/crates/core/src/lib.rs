//! Seeded violation: a clone under a non-secret name reaches a format
//! macro. `leaked` matches no secret naming pattern, so the token-level
//! secret-format rule cannot see it; only dataflow can.
#![forbid(unsafe_code)]

pub fn trace(sk: &SecretKey) {
    let leaked = sk.clone();
    println!("share material: {:?}", leaked);
}
