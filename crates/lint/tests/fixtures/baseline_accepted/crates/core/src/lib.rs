//! Seeded violation: a secret-typed value is renamed and lands raw in a
//! board posting payload. The rename hides it from the token-level
//! secret-format/secret-serialize rules; only the taint pass sees it.
#![forbid(unsafe_code)]

pub fn deal(sk: &SecretKey, sb: &mut ShardedBoard, owned: bool) {
    let payload = sk.to_vec();
    sb.post(owned, role(), payload, "deal", 1);
}
