//! Clean fixture: panic-free protocol code, redaction in order.
#![forbid(unsafe_code)]

/// Adds checked.
pub fn add(a: &[u64]) -> Option<u64> {
    a.iter().copied().try_fold(0u64, u64::checked_add)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_ok() {
        // unwrap in test code is exempt by design.
        let v: Result<u64, ()> = Ok(1);
        assert_eq!(v.unwrap(), 1);
    }
}
