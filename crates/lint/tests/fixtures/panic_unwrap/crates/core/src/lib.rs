//! Seeded violation: unwrap/expect/panic! in protocol code.
#![forbid(unsafe_code)]

pub fn f(v: Option<u64>) -> u64 {
    v.unwrap()
}

pub fn g(v: Option<u64>) -> u64 {
    match v {
        Some(x) => x,
        None => panic!("no value"),
    }
}
