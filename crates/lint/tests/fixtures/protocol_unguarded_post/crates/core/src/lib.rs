//! Seeded violation: the posting ownership flag is a bare literal with
//! no owns()/is_leader()/is_solo() pedigree.
#![forbid(unsafe_code)]

pub fn flood(sb: &mut ShardedBoard) {
    sb.post(true, role(), msg(), "flood", 1);
}
