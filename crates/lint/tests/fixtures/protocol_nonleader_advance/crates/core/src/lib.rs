//! Seeded violation: every worker ticks the round clock.
#![forbid(unsafe_code)]

pub fn tick(board: &BulletinBoard) {
    board.advance_round();
}
