//! Seeded violation: wall-clock time in a transcript-affecting module.
pub fn stamp() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0)
}
