//! Fixture crate root.
#![forbid(unsafe_code)]
pub mod offline;
