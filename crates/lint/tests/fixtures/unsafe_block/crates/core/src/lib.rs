//! Seeded violation: an `unsafe` block despite the workspace policy.
#![forbid(unsafe_code)]

pub fn read(p: *const u64) -> u64 {
    unsafe { *p }
}
