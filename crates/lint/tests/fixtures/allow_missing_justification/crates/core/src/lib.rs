//! Seeded violation: allow marker without a justification.
#![forbid(unsafe_code)]

pub fn f(v: Option<u64>) -> u64 {
    v.unwrap() // lint:allow(panic):
}
