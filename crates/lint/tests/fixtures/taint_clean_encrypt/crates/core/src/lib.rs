//! Clean fixture: the secret is routed through a sanitizer before it
//! reaches the board, so the taint pass stays silent.
#![forbid(unsafe_code)]

pub fn deal(sk: &SecretKey, pk: &PublicKey, sb: &mut ShardedBoard, owned: bool) {
    let ct = encrypt_for(pk, sk);
    sb.post(owned, role(), ct, "deal", 1);
}
