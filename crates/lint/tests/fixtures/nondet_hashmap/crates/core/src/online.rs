//! Seeded violation: HashMap in a transcript-affecting module.
use std::collections::HashMap;

pub fn schemes() -> HashMap<usize, u64> {
    HashMap::new()
}
