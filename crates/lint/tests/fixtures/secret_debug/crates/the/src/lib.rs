//! Seeded violation: secret type derives Debug without a redact marker.
#![forbid(unsafe_code)]

#[derive(Debug, Clone)]
pub struct SecretKeyShare {
    pub party: usize,
    pub value: u64,
}
