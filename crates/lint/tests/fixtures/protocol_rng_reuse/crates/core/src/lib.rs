//! Seeded violation: the phase RNG is drawn inside an ownership-guarded
//! branch, so the stream depends on which items this worker owns.
#![forbid(unsafe_code)]

pub fn deal_owned(rng: &mut StdRng, cfg: &Cfg, n: usize) {
    for i in 0..n {
        if cfg.partition.owns(i) {
            let share = sample_share(rng, i);
            stash(share);
        }
    }
}
