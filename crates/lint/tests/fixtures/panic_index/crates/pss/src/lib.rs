//! Seeded violation: unchecked slice indexing (deny via --deny index).
#![forbid(unsafe_code)]

pub fn first(v: &[u64]) -> u64 {
    v[0]
}
