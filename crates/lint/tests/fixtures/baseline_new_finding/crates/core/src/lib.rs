//! Two seeded violations; the checked-in baseline accepts only the
//! first, so the second must still fail the run.
#![forbid(unsafe_code)]

pub fn deal(sk: &SecretKey, sb: &mut ShardedBoard, owned: bool) {
    let payload = sk.to_vec();
    sb.post(owned, role(), payload, "deal", 1);
}

pub fn flood(sb: &mut ShardedBoard) {
    sb.post(true, role(), msg(), "flood", 1);
}
