//! End-to-end tests of the `yoso-lint` binary against seeded-violation
//! fixtures: the tool must exit 0 on clean trees and non-zero on each
//! violation class — both directions, per the acceptance criteria.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn run_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_yoso-lint"))
        .args(args)
        .output()
        .expect("spawn yoso-lint")
}

fn run_on_fixture(name: &str, extra: &[&str]) -> Output {
    let root = fixture(name);
    let mut args = vec!["--root", root.to_str().expect("utf-8 path")];
    args.extend_from_slice(extra);
    run_lint(&args)
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn clean_fixture_exits_zero() {
    let out = run_on_fixture("clean", &[]);
    assert!(out.status.success(), "clean fixture must pass: {}", stdout(&out));
}

#[test]
fn panic_unwrap_fixture_fails_with_panic_findings() {
    let out = run_on_fixture("panic_unwrap", &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("[panic]"), "{text}");
    assert!(text.contains("unwrap"), "{text}");
    assert!(text.contains("panic!"), "{text}");
}

#[test]
fn index_fixture_fails_only_when_denied() {
    // Warn by default: reported but exit 0.
    let out = run_on_fixture("panic_index", &[]);
    assert!(out.status.success(), "{}", stdout(&out));
    assert!(stdout(&out).contains("[index]"));
    // Promoted to deny: exit 1.
    let out = run_on_fixture("panic_index", &["--deny", "index"]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
}

#[test]
fn empty_justification_fails_as_bad_allow() {
    let out = run_on_fixture("allow_missing_justification", &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("[bad-allow]"), "{text}");
    // The marker is malformed, so the unwrap itself must also still fire.
    assert!(text.contains("[panic]"), "{text}");
}

#[test]
fn secret_debug_fixture_fails() {
    let out = run_on_fixture("secret_debug", &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("[secret-debug]"));
}

#[test]
fn secret_format_fixture_fails() {
    let out = run_on_fixture("secret_format", &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("[secret-format]"), "{text}");
    assert!(text.contains("sk"), "{text}");
}

#[test]
fn nondet_hashmap_fixture_fails() {
    let out = run_on_fixture("nondet_hashmap", &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("[determinism]"));
}

#[test]
fn nondet_time_fixture_fails() {
    let out = run_on_fixture("nondet_time", &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("[determinism]"));
}

#[test]
fn unsafe_missing_forbid_fixture_fails() {
    let out = run_on_fixture("unsafe_missing", &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("[unsafe-policy]"));
    assert!(stdout(&out).contains("forbid(unsafe_code)"));
}

#[test]
fn unsafe_block_fixture_fails() {
    let out = run_on_fixture("unsafe_block", &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("[unsafe-policy]"));
}

#[test]
fn allow_flag_downgrades_rule() {
    // The same violating fixture passes when its rule is switched off,
    // proving the severity plumbing end to end.
    let out = run_on_fixture("panic_unwrap", &["--allow", "panic"]);
    assert!(out.status.success(), "{}", stdout(&out));
}

#[test]
fn workspace_itself_is_lint_clean() {
    // The repo root is two levels up from the lint crate. This is the
    // acceptance criterion: the tool exits 0 on the real workspace.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = run_lint(&["--root", root.to_str().expect("utf-8 path"), "--quiet"]);
    assert!(
        out.status.success(),
        "workspace must be lint-clean: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn taint_clean_encrypt_fixture_passes() {
    let out = run_on_fixture("taint_clean_encrypt", &[]);
    assert!(out.status.success(), "{}", stdout(&out));
}

#[test]
fn taint_posting_fixture_fails_where_token_rules_are_blind() {
    let out = run_on_fixture("taint_posting", &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("[taint-flow]"), "{text}");
    assert!(text.contains("payload"), "{text}");
    // The negative half of the acceptance criterion: the rename hides
    // the leak from the PR 2 token rules, which must stay silent.
    assert!(!text.contains("[secret-format]"), "{text}");
    assert!(!text.contains("[secret-serialize]"), "{text}");
}

#[test]
fn taint_clone_fixture_fails_where_token_rules_are_blind() {
    let out = run_on_fixture("taint_clone", &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("[taint-flow]"), "{text}");
    assert!(text.contains("leaked"), "{text}");
    assert!(!text.contains("[secret-format]"), "{text}");
    assert!(!text.contains("[secret-serialize]"), "{text}");
}

#[test]
fn protocol_fixtures_fail_with_their_rules() {
    for (fixture, rule) in [
        ("protocol_unguarded_post", "[unguarded-post]"),
        ("protocol_nonleader_advance", "[round-discipline]"),
        ("protocol_rng_reuse", "[seed-hygiene]"),
    ] {
        let out = run_on_fixture(fixture, &[]);
        assert_eq!(out.status.code(), Some(1), "{fixture}: {}", stdout(&out));
        assert!(stdout(&out).contains(rule), "{fixture}: {}", stdout(&out));
    }
}

#[test]
fn baseline_is_auto_detected_and_accepts_old_findings() {
    // The fixture's lint-baseline.json covers its one finding: exit 0.
    let out = run_on_fixture("baseline_accepted", &[]);
    assert!(out.status.success(), "{}", stdout(&out));
    assert!(stdout(&out).contains("(baselined)"), "{}", stdout(&out));
    // Without the baseline the same tree fails.
    let out = run_on_fixture("baseline_accepted", &["--no-baseline"]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
}

#[test]
fn new_finding_fails_despite_baseline() {
    let out = run_on_fixture("baseline_new_finding", &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let text = stdout(&out);
    // The accepted finding renders as baselined; the new one does not.
    assert!(text.contains("[taint-flow]") && text.contains("(baselined)"), "{text}");
    assert!(text.contains("[unguarded-post]"), "{text}");
}

#[test]
fn json_output_is_valid_and_carries_ids() {
    let out = run_on_fixture("taint_posting", &["--format", "json"]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    yoso_lint::baseline::validate_json(&text).expect("valid JSON");
    assert!(text.contains("\"rule\": \"taint-flow\""), "{text}");
    assert!(text.contains("\"id\": \""), "{text}");
}

#[test]
fn sarif_output_is_valid_and_well_formed() {
    let out = run_on_fixture("taint_posting", &["--format", "sarif"]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    yoso_lint::baseline::validate_json(&text).expect("valid JSON");
    assert!(text.contains("\"version\": \"2.1.0\""), "{text}");
    assert!(text.contains("\"name\": \"yoso-lint\""), "{text}");
    assert!(text.contains("\"ruleId\": \"taint-flow\""), "{text}");
    assert!(text.contains("yosoLintFingerprint/v1"), "{text}");
}

#[test]
fn sarif_marks_baselined_findings_suppressed() {
    let out = run_on_fixture("baseline_new_finding", &["--format", "sarif"]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    yoso_lint::baseline::validate_json(&text).expect("valid JSON");
    assert!(text.contains("\"suppressions\""), "{text}");
}

#[test]
fn write_baseline_round_trips() {
    let dir = std::env::temp_dir().join("yoso-lint-bl-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("lint-baseline.json");
    let path_s = path.to_str().expect("utf-8 path");
    let out = run_on_fixture("taint_posting", &["--write-baseline", path_s]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // Feeding the freshly written baseline back accepts every finding.
    let out = run_on_fixture("taint_posting", &["--baseline", path_s]);
    assert!(out.status.success(), "{}", stdout(&out));
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_rule_is_usage_error() {
    let out = run_lint(&["--deny", "warp-core"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn list_rules_names_all_families() {
    let out = run_lint(&["--list-rules"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for rule in [
        "panic",
        "index",
        "secret-debug",
        "secret-serialize",
        "secret-format",
        "determinism",
        "unsafe-policy",
        "taint-flow",
        "unguarded-post",
        "round-discipline",
        "seed-hygiene",
        "bad-allow",
        "unused-allow",
    ] {
        assert!(text.contains(rule), "missing {rule} in:\n{text}");
    }
}
