//! `lint:allow` / `lint:redact` marker parsing and bookkeeping, plus the
//! dataflow directives (`lint:taint`, `lint:sanitize`) the taint pass
//! consumes.
//!
//! Grammar (inside any `//` or `/* */` comment):
//!
//! ```text
//! lint:allow(<rule>): <justification>
//! lint:redact: <justification>
//! lint:taint(source): <justification>
//! lint:sanitize: <justification>
//! ```
//!
//! The justification is mandatory and must be non-empty — an allow without
//! a reason is itself a violation (`bad-allow`). `lint:redact` is shorthand
//! accepted on redacted `Debug`/`Display` impls and secret type
//! definitions; it covers `secret-debug` and `secret-serialize`.
//! `lint:taint(source)` declares the governed binding a secret source even
//! though its type/name match no registry pattern; `lint:sanitize` declares
//! the governed `fn` a sanitizer (its output is public material), extending
//! the built-in `encrypt*`/`share*`/`commit*` prefix set.
//!
//! A marker on a code line governs that line. A marker on a comment-only
//! line governs the next code line plus a 3-line grace window, so a
//! suppressed call may wrap onto continuation lines.

use crate::config::RuleId;
use crate::findings::Finding;
use crate::lexer::Lexed;

/// How many lines past the governed code line a standalone marker still
/// suppresses, so multi-line statements stay coverable.
const GRACE_LINES: usize = 3;

#[derive(Debug)]
struct Marker {
    /// Rules this marker suppresses.
    rules: Vec<RuleId>,
    /// Inclusive line range governed.
    first_line: usize,
    last_line: usize,
    /// Line of the comment itself (for unused-allow reporting).
    comment_line: usize,
    used: bool,
}

/// Parsed markers for one file plus malformed-marker findings.
#[derive(Debug, Default)]
pub struct AllowTable {
    markers: Vec<Marker>,
    /// `bad-allow` findings produced during parsing.
    pub parse_findings: Vec<Finding>,
}

impl AllowTable {
    /// Build the table from a lexed file.
    pub fn build(file: &str, lexed: &Lexed) -> AllowTable {
        let code_lines = lexed.code_lines();
        let mut table = AllowTable::default();
        for c in &lexed.comments {
            // Doc comments (`///`, `//!`, `/**`, `/*!`) are documentation:
            // they may *describe* the marker grammar without invoking it.
            if c.text.starts_with('/') || c.text.starts_with('!') || c.text.starts_with('*') {
                continue;
            }
            let Some(parsed) = parse_marker(&c.text) else { continue };
            let (rules, justification) = match parsed {
                Ok(ok) => ok,
                Err(msg) => {
                    table.parse_findings.push(Finding::new(file, c.line, RuleId::BadAllow, msg));
                    continue;
                }
            };
            if justification.trim().is_empty() {
                table.parse_findings.push(Finding::new(
                    file,
                    c.line,
                    RuleId::BadAllow,
                    "lint marker requires a non-empty justification after `:`",
                ));
                continue;
            }
            let (first_line, last_line) = if code_lines.contains(&c.line) {
                // Trailing comment: governs exactly its own line.
                (c.line, c.line)
            } else {
                // Standalone comment: governs the next code line + grace.
                match code_lines.range(c.line..).next() {
                    Some(&l) => (l, l + GRACE_LINES),
                    None => (c.line, c.line),
                }
            };
            table.markers.push(Marker {
                rules,
                first_line,
                last_line,
                comment_line: c.line,
                used: false,
            });
        }
        table
    }

    /// True if a finding of `rule` at `line` is suppressed; marks the
    /// covering marker as used.
    pub fn suppressed(&mut self, line: usize, rule: RuleId) -> bool {
        let mut hit = false;
        for m in &mut self.markers {
            if m.rules.contains(&rule) && (m.first_line..=m.last_line).contains(&line) {
                m.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Emit `unused-allow` findings for markers that never fired.
    pub fn unused(&self, file: &str) -> Vec<Finding> {
        self.markers
            .iter()
            .filter(|m| !m.used)
            .map(|m| {
                Finding::new(
                    file,
                    m.comment_line,
                    RuleId::UnusedAllow,
                    format!(
                        "lint marker for [{}] suppressed nothing",
                        m.rules
                            .iter()
                            .map(|r| r.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                )
            })
            .collect()
    }
}

/// Dataflow directives for one file: line ranges the taint pass treats as
/// extra taint sources or as sanitizer declarations.
#[derive(Debug, Default)]
pub struct Directives {
    /// Inclusive line ranges governed by a `lint:taint(source)` marker.
    taint_ranges: Vec<(usize, usize)>,
    /// Inclusive line ranges governed by a `lint:sanitize` marker.
    sanitize_ranges: Vec<(usize, usize)>,
    /// `bad-allow` findings for malformed directives.
    pub parse_findings: Vec<Finding>,
}

impl Directives {
    /// Build the directive table from a lexed file. Shares the marker line
    /// governance of [`AllowTable`]: trailing comments govern their own
    /// line, standalone comments the next code line plus grace.
    pub fn build(file: &str, lexed: &Lexed) -> Directives {
        let code_lines = lexed.code_lines();
        let mut out = Directives::default();
        for c in &lexed.comments {
            if c.text.starts_with('/') || c.text.starts_with('!') || c.text.starts_with('*') {
                continue;
            }
            let (which, parsed) = if c.text.contains("lint:taint") {
                (0, parse_directive(&c.text, "lint:taint", Some("source")))
            } else if c.text.contains("lint:sanitize") {
                (1, parse_directive(&c.text, "lint:sanitize", None))
            } else {
                continue;
            };
            if let Err(msg) = parsed {
                out.parse_findings.push(Finding::new(file, c.line, RuleId::BadAllow, msg));
                continue;
            }
            let range = if code_lines.contains(&c.line) {
                (c.line, c.line)
            } else {
                match code_lines.range(c.line..).next() {
                    Some(&l) => (l, l + GRACE_LINES),
                    None => (c.line, c.line),
                }
            };
            if which == 0 {
                out.taint_ranges.push(range);
            } else {
                out.sanitize_ranges.push(range);
            }
        }
        out
    }

    /// True if a binding introduced on `line` is a declared taint source.
    pub fn taint_source(&self, line: usize) -> bool {
        self.taint_ranges.iter().any(|&(a, b)| (a..=b).contains(&line))
    }

    /// True if a `fn` whose header is on `line` is a declared sanitizer.
    pub fn sanitizer_fn(&self, line: usize) -> bool {
        self.sanitize_ranges.iter().any(|&(a, b)| (a..=b).contains(&line))
    }
}

/// Parse a directive marker: `<name>(<arg>): <justification>` when `arg`
/// is required, `<name>: <justification>` otherwise.
fn parse_directive(text: &str, name: &str, arg: Option<&str>) -> Result<(), String> {
    let idx = text.find(name).expect("caller checked substring");
    let rest = &text[idx + name.len()..];
    let rest = match arg {
        Some(expected) => {
            let Some(open) = rest.strip_prefix('(') else {
                return Err(format!("expected `({expected})` after {name}"));
            };
            let Some(close) = open.find(')') else {
                return Err(format!("unclosed `(` in {name}"));
            };
            if open[..close].trim() != expected {
                return Err(format!(
                    "expected `{expected}` in {name}(...), got `{}`",
                    open[..close].trim()
                ));
            }
            &open[close + 1..]
        }
        None => rest,
    };
    let Some(justification) = rest.trim_start().strip_prefix(':') else {
        return Err(format!("expected `: <justification>` after {name}"));
    };
    if justification.trim().is_empty() {
        return Err(format!("{name} requires a non-empty justification after `:`"));
    }
    Ok(())
}

/// Parse one comment body. `None` = no marker present; `Some(Err)` =
/// malformed marker; `Some(Ok((rules, justification)))` = well-formed.
#[allow(clippy::type_complexity)]
fn parse_marker(text: &str) -> Option<Result<(Vec<RuleId>, String), String>> {
    if let Some(idx) = text.find("lint:allow") {
        let rest = &text[idx + "lint:allow".len()..];
        let Some(open) = rest.strip_prefix('(') else {
            return Some(Err("expected `(` after lint:allow".to_string()));
        };
        let Some(close) = open.find(')') else {
            return Some(Err("unclosed `(` in lint:allow".to_string()));
        };
        let mut rules = Vec::new();
        for name in open[..close].split(',') {
            let name = name.trim();
            match RuleId::parse(name) {
                Some(r) => rules.push(r),
                None => {
                    return Some(Err(format!("unknown rule `{name}` in lint:allow")));
                }
            }
        }
        if rules.is_empty() {
            return Some(Err("lint:allow names no rule".to_string()));
        }
        let after = &open[close + 1..];
        let Some(justification) = after.trim_start().strip_prefix(':') else {
            return Some(Err(
                "expected `: <justification>` after lint:allow(...)".to_string()
            ));
        };
        return Some(Ok((rules, justification.to_string())));
    }
    if let Some(idx) = text.find("lint:redact") {
        let rest = &text[idx + "lint:redact".len()..];
        let Some(justification) = rest.trim_start().strip_prefix(':') else {
            return Some(Err(
                "expected `: <justification>` after lint:redact".to_string()
            ));
        };
        return Some(Ok((
            vec![RuleId::SecretDebug, RuleId::SecretSerialize],
            justification.to_string(),
        )));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_marker_governs_its_line() {
        let src = "let x = y.unwrap(); // lint:allow(panic): lock poisoning is fatal anyway\n";
        let lx = lex(src);
        let mut t = AllowTable::build("f.rs", &lx);
        assert!(t.parse_findings.is_empty());
        assert!(t.suppressed(1, RuleId::Panic));
        assert!(!t.suppressed(2, RuleId::Panic));
        assert!(!t.suppressed(1, RuleId::Index));
        assert!(t.unused("f.rs").is_empty());
    }

    #[test]
    fn standalone_marker_governs_next_code_line_with_grace() {
        let src = "\n// lint:allow(panic): spans the statement\n\nlet x = y\n    .unwrap();\n";
        let lx = lex(src);
        let mut t = AllowTable::build("f.rs", &lx);
        assert!(t.suppressed(5, RuleId::Panic)); // within grace window
        assert!(!t.suppressed(9, RuleId::Panic));
    }

    #[test]
    fn empty_justification_is_bad_allow() {
        let lx = lex("// lint:allow(panic):\nlet x = 1;\n");
        let t = AllowTable::build("f.rs", &lx);
        assert_eq!(t.parse_findings.len(), 1);
        assert_eq!(t.parse_findings[0].rule, RuleId::BadAllow);
    }

    #[test]
    fn unknown_rule_is_bad_allow() {
        let lx = lex("// lint:allow(warp-core): because\n");
        let t = AllowTable::build("f.rs", &lx);
        assert_eq!(t.parse_findings.len(), 1);
        assert!(t.parse_findings[0].message.contains("warp-core"));
    }

    #[test]
    fn redact_covers_secret_rules() {
        let lx = lex("// lint:redact: prints party index only\nimpl Debug for K {}\n");
        let mut t = AllowTable::build("f.rs", &lx);
        assert!(t.suppressed(2, RuleId::SecretDebug));
        assert!(t.suppressed(2, RuleId::SecretSerialize));
        assert!(!t.suppressed(2, RuleId::Panic));
    }

    #[test]
    fn unused_marker_reported() {
        let lx = lex("// lint:allow(panic): never fires\nlet x = 1;\n");
        let t = AllowTable::build("f.rs", &lx);
        let unused = t.unused("f.rs");
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].rule, RuleId::UnusedAllow);
    }

    #[test]
    fn multi_rule_marker() {
        let lx = lex("let v = m[k].unwrap(); // lint:allow(panic, index): proven in step 2\n");
        let mut t = AllowTable::build("f.rs", &lx);
        assert!(t.parse_findings.is_empty());
        assert!(t.suppressed(1, RuleId::Panic));
        assert!(t.suppressed(1, RuleId::Index));
    }
}
