//! `yoso-lint` — dependency-free static analysis for the yoso-pss
//! workspace.
//!
//! The workspace builds offline from vendored shims, so the analyzer
//! tokenizes Rust sources with a hand-rolled lexer (no `syn`) and enforces
//! four rule families over the token stream:
//!
//! 1. **panic-freedom** (`panic`, `index`) — no `unwrap`/`expect`/
//!    `panic!`-family macros and no unchecked slice indexing in non-test
//!    code of the protocol crates; a YOSO committee member that aborts
//!    mid-epoch kills the run for everyone.
//! 2. **secret hygiene** (`secret-debug`, `secret-serialize`,
//!    `secret-format`) — secret-registry types must not leak through
//!    `Debug`/`Display`/`Serialize` or format-macro interpolation.
//! 3. **transcript determinism** (`determinism`) — no `HashMap`/`HashSet`,
//!    `std::time`, `thread_rng` or thread-identity dependence in
//!    transcript-affecting modules; the engine promises byte-identical
//!    transcripts at every `--threads` value.
//! 4. **unsafe policy** (`unsafe-policy`) — every crate root carries
//!    `#![forbid(unsafe_code)]` and no `unsafe` token appears outside the
//!    shims.
//!
//! Escape hatch: `// lint:allow(<rule>): <justification>` (justification
//! mandatory) or, for redacted secret impls, `// lint:redact: <why>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod config;
pub mod findings;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use config::{Level, LintConfig, RuleId};
pub use findings::{Finding, Report};
pub use rules::{lint_source, FileMeta};

use std::fs;
use std::io;
use std::path::Path;

/// Lint every workspace `.rs` file under `root` with `cfg`.
pub fn lint_root(root: &Path, cfg: &LintConfig) -> io::Result<Report> {
    let mut report = Report::default();
    for (abs, meta) in walk::collect(root)? {
        let source = fs::read_to_string(&abs)?;
        report.findings.extend(rules::lint_source(&meta, &source, cfg));
        report.files_checked += 1;
    }
    report
        .findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(report)
}
