//! `yoso-lint` — dependency-free static analysis for the yoso-pss
//! workspace.
//!
//! The workspace builds offline from vendored shims, so the analyzer
//! tokenizes Rust sources with a hand-rolled lexer (no `syn`) and runs two
//! layers of analysis:
//!
//! **Token-stream rules** (PR 2):
//!
//! 1. **panic-freedom** (`panic`, `index`) — no `unwrap`/`expect`/
//!    `panic!`-family macros and no unchecked slice indexing in non-test
//!    code of the protocol crates; a YOSO committee member that aborts
//!    mid-epoch kills the run for everyone.
//! 2. **secret hygiene** (`secret-debug`, `secret-serialize`,
//!    `secret-format`) — secret-registry types must not leak through
//!    `Debug`/`Display`/`Serialize` or format-macro interpolation.
//! 3. **transcript determinism** (`determinism`) — no `HashMap`/`HashSet`,
//!    `std::time`, `thread_rng` or thread-identity dependence in
//!    transcript-affecting modules; the engine promises byte-identical
//!    transcripts at every `--threads` value.
//! 4. **unsafe policy** (`unsafe-policy`) — every crate root carries
//!    `#![forbid(unsafe_code)]` and no `unsafe` token appears outside the
//!    shims.
//!
//! **Dataflow passes** over a lightweight shape parse ([`parse`]):
//!
//! 5. **secret-taint dataflow** (`taint-flow`) — per-function taint from
//!    secret-typed/-named bindings (plus `lint:taint(source)` markers)
//!    through assignments, field access and passthroughs to sinks
//!    (format macros, posting payloads, serialization, raw-byte
//!    returns), cleared only by sanitizers (`encrypt*`/`share*`/
//!    `commit*` or `lint:sanitize`-marked fns).
//! 6. **board-protocol discipline** (`unguarded-post`,
//!    `round-discipline`, `seed-hygiene`) — owner-only posting, leader
//!    -only round ticks, barrier-before-read ordering, and per-item
//!    child-seed hygiene in `core`'s sharded-board call sites.
//!
//! Findings carry stable fingerprints; a checked-in `lint-baseline.json`
//! at the lint root marks accepted pre-existing findings so only *new*
//! findings fail CI ([`baseline`]). Reports render as text, plain JSON,
//! or SARIF 2.1.0 ([`emit`]).
//!
//! Escape hatches: `// lint:allow(<rule>): <justification>` (justification
//! mandatory), `// lint:redact: <why>` for redacted secret impls,
//! `// lint:taint(source): <why>` / `// lint:sanitize: <why>` for the
//! taint pass.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod baseline;
pub mod config;
pub mod emit;
pub mod findings;
pub mod lexer;
pub mod parse;
pub mod protocol;
pub mod rules;
pub mod taint;
pub mod walk;

pub use config::{Level, LintConfig, RuleId};
pub use findings::{Finding, Report};
pub use rules::{lint_source, FileMeta};

use std::fs;
use std::io;
use std::path::Path;

/// Lint every workspace `.rs` file under `root` with `cfg`. Findings come
/// back sorted with stable ids assigned; baseline application is the
/// caller's choice (see [`baseline::Baseline::apply`]).
pub fn lint_root(root: &Path, cfg: &LintConfig) -> io::Result<Report> {
    let mut report = Report::default();
    for (abs, meta) in walk::collect(root)? {
        let source = fs::read_to_string(&abs)?;
        report.findings.extend(rules::lint_source(&meta, &source, cfg));
        report.files_checked += 1;
    }
    report
        .findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    report.assign_ids();
    Ok(report)
}
