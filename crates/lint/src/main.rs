//! `yoso-lint` CLI.
//!
//! ```text
//! yoso-lint [--root <dir>] [--deny <rule>] [--warn <rule>] [--allow <rule>]
//!           [--format text|json|sarif] [--baseline <file>] [--no-baseline]
//!           [--write-baseline <file>] [--quiet] [--list-rules]
//! ```
//!
//! A `lint-baseline.json` at the root is loaded automatically unless
//! `--no-baseline`; baselined findings are reported but do not fail the
//! run. Exit codes: `0` clean (warnings and baselined findings allowed),
//! `1` at least one non-baselined deny-level finding, `2` usage or I/O
//! error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use yoso_lint::baseline::Baseline;
use yoso_lint::{emit, Level, LintConfig, RuleId};

const HELP: &str = "\
yoso-lint — dependency-free static analysis for the yoso-pss workspace

USAGE:
    yoso-lint [OPTIONS]

OPTIONS:
    --root <dir>             workspace root to lint (default: .)
    --deny <rule>            escalate a rule to deny (fails the run)
    --warn <rule>            demote a rule to warn (reported, non-fatal)
    --allow <rule>           disable a rule
    --format <fmt>           output format: text (default), json, sarif
    --baseline <file>        load accepted findings from <file>
                             (default: <root>/lint-baseline.json when present)
    --no-baseline            ignore any baseline file
    --write-baseline <file>  record current deny-level findings as the
                             accepted baseline and exit
    --quiet, -q              suppress per-finding output (text format)
    --list-rules             print every rule with its default level
    --help, -h               show this help

ANALYSES:
    token rules      panic, index, secret-debug, secret-serialize,
                     secret-format, determinism, unsafe-policy
    taint dataflow   taint-flow: per-function secret taint from
                     secret-typed/-named bindings (and lint:taint(source)
                     markers) to format/posting/serialize/raw-byte sinks,
                     cleared by encrypt*/share*/commit* or lint:sanitize
    board discipline unguarded-post, round-discipline, seed-hygiene over
                     core's sharded-board call sites

MARKERS (inside any comment; justification mandatory):
    lint:allow(<rule>[, <rule>]): <why>   suppress findings on the line
    lint:redact: <why>                    redacted Debug/Serialize impl
    lint:taint(source): <why>             declare a binding a secret source
    lint:sanitize: <why>                  declare a fn a sanitizer

EXIT CODES:
    0  clean (warnings and baselined findings allowed)
    1  at least one new deny-level finding
    2  usage or I/O error";

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Args {
    root: PathBuf,
    cfg: LintConfig,
    quiet: bool,
    list_rules: bool,
    format: Format,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        cfg: LintConfig::default(),
        quiet: false,
        list_rules: false,
        format: Format::Text,
        baseline: None,
        no_baseline: false,
        write_baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a path")?;
                args.root = PathBuf::from(v);
            }
            "--deny" | "--warn" | "--allow" => {
                let v = it.next().ok_or_else(|| format!("{arg} requires a rule name"))?;
                let rule = RuleId::parse(&v)
                    .ok_or_else(|| format!("unknown rule `{v}` (see --list-rules)"))?;
                let level = match arg.as_str() {
                    "--deny" => Level::Deny,
                    "--warn" => Level::Warn,
                    _ => Level::Allow,
                };
                args.cfg.set_level(rule, level);
            }
            "--format" => {
                let v = it.next().ok_or("--format requires text|json|sarif")?;
                args.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline requires a path")?;
                args.baseline = Some(PathBuf::from(v));
            }
            "--no-baseline" => args.no_baseline = true,
            "--write-baseline" => {
                let v = it.next().ok_or("--write-baseline requires a path")?;
                args.write_baseline = Some(PathBuf::from(v));
            }
            "--quiet" | "-q" => args.quiet = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(HELP.to_string()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for r in RuleId::ALL {
            let level = match r.default_level() {
                Level::Deny => "deny",
                Level::Warn => "warn",
                Level::Allow => "allow",
            };
            println!("{:<16} [{level}] {}", r.name(), r.describe());
        }
        return ExitCode::SUCCESS;
    }
    let mut report = match yoso_lint::lint_root(&args.root, &args.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("yoso-lint: {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.write_baseline {
        let text = yoso_lint::baseline::render(&report, &args.cfg);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("yoso-lint: {}: {e}", path.display());
            return ExitCode::from(2);
        }
        let n = report.count_at(&args.cfg, Level::Deny);
        eprintln!("yoso-lint: wrote {n} baseline finding(s) to {}", path.display());
        return ExitCode::SUCCESS;
    }

    // Baseline: explicit flag wins; otherwise auto-detect at the root.
    let mut stale_count = 0usize;
    if !args.no_baseline {
        let path = args
            .baseline
            .clone()
            .or_else(|| {
                let auto = args.root.join("lint-baseline.json");
                auto.exists().then_some(auto)
            });
        if let Some(path) = path {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("yoso-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let bl = match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("yoso-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let stale = bl.apply(&mut report);
            stale_count = stale.len();
            if !args.quiet && args.format == Format::Text {
                for entry in stale {
                    eprintln!(
                        "note: stale baseline entry {} ([{}] {}) matched nothing; prune it",
                        entry.id, entry.rule, entry.file
                    );
                }
            }
        }
    }

    match args.format {
        Format::Json => print!("{}", emit::to_json(&report, &args.cfg)),
        Format::Sarif => print!("{}", emit::to_sarif(&report, &args.cfg)),
        Format::Text => {
            if !args.quiet {
                for f in &report.findings {
                    println!("{}", f.render(&args.cfg));
                }
            }
            let denied = report.count_at(&args.cfg, Level::Deny);
            let warned = report.count_at(&args.cfg, Level::Warn);
            let baselined = report.count_baselined();
            if !args.quiet || denied > 0 {
                let extra = if baselined > 0 || stale_count > 0 {
                    format!(", {baselined} baselined, {stale_count} stale baseline entr(y/ies)")
                } else {
                    String::new()
                };
                eprintln!(
                    "yoso-lint: {} files checked, {denied} error(s), {warned} warning(s){extra}",
                    report.files_checked
                );
            }
        }
    }
    if report.has_denials(&args.cfg) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
