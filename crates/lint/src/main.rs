//! `yoso-lint` CLI.
//!
//! ```text
//! yoso-lint [--root <dir>] [--deny <rule>] [--warn <rule>] [--allow <rule>]
//!           [--quiet] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean (warnings allowed), `1` at least one deny-level
//! finding, `2` usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use yoso_lint::{Level, LintConfig, RuleId};

struct Args {
    root: PathBuf,
    cfg: LintConfig,
    quiet: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        cfg: LintConfig::default(),
        quiet: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a path")?;
                args.root = PathBuf::from(v);
            }
            "--deny" | "--warn" | "--allow" => {
                let v = it.next().ok_or_else(|| format!("{arg} requires a rule name"))?;
                let rule = RuleId::parse(&v)
                    .ok_or_else(|| format!("unknown rule `{v}` (see --list-rules)"))?;
                let level = match arg.as_str() {
                    "--deny" => Level::Deny,
                    "--warn" => Level::Warn,
                    _ => Level::Allow,
                };
                args.cfg.set_level(rule, level);
            }
            "--quiet" | "-q" => args.quiet = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err("usage: yoso-lint [--root <dir>] [--deny|--warn|--allow <rule>] \
                            [--quiet] [--list-rules]"
                    .to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("yoso-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for r in RuleId::ALL {
            let level = match r.default_level() {
                Level::Deny => "deny",
                Level::Warn => "warn",
                Level::Allow => "allow",
            };
            println!("{:<16} [{level}] {}", r.name(), r.describe());
        }
        return ExitCode::SUCCESS;
    }
    let report = match yoso_lint::lint_root(&args.root, &args.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("yoso-lint: {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    if !args.quiet {
        for f in &report.findings {
            println!("{}", f.render(&args.cfg));
        }
    }
    let denied = report.count_at(&args.cfg, Level::Deny);
    let warned = report.count_at(&args.cfg, Level::Warn);
    if !args.quiet || denied > 0 {
        eprintln!(
            "yoso-lint: {} files checked, {denied} error(s), {warned} warning(s)",
            report.files_checked
        );
    }
    if report.has_denials(&args.cfg) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
