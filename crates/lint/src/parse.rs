//! A lightweight item/expression shape parser over the token stream.
//!
//! The dataflow passes need more structure than the token-level rules:
//! which `fn` items exist, what their parameters and return types are,
//! which bindings a body introduces and from what initializer, where
//! `if` guards and loops begin and end. This module recovers exactly
//! that shape — **not** a full Rust grammar. It is deliberately
//! forgiving: anything it cannot classify is simply not recorded, and
//! the passes degrade to "no finding" rather than a wrong one. All
//! positions are token indices into the [`crate::lexer::Lexed`] stream
//! the file was lexed into, so the passes can slice the original
//! tokens for their own scans.

use crate::lexer::{TokKind, Token};

/// Half-open token-index range `[start, end)`.
pub type Span = (usize, usize);

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`self` for receivers, destructures keep the first
    /// identifier).
    pub name: String,
    /// Identifier tokens of the declared type, in order (`&mut R`
    /// yields `["R"]`, `Vec<u8>` yields `["Vec", "u8"]`). Empty for
    /// `self` receivers.
    pub ty: Vec<String>,
}

/// One `let` binding inside a function body.
#[derive(Debug, Clone)]
pub struct LetBind {
    /// Bound name. Destructuring patterns produce one `LetBind` per
    /// identifier, all sharing the initializer span.
    pub name: String,
    /// 1-based line of the `let`.
    pub line: usize,
    /// Identifier tokens of the declared type annotation (empty if
    /// inferred).
    pub ty: Vec<String>,
    /// Initializer token span (empty span if the binding is
    /// uninitialized).
    pub init: Span,
    /// Token index of the `let` keyword (source-order key shared with
    /// [`Assign`]).
    pub pos: usize,
}

/// One `name = expr` / `name.field = expr` re-assignment.
#[derive(Debug, Clone)]
pub struct Assign {
    /// Base identifier of the assignment target (`x` for `x.f[i] = v`).
    pub name: String,
    /// 1-based line of the assignment.
    pub line: usize,
    /// Right-hand-side token span.
    pub rhs: Span,
    /// Token index of the `=` (source-order key shared with
    /// [`LetBind`]).
    pub pos: usize,
}

/// An `if` (or `if let` / `else if`) guard: condition span plus the
/// brace-delimited body it dominates.
#[derive(Debug, Clone)]
pub struct Guard {
    /// Condition tokens between `if` and the opening `{`.
    pub cond: Span,
    /// Body tokens inside the braces.
    pub body: Span,
}

/// A `for` / `while` / `loop` span: header plus body.
#[derive(Debug, Clone)]
pub struct Loop {
    /// Header tokens between the keyword and the opening `{` (empty
    /// for bare `loop`).
    pub head: Span,
    /// Body tokens inside the braces.
    pub body: Span,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Identifier tokens of the return type (empty when `()`).
    pub ret: Vec<String>,
    /// Body token span (inside the braces).
    pub body: Span,
    /// `let` bindings, in source order.
    pub lets: Vec<LetBind>,
    /// Re-assignments, in source order.
    pub assigns: Vec<Assign>,
    /// `if` guards, in source order.
    pub guards: Vec<Guard>,
    /// `for`/`while`/`loop` loops, in source order.
    pub loops: Vec<Loop>,
    /// Trailing-expression token span of the body, if the body ends in
    /// an expression rather than a `;`/block statement.
    pub tail: Option<Span>,
}

impl FnItem {
    /// The initializer span of the *last* `let` binding of `name`
    /// declared at or before token index `before` (shadowing-aware
    /// lookup used by receiver/type resolution).
    pub fn binding_init(&self, name: &str, before: usize) -> Option<Span> {
        self.lets
            .iter()
            .rfind(|l| l.name == name && l.pos < before)
            .map(|l| l.init)
    }

    /// Declared type identifiers for `name`: the parameter type, or
    /// the last `let` annotation before `before`.
    pub fn binding_type(&self, name: &str, before: usize) -> Vec<String> {
        if let Some(l) = self
            .lets
            .iter()
            .rfind(|l| l.name == name && l.pos < before && !l.ty.is_empty())
        {
            return l.ty.clone();
        }
        self.params
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.ty.clone())
            .unwrap_or_default()
    }

    /// True if token index `idx` lies inside the body of a guard whose
    /// condition satisfies `pred`.
    pub fn guarded_by(&self, idx: usize, pred: impl Fn(Span) -> bool) -> bool {
        self.guards.iter().any(|g| g.body.0 <= idx && idx < g.body.1 && pred(g.cond))
    }
}

/// Index of the token matching the opening delimiter at `open`
/// (`(`/`[`/`{`), or `tokens.len()` if unbalanced.
pub fn match_delim(tokens: &[Token], open: usize) -> usize {
    let (oc, cc) = match tokens[open].text.as_str() {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        "{" => ('{', '}'),
        _ => return tokens.len(),
    };
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(oc) {
            depth += 1;
        } else if t.is_punct(cc) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len()
}

/// Split the argument-list span `args` (contents between call parens)
/// at top-level commas.
pub fn split_args(tokens: &[Token], args: Span) -> Vec<Span> {
    let mut out = Vec::new();
    let mut depth = 0isize;
    let mut start = args.0;
    for (i, t) in tokens.iter().enumerate().take(args.1).skip(args.0) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            out.push((start, i));
            start = i + 1;
        }
    }
    if start < args.1 {
        out.push((start, args.1));
    }
    out
}

/// Parse every `fn` item in the token stream.
pub fn parse(tokens: &[Token]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn")
            && tokens.get(i + 1).map(|t| t.kind == TokKind::Ident).unwrap_or(false)
        {
            if let Some((item, next)) = parse_fn(tokens, i) {
                // Nested fns are re-discovered inside the body scan and
                // parsed as their own items; advancing past the params
                // (not the body) keeps the outer scan simple.
                out.push(item);
                i = next;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Parse one `fn` starting at the `fn` keyword; returns the item and
/// the index to resume scanning from (just after the parameter list,
/// so nested items are still discovered).
fn parse_fn(tokens: &[Token], fn_tok: usize) -> Option<(FnItem, usize)> {
    let name = tokens[fn_tok + 1].text.clone();
    let line = tokens[fn_tok].line;
    let mut i = fn_tok + 2;
    // Skip generic parameters `<...>`. Angle brackets cannot nest with
    // shift operators inside a declaration header, so naive depth
    // counting is enough.
    if tokens.get(i).map(|t| t.is_punct('<')).unwrap_or(false) {
        let mut depth = 0isize;
        while i < tokens.len() {
            if tokens[i].is_punct('<') {
                depth += 1;
            } else if tokens[i].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    if !tokens.get(i).map(|t| t.is_punct('(')).unwrap_or(false) {
        return None;
    }
    let params_open = i;
    let params_close = match_delim(tokens, params_open);
    if params_close >= tokens.len() {
        return None;
    }
    let params = parse_params(tokens, (params_open + 1, params_close));
    let resume = params_close + 1;

    // Scan the header tail for `-> ReturnType` and the body `{` (a `;`
    // first means a trait declaration without a body).
    let mut ret = Vec::new();
    let mut j = params_close + 1;
    let mut in_ret = false;
    let mut body_open = None;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct(';') {
            break;
        }
        if t.is_punct('{') {
            body_open = Some(j);
            break;
        }
        if t.is_ident("where") {
            in_ret = false;
        } else if t.is_punct('>') && j > 0 && tokens[j - 1].is_punct('-') {
            in_ret = true;
        } else if in_ret && t.kind == TokKind::Ident {
            ret.push(t.text.clone());
        }
        j += 1;
    }
    let body_open = body_open?;
    let body_close = match_delim(tokens, body_open);
    let body = (body_open + 1, body_close.min(tokens.len()));

    let mut item = FnItem {
        name,
        line,
        fn_tok,
        params,
        ret,
        body,
        lets: Vec::new(),
        assigns: Vec::new(),
        guards: Vec::new(),
        loops: Vec::new(),
        tail: None,
    };
    scan_body(tokens, body, &mut item);
    Some((item, resume))
}

/// Parse a parameter-list span into [`Param`]s.
fn parse_params(tokens: &[Token], span: Span) -> Vec<Param> {
    let mut out = Vec::new();
    for arg in split_args(tokens, span) {
        let slice = &tokens[arg.0..arg.1];
        if slice.is_empty() {
            continue;
        }
        // Split at the first top-level `:` (not `::`).
        let mut colon = None;
        let mut depth = 0isize;
        for (k, t) in slice.iter().enumerate() {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                depth -= 1;
            } else if t.is_punct(':')
                && depth == 0
                && !slice.get(k + 1).map(|n| n.is_punct(':')).unwrap_or(false)
                && !(k > 0 && slice[k - 1].is_punct(':'))
            {
                colon = Some(k);
                break;
            }
        }
        let (pat, ty_toks) = match colon {
            Some(c) => (&slice[..c], &slice[c + 1..]),
            None => (slice, &slice[slice.len()..]),
        };
        let name = pat
            .iter()
            .find(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref")
            .map(|t| t.text.clone());
        let Some(name) = name else { continue };
        let ty = ty_toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "dyn")
            .map(|t| t.text.clone())
            .collect();
        out.push(Param { name, ty });
    }
    out
}

/// Collect lets/assigns/guards/loops/tail from a body span.
fn scan_body(tokens: &[Token], body: Span, item: &mut FnItem) {
    let mut i = body.0;
    while i < body.1 {
        let t = &tokens[i];
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "let" => {
                    let next = scan_let(tokens, body, i, item);
                    i = next;
                    continue;
                }
                "if" => {
                    if let Some((guard, _)) = scan_block_after(tokens, body, i + 1) {
                        item.guards.push(Guard { cond: guard.head, body: guard.body });
                    }
                    // Do not skip the body: nested constructs inside it
                    // must be collected too.
                }
                "for" | "while" | "loop" => {
                    // `for` also appears in `impl Trait for T` and
                    // `for<'a>` bounds; requiring a brace-delimited
                    // block in statement position filters most, and the
                    // passes only consume loops containing calls, so a
                    // rare false span is harmless.
                    if let Some((lp, _)) = scan_block_after(tokens, body, i + 1) {
                        item.loops.push(Loop { head: lp.head, body: lp.body });
                    }
                }
                _ => {}
            }
        } else if t.is_punct('=') && i + 1 < body.1 && !tokens[i + 1].is_punct('=') {
            if let Some(assign) = scan_assign(tokens, body, i) {
                item.assigns.push(assign);
            }
        }
        i += 1;
    }
    item.tail = find_tail(tokens, body);
    item.lets.sort_by_key(|l| l.pos);
    item.assigns.sort_by_key(|a| a.pos);
}

/// Parse `let [mut] <pat> [: ty] = init (;|else)` starting at the
/// `let` token; returns the index to resume from.
fn scan_let(tokens: &[Token], body: Span, let_tok: usize, item: &mut FnItem) -> usize {
    let line = tokens[let_tok].line;
    let mut i = let_tok + 1;
    let mut names = Vec::new();
    // Pattern: identifiers up to `:` (type) or `=` (init), at depth 0.
    let mut depth = 0isize;
    let mut colon = None;
    let mut eq = None;
    while i < body.1 {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth -= 1;
        } else if t.is_punct(':')
            && depth == 0
            && colon.is_none()
            && !tokens.get(i + 1).map(|n| n.is_punct(':')).unwrap_or(false)
            && !(i > 0 && tokens[i - 1].is_punct(':'))
        {
            colon = Some(i);
        } else if t.is_punct('=') && depth == 0 {
            // `==` cannot appear before the init's `=`; `<=`/`>=` are
            // inside depth from `<`.
            eq = Some(i);
            break;
        } else if t.is_punct(';') && depth == 0 {
            break;
        } else if t.kind == TokKind::Ident
            && colon.is_none()
            && !matches!(t.text.as_str(), "mut" | "ref" | "box")
        {
            names.push(t.text.clone());
        }
        i += 1;
    }
    let ty: Vec<String> = match (colon, eq) {
        (Some(c), Some(e)) => tokens[c + 1..e]
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "dyn")
            .map(|t| t.text.clone())
            .collect(),
        (Some(c), None) => tokens[c + 1..i.min(body.1)]
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "dyn")
            .map(|t| t.text.clone())
            .collect(),
        _ => Vec::new(),
    };
    // Initializer: from after `=` to the `;` at this brace depth (or a
    // `{` when this is an `if let`/`while let` condition). The scan
    // resumes from just after the `=`, NOT after the initializer —
    // closures and blocks inside the init (`par_map(.., |x| { let .. })`)
    // carry bindings and guards that must still be collected.
    let (init, resume) = match eq {
        Some(e) => {
            let mut j = e + 1;
            let mut pd = 0isize; // paren/bracket depth
            let mut bd = 0isize; // brace depth (closures, blocks)
            while j < body.1 {
                let t = &tokens[j];
                if t.is_punct('(') || t.is_punct('[') {
                    pd += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    if pd == 0 {
                        break; // unbalanced: `let` inside a call argument
                    }
                    pd -= 1;
                } else if t.is_punct('{') {
                    // An `if let`'s success block starts here.
                    if pd == 0 && bd == 0 && is_if_let(tokens, let_tok) {
                        break;
                    }
                    bd += 1;
                } else if t.is_punct('}') {
                    if bd == 0 {
                        break;
                    }
                    bd -= 1;
                } else if t.is_punct(';') && pd == 0 && bd == 0 {
                    break;
                }
                j += 1;
            }
            ((e + 1, j), e + 1)
        }
        None => ((let_tok, let_tok), i),
    };
    // Patterns that hold no identifier (e.g. `let _ = …`) record
    // nothing; multi-name destructures share the init span.
    for name in names {
        item.lets.push(LetBind { name, line, ty: ty.clone(), init, pos: let_tok });
    }
    resume.max(let_tok + 1)
}

/// True if the `let` at `let_tok` is an `if let` / `while let`.
fn is_if_let(tokens: &[Token], let_tok: usize) -> bool {
    let_tok > 0
        && (tokens[let_tok - 1].is_ident("if") || tokens[let_tok - 1].is_ident("while"))
}

/// Parse a plain assignment around the `=` at `eq`; returns `None` for
/// compound operators, comparisons, and `let` initializers (those are
/// captured by [`scan_let`]).
fn scan_assign(tokens: &[Token], body: Span, eq: usize) -> Option<Assign> {
    if eq == 0 {
        return None;
    }
    let prev = &tokens[eq - 1];
    // `x += / -= / == / != / <= / >= / => =` forms are not plain
    // assignments; a plain one has an identifier, `]`, or `)` directly
    // before the `=`.
    if prev.kind == TokKind::Punct && !prev.is_punct(']') {
        return None;
    }
    // Walk the lvalue chain backward to its base identifier:
    // `base.field[idx].field = …`.
    let mut k = eq - 1;
    loop {
        let t = &tokens[k];
        if t.is_punct(']') {
            // Find the matching `[`.
            let mut depth = 0isize;
            while k > 0 {
                if tokens[k].is_punct(']') {
                    depth += 1;
                } else if tokens[k].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k -= 1;
            }
            if k == 0 {
                return None;
            }
            k -= 1;
        } else if t.kind == TokKind::Ident {
            if k >= 1 && tokens[k - 1].is_punct('.') && k >= 2 {
                k -= 2;
            } else {
                break;
            }
        } else {
            return None;
        }
    }
    let base = &tokens[k];
    if base.kind != TokKind::Ident || matches!(base.text.as_str(), "let" | "mut" | "ref") {
        return None;
    }
    // A `let` two tokens back (`let x =`, `let mut x =`) means this
    // `=` is an initializer, already captured by `scan_let`.
    if k >= 1
        && (tokens[k - 1].is_ident("let")
            || tokens[k - 1].is_ident("mut") && k >= 2 && tokens[k - 2].is_ident("let"))
    {
        return None;
    }
    // RHS: to the statement-terminating `;` at balanced depth.
    let mut j = eq + 1;
    let mut pd = 0isize;
    let mut bd = 0isize;
    while j < body.1 {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') {
            pd += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            if pd == 0 {
                break;
            }
            pd -= 1;
        } else if t.is_punct('{') {
            bd += 1;
        } else if t.is_punct('}') {
            if bd == 0 {
                break;
            }
            bd -= 1;
        } else if t.is_punct(';') && pd == 0 && bd == 0 {
            break;
        }
        j += 1;
    }
    Some(Assign { name: base.text.clone(), line: base.line, rhs: (eq + 1, j), pos: eq })
}

/// Header/body pair for a construct whose block opens at the first
/// depth-0 `{` after `start`. Returns the pair and the body-close
/// index.
fn scan_block_after(tokens: &[Token], body: Span, start: usize) -> Option<(Loop, usize)> {
    let mut j = start;
    let mut depth = 0isize;
    while j < body.1 {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') && depth == 0 {
            let close = match_delim(tokens, j);
            if close > body.1 {
                return None;
            }
            return Some((Loop { head: (start, j), body: (j + 1, close) }, close));
        } else if (t.is_punct(';') || t.is_punct('}')) && depth <= 0 {
            return None;
        }
        j += 1;
    }
    None
}

/// Best-effort trailing expression of the body: the tokens after the
/// last statement boundary (`;` or block close) at the body's own
/// depth.
fn find_tail(tokens: &[Token], body: Span) -> Option<Span> {
    let mut last_boundary = body.0;
    let mut i = body.0;
    while i < body.1 {
        let t = &tokens[i];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            let close = match_delim(tokens, i);
            if close >= body.1 {
                return None;
            }
            // A block in statement position is a boundary; a block
            // inside an expression (followed by `.`/operator/`;`) is
            // not — distinguishing precisely needs full grammar, so
            // treat any top-level close followed by more tokens as a
            // boundary only when a `;` follows or nothing follows.
            if t.is_punct('{') {
                last_boundary = close + 1;
            }
            i = close + 1;
            continue;
        }
        if t.is_punct(';') {
            last_boundary = i + 1;
        }
        i += 1;
    }
    if last_boundary < body.1 {
        Some((last_boundary, body.1))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Vec<FnItem> {
        parse(&lex(src).tokens)
    }

    fn texts(tokens: &[Token], span: Span) -> Vec<&str> {
        tokens[span.0..span.1].iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn fn_header_params_and_ret() {
        let fns = parse_src(
            "pub fn deal<F: Field, R: Rng + ?Sized>(rng: &mut R, sk: &SecretKey, n: usize) \
             -> Vec<u8> where F: Clone { body() }",
        );
        assert_eq!(fns.len(), 1);
        let f = &fns[0];
        assert_eq!(f.name, "deal");
        let names: Vec<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["rng", "sk", "n"]);
        assert_eq!(f.params[1].ty, ["SecretKey"]);
        assert_eq!(f.ret, ["Vec", "u8"]);
    }

    #[test]
    fn self_receiver_and_empty_ret() {
        let fns = parse_src("impl A { fn go(&mut self, x: u32) { } }");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].params[0].name, "self");
        assert!(fns[0].ret.is_empty());
    }

    #[test]
    fn lets_capture_init_and_type() {
        let src = "fn f() { let mut x: Vec<u8> = source(); let (a, b) = pair(); x = other(a); }";
        let lexed = lex(src);
        let fns = parse(&lexed.tokens);
        let f = &fns[0];
        assert_eq!(f.lets.len(), 3);
        assert_eq!(f.lets[0].name, "x");
        assert_eq!(f.lets[0].ty, ["Vec", "u8"]);
        assert!(texts(&lexed.tokens, f.lets[0].init).contains(&"source"));
        assert_eq!(f.lets[1].name, "a");
        assert_eq!(f.lets[2].name, "b");
        assert_eq!(f.lets[1].init, f.lets[2].init);
        assert_eq!(f.assigns.len(), 1);
        assert_eq!(f.assigns[0].name, "x");
        assert!(texts(&lexed.tokens, f.assigns[0].rhs).contains(&"other"));
    }

    #[test]
    fn compound_ops_are_not_assignments() {
        let fns = parse_src("fn f() { x += 1; y == z; a <= b; c.d[0] = e; }");
        assert_eq!(fns[0].assigns.len(), 1);
        assert_eq!(fns[0].assigns[0].name, "c");
    }

    #[test]
    fn guards_and_loops() {
        let src = "fn f() { if sb.is_leader() { post(); } for i in 0..n { let s = rng.next_u64(); } }";
        let lexed = lex(src);
        let fns = parse(&lexed.tokens);
        let f = &fns[0];
        assert_eq!(f.guards.len(), 1);
        assert!(texts(&lexed.tokens, f.guards[0].cond).contains(&"is_leader"));
        assert!(texts(&lexed.tokens, f.guards[0].body).contains(&"post"));
        assert_eq!(f.loops.len(), 1);
        assert!(texts(&lexed.tokens, f.loops[0].body).contains(&"next_u64"));
        // The let inside the loop body is still collected.
        assert!(f.lets.iter().any(|l| l.name == "s"));
    }

    #[test]
    fn guarded_by_resolves_containment() {
        let src = "fn f() { if p.owns(i) { inner(); } outer(); }";
        let lexed = lex(src);
        let fns = parse(&lexed.tokens);
        let f = &fns[0];
        let inner_idx = lexed.tokens.iter().position(|t| t.is_ident("inner")).unwrap();
        let outer_idx = lexed.tokens.iter().position(|t| t.is_ident("outer")).unwrap();
        let has_owns = |cond: Span| {
            lexed.tokens[cond.0..cond.1].iter().any(|t| t.is_ident("owns"))
        };
        assert!(f.guarded_by(inner_idx, has_owns));
        assert!(!f.guarded_by(outer_idx, has_owns));
    }

    #[test]
    fn if_let_init_stops_at_block() {
        let src = "fn f() { if let Some(x) = find(v) { use_it(x); } }";
        let lexed = lex(src);
        let fns = parse(&lexed.tokens);
        let f = &fns[0];
        let x = f.lets.iter().find(|l| l.name == "x").unwrap();
        let init = texts(&lexed.tokens, x.init);
        assert!(init.contains(&"find"));
        assert!(!init.contains(&"use_it"));
    }

    #[test]
    fn tail_expression_detected() {
        let src = "fn f() -> u64 { let x = a(); x + 1 }";
        let lexed = lex(src);
        let fns = parse(&lexed.tokens);
        let tail = fns[0].tail.expect("tail");
        assert!(texts(&lexed.tokens, tail).contains(&"x"));
    }

    #[test]
    fn nested_fn_discovered_separately() {
        let fns = parse_src("fn outer() { fn inner(q: u8) { } let z = 1; }");
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
    }

    #[test]
    fn binding_lookup_is_shadowing_aware() {
        let src = "fn f() { let x = secret(); let x = encrypt(x); sink(x); }";
        let lexed = lex(src);
        let fns = parse(&lexed.tokens);
        let f = &fns[0];
        let sink_idx = lexed.tokens.iter().position(|t| t.is_ident("sink")).unwrap();
        let init = f.binding_init("x", sink_idx).unwrap();
        assert!(texts(&lexed.tokens, init).contains(&"encrypt"));
    }

    #[test]
    fn closure_bodies_do_not_break_let_spans() {
        let src = "fn f() { let seeds: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect(); done(); }";
        let lexed = lex(src);
        let fns = parse(&lexed.tokens);
        let l = &fns[0].lets[0];
        let init = texts(&lexed.tokens, l.init);
        assert!(init.contains(&"collect"));
        assert!(!init.contains(&"done"));
    }
}
