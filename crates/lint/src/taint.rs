//! Intraprocedural secret-taint dataflow.
//!
//! Sources: parameters and bindings whose declared type matches the
//! secret registry ([`is_secret_type`]), bindings whose name matches the
//! secret naming convention ([`is_secret_binding`]), and bindings under a
//! `lint:taint(source)` marker. Taint propagates through `let`
//! initializers, re-assignment, field access and method receivers (an
//! expression is tainted if any identifier it mentions is), which gives
//! `clone`/`as_ref`-style passthroughs for free.
//!
//! Sanitizers clear taint: a call whose callee starts with one of
//! [`SANITIZER_PREFIXES`] (`encrypt*`, `share*`, `commit*`) or whose
//! `fn` is marked `lint:sanitize` produces public material — its
//! argument span is excluded from taint scans.
//!
//! Sinks, each a `taint-flow` finding when reached by a tainted value:
//!
//! 1. format/log macros (`println!`, `format!`, ... and `dbg!`) — but
//!    only via bindings the token-level `secret-format` rule cannot see
//!    (non-secret-named ones), so the two rules never double-report;
//! 2. board posting payloads: `.post(..)`/`.post_batch(..)`/
//!    `.post_records(..)`/`.record(..)` arguments and `Post*`-named
//!    struct-literal fields;
//! 3. serialization: [`SERIALIZE_SINKS`] callees with a tainted receiver
//!    or argument;
//! 4. raw-byte returns: `Vec<u8>`-returning functions whose `return`/tail
//!    expression is tainted, unless the fn is itself a sanitizer.

use std::collections::BTreeSet;

use crate::allow::Directives;
use crate::config::{
    is_secret_binding, is_secret_type, RuleId, FORMAT_MACROS, SANITIZER_PREFIXES, SERIALIZE_SINKS,
};
use crate::lexer::{TokKind, Token};
use crate::parse::{match_delim, split_args, FnItem, Span};

/// Posting-payload method sinks.
const POST_SINKS: [&str; 4] = ["post", "post_batch", "post_records", "record"];

/// Run the taint pass over every parsed function.
pub fn taint_pass(
    tokens: &[Token],
    fns: &[FnItem],
    mask: &[bool],
    directives: &Directives,
    emit: &mut dyn FnMut(RuleId, usize, String),
) {
    // Nested fns are parsed both standalone and as part of their enclosing
    // item's body, so findings are deduplicated across fn items.
    let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
    for f in fns {
        if mask.get(f.fn_tok).copied().unwrap_or(false) {
            continue;
        }
        let st = TaintState::compute(tokens, f, directives);
        st.check_sinks(directives, &mut |rule, line, msg| {
            if seen.insert((line, msg.clone())) {
                emit(rule, line, msg);
            }
        });
    }
}

/// True if `name` is a sanitizer callee: built-in prefix set only (the
/// per-file `lint:sanitize` markers are resolved by the caller via
/// [`Directives::sanitizer_fn`] on the callee *definition* line, which an
/// intraprocedural pass cannot see at the call site — so marked fns also
/// get their names accepted when they match no prefix only if the marker
/// governs the call line itself).
fn is_sanitizer_name(name: &str) -> bool {
    SANITIZER_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Per-function taint facts.
struct TaintState<'a> {
    tokens: &'a [Token],
    f: &'a FnItem,
    /// Parallel to `f.lets`.
    let_taint: Vec<bool>,
    /// Parallel to `f.params`.
    param_taint: Vec<bool>,
}

impl<'a> TaintState<'a> {
    fn compute(tokens: &'a [Token], f: &'a FnItem, directives: &Directives) -> TaintState<'a> {
        let param_taint: Vec<bool> = f
            .params
            .iter()
            .map(|p| {
                p.ty.iter().any(|t| is_secret_type(t)) || is_secret_binding(&p.name)
            })
            .collect();
        let mut st = TaintState { tokens, f, let_taint: vec![false; f.lets.len()], param_taint };
        // Lets are in source order; a binding's taint depends only on
        // earlier facts, but assignments can feed back, so iterate to a
        // small fixpoint.
        for _ in 0..8 {
            let mut changed = false;
            for i in 0..f.lets.len() {
                if st.let_taint[i] {
                    continue;
                }
                let l = &f.lets[i];
                // An explicit `*Public*` type annotation is a declared
                // projection to public material (`let pks: Vec<PkePublicKey
                // <F>> = key_pairs.iter().map(|kp| kp.public)...`): the
                // type registry itself classifies the binding as public,
                // so initializer taint does not propagate into it.
                let declared_public = l.ty.iter().any(|t| t.contains("Public"));
                let tainted = directives.taint_source(l.line)
                    || l.ty.iter().any(|t| is_secret_type(t))
                    || is_secret_binding(&l.name)
                    || (!declared_public && st.range_tainted(l.init, directives));
                if tainted {
                    st.let_taint[i] = true;
                    changed = true;
                }
            }
            for a in &f.assigns {
                if st.range_tainted(a.rhs, directives) && !st.ident_tainted(&a.name, a.pos) {
                    // Taint the binding the assignment targets: the last
                    // let before the assignment, or the parameter.
                    let mut hit = false;
                    if let Some(idx) = st.last_let_index(&a.name, a.pos) {
                        st.let_taint[idx] = true;
                        hit = true;
                    } else if let Some(p) =
                        f.params.iter().position(|p| p.name == a.name)
                    {
                        st.param_taint[p] = true;
                        hit = true;
                    }
                    changed |= hit;
                }
            }
            if !changed {
                break;
            }
        }
        st
    }

    fn last_let_index(&self, name: &str, before: usize) -> Option<usize> {
        self.f
            .lets
            .iter()
            .enumerate()
            .filter(|(_, l)| l.name == name && l.pos < before)
            .map(|(i, _)| i)
            .next_back()
    }

    /// Is the identifier `name`, used at token index `pos`, tainted?
    fn ident_tainted(&self, name: &str, pos: usize) -> bool {
        // Path-tail segments (`Post::TskReshare`, `F::to_bytes`) name enum
        // variants or associated items, not values; only the path *head*
        // can mention a secret binding or construct a secret type.
        if pos >= 2
            && self.tokens[pos - 1].is_punct(':')
            && self.tokens[pos - 2].is_punct(':')
        {
            return false;
        }
        if let Some(idx) = self.last_let_index(name, pos) {
            return self.let_taint[idx];
        }
        if let Some(p) = self.f.params.iter().position(|p| p.name == name) {
            return self.param_taint[p];
        }
        // Free identifier: field/method name (`msg.sk`), a secret-named
        // module-level binding, or a secret type constructor.
        is_secret_binding(name) || is_secret_type(name)
    }

    /// Scan an expression span for tainted identifiers, skipping the
    /// argument lists of sanitizer calls (`encrypt*(...)`,
    /// `x.share_to(...)`, and `lint:sanitize`-marked callees on marked
    /// call lines).
    fn range_tainted(&self, range: Span, directives: &Directives) -> bool {
        self.first_tainted_in(range, directives).is_some()
    }

    /// First tainted identifier in `range`, with its token index.
    fn first_tainted_in(
        &self,
        range: Span,
        directives: &Directives,
    ) -> Option<(usize, &'a str)> {
        let mut i = range.0;
        while i < range.1.min(self.tokens.len()) {
            let t = &self.tokens[i];
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let sanitizes = is_sanitizer_name(&t.text) || directives.sanitizer_fn(t.line);
            if sanitizes {
                // `encrypt(...)` / `.encrypt_for(...)`: skip the call's
                // argument list — its output is public by contract.
                let mut j = i + 1;
                // Tolerate turbofish: `share::<F>(...)`.
                while j + 1 < range.1
                    && self.tokens[j].is_punct(':')
                    && self.tokens[j + 1].is_punct(':')
                {
                    j += 2;
                    if j < range.1 && self.tokens[j].is_punct('<') {
                        let mut depth = 0isize;
                        while j < range.1 {
                            if self.tokens[j].is_punct('<') {
                                depth += 1;
                            } else if self.tokens[j].is_punct('>') {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            j += 1;
                        }
                    } else {
                        break;
                    }
                }
                if j < range.1 && self.tokens[j].is_punct('(') {
                    i = match_delim(self.tokens, j) + 1;
                    continue;
                }
            }
            if self.ident_tainted(&t.text, i) {
                return Some((i, self.text_at(i)));
            }
            // A tainted receiver passed *into* a sanitizer method —
            // `sk.encrypt_to(pk)` — is caught above only for prefix
            // position; check the method-call form: ident `.` sanitizer `(`.
            i += 1;
        }
        None
    }

    fn text_at(&self, i: usize) -> &'a str {
        self.tokens[i].text.as_str()
    }

    /// True if the receiver of the method call whose `.` sits right after
    /// ident `i` is a sanitizer method (`sk.encrypt()`): the *call* is
    /// sanitizing, so the receiver mention is sanctioned.
    fn receiver_of_sanitizer(&self, i: usize, directives: &Directives) -> bool {
        let mut j = i + 1;
        // Walk forward over a `.method(` chain; the first call decides.
        while j + 2 < self.tokens.len()
            && self.tokens[j].is_punct('.')
            && self.tokens[j + 1].kind == TokKind::Ident
        {
            let m = &self.tokens[j + 1];
            let called = self.tokens.get(j + 2).map(|t| t.is_punct('(')).unwrap_or(false);
            if called {
                return is_sanitizer_name(&m.text) || directives.sanitizer_fn(m.line);
            }
            // Field access: keep walking the chain.
            j += 2;
        }
        false
    }

    /// Emit findings for every sink the function's taint reaches.
    fn check_sinks(
        &self,
        directives: &Directives,
        emit: &mut dyn FnMut(RuleId, usize, String),
    ) {
        let body = self.f.body;
        let fn_is_sanitizer =
            is_sanitizer_name(&self.f.name) || directives.sanitizer_fn(self.f.line);
        let mut i = body.0;
        while i < body.1.min(self.tokens.len()) {
            let t = &self.tokens[i];
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let next = |k: usize| self.tokens.get(i + k);
            // --- Sink 1: format/log macros and dbg! ---
            let is_fmt = (FORMAT_MACROS.contains(&t.text.as_str()) || t.text == "dbg")
                && next(1).map(|n| n.is_punct('!')).unwrap_or(false)
                && next(2).map(|n| n.is_punct('(')).unwrap_or(false);
            if is_fmt {
                let close = match_delim(self.tokens, i + 2);
                self.report_tainted_args(
                    (i + 3, close),
                    directives,
                    emit,
                    // The token-level secret-format rule already covers
                    // secret-*named* bindings; reporting only the others
                    // keeps the two rules disjoint.
                    |name| !is_secret_binding(name),
                    &format!("`{}!`", t.text),
                );
                i = close + 1;
                continue;
            }
            // --- Sink 2a: posting methods ---
            let is_post = POST_SINKS.contains(&t.text.as_str())
                && i > 0
                && self.tokens[i - 1].is_punct('.')
                && next(1).map(|n| n.is_punct('(')).unwrap_or(false);
            if is_post {
                let close = match_delim(self.tokens, i + 1);
                self.report_tainted_args(
                    (i + 2, close),
                    directives,
                    emit,
                    |_| true,
                    &format!("board posting `.{}(..)`", t.text),
                );
                i = close + 1;
                continue;
            }
            // --- Sink 2b: Post*-named struct literals ---
            if t.text.starts_with("Post")
                && next(1).map(|n| n.is_punct('{')).unwrap_or(false)
                && !(i > 0
                    && (self.tokens[i - 1].is_ident("let")
                        || self.tokens[i - 1].is_ident("Some")
                        || self.tokens[i - 1].is_punct('(')
                            && i > 1
                            && self.tokens[i - 2].is_ident("let")))
            {
                let close = match_delim(self.tokens, i + 1);
                // Match *patterns* (`Posting { .. } =>`, `if let Posting
                // {..} = x`) destructure rather than construct.
                let is_pattern = self
                    .tokens
                    .get(close + 1)
                    .map(|n| n.is_punct('=') || n.is_punct('>'))
                    .unwrap_or(false)
                    || (i >= 2
                        && (self.tokens[i - 1].is_ident("let")
                            || self.tokens[i - 2].is_ident("let")));
                if !is_pattern {
                    self.report_tainted_args(
                        (i + 2, close),
                        directives,
                        emit,
                        |_| true,
                        &format!("posting payload `{} {{ .. }}`", t.text),
                    );
                }
                i = close + 1;
                continue;
            }
            // --- Sink 3: serialization calls ---
            let is_ser = SERIALIZE_SINKS.contains(&t.text.as_str())
                && i > 0
                && self.tokens[i - 1].is_punct('.')
                && next(1).map(|n| n.is_punct('(')).unwrap_or(false);
            if is_ser {
                // Receiver: base identifier of the chain before the `.`.
                if let Some((line, name)) = self.receiver_base(i - 1) {
                    if self.ident_tainted(name, i) {
                        emit(
                            RuleId::TaintFlow,
                            line,
                            format!(
                                "secret-tainted `{name}` flows into serialization \
                                 `.{}()`; route it through encrypt*/share*/commit* or \
                                 mark the producer `lint:sanitize`",
                                t.text
                            ),
                        );
                    }
                }
                let close = match_delim(self.tokens, i + 1);
                self.report_tainted_args(
                    (i + 2, close),
                    directives,
                    emit,
                    |_| true,
                    &format!("serialization `.{}(..)`", t.text),
                );
                i = close + 1;
                continue;
            }
            // --- Sink 4: tainted `return` in a Vec<u8> fn ---
            if t.text == "return" && self.returns_raw_bytes() && !fn_is_sanitizer {
                // Expression runs to the `;` at balanced depth.
                let mut j = i + 1;
                let mut depth = 0isize;
                while j < body.1 {
                    let n = &self.tokens[j];
                    if n.is_punct('(') || n.is_punct('[') || n.is_punct('{') {
                        depth += 1;
                    } else if n.is_punct(')') || n.is_punct(']') || n.is_punct('}') {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    } else if n.is_punct(';') && depth == 0 {
                        break;
                    }
                    j += 1;
                }
                if let Some((idx, name)) = self.first_tainted_in((i + 1, j), directives) {
                    if !self.receiver_of_sanitizer(idx, directives) {
                        emit(
                            RuleId::TaintFlow,
                            self.tokens[idx].line,
                            format!(
                                "fn `{}` returns raw bytes built from secret-tainted \
                                 `{name}`; encrypt/share/commit first or mark the fn \
                                 `lint:sanitize`",
                                self.f.name
                            ),
                        );
                    }
                }
                i = j;
                continue;
            }
            i += 1;
        }
        // Tail expression of a Vec<u8> fn.
        if self.returns_raw_bytes() && !fn_is_sanitizer {
            if let Some(tail) = self.f.tail {
                if let Some((idx, name)) = self.first_tainted_in(tail, directives) {
                    if !self.receiver_of_sanitizer(idx, directives) {
                        emit(
                            RuleId::TaintFlow,
                            self.tokens[idx].line,
                            format!(
                                "fn `{}` returns raw bytes built from secret-tainted \
                                 `{name}`; encrypt/share/commit first or mark the fn \
                                 `lint:sanitize`",
                                self.f.name
                            ),
                        );
                    }
                }
            }
        }
    }

    /// True if the fn's return type is raw bytes (`Vec<u8>` possibly
    /// wrapped in `Result`/`Option`).
    fn returns_raw_bytes(&self) -> bool {
        self.f.ret.iter().any(|t| t == "Vec") && self.f.ret.iter().any(|t| t == "u8")
    }

    /// Base identifier of a method-call receiver chain ending at the `.`
    /// at `dot` (`a.b.c.` → `a`); returns its line and name.
    fn receiver_base(&self, dot: usize) -> Option<(usize, &'a str)> {
        let mut k = dot;
        loop {
            if k == 0 {
                return None;
            }
            let prev = &self.tokens[k - 1];
            if prev.kind == TokKind::Ident {
                if k >= 2 && self.tokens[k - 2].is_punct('.') {
                    k -= 2;
                    continue;
                }
                return Some((prev.line, prev.text.as_str()));
            }
            // `(expr).to_bytes()` / `x[i].to_bytes()` chains: give up,
            // argument scanning still covers the common leaks.
            return None;
        }
    }

    /// Report each distinct tainted identifier in an argument span.
    fn report_tainted_args(
        &self,
        args: Span,
        directives: &Directives,
        emit: &mut dyn FnMut(RuleId, usize, String),
        report_name: impl Fn(&str) -> bool,
        sink_label: &str,
    ) {
        let mut reported: BTreeSet<&str> = BTreeSet::new();
        for arg in split_args(self.tokens, args) {
            let mut span = arg;
            // Struct-literal fields: `field: expr` — scan the expr only,
            // the field name itself is not a value mention.
            if span.1 > span.0 + 1
                && self.tokens[span.0].kind == TokKind::Ident
                && self.tokens[span.0 + 1].is_punct(':')
                && !self.tokens.get(span.0 + 2).map(|t| t.is_punct(':')).unwrap_or(false)
            {
                span = (span.0 + 2, span.1);
            }
            let mut start = span.0;
            while let Some((idx, name)) = self.first_tainted_in((start, span.1), directives) {
                start = idx + 1;
                if !report_name(name) || !reported.insert(name) {
                    continue;
                }
                if self.receiver_of_sanitizer(idx, directives) {
                    continue;
                }
                emit(
                    RuleId::TaintFlow,
                    self.tokens[idx].line,
                    format!(
                        "secret-tainted `{name}` flows into {sink_label}; route it \
                         through encrypt*/share*/commit* or mark a sanitizer with \
                         `lint:sanitize`"
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn run(src: &str) -> Vec<(RuleId, usize, String)> {
        let lexed = lex(src);
        let fns = parse(&lexed.tokens);
        let directives = Directives::build("f.rs", &lexed);
        let mask = vec![false; lexed.tokens.len()];
        let mut out = Vec::new();
        taint_pass(&lexed.tokens, &fns, &mask, &directives, &mut |r, l, m| {
            out.push((r, l, m))
        });
        out
    }

    #[test]
    fn clean_flow_through_encrypt() {
        let f = run(
            "fn deal(sk: &SecretKey, pk: &PublicKey) { \
               let ct = encrypt_for(pk, sk); \
               sb.post(owned, role, ct, phase, 1); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn dirty_flow_into_posting() {
        let f = run(
            "fn deal(sk: &SecretKey) { let payload = sk.to_vec(); \
             sb.post(owned, role, payload, phase, 1); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("payload"));
    }

    #[test]
    fn dirty_flow_via_clone_and_rename() {
        // `leaked` matches no secret naming pattern: only dataflow sees it.
        let f = run("fn f(sk: &SecretKey) { let leaked = sk.clone(); println!(\"{:?}\", leaked); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("leaked"));
    }

    #[test]
    fn format_of_secret_named_binding_left_to_token_rule() {
        // `sk` is secret-named: the secret-format rule reports it, the
        // taint pass stays silent to avoid double findings.
        let f = run("fn f(sk: &SecretKey) { println!(\"{:?}\", sk); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn taint_marker_creates_source() {
        let f = run(
            "fn f() { let blob = derive_thing(); // lint:taint(source): KDF output is secret\n\
             sb.post(owned, role, blob, phase, 1); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn sanitize_marker_clears() {
        let f = run(
            "fn f(sk: &SecretKey) { \
             let ct = wrap_key(sk); // lint:sanitize: wrap_key returns AEAD ciphertext\n\
             sb.post(owned, role, ct, phase, 1); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn reassignment_propagates() {
        let f = run(
            "fn f(sk: &SecretKey) { let mut buf = Vec::new(); buf = sk.to_vec(); \
             sb.post(owned, role, buf, phase, 1); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn shadowing_through_sanitizer_clears() {
        let f = run(
            "fn f(sk: &SecretKey) { let x = sk.clone(); let x = commit_to(x); \
             sb.post(owned, role, x, phase, 1); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn serialize_receiver_sink() {
        let f = run("fn f(sk: &SecretKey) { let c = sk.clone(); let b = c.to_bytes(); send(b); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("to_bytes"));
    }

    #[test]
    fn raw_byte_return_sink_and_sanitizer_exemption() {
        let f = run("fn export(sk: &SecretKey) -> Vec<u8> { let c = sk.clone(); c.to_vec() }");
        assert!(!f.is_empty(), "{f:?}");
        // A sanitizer-named fn is allowed to produce bytes from secrets.
        let f = run("fn share_bytes(sk: &SecretKey) -> Vec<u8> { sk.to_vec() }");
        assert!(f.is_empty(), "{f:?}");
        // ...as is one carrying the sanitize marker.
        let f = run(
            "// lint:sanitize: output is a ciphertext envelope\n\
             fn seal(sk: &SecretKey) -> Vec<u8> { aead(sk) }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn posting_struct_literal_sink() {
        let f = run(
            "fn f(sk: &SecretKey) { let v = sk.clone(); \
             let p = Posting { from: role, payload: v }; push(p); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        // Destructuring patterns are not construction.
        let f = run("fn g(p: Posting) { match p { Posting { payload } => use_it(payload), } }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn field_access_propagates() {
        let f = run("fn f(msg: &ReshareMsg) { let v = msg.sk_share.clone(); sb.post(o, r, v, p, 1); }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn public_typed_binding_declassifies() {
        // Projecting the public halves out of secret-typed key pairs,
        // declared as such: no taint.
        let f = run(
            "fn f(next_keys: &[PkeKeyPair<F>]) { \
               let pks: Vec<PkePublicKey<F>> = next_keys.iter().map(|kp| kp.public).collect(); \
               sb.post(owned, role, pks, phase, 1); }",
        );
        assert!(f.is_empty(), "{f:?}");
        // A non-Public annotation does not declassify.
        let f = run(
            "fn f(sk: &SecretKey) { let b: Vec<u8> = sk.to_vec(); \
             sb.post(owned, role, b, phase, 1); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn untainted_code_is_silent() {
        let f = run(
            "fn f(pk: &PublicKey, shares: &[Ciphertext]) -> Vec<u8> { \
               let mut out = Vec::new(); \
               for s in shares { out.extend(s.to_bytes()); } \
               out }",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
