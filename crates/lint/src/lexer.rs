//! A small hand-rolled Rust lexer.
//!
//! The workspace builds offline from vendored shims, so `syn`/`proc-macro2`
//! are unavailable; the lint rules only need a token stream with line
//! numbers plus the comment text (for `lint:allow` markers), which a few
//! hundred lines of lexer provide. The lexer is intentionally forgiving:
//! on unexpected input it emits a `Punct` token and keeps going, because a
//! linter must never panic on the code it is judging.

/// Token kind. Only the distinctions the rules need are kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `unsafe`, `r#type`).
    Ident,
    /// Single punctuation character (`.`, `[`, `!`, ...).
    Punct,
    /// String, byte-string or raw-string literal (content stored unquoted).
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`), stored without the quote.
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Token text. For `Str` this is the literal's *content* (no quotes),
    /// for `Punct` the single character, for `Ident` the identifier.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// One `//` or `/* */` comment with its 1-based starting line and full text
/// (delimiters stripped, leading `/`s and `*`s of doc comments kept out).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment body without the `//` / `/*` delimiters.
    pub text: String,
}

/// Lexer output: tokens and comments, both line-annotated.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Set of lines that contain at least one token (i.e. code lines).
    pub fn code_lines(&self) -> std::collections::BTreeSet<usize> {
        self.tokens.iter().map(|t| t.line).collect()
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize `src`. Never fails: malformed input degrades to `Punct` tokens.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor { src: src.as_bytes(), pos: 0, line: 1 };
    let mut out = Lexed::default();

    while let Some(b) = cur.peek() {
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let start = cur.pos + 2;
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                out.comments.push(Comment { line, text });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let start = cur.pos;
                let mut depth = 1usize;
                let mut end = cur.pos;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            end = cur.pos;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => {
                            end = cur.pos;
                            break;
                        }
                    }
                }
                let text = String::from_utf8_lossy(&cur.src[start..end]).into_owned();
                out.comments.push(Comment { line, text });
            }
            b'"' => {
                let text = lex_string(&mut cur);
                out.tokens.push(Token { kind: TokKind::Str, text, line });
            }
            b'\'' => {
                lex_quote(&mut cur, &mut out, line);
            }
            b'0'..=b'9' => {
                let start = cur.pos;
                while let Some(c) = cur.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
                        // Stop before a method call like `1.max(2)` / range `0..n`.
                        if c == b'.'
                            && !cur.peek_at(1).map(|n| n.is_ascii_digit()).unwrap_or(false)
                        {
                            break;
                        }
                        cur.bump();
                    } else {
                        break;
                    }
                }
                let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                out.tokens.push(Token { kind: TokKind::Num, text, line });
            }
            _ if is_ident_start(b) => {
                // b'x' byte chars lex as char literals, not ident + char —
                // otherwise the unmatched quote desyncs everything after.
                if b == b'b' && cur.peek_at(1) == Some(b'\'') {
                    cur.bump();
                    lex_quote(&mut cur, &mut out, line);
                    continue;
                }
                // r"..." / r#"..."# raw strings, b"..." byte strings and
                // br"..." / br#"..."# byte-raw strings lex as string
                // literals, r#ident as a raw identifier.
                let starts_string = matches!(cur.peek_at(1), Some(b'"') | Some(b'#'))
                    || (b == b'b'
                        && cur.peek_at(1) == Some(b'r')
                        && matches!(cur.peek_at(2), Some(b'"') | Some(b'#')));
                if (b == b'r' || b == b'b')
                    && starts_string
                    && raw_or_byte_string(&mut cur, &mut out, line)
                {
                    continue;
                }
                let start = cur.pos;
                while let Some(c) = cur.peek() {
                    if is_ident_continue(c) {
                        cur.bump();
                    } else {
                        break;
                    }
                }
                let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                out.tokens.push(Token { kind: TokKind::Ident, text, line });
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                });
            }
        }
    }
    out
}

/// Lex a `"`-delimited string starting at the opening quote; returns the
/// content with escapes left verbatim.
fn lex_string(cur: &mut Cursor<'_>) -> String {
    cur.bump(); // opening quote
    let start = cur.pos;
    let mut end;
    loop {
        end = cur.pos;
        match cur.bump() {
            None => break,
            Some(b'\\') => {
                cur.bump();
            }
            Some(b'"') => break,
            Some(_) => {}
        }
    }
    String::from_utf8_lossy(&cur.src[start..end]).into_owned()
}

/// Disambiguate `'a` (lifetime) from `'x'` / `'\n'` (char literal).
fn lex_quote(cur: &mut Cursor<'_>, out: &mut Lexed, line: usize) {
    cur.bump(); // opening quote
    // Lifetime: identifier chars followed by anything but a closing quote.
    if cur.peek().map(is_ident_start).unwrap_or(false) {
        let start = cur.pos;
        let mut probe = cur.pos;
        while probe < cur.src.len() && is_ident_continue(cur.src[probe]) {
            probe += 1;
        }
        if cur.src.get(probe) != Some(&b'\'') {
            while cur.pos < probe {
                cur.bump();
            }
            let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
            out.tokens.push(Token { kind: TokKind::Lifetime, text, line });
            return;
        }
    }
    // Char literal: consume to the closing quote, honoring escapes.
    let start = cur.pos;
    let mut end;
    loop {
        end = cur.pos;
        match cur.bump() {
            None => break,
            Some(b'\\') => {
                cur.bump();
            }
            Some(b'\'') => break,
            Some(_) => {}
        }
    }
    let text = String::from_utf8_lossy(&cur.src[start..end]).into_owned();
    out.tokens.push(Token { kind: TokKind::Char, text, line });
}

/// Handle `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`. Returns true if a string was
/// consumed; false means "not actually a raw/byte string, lex as ident".
fn raw_or_byte_string(cur: &mut Cursor<'_>, out: &mut Lexed, line: usize) -> bool {
    let save_pos = cur.pos;
    let save_line = cur.line;
    let mut prefix_len = 1usize;
    if cur.peek() == Some(b'b') && matches!(cur.peek_at(1), Some(b'r')) {
        prefix_len = 2;
    }
    let mut p = cur.pos + prefix_len;
    let mut hashes = 0usize;
    while cur.src.get(p) == Some(&b'#') {
        hashes += 1;
        p += 1;
    }
    if cur.src.get(p) != Some(&b'"') {
        // `r#ident` raw identifier or plain ident starting with r/b.
        if hashes == 1 && cur.src.get(p).map(|&c| is_ident_start(c)).unwrap_or(false) {
            // Consume `r#` then let the caller's ident path... simpler: lex
            // the raw identifier here.
            for _ in 0..(prefix_len + 1) {
                cur.bump();
            }
            let start = cur.pos;
            while let Some(c) = cur.peek() {
                if is_ident_continue(c) {
                    cur.bump();
                } else {
                    break;
                }
            }
            let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
            out.tokens.push(Token { kind: TokKind::Ident, text, line });
            return true;
        }
        cur.pos = save_pos;
        cur.line = save_line;
        return false;
    }
    // It is a (raw/byte) string. Advance past prefix, hashes, opening quote.
    for _ in 0..(prefix_len + hashes + 1) {
        cur.bump();
    }
    let start = cur.pos;
    let mut end;
    if hashes == 0 && prefix_len >= 1 && cur.src.get(save_pos) == Some(&b'b') && prefix_len == 1 {
        // b"..." — escapes are honored.
        loop {
            end = cur.pos;
            match cur.bump() {
                None => break,
                Some(b'\\') => {
                    cur.bump();
                }
                Some(b'"') => break,
                Some(_) => {}
            }
        }
    } else {
        // Raw string: ends at `"` followed by `hashes` hash marks. Plain
        // r"..." has hashes == 0 and no escape processing.
        loop {
            end = cur.pos;
            match cur.bump() {
                None => break,
                Some(b'"') => {
                    let mut ok = true;
                    for i in 0..hashes {
                        if cur.peek_at(i) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..hashes {
                            cur.bump();
                        }
                        break;
                    }
                }
                Some(_) => {}
            }
        }
    }
    let text = String::from_utf8_lossy(&cur.src[start..end]).into_owned();
    out.tokens.push(Token { kind: TokKind::Str, text, line });
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_puncts() {
        let lx = lex("fn main() { x.unwrap(); }");
        let idents: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["fn", "main", "x", "unwrap"]);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let lx = lex("let a = 1; // lint:allow(panic): fine\n/* block\ncomment */ let b = 2;");
        assert_eq!(lx.comments.len(), 2);
        assert!(lx.comments[0].text.contains("lint:allow(panic)"));
        assert_eq!(lx.comments[0].line, 1);
        assert_eq!(lx.comments[1].line, 2);
        assert!(lx.tokens.iter().any(|t| t.is_ident("b")));
        // The word "comment" must not appear as a token.
        assert!(!lx.tokens.iter().any(|t| t.is_ident("comment")));
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let lx = lex(r#"let s = "unsafe { unwrap }";"#);
        assert!(!lx.tokens.iter().any(|t| t.is_ident("unsafe")));
        assert_eq!(
            lx.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
    }

    #[test]
    fn raw_and_byte_strings() {
        let lx = lex(r##"let a = r#"un"safe"#; let b = b"bytes"; let c = r"plain";"##);
        let strs: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, [r#"un"safe"#, "bytes", "plain"]);
    }

    #[test]
    fn lifetime_vs_char() {
        let lx = lex("fn f<'a>(x: &'a u8) { let c = 'x'; let nl = '\\n'; }");
        assert!(lx
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert_eq!(
            lx.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            2
        );
    }

    #[test]
    fn nested_block_comments() {
        let lx = lex("/* a /* b */ c */ let x = 1;");
        assert_eq!(lx.comments.len(), 1);
        assert!(lx.tokens.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lx = lex("a\nb\n\nc");
        let lines: Vec<_> = lx.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn raw_identifier() {
        let lx = lex("let r#type = 1;");
        assert!(lx.tokens.iter().any(|t| t.is_ident("type")));
    }

    #[test]
    fn byte_raw_strings_do_not_desync() {
        // Before the `br` fix this lexed as ident `br` + a mis-matched
        // string, swallowing the rest of the file — including the unwrap.
        let lx = lex(r###"let a = br"raw bytes"; let b = br#"with "quote""#; x.unwrap();"###);
        let strs: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, ["raw bytes", r#"with "quote""#]);
        assert!(lx.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(!lx.tokens.iter().any(|t| t.is_ident("br")));
    }

    #[test]
    fn byte_char_literals_do_not_desync() {
        // `b'"'` used to lex as ident `b` + a char starting at the quote;
        // with an embedded double quote that desynced string detection.
        let lx = lex("let q = b'\"'; let nl = b'\\n'; let d = b'0'; y.unwrap();");
        assert_eq!(
            lx.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            3
        );
        assert!(!lx.tokens.iter().any(|t| t.is_ident("b")));
        assert!(lx.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(
            lx.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            0
        );
    }

    #[test]
    fn raw_string_with_comment_openers_does_not_hide_code() {
        // Sink detection must not be desynced by literal content that
        // looks like comments or markers.
        let lx = lex(
            "let s = r#\"// lint:allow(panic): not a real marker /* \"#;\nz.unwrap();",
        );
        assert!(lx.comments.is_empty());
        assert!(lx.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn unterminated_nested_block_comment_terminates() {
        let lx = lex("/* a /* b */ still open\nlet x = 1;");
        assert_eq!(lx.comments.len(), 1);
        // Everything fell into the unterminated comment — but the lexer
        // must not loop or panic.
        assert!(lx.tokens.is_empty());
    }
}
