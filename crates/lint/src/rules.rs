//! The token-stream rule families, plus dispatch into the dataflow
//! passes ([`crate::taint`], [`crate::protocol`]).

use crate::allow::{AllowTable, Directives};
use crate::config::{
    is_secret_binding, is_secret_type, Level, LintConfig, RuleId, FORMAT_MACROS, NONDET_IDENTS,
};
use crate::findings::Finding;
use crate::lexer::{TokKind, Token};

/// Per-file facts that decide which rules run.
#[derive(Debug, Clone, Default)]
pub struct FileMeta {
    /// Path relative to the lint root, `/`-separated.
    pub rel_path: String,
    /// Crate directory name (`core`, `the`, ...) if under `crates/`.
    pub crate_name: Option<String>,
    /// Crate is in the protocol set (panic/index rules apply).
    pub is_protocol: bool,
    /// File is a transcript-affecting module (determinism rule applies).
    pub is_transcript: bool,
    /// File is a crate root (`#![forbid(unsafe_code)]` required).
    pub is_crate_root: bool,
}

/// Lint one file's source; returns all findings for enabled rules.
pub fn lint_source(meta: &FileMeta, source: &str, cfg: &LintConfig) -> Vec<Finding> {
    let lexed = crate::lexer::lex(source);
    let mut allows = AllowTable::build(&meta.rel_path, &lexed);
    let test_mask = test_mask(&lexed.tokens);
    let mut out = Vec::new();

    let push = |out: &mut Vec<Finding>,
                    allows: &mut AllowTable,
                    rule: RuleId,
                    line: usize,
                    message: String| {
        if cfg.level(rule) == Level::Allow {
            return;
        }
        if allows.suppressed(line, rule) {
            return;
        }
        out.push(Finding::new(meta.rel_path.clone(), line, rule, message));
    };

    if meta.is_protocol {
        panic_rule(&lexed.tokens, &test_mask, &mut |r, l, m| {
            push(&mut out, &mut allows, r, l, m)
        });
        index_rule(&lexed.tokens, &test_mask, &mut |r, l, m| {
            push(&mut out, &mut allows, r, l, m)
        });
    }
    secret_type_rule(&lexed.tokens, &test_mask, &mut |r, l, m| {
        push(&mut out, &mut allows, r, l, m)
    });
    secret_format_rule(&lexed.tokens, &test_mask, meta.is_protocol, &mut |r, l, m| {
        push(&mut out, &mut allows, r, l, m)
    });
    if meta.is_transcript {
        determinism_rule(&lexed.tokens, &test_mask, &mut |r, l, m| {
            push(&mut out, &mut allows, r, l, m)
        });
    }
    unsafe_rule(&lexed.tokens, meta, &mut |r, l, m| {
        push(&mut out, &mut allows, r, l, m)
    });

    // Dataflow passes over the shape parse.
    let mut directives = Directives::build(&meta.rel_path, &lexed);
    if meta.is_protocol || meta.crate_name.as_deref() == Some("core") {
        let fns = crate::parse::parse(&lexed.tokens);
        if meta.is_protocol {
            crate::taint::taint_pass(&lexed.tokens, &fns, &test_mask, &directives, &mut |r, l, m| {
                push(&mut out, &mut allows, r, l, m)
            });
        }
        if meta.crate_name.as_deref() == Some("core") {
            crate::protocol::protocol_pass(&lexed.tokens, &fns, &test_mask, &mut |r, l, m| {
                push(&mut out, &mut allows, r, l, m)
            });
        }
    }

    out.append(&mut allows.parse_findings);
    out.append(&mut directives.parse_findings);
    if cfg.level(RuleId::UnusedAllow) != Level::Allow {
        out.extend(allows.unused(&meta.rel_path));
    }
    out.sort_by_key(|a| (a.line, a.rule));
    out
}

/// Mark every token that belongs to a `#[test]` / `#[cfg(test)]` item
/// (including the whole `mod tests { ... }` body) so panic/format rules
/// skip test code.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            // Scan the attribute group `#[ ... ]`.
            let attr_start = i;
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut has_test = false;
            while j < tokens.len() {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if tokens[j].is_ident("not")
                    && tokens.get(j + 1).map(|n| n.is_punct('(')).unwrap_or(false)
                {
                    // `cfg(not(test))` is production code: skip the group.
                    let mut pd = 0usize;
                    j += 1;
                    while j < tokens.len() {
                        if tokens[j].is_punct('(') {
                            pd += 1;
                        } else if tokens[j].is_punct(')') {
                            pd -= 1;
                            if pd == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                } else if tokens[j].is_ident("test") || tokens[j].is_ident("bench") {
                    has_test = true;
                }
                j += 1;
            }
            if has_test {
                let end = item_end(tokens, j + 1);
                for m in mask.iter_mut().take(end).skip(attr_start) {
                    *m = true;
                }
                i = end;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index one past the end of the item starting at `start`: skips further
/// attributes, then ends at the first top-level `;` or the matching brace
/// of the first top-level `{`.
fn item_end(tokens: &[Token], start: usize) -> usize {
    let mut i = start;
    // Skip subsequent attribute groups (`#[...]`).
    while i + 1 < tokens.len() && tokens[i].is_punct('#') && tokens[i + 1].is_punct('[') {
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < tokens.len() {
            if tokens[j].is_punct('[') {
                depth += 1;
            } else if tokens[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        i = j + 1;
    }
    let mut brace = 0isize;
    let mut seen_brace = false;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') {
            brace += 1;
            seen_brace = true;
        } else if t.is_punct('}') {
            brace -= 1;
            if seen_brace && brace == 0 {
                return i + 1;
            }
        } else if t.is_punct(';') && !seen_brace {
            return i + 1;
        }
        i += 1;
    }
    tokens.len()
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

fn panic_rule(
    tokens: &[Token],
    mask: &[bool],
    emit: &mut dyn FnMut(RuleId, usize, String),
) {
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let next_is = |c: char| tokens.get(i + 1).map(|n| n.is_punct(c)).unwrap_or(false);
        if (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && tokens[i - 1].is_punct('.')
            && next_is('(')
        {
            emit(
                RuleId::Panic,
                t.line,
                format!(
                    "`.{}()` in protocol code can abort a YOSO epoch; return a typed \
                     `Result` instead",
                    t.text
                ),
            );
        } else if PANIC_MACROS.contains(&t.text.as_str()) && next_is('!') {
            emit(
                RuleId::Panic,
                t.line,
                format!("`{}!` in protocol code; return a typed error instead", t.text),
            );
        }
    }
}

fn index_rule(
    tokens: &[Token],
    mask: &[bool],
    emit: &mut dyn FnMut(RuleId, usize, String),
) {
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || !t.is_punct('[') || i == 0 {
            continue;
        }
        let prev = &tokens[i - 1];
        let is_index_base = match prev.kind {
            TokKind::Ident => !is_keyword(&prev.text),
            TokKind::Punct => prev.is_punct(')') || prev.is_punct(']') || prev.is_punct('?'),
            _ => false,
        };
        if is_index_base {
            emit(
                RuleId::Index,
                t.line,
                "slice indexing can panic; prefer `.get()` or a pattern-proof access"
                    .to_string(),
            );
        }
    }
}

/// Keywords that may directly precede `[` without forming an index
/// expression (`return [..]`, `in [..]`, `else [..]` etc.).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return" | "in" | "else" | "match" | "if" | "while" | "box" | "mut" | "ref" | "move"
            | "break" | "const" | "static" | "as" | "dyn" | "impl" | "where" | "for" | "let"
    )
}

fn determinism_rule(
    tokens: &[Token],
    mask: &[bool],
    emit: &mut dyn FnMut(RuleId, usize, String),
) {
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if NONDET_IDENTS.contains(&t.text.as_str()) {
            emit(
                RuleId::Determinism,
                t.line,
                format!(
                    "`{}` in a transcript-affecting module: iteration/query order or \
                     timing would leak into the posting log",
                    t.text
                ),
            );
            continue;
        }
        // `std::time::...` and `thread::current()`.
        let path_prev = |idx: usize| -> Option<&str> {
            if idx >= 3
                && tokens[idx - 1].is_punct(':')
                && tokens[idx - 2].is_punct(':')
                && tokens[idx - 3].kind == TokKind::Ident
            {
                Some(tokens[idx - 3].text.as_str())
            } else {
                None
            }
        };
        if t.text == "time" && path_prev(i) == Some("std") {
            emit(
                RuleId::Determinism,
                t.line,
                "`std::time` in a transcript-affecting module: wall-clock values are \
                 nondeterministic"
                    .to_string(),
            );
        } else if t.text == "current" && path_prev(i) == Some("thread") {
            emit(
                RuleId::Determinism,
                t.line,
                "thread identity in a transcript-affecting module: results must not \
                 depend on which worker ran the item"
                    .to_string(),
            );
        }
    }
}

fn secret_type_rule(
    tokens: &[Token],
    mask: &[bool],
    emit: &mut dyn FnMut(RuleId, usize, String),
) {
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if (t.text == "struct" || t.text == "enum")
            && tokens.get(i + 1).map(|n| n.kind == TokKind::Ident).unwrap_or(false)
        {
            let name = &tokens[i + 1].text;
            if is_secret_type(name) {
                check_derives(tokens, i, name, emit);
            }
        } else if t.text == "impl" {
            check_manual_impl(tokens, i, emit);
        }
    }
}

/// Walk backwards from a `struct`/`enum` keyword over visibility and
/// attribute groups; report `Debug`/`Serialize` derives on secret types.
fn check_derives(
    tokens: &[Token],
    kw_idx: usize,
    type_name: &str,
    emit: &mut dyn FnMut(RuleId, usize, String),
) {
    let mut j = kw_idx;
    loop {
        // Step over visibility (`pub`, `pub(crate)`) and other modifiers.
        while j > 0 {
            let p = &tokens[j - 1];
            let skip = matches!(p.kind, TokKind::Ident if matches!(p.text.as_str(), "pub" | "crate" | "super" | "in" | "self"))
                || p.is_punct('(')
                || p.is_punct(')');
            if skip {
                j -= 1;
            } else {
                break;
            }
        }
        // An attribute group ends with `]` right before position j.
        if j == 0 || !tokens[j - 1].is_punct(']') {
            break;
        }
        // Find the matching `[`.
        let close = j - 1;
        let mut depth = 0usize;
        let mut open = close;
        loop {
            if tokens[open].is_punct(']') {
                depth += 1;
            } else if tokens[open].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if open == 0 {
                return;
            }
            open -= 1;
        }
        if open == 0 || !tokens[open - 1].is_punct('#') {
            break;
        }
        // Inspect the group: `derive(...)`?
        if tokens.get(open + 1).map(|t| t.is_ident("derive")).unwrap_or(false) {
            for t in &tokens[open + 2..close] {
                if t.kind != TokKind::Ident {
                    continue;
                }
                match t.text.as_str() {
                    "Debug" => emit(
                        RuleId::SecretDebug,
                        t.line,
                        format!(
                            "secret type `{type_name}` derives Debug; write a redacted \
                             impl (mark it `lint:redact`)"
                        ),
                    ),
                    "Serialize" => emit(
                        RuleId::SecretSerialize,
                        t.line,
                        format!(
                            "secret type `{type_name}` derives Serialize; justify with a \
                             `lint:allow(secret-serialize)` or `lint:redact` marker"
                        ),
                    ),
                    _ => {}
                }
            }
        }
        j = open - 1;
    }
}

/// Detect `impl ... Debug/Display for <SecretType>` headers.
fn check_manual_impl(
    tokens: &[Token],
    impl_idx: usize,
    emit: &mut dyn FnMut(RuleId, usize, String),
) {
    let mut trait_name: Option<&str> = None;
    let mut i = impl_idx + 1;
    // Scan the impl header up to its `{` (or a `;`/end) — small window.
    while i < tokens.len() && i < impl_idx + 64 {
        let t = &tokens[i];
        if t.is_punct('{') || t.is_punct(';') {
            return;
        }
        if t.is_ident("Debug") || t.is_ident("Display") {
            trait_name = Some(if t.text == "Debug" { "Debug" } else { "Display" });
        } else if t.is_ident("for") && trait_name.is_some() {
            // Last path segment after `for` is the implementing type.
            let mut name: Option<&Token> = None;
            let mut k = i + 1;
            while k < tokens.len() {
                let n = &tokens[k];
                if n.kind == TokKind::Ident {
                    name = Some(n);
                } else if !(n.is_punct(':') || n.is_punct('<')) {
                    break;
                }
                if n.is_punct('<') {
                    break;
                }
                k += 1;
            }
            if let Some(n) = name {
                if is_secret_type(&n.text) {
                    let tr = trait_name.unwrap_or("Debug");
                    emit(
                        RuleId::SecretDebug,
                        tokens[impl_idx].line,
                        format!(
                            "manual `{tr}` impl for secret type `{}`; confirm it redacts \
                             (mark it `lint:redact`)",
                            n.text
                        ),
                    );
                }
            }
            return;
        }
        i += 1;
    }
}

fn secret_format_rule(
    tokens: &[Token],
    mask: &[bool],
    is_protocol: bool,
    emit: &mut dyn FnMut(RuleId, usize, String),
) {
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if mask[i] || t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let bang = tokens.get(i + 1).map(|n| n.is_punct('!')).unwrap_or(false);
        if !bang {
            i += 1;
            continue;
        }
        if t.text == "dbg" && is_protocol {
            emit(
                RuleId::SecretFormat,
                t.line,
                "`dbg!` in protocol code prints values (and is nondeterministic noise); \
                 remove it"
                    .to_string(),
            );
            i += 2;
            continue;
        }
        if !FORMAT_MACROS.contains(&t.text.as_str()) {
            i += 1;
            continue;
        }
        // Scan the macro's balanced argument list.
        let Some(open) = tokens.get(i + 2) else {
            i += 1;
            continue;
        };
        let (oc, cc) = match open.text.as_str() {
            "(" => ('(', ')'),
            "[" => ('[', ']'),
            "{" => ('{', '}'),
            _ => {
                i += 1;
                continue;
            }
        };
        let mut depth = 0usize;
        let mut j = i + 2;
        while j < tokens.len() {
            let a = &tokens[j];
            if a.is_punct(oc) {
                depth += 1;
            } else if a.is_punct(cc) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if a.kind == TokKind::Ident && is_secret_binding(&a.text) {
                emit(
                    RuleId::SecretFormat,
                    a.line,
                    format!(
                        "format/log macro interpolates secret-named binding `{}`",
                        a.text
                    ),
                );
            } else if a.kind == TokKind::Str {
                for cap in inline_captures(&a.text) {
                    if is_secret_binding(&cap) {
                        emit(
                            RuleId::SecretFormat,
                            a.line,
                            format!(
                                "format string captures secret-named binding `{{{cap}}}`"
                            ),
                        );
                    }
                }
            }
            j += 1;
        }
        i = j + 1;
    }
}

/// Extract inline capture names from a format string: `{name}`, `{name:?}`.
fn inline_captures(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            if bytes.get(i + 1) == Some(&b'{') {
                i += 2; // escaped `{{`
                continue;
            }
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != b'}' && bytes[j] != b':' {
                j += 1;
            }
            let name = &s[i + 1..j];
            if !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_')
                && !name.chars().next().map(|c| c.is_ascii_digit()).unwrap_or(true)
            {
                out.push(name.to_string());
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

fn unsafe_rule(
    tokens: &[Token],
    meta: &FileMeta,
    emit: &mut dyn FnMut(RuleId, usize, String),
) {
    for t in tokens {
        if t.is_ident("unsafe") {
            emit(
                RuleId::UnsafePolicy,
                t.line,
                "`unsafe` is forbidden workspace-wide (shims excluded)".to_string(),
            );
        }
    }
    if meta.is_crate_root && !has_forbid_unsafe(tokens) {
        emit(
            RuleId::UnsafePolicy,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }
}

/// True if the token stream contains `#![forbid(unsafe_code)]` (possibly
/// with other lints in the same group).
fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("forbid")
            && i >= 3
            && tokens[i - 1].is_punct('[')
            && tokens[i - 2].is_punct('!')
            && tokens[i - 3].is_punct('#')
        {
            // Scan the group for `unsafe_code`.
            for n in tokens.iter().skip(i + 1) {
                if n.is_punct(']') {
                    break;
                }
                if n.is_ident("unsafe_code") {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LintConfig;

    fn protocol_meta() -> FileMeta {
        FileMeta {
            rel_path: "crates/core/src/x.rs".to_string(),
            crate_name: Some("core".to_string()),
            is_protocol: true,
            is_transcript: false,
            is_crate_root: false,
        }
    }

    fn lint(meta: &FileMeta, src: &str) -> Vec<Finding> {
        lint_source(meta, src, &LintConfig::default())
    }

    #[test]
    fn unwrap_flagged_in_protocol_code() {
        let f = lint(&protocol_meta(), "fn f() { let x = y.unwrap(); }");
        assert!(f.iter().any(|f| f.rule == RuleId::Panic));
    }

    #[test]
    fn unwrap_in_test_mod_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { y.unwrap(); panic!(); }\n}\n";
        let f = lint(&protocol_meta(), src);
        assert!(f.iter().all(|f| f.rule != RuleId::Panic), "{f:?}");
    }

    #[test]
    fn unwrap_in_test_fn_ignored_but_not_neighbors() {
        let src = "#[test]\nfn t() { y.unwrap(); }\nfn prod() { z.expect(\"x\"); }\n";
        let f = lint(&protocol_meta(), src);
        let panics: Vec<_> = f.iter().filter(|f| f.rule == RuleId::Panic).collect();
        assert_eq!(panics.len(), 1);
        assert_eq!(panics[0].line, 3);
    }

    #[test]
    fn unwrap_or_else_not_flagged() {
        let f = lint(&protocol_meta(), "fn f() { y.unwrap_or_else(|e| e.into_inner()); }");
        assert!(f.iter().all(|f| f.rule != RuleId::Panic));
    }

    #[test]
    fn allow_with_justification_suppresses() {
        let src = "fn f() { y.expect(\"x\"); } // lint:allow(panic): invariant documented\n";
        let f = lint(&protocol_meta(), src);
        assert!(f.iter().all(|f| f.rule != RuleId::Panic), "{f:?}");
        assert!(f.iter().all(|f| f.rule != RuleId::UnusedAllow));
    }

    #[test]
    fn indexing_is_warn_level_finding() {
        let f = lint(&protocol_meta(), "fn f(v: &[u8]) -> u8 { v[0] }");
        assert!(f.iter().any(|f| f.rule == RuleId::Index));
        // Array type syntax and attribute brackets are not index expressions.
        let f = lint(&protocol_meta(), "#[derive(Clone)]\nstruct A { x: [u8; 4] }");
        assert!(f.iter().all(|f| f.rule != RuleId::Index), "{f:?}");
    }

    #[test]
    fn determinism_rule_only_in_transcript_modules() {
        let src = "use std::collections::HashMap;\nfn f() { let t = std::time::Instant::now(); }";
        let f = lint(&protocol_meta(), src);
        assert!(f.iter().all(|f| f.rule != RuleId::Determinism));
        let mut meta = protocol_meta();
        meta.is_transcript = true;
        let f = lint(&meta, src);
        assert!(f.iter().filter(|f| f.rule == RuleId::Determinism).count() >= 2);
    }

    #[test]
    fn secret_derive_debug_flagged() {
        let src = "#[derive(Debug, Clone)]\npub struct SecretKeyShare { v: u64 }";
        let f = lint(&protocol_meta(), src);
        assert!(f.iter().any(|f| f.rule == RuleId::SecretDebug));
    }

    #[test]
    fn secret_derive_with_redact_marker_ok() {
        let src = "// lint:redact: value field is skipped by the manual impl\n#[derive(Clone, Serialize)]\npub struct SecretKeyShare { v: u64 }";
        let f = lint(&protocol_meta(), src);
        assert!(f.iter().all(|f| f.rule != RuleId::SecretSerialize), "{f:?}");
    }

    #[test]
    fn manual_debug_impl_flagged() {
        let src = "impl<F> fmt::Debug for KeyShare<F> { }";
        let f = lint(&protocol_meta(), src);
        assert!(f.iter().any(|f| f.rule == RuleId::SecretDebug));
        // Non-secret type is fine.
        let f = lint(&protocol_meta(), "impl fmt::Debug for Board { }");
        assert!(f.iter().all(|f| f.rule != RuleId::SecretDebug));
    }

    #[test]
    fn format_interpolation_of_secret_flagged() {
        let f = lint(&protocol_meta(), "fn f() { println!(\"{:?}\", sk_share); }");
        assert!(f.iter().any(|f| f.rule == RuleId::SecretFormat));
        let f = lint(&protocol_meta(), "fn f() { let m = format!(\"share {sk}\"); }");
        assert!(f.iter().any(|f| f.rule == RuleId::SecretFormat));
        let f = lint(&protocol_meta(), "fn f() { println!(\"{} rounds\", rounds); }");
        assert!(f.iter().all(|f| f.rule != RuleId::SecretFormat));
    }

    #[test]
    fn unsafe_token_flagged_and_missing_forbid() {
        let mut meta = protocol_meta();
        meta.is_crate_root = true;
        let f = lint(&meta, "pub fn f() { }");
        assert!(f.iter().any(|f| f.rule == RuleId::UnsafePolicy && f.line == 1));
        let f = lint(
            &meta,
            "#![forbid(unsafe_code)]\npub fn f() { unsafe { std::hint::unreachable_unchecked() } }",
        );
        let v: Vec<_> = f.iter().filter(|f| f.rule == RuleId::UnsafePolicy).collect();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn forbid_in_combined_attr_recognized() {
        let mut meta = protocol_meta();
        meta.is_crate_root = true;
        let f = lint(&meta, "#![forbid(unsafe_code, missing_docs)]\npub fn f() {}");
        assert!(f.iter().all(|f| f.rule != RuleId::UnsafePolicy));
    }

    #[test]
    fn panic_macro_in_string_not_flagged() {
        let f = lint(&protocol_meta(), "fn f() { let s = \"don't panic!\"; }");
        assert!(f.iter().all(|f| f.rule != RuleId::Panic));
    }
}
