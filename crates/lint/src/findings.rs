//! Finding type and report aggregation.

use crate::config::{Level, LintConfig, RuleId};

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path relative to the lint root, with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule that fired.
    pub rule: RuleId,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Render as `file:line: [rule] message`.
    pub fn render(&self, cfg: &LintConfig) -> String {
        let level = match cfg.level(self.rule) {
            Level::Deny => "error",
            Level::Warn => "warning",
            Level::Allow => "allowed",
        };
        format!(
            "{level}: {}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// All findings from one run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings in file/line order.
    pub findings: Vec<Finding>,
    /// Number of files analyzed.
    pub files_checked: usize,
}

impl Report {
    /// True if any finding's rule is at `Deny` level — the run should fail.
    pub fn has_denials(&self, cfg: &LintConfig) -> bool {
        self.findings.iter().any(|f| cfg.level(f.rule) == Level::Deny)
    }

    /// Count findings at the given level.
    pub fn count_at(&self, cfg: &LintConfig, level: Level) -> usize {
        self.findings.iter().filter(|f| cfg.level(f.rule) == level).count()
    }
}
