//! Finding type, stable fingerprints, and report aggregation.

use crate::config::{Level, LintConfig, RuleId};

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path relative to the lint root, with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule that fired.
    pub rule: RuleId,
    /// Human-readable explanation.
    pub message: String,
    /// Stable fingerprint (`rule|file|message|occurrence` FNV-1a hex),
    /// assigned once per run by [`Report::assign_ids`]. Line numbers are
    /// deliberately excluded so unrelated edits above a finding don't
    /// churn the baseline.
    pub id: String,
    /// True if the finding matched a baseline entry: still reported, but
    /// it no longer fails the run.
    pub baselined: bool,
}

impl Finding {
    /// Construct a finding; the fingerprint is assigned later, report-wide.
    pub fn new(
        file: impl Into<String>,
        line: usize,
        rule: RuleId,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            file: file.into(),
            line,
            rule,
            message: message.into(),
            id: String::new(),
            baselined: false,
        }
    }

    /// Render as `level: file:line: [rule] message`.
    pub fn render(&self, cfg: &LintConfig) -> String {
        let level = match cfg.level(self.rule) {
            Level::Deny => "error",
            Level::Warn => "warning",
            Level::Allow => "allowed",
        };
        let suffix = if self.baselined { " (baselined)" } else { "" };
        format!(
            "{level}: {}:{}: [{}] {}{suffix}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// FNV-1a 64-bit hash, the workhorse of the stable finding fingerprints.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// All findings from one run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings in file/line order.
    pub findings: Vec<Finding>,
    /// Number of files analyzed.
    pub files_checked: usize,
}

impl Report {
    /// Assign stable fingerprints: FNV-1a over `rule|file|message|k` where
    /// `k` is the occurrence index among findings sharing the same
    /// rule/file/message (in line order), so duplicated sites stay
    /// distinguishable without depending on line numbers.
    pub fn assign_ids(&mut self) {
        use std::collections::BTreeMap;
        let mut seen: BTreeMap<(RuleId, String, String), usize> = BTreeMap::new();
        // `findings` is sorted by (file, line, rule) before this is called,
        // so occurrence indices are deterministic.
        for f in &mut self.findings {
            let key = (f.rule, f.file.clone(), f.message.clone());
            let k = seen.entry(key).or_insert(0);
            let raw = format!("{}|{}|{}|{}", f.rule.name(), f.file, f.message, *k);
            f.id = format!("{:016x}", fnv1a(raw.as_bytes()));
            *k += 1;
        }
    }

    /// True if any non-baselined finding's rule is at `Deny` level — the
    /// run should fail.
    pub fn has_denials(&self, cfg: &LintConfig) -> bool {
        self.findings
            .iter()
            .any(|f| !f.baselined && cfg.level(f.rule) == Level::Deny)
    }

    /// Count non-baselined findings at the given level.
    pub fn count_at(&self, cfg: &LintConfig, level: Level) -> usize {
        self.findings
            .iter()
            .filter(|f| !f.baselined && cfg.level(f.rule) == level)
            .count()
    }

    /// Count findings suppressed by the baseline.
    pub fn count_baselined(&self) -> usize {
        self.findings.iter().filter(|f| f.baselined).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_disambiguate_duplicates() {
        let mut r = Report::default();
        r.findings.push(Finding::new("a.rs", 3, RuleId::Panic, "same msg"));
        r.findings.push(Finding::new("a.rs", 9, RuleId::Panic, "same msg"));
        r.assign_ids();
        assert_ne!(r.findings[0].id, r.findings[1].id);
        let first = r.findings[0].id.clone();
        // Re-assigning yields the same ids: pure function of content.
        r.assign_ids();
        assert_eq!(r.findings[0].id, first);
        // Line numbers do not participate.
        let mut moved = Report::default();
        moved.findings.push(Finding::new("a.rs", 100, RuleId::Panic, "same msg"));
        moved.assign_ids();
        assert_eq!(moved.findings[0].id, first);
    }

    #[test]
    fn baselined_findings_do_not_deny() {
        let cfg = LintConfig::default();
        let mut r = Report::default();
        r.findings.push(Finding::new("a.rs", 1, RuleId::Panic, "m"));
        assert!(r.has_denials(&cfg));
        r.findings[0].baselined = true;
        assert!(!r.has_denials(&cfg));
        assert_eq!(r.count_at(&cfg, Level::Deny), 0);
        assert_eq!(r.count_baselined(), 1);
    }
}
