//! Board-protocol discipline checks over `core`'s posting call sites.
//!
//! PR 6 made three conventions load-bearing for transcript byte-identity
//! across worker counts; this pass checks each intraprocedurally:
//!
//! 1. **Owner-only posting** (`unguarded-post`): the ownership flag of a
//!    `ShardedBoard::post`/`PostBuffer::record` call must be derived from
//!    `RolePartition::owns(..)`/`is_leader()`/`is_solo()` — directly in
//!    the argument, through a local binding whose initializer contains the
//!    test, or through a parameter (the caller's site is checked at the
//!    caller). Raw `BulletinBoard::post` calls in `core` bypass the
//!    sharded position accounting entirely and are flagged unless
//!    explicitly allowed.
//! 2. **Round-barrier ordering** (`round-discipline`): raw-board
//!    `advance_round()` only on leader/solo-guarded paths (the round tick
//!    is the YOSO handoff — two workers advancing double-ticks the
//!    clock), and no `postings*()` reads before the first barrier call in
//!    functions that synchronize on one.
//! 3. **Per-item child-seed hygiene** (`seed-hygiene`): inside an
//!    ownership-guarded branch (`if owns(i) { .. }`) the phase RNG may
//!    only be used to draw child seeds (`rng.next_u64()`); any other draw
//!    executes only on owned items, making the stream depend on which
//!    items this worker owns and desynchronizing the transcript between
//!    worker counts. Replicated (unconditional) draws are deterministic
//!    everywhere and stay exempt.

use std::collections::BTreeSet;

use crate::config::RuleId;
use crate::lexer::{TokKind, Token};
use crate::parse::{match_delim, split_args, FnItem, Span};

/// Identifiers that prove an ownership decision.
const OWNERSHIP_TESTS: [&str; 3] = ["owns", "is_leader", "is_solo"];

/// Barrier calls a read may legitimately follow.
const BARRIERS: [&str; 5] =
    ["wait_round_at_least", "wait_len_at_least", "advance_round", "finish", "barrier"];

/// Run the protocol-discipline pass over every parsed function.
pub fn protocol_pass(
    tokens: &[Token],
    fns: &[FnItem],
    mask: &[bool],
    emit: &mut dyn FnMut(RuleId, usize, String),
) {
    let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
    for f in fns {
        if mask.get(f.fn_tok).copied().unwrap_or(false) {
            continue;
        }
        let mut dedup = |rule: RuleId, line: usize, msg: String| {
            if seen.insert((line, msg.clone())) {
                emit(rule, line, msg);
            }
        };
        check_posts(tokens, f, &mut dedup);
        check_rounds(tokens, f, &mut dedup);
        check_seeds(tokens, f, &mut dedup);
    }
}

/// What a method receiver resolves to, by declared type, initializer, or
/// naming convention.
#[derive(Debug, PartialEq)]
enum Receiver {
    /// `ShardedBoard` or the internal `PostBuffer` — the owner-only API.
    Sharded,
    /// A raw `BulletinBoard` — posts bypass sharded accounting.
    Raw,
    /// `self` or anything else we cannot resolve.
    Unknown,
}

fn classify_receiver(tokens: &[Token], f: &FnItem, dot: usize) -> Receiver {
    // Base identifier of the chain `a.b.c.` ending at `dot`.
    let mut k = dot;
    let mut chain: Vec<&str> = Vec::new();
    while k > 0 && tokens[k - 1].kind == TokKind::Ident {
        chain.push(tokens[k - 1].text.as_str());
        if k >= 2 && tokens[k - 2].is_punct('.') {
            k -= 2;
        } else {
            break;
        }
    }
    let Some(&base) = chain.last() else { return Receiver::Unknown };
    if base == "self" {
        // `self.board.post(..)` inside the board wrapper's own impl: the
        // wrapper *is* the accounting layer, its internals are exempt.
        return Receiver::Unknown;
    }
    let ty = f.binding_type(base, dot);
    if ty.iter().any(|t| t == "ShardedBoard" || t == "PostBuffer") {
        return Receiver::Sharded;
    }
    if ty.iter().any(|t| t == "BulletinBoard") {
        return Receiver::Raw;
    }
    if let Some(init) = f.binding_init(base, dot) {
        let has = |name: &str| tokens[init.0..init.1].iter().any(|t| t.is_ident(name));
        if has("ShardedBoard") || has("PostBuffer") {
            return Receiver::Sharded;
        }
        if has("BulletinBoard") {
            return Receiver::Raw;
        }
    }
    match base {
        "sb" | "posts" => Receiver::Sharded,
        "board" => Receiver::Raw,
        _ => Receiver::Unknown,
    }
}

/// True if the expression span proves an ownership decision: it mentions
/// an ownership test directly, or only mentions bindings/parameters that
/// trace back to one.
fn ownership_derived(tokens: &[Token], f: &FnItem, span: Span) -> bool {
    let mut saw_ident = false;
    for i in span.0..span.1.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if OWNERSHIP_TESTS.contains(&t.text.as_str()) {
            return true;
        }
        saw_ident = true;
        // One level of indirection through a local binding.
        if let Some(init) = f.binding_init(&t.text, i) {
            if tokens[init.0..init.1]
                .iter()
                .any(|x| OWNERSHIP_TESTS.contains(&x.text.as_str()))
            {
                return true;
            }
            continue;
        }
        // A parameter: the caller decided ownership; its site is checked
        // at the caller, so trust it here.
        if f.params.iter().any(|p| p.name == t.text) {
            return true;
        }
    }
    // Literal flags (`true`, handled above as ident... `true` lexes as
    // ident) — a bare literal with no ownership pedigree fails the check.
    let _ = saw_ident;
    false
}

fn check_posts(tokens: &[Token], f: &FnItem, emit: &mut dyn FnMut(RuleId, usize, String)) {
    let body = f.body;
    let mut i = body.0;
    while i < body.1.min(tokens.len()) {
        let t = &tokens[i];
        let is_call = t.kind == TokKind::Ident
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false);
        if !is_call {
            i += 1;
            continue;
        }
        let is_post =
            matches!(t.text.as_str(), "post" | "post_batch" | "post_records" | "record");
        if !is_post {
            i += 1;
            continue;
        }
        let recv = classify_receiver(tokens, f, i - 1);
        let close = match_delim(tokens, i + 1);
        match recv {
            Receiver::Sharded => {
                // `record`'s and `post`'s first argument is the ownership
                // flag; `post_batch`/`post_records` are flush paths whose
                // records carried their flags at `record` time.
                if matches!(t.text.as_str(), "post" | "record") {
                    let args = split_args(tokens, (i + 2, close));
                    let guarded = match args.first() {
                        Some(&first) => {
                            ownership_derived(tokens, f, first)
                                // A post already dominated by an ownership
                                // guard (`if owned { sb.post(..) }`) is
                                // disciplined regardless of its flag expr.
                                || f.guarded_by(i, |cond| {
                                    ownership_derived(tokens, f, cond)
                                })
                        }
                        None => false,
                    };
                    if !guarded {
                        emit(
                            RuleId::UnguardedPost,
                            t.line,
                            format!(
                                "`.{}(..)` ownership flag is not derived from \
                                 owns()/is_leader()/is_solo(); non-owners posting \
                                 desynchronizes the sharded transcript",
                                t.text
                            ),
                        );
                    }
                }
            }
            Receiver::Raw => {
                if t.text == "post" {
                    emit(
                        RuleId::UnguardedPost,
                        t.line,
                        "raw `BulletinBoard::post` in core bypasses ShardedBoard \
                         ownership accounting; post through the sharded wrapper"
                            .to_string(),
                    );
                }
            }
            Receiver::Unknown => {}
        }
        i = close.min(body.1) + 1;
    }
}

fn check_rounds(tokens: &[Token], f: &FnItem, emit: &mut dyn FnMut(RuleId, usize, String)) {
    let body = f.body;
    // First barrier position in the fn, if any.
    let first_barrier = (body.0..body.1.min(tokens.len()))
        .find(|&i| BARRIERS.contains(&tokens[i].text.as_str()) && tokens[i].kind == TokKind::Ident);
    let mut i = body.0;
    while i < body.1.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind != TokKind::Ident || i == 0 || !tokens[i - 1].is_punct('.') {
            i += 1;
            continue;
        }
        if t.text == "advance_round" {
            let recv = classify_receiver(tokens, f, i - 1);
            let in_wrapper_chain = i >= 3
                && tokens[i - 2].is_ident("board")
                && tokens[i - 3].is_punct('.')
                && i >= 4
                && tokens[i - 4].is_ident("self");
            if recv == Receiver::Raw || in_wrapper_chain {
                let guarded = f.guarded_by(i, |cond| {
                    tokens[cond.0..cond.1].iter().any(|x| {
                        x.is_ident("is_leader") || x.is_ident("is_solo")
                    })
                });
                if !guarded {
                    emit(
                        RuleId::RoundDiscipline,
                        t.line,
                        "raw `advance_round()` outside an is_leader()/is_solo() guard: \
                         every worker would tick the round clock"
                            .to_string(),
                    );
                }
            }
        } else if matches!(t.text.as_str(), "postings" | "postings_in_round") {
            // Only meaningful in functions that synchronize on a barrier
            // at all; pure observers (stats, dumps) are exempt.
            if let Some(b) = first_barrier {
                if i < b {
                    emit(
                        RuleId::RoundDiscipline,
                        t.line,
                        format!(
                            "`.{}()` read before the function's first round barrier; \
                             workers must wait_round_at_least before reading",
                            t.text
                        ),
                    );
                }
            }
        }
        i += 1;
    }
}

/// True if a guard condition is an ownership decision: it mentions an
/// ownership test directly, a binding initialized from one, or a
/// parameter *named* like an ownership flag. Unlike [`ownership_derived`]
/// this does not trust arbitrary parameters — `if phase == 0` is not an
/// ownership decision just because `phase` is a parameter.
fn ownership_cond(tokens: &[Token], f: &FnItem, span: Span) -> bool {
    for i in span.0..span.1.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if OWNERSHIP_TESTS.contains(&t.text.as_str()) {
            return true;
        }
        if let Some(init) = f.binding_init(&t.text, i) {
            if tokens[init.0..init.1]
                .iter()
                .any(|x| OWNERSHIP_TESTS.contains(&x.text.as_str()))
            {
                return true;
            }
            continue;
        }
        if f.params.iter().any(|p| p.name == t.text)
            && (t.text.contains("own") || t.text.contains("leader") || t.text.contains("solo"))
        {
            return true;
        }
    }
    false
}

fn check_seeds(tokens: &[Token], f: &FnItem, emit: &mut dyn FnMut(RuleId, usize, String)) {
    // RNG bindings: parameters typed `*Rng*` or named `rng`.
    let mut rngs: BTreeSet<&str> = BTreeSet::new();
    for p in &f.params {
        if p.name == "rng" || p.ty.iter().any(|t| t.contains("Rng")) {
            rngs.insert(p.name.as_str());
        }
    }
    if rngs.is_empty() {
        return;
    }
    // A draw that runs only when this worker owns the item advances the
    // RNG a worker-dependent number of times; a replicated draw outside
    // the guard is deterministic at every worker count, so only the
    // guarded bodies are scanned.
    for g in &f.guards {
        if !ownership_cond(tokens, f, g.cond) {
            continue;
        }
        let mut i = g.body.0;
        while i < g.body.1.min(tokens.len()) {
            let t = &tokens[i];
            if t.kind == TokKind::Ident && rngs.contains(t.text.as_str()) {
                // Preceded by `.`: a field named like the rng, not the rng.
                if i > 0 && tokens[i - 1].is_punct('.') {
                    i += 1;
                    continue;
                }
                let is_child_seed = tokens.get(i + 1).map(|n| n.is_punct('.')).unwrap_or(false)
                    && tokens.get(i + 2).map(|n| n.is_ident("next_u64")).unwrap_or(false);
                if !is_child_seed {
                    emit(
                        RuleId::SeedHygiene,
                        t.line,
                        format!(
                            "phase RNG `{}` drawn inside an ownership-guarded branch; \
                             draw a per-item child seed before the guard \
                             (`StdRng::seed_from_u64({}.next_u64())`) so the stream does \
                             not depend on which items this worker owns",
                            t.text, t.text
                        ),
                    );
                }
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn run(src: &str) -> Vec<(RuleId, usize, String)> {
        let lexed = lex(src);
        let fns = parse(&lexed.tokens);
        let mask = vec![false; lexed.tokens.len()];
        let mut out = Vec::new();
        protocol_pass(&lexed.tokens, &fns, &mask, &mut |r, l, m| out.push((r, l, m)));
        out
    }

    #[test]
    fn owned_flag_from_partition_is_clean() {
        let f = run(
            "fn f(cfg: &Cfg, sb: &mut ShardedBoard) { for i in 0..n { \
               let owned = cfg.partition.owns(i); \
               sb.post(owned, role(i), msg, phase, 1); } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn direct_guard_expression_is_clean() {
        let f = run("fn f(sb: &mut ShardedBoard) { sb.post(sb.is_leader(), r, m, p, 1); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn parameter_flag_is_trusted() {
        let f = run("fn helper(sb: &mut ShardedBoard, owned: bool) { sb.post(owned, r, m, p, 1); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn bare_true_flag_is_flagged() {
        let f = run("fn f(sb: &mut ShardedBoard) { sb.post(true, r, m, p, 1); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].0, RuleId::UnguardedPost);
    }

    #[test]
    fn unrelated_binding_flag_is_flagged() {
        let f = run(
            "fn f(sb: &mut ShardedBoard) { let mine = i % 2 == 0; \
             sb.post(mine, r, m, p, 1); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn guard_dominated_post_is_clean() {
        let f = run(
            "fn f(cfg: &Cfg, sb: &mut ShardedBoard) { \
             if cfg.partition.owns(i) { sb.post(true, r, m, p, 1); } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn raw_board_post_is_flagged() {
        let f = run("fn f(board: &dyn Any) { board.post(r, m, p, 1); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("raw"));
    }

    #[test]
    fn self_board_post_is_wrapper_internal() {
        let f = run("fn flush(&mut self) { self.board.post(r, m, p, 1); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn nonleader_advance_round_flagged() {
        let f = run("fn f(board: &B) { board.advance_round(); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].0, RuleId::RoundDiscipline);
        let f = run("fn f(&self) { self.board.advance_round(); }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn guarded_advance_round_clean() {
        let f = run(
            "fn f(&self) { if self.partition.is_solo() { self.board.advance_round(); } \
             if self.is_leader() { self.board.advance_round(); } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn read_before_barrier_flagged() {
        let f = run(
            "fn f(board: &B) { let all = board.postings(); \
             board.wait_round_at_least(r, t); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("before"));
        // Read after the barrier is the disciplined order.
        let f = run(
            "fn f(board: &B) { board.wait_round_at_least(r, t); \
             let all = board.postings(); }",
        );
        assert!(f.is_empty(), "{f:?}");
        // Pure observers never synchronize; exempt.
        let f = run("fn stats(board: &B) { let all = board.postings(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn rng_draw_inside_ownership_guard_flagged() {
        let f = run(
            "fn f(rng: &mut R, cfg: &Cfg) { for i in 0..n { \
               if cfg.partition.owns(i) { let share = deal(rng, i); } } }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].0, RuleId::SeedHygiene);
        // Through a binding and through a flag-named parameter too.
        let f = run(
            "fn f(rng: &mut R, cfg: &Cfg) { for i in 0..n { \
               let owned = cfg.partition.owns(i); \
               if owned { let share = deal(rng, i); } } }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        let f = run("fn f(rng: &mut R, owned: bool) { if owned { deal(rng); } }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn replicated_draw_next_to_ownership_test_clean() {
        // The draw itself is unconditional — every worker advances the
        // stream identically even though the loop body tests ownership.
        let f = run(
            "fn f(rng: &mut R, cfg: &Cfg) { for i in 0..n { \
               let c = sample_committee(rng, label(i), n); \
               if cfg.partition.owns(i) { work(c); } } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn child_seed_draw_is_clean() {
        let f = run(
            "fn f(rng: &mut R, cfg: &Cfg) { for i in 0..n { \
               let mut mrng = StdRng::seed_from_u64(rng.next_u64()); \
               let owned = cfg.partition.owns(i); \
               if owned { work(&mut mrng); } } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unconditional_replicated_loop_exempt() {
        // Every worker runs the identical loop (replicated values): direct
        // rng use is deterministic across worker counts.
        let f = run(
            "fn f(rng: &mut R) { for i in 0..n { let x = deal(rng, i); } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
