//! Rule identifiers, severity levels, and the workspace policy tables
//! (protocol crates, transcript modules, secret-type registry).

use std::collections::BTreeMap;

/// Every rule the analyzer knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`
    /// in non-test code of a protocol crate.
    Panic,
    /// Slice/array indexing (`expr[...]`) in non-test code of a protocol
    /// crate. Defaults to warn: bounds are usually locally provable, but
    /// the sites should stay visible.
    Index,
    /// A secret-registry type derives or implements `Debug`/`Display`
    /// without a redaction marker.
    SecretDebug,
    /// A secret-registry type derives `Serialize` without a justification
    /// marker (secrets on the wire must be a deliberate act).
    SecretSerialize,
    /// A formatting/log macro interpolates a secret-named binding, or
    /// `dbg!` appears in protocol code.
    SecretFormat,
    /// Nondeterminism sources (`HashMap`, `std::time`, `thread_rng`,
    /// thread identity) in a transcript-affecting module.
    Determinism,
    /// Crate root missing `#![forbid(unsafe_code)]`, or an `unsafe` token
    /// anywhere outside the vendored shims.
    UnsafePolicy,
    /// A secret-tainted value reaches a sink (format macro, posting
    /// payload, serialization, raw-byte return) without passing through
    /// a sanctioned sanitizer (`encrypt*`/`share*`/`commit*` or a
    /// `lint:sanitize`-marked function).
    TaintFlow,
    /// A sharded-board posting whose ownership flag is not derived from
    /// a `RolePartition::owns`/`is_leader` guard, or a raw-board post
    /// bypassing the `ShardedBoard` position accounting in `core`.
    UnguardedPost,
    /// Round-barrier misuse: `advance_round` on a raw board outside a
    /// leader/solo guard, or a transcript read before a barrier.
    RoundDiscipline,
    /// The phase RNG is drawn directly inside an ownership-conditional
    /// item loop instead of through a per-item child seed.
    SeedHygiene,
    /// Malformed `lint:allow` marker: unknown rule or missing
    /// justification.
    BadAllow,
    /// A `lint:allow` marker that suppressed nothing.
    UnusedAllow,
}

/// Severity a rule runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Rule disabled.
    Allow,
    /// Finding reported; does not affect the exit code.
    Warn,
    /// Finding reported; any occurrence fails the run.
    Deny,
}

impl RuleId {
    /// All rules, in reporting order.
    pub const ALL: [RuleId; 13] = [
        RuleId::Panic,
        RuleId::Index,
        RuleId::SecretDebug,
        RuleId::SecretSerialize,
        RuleId::SecretFormat,
        RuleId::Determinism,
        RuleId::UnsafePolicy,
        RuleId::TaintFlow,
        RuleId::UnguardedPost,
        RuleId::RoundDiscipline,
        RuleId::SeedHygiene,
        RuleId::BadAllow,
        RuleId::UnusedAllow,
    ];

    /// Stable kebab-case name used in CLI flags and `lint:allow` markers.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::Panic => "panic",
            RuleId::Index => "index",
            RuleId::SecretDebug => "secret-debug",
            RuleId::SecretSerialize => "secret-serialize",
            RuleId::SecretFormat => "secret-format",
            RuleId::Determinism => "determinism",
            RuleId::UnsafePolicy => "unsafe-policy",
            RuleId::TaintFlow => "taint-flow",
            RuleId::UnguardedPost => "unguarded-post",
            RuleId::RoundDiscipline => "round-discipline",
            RuleId::SeedHygiene => "seed-hygiene",
            RuleId::BadAllow => "bad-allow",
            RuleId::UnusedAllow => "unused-allow",
        }
    }

    /// Parse a rule name as written in flags and allow markers.
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.name() == s)
    }

    /// Severity the rule runs at unless overridden on the command line.
    pub fn default_level(self) -> Level {
        match self {
            RuleId::Index | RuleId::UnusedAllow => Level::Warn,
            _ => Level::Deny,
        }
    }

    /// One-line description for `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::Panic => {
                "unwrap/expect/panic!/unreachable!/todo! in non-test protocol code"
            }
            RuleId::Index => "slice indexing in non-test protocol code",
            RuleId::SecretDebug => {
                "Debug/Display on a secret-registry type without a redaction marker"
            }
            RuleId::SecretSerialize => {
                "Serialize on a secret-registry type without a justification marker"
            }
            RuleId::SecretFormat => {
                "format/log macro interpolating a secret-named binding, or dbg!"
            }
            RuleId::Determinism => {
                "HashMap/HashSet, std::time, thread_rng or thread identity in a \
                 transcript-affecting module"
            }
            RuleId::UnsafePolicy => {
                "crate root missing #![forbid(unsafe_code)], or any unsafe token"
            }
            RuleId::TaintFlow => {
                "secret-tainted value reaching a sink without a sanctioned sanitizer"
            }
            RuleId::UnguardedPost => {
                "board posting whose ownership is not derived from owns()/is_leader()"
            }
            RuleId::RoundDiscipline => {
                "advance_round outside a leader/solo guard, or a read before a barrier"
            }
            RuleId::SeedHygiene => {
                "phase RNG drawn inside an ownership-conditional item loop"
            }
            RuleId::BadAllow => "lint:allow marker with unknown rule or empty justification",
            RuleId::UnusedAllow => "lint:allow marker that suppressed nothing",
        }
    }
}

/// Effective configuration for one run: per-rule severities.
#[derive(Debug, Clone)]
pub struct LintConfig {
    levels: BTreeMap<RuleId, Level>,
}

impl Default for LintConfig {
    fn default() -> Self {
        let levels = RuleId::ALL.iter().map(|&r| (r, r.default_level())).collect();
        LintConfig { levels }
    }
}

impl LintConfig {
    /// Override one rule's severity.
    pub fn set_level(&mut self, rule: RuleId, level: Level) {
        self.levels.insert(rule, level);
    }

    /// Severity `rule` runs at.
    pub fn level(&self, rule: RuleId) -> Level {
        self.levels.get(&rule).copied().unwrap_or_else(|| rule.default_level())
    }
}

/// Crates whose non-test code must be panic-free. These hold the protocol
/// logic whose abort-freedom the YOSO model depends on.
pub const PROTOCOL_CRATES: [&str; 5] = ["core", "the", "pss", "crypto", "sortition"];

/// Modules whose control flow feeds the bulletin-board transcript; any
/// nondeterminism here breaks the byte-identical-transcript guarantee.
pub const TRANSCRIPT_MODULES: [&str; 9] = [
    "crates/core/src/online.rs",
    "crates/core/src/offline.rs",
    // The distributed transform posts per-member slice records whose
    // order and values every worker must reproduce bit-for-bit.
    "crates/core/src/disttransform.rs",
    "crates/core/src/parallel.rs",
    "crates/field/src/ntt.rs",
    // The board transports carry every posting of the transcript:
    // iteration order or time-dependence here would desynchronize
    // backends that must produce byte-identical logs.
    "crates/yoso/src/board.rs",
    "crates/yoso/src/transport.rs",
    "crates/yoso/src/tcp.rs",
    "crates/yoso/src/frame.rs",
];

/// True if `type_name` names secret material per the registry.
///
/// The registry is pattern-based so newly added key types are covered by
/// default: `SecretKey*`, `*SecretKey`, `*KeyShare`/`KeyShare`,
/// `*KeyPair`, `Plaintext`, `Randomness`, `*Seed`, `ReshareMsg`,
/// `PackedShares`, `Tsk*`.
pub fn is_secret_type(type_name: &str) -> bool {
    type_name.contains("SecretKey")
        || type_name.ends_with("KeyShare")
        || type_name == "KeyShare"
        || type_name.ends_with("KeyPair")
        || type_name == "Plaintext"
        || type_name == "Randomness"
        || type_name.ends_with("Seed")
        || type_name == "ReshareMsg"
        || type_name == "PackedShares"
        || type_name.starts_with("Tsk")
}

/// True if `binding` names a secret-typed value per the naming convention
/// (used by the format-interpolation rule, which has no type information).
pub fn is_secret_binding(binding: &str) -> bool {
    matches!(
        binding,
        "sk" | "secret" | "plaintext" | "randomness" | "key_share" | "sk_share" | "secret_key"
    ) || binding.ends_with("_sk")
        || binding.starts_with("sk_")
        || binding.ends_with("_secret")
        || binding.starts_with("secret_")
}

/// Formatting/printing macros inspected by the secret-format rule.
pub const FORMAT_MACROS: [&str; 10] = [
    "println", "print", "eprintln", "eprint", "format", "format_args", "write", "writeln",
    "log", "panic",
];

/// Call-name prefixes the taint pass accepts as sanitizers: routing a
/// tainted value through one of these produces public material
/// (ciphertexts, shares, commitments). Extended per-file by
/// `lint:sanitize`-marked functions.
pub const SANITIZER_PREFIXES: [&str; 3] = ["encrypt", "share", "commit"];

/// Callee names the taint pass treats as serialization sinks when a
/// tainted value is the receiver or an argument.
pub const SERIALIZE_SINKS: [&str; 4] = ["serialize", "to_bytes", "to_writer", "encode"];

/// Identifiers that signal nondeterminism inside transcript modules.
pub const NONDET_IDENTS: [&str; 7] = [
    "HashMap",
    "HashSet",
    "hash_map",
    "thread_rng",
    "Instant",
    "SystemTime",
    "ThreadId",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.name()), Some(r));
        }
        assert_eq!(RuleId::parse("no-such-rule"), None);
    }

    #[test]
    fn secret_registry_matches() {
        for name in [
            "SecretKey",
            "SecretKeyShare",
            "PkeSecretKey",
            "KeyShare",
            "PaillierKeyShare",
            "PkeKeyPair",
            "Plaintext",
            "Randomness",
            "ReshareMsg",
            "PackedShares",
            "TskChain",
        ] {
            assert!(is_secret_type(name), "{name} should be secret");
        }
        for name in ["PublicKey", "Ciphertext", "Share", "Board", "KeyShareProof"] {
            assert!(!is_secret_type(name), "{name} should not be secret");
        }
    }

    #[test]
    fn secret_bindings() {
        for b in ["sk", "my_sk", "sk_share", "secret", "secret_scalar", "key_share"] {
            assert!(is_secret_binding(b), "{b}");
        }
        for b in ["pk", "mask", "skip", "risk", "shares"] {
            assert!(!is_secret_binding(b), "{b}");
        }
    }

    #[test]
    fn default_levels() {
        let cfg = LintConfig::default();
        assert_eq!(cfg.level(RuleId::Panic), Level::Deny);
        assert_eq!(cfg.level(RuleId::Index), Level::Warn);
        let mut cfg = cfg;
        cfg.set_level(RuleId::Index, Level::Deny);
        assert_eq!(cfg.level(RuleId::Index), Level::Deny);
    }
}
