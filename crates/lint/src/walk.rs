//! Workspace traversal and per-file classification.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::{PROTOCOL_CRATES, TRANSCRIPT_MODULES};
use crate::rules::FileMeta;

/// Directories never descended into: build output, vendored shims, test
/// and fixture trees (test code is exempt by design — the rules carve out
/// `#[cfg(test)]` for inline tests, and integration-test trees are skipped
/// wholesale), and the git store.
const SKIP_DIRS: [&str; 8] = [
    "target",
    "shims",
    ".git",
    "tests",
    "benches",
    "examples",
    "fixtures",
    "related",
];

/// Collect every lintable `.rs` file under `root`, classified.
pub fn collect(root: &Path) -> io::Result<Vec<(PathBuf, FileMeta)>> {
    let mut files = Vec::new();
    walk_dir(root, root, &mut files)?;
    files.sort_by(|a, b| a.0.cmp(&b.0));
    let metas = files
        .into_iter()
        .map(|(abs, rel)| {
            let meta = classify(&rel);
            (abs, meta)
        })
        .collect();
    Ok(metas)
}

fn walk_dir(
    root: &Path,
    dir: &Path,
    out: &mut Vec<(PathBuf, String)>,
) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk_dir(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((path, rel));
        }
    }
    Ok(())
}

/// Derive a [`FileMeta`] from a `/`-separated workspace-relative path.
pub fn classify(rel: &str) -> FileMeta {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = if parts.len() >= 2 && parts[0] == "crates" {
        Some(parts[1].to_string())
    } else {
        None
    };
    let is_protocol = crate_name
        .as_deref()
        .map(|c| PROTOCOL_CRATES.contains(&c))
        .unwrap_or(false);
    let is_transcript = TRANSCRIPT_MODULES.contains(&rel);
    // Crate roots: crates/<c>/src/lib.rs, crates/<c>/src/main.rs,
    // crates/<c>/src/bin/<b>.rs (each bin is its own crate), and the
    // umbrella src/lib.rs.
    let is_crate_root = matches!(
        parts.as_slice(),
        ["crates", _, "src", "lib.rs"]
            | ["crates", _, "src", "main.rs"]
            | ["crates", _, "src", "bin", _]
            | ["src", "lib.rs"]
    );
    FileMeta {
        rel_path: rel.to_string(),
        crate_name,
        is_protocol,
        is_transcript,
        is_crate_root,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_protocol_module() {
        let m = classify("crates/core/src/online.rs");
        assert_eq!(m.crate_name.as_deref(), Some("core"));
        assert!(m.is_protocol);
        assert!(m.is_transcript);
        assert!(!m.is_crate_root);
    }

    #[test]
    fn classify_roots() {
        assert!(classify("crates/pss/src/lib.rs").is_crate_root);
        assert!(classify("crates/cli/src/main.rs").is_crate_root);
        assert!(classify("crates/bench/src/bin/hotpath.rs").is_crate_root);
        assert!(classify("src/lib.rs").is_crate_root);
        assert!(!classify("crates/core/src/engine.rs").is_crate_root);
    }

    #[test]
    fn classify_non_protocol() {
        let m = classify("crates/bench/src/lib.rs");
        assert!(!m.is_protocol);
        let m = classify("crates/field/src/poly.rs");
        assert!(!m.is_protocol);
    }
}
