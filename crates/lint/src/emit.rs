//! Machine-readable report output: plain JSON and SARIF 2.1.0.
//!
//! SARIF output targets code-scanning consumers (GitHub's SARIF upload,
//! IDE viewers): one run, one driver, per-rule metadata from
//! [`RuleId::ALL`], results carrying the stable fingerprint under
//! `partialFingerprints` and baseline suppression as an `external`
//! suppression object.

use crate::baseline::escape;
use crate::config::{Level, LintConfig, RuleId};
use crate::findings::Report;

/// Version string embedded in tool metadata.
const TOOL_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Render the report as plain JSON.
pub fn to_json(report: &Report, cfg: &LintConfig) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_checked\": {},\n", report.files_checked));
    out.push_str(&format!(
        "  \"errors\": {},\n  \"warnings\": {},\n  \"baselined\": {},\n",
        report.count_at(cfg, Level::Deny),
        report.count_at(cfg, Level::Warn),
        report.count_baselined()
    ));
    out.push_str("  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let level = match cfg.level(f.rule) {
            Level::Deny => "error",
            Level::Warn => "warning",
            Level::Allow => "allowed",
        };
        let comma = if i + 1 < report.findings.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"id\": {}, \"rule\": {}, \"level\": {}, \"file\": {}, \"line\": {}, \
             \"message\": {}, \"baselined\": {}}}{comma}\n",
            escape(&f.id),
            escape(f.rule.name()),
            escape(level),
            escape(&f.file),
            f.line,
            escape(&f.message),
            f.baselined
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render the report as SARIF 2.1.0.
pub fn to_sarif(report: &Report, cfg: &LintConfig) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n",
    );
    // Tool + rule metadata.
    out.push_str(&format!(
        "      \"tool\": {{\n        \"driver\": {{\n          \"name\": \"yoso-lint\",\n          \
         \"version\": {},\n          \"informationUri\": \
         \"https://example.invalid/yoso-pss\",\n          \"rules\": [\n",
        escape(TOOL_VERSION)
    ));
    for (i, r) in RuleId::ALL.iter().enumerate() {
        let comma = if i + 1 < RuleId::ALL.len() { "," } else { "" };
        out.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}, \
             \"defaultConfiguration\": {{\"level\": {}}}}}{comma}\n",
            escape(r.name()),
            escape(r.describe()),
            escape(sarif_level(r.default_level()))
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    // Results.
    out.push_str("      \"results\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let comma = if i + 1 < report.findings.len() { "," } else { "" };
        let suppressions = if f.baselined {
            ",\n          \"suppressions\": [{\"kind\": \"external\", \
             \"justification\": \"accepted in lint-baseline.json\"}]"
                .to_string()
        } else {
            String::new()
        };
        out.push_str(&format!(
            "        {{\n          \"ruleId\": {},\n          \"ruleIndex\": {},\n          \
             \"level\": {},\n          \"message\": {{\"text\": {}}},\n          \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}],\n          \
             \"partialFingerprints\": {{\"yosoLintFingerprint/v1\": {}}}{suppressions}\n        \
             }}{comma}\n",
            escape(f.rule.name()),
            RuleId::ALL.iter().position(|&r| r == f.rule).unwrap_or(0),
            escape(sarif_level(cfg.level(f.rule))),
            escape(&f.message),
            escape(&f.file),
            f.line,
            escape(&f.id),
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

fn sarif_level(level: Level) -> &'static str {
    match level {
        Level::Deny => "error",
        Level::Warn => "warning",
        Level::Allow => "none",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::Finding;

    fn sample() -> (Report, LintConfig) {
        let mut r = Report { files_checked: 2, ..Report::default() };
        r.findings.push(Finding::new(
            "crates/core/src/a.rs",
            7,
            RuleId::TaintFlow,
            "secret \"escaped\" here",
        ));
        r.findings.push(Finding::new("crates/core/src/b.rs", 1, RuleId::Index, "idx"));
        r.assign_ids();
        r.findings[1].baselined = true;
        (r, LintConfig::default())
    }

    #[test]
    fn json_is_parseable_and_complete() {
        let (r, cfg) = sample();
        let text = to_json(&r, &cfg);
        // The baseline module's JSON reader doubles as a validator here.
        let ok = crate::baseline::Baseline::parse(&text);
        // `findings` entries lack `id`? No — they carry ids; parse should
        // succeed structurally (it requires `findings` objects with ids).
        assert!(ok.is_ok(), "{ok:?}\n{text}");
        assert!(text.contains("\"rule\": \"taint-flow\""));
        assert!(text.contains("\\\"escaped\\\""));
        assert!(text.contains("\"baselined\": true"));
    }

    #[test]
    fn sarif_has_rules_results_and_suppressions() {
        let (r, cfg) = sample();
        let text = to_sarif(&r, &cfg);
        crate::baseline::validate_json(&text).expect("sarif must be well-formed JSON");
        assert!(text.contains("\"version\": \"2.1.0\""));
        // All rules present in driver metadata.
        for rule in RuleId::ALL {
            assert!(text.contains(&format!("\"id\": \"{}\"", rule.name())), "{}", rule.name());
        }
        assert!(text.contains("\"startLine\": 7"));
        assert!(text.contains("yosoLintFingerprint/v1"));
        assert!(text.contains("\"suppressions\""));
        // Exactly one suppressed result.
        assert_eq!(text.matches("\"suppressions\"").count(), 1);
    }
}
