//! Baseline handling: accepted pre-existing findings that should not
//! fail CI, keyed by stable fingerprint.
//!
//! `lint-baseline.json` format (written by `--write-baseline`, loaded
//! automatically when present at the lint root):
//!
//! ```json
//! {
//!   "version": 1,
//!   "findings": [
//!     {"id": "a1b2...", "rule": "unguarded-post", "file": "crates/...", "message": "..."}
//!   ]
//! }
//! ```
//!
//! Matching is by `id` alone — the rule/file/message fields are carried
//! for human review of the baseline file. Baseline entries that match no
//! current finding are *stale* and reported so the file can be pruned.
//!
//! The workspace builds offline without `serde`, so this module carries a
//! ~100-line recursive-descent JSON reader sufficient for the format
//! above (and strict enough to reject malformed files loudly instead of
//! silently baselining nothing).

use std::collections::BTreeSet;
use std::fmt;

use crate::config::{Level, LintConfig};
use crate::findings::Report;

/// One accepted finding.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    /// Stable fingerprint (matches [`crate::findings::Finding::id`]).
    pub id: String,
    /// Rule name at record time (informational).
    pub rule: String,
    /// File at record time (informational).
    pub file: String,
    /// Message at record time (informational).
    pub message: String,
}

/// A loaded baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    /// All accepted entries.
    pub entries: Vec<BaselineEntry>,
}

/// Baseline load/parse error with position context.
#[derive(Debug)]
pub struct BaselineError(pub String);

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid baseline: {}", self.0)
    }
}

impl Baseline {
    /// Parse a baseline file's JSON text.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let value = Json::parse(text).map_err(BaselineError)?;
        let Json::Object(top) = value else {
            return Err(BaselineError("top level must be an object".to_string()));
        };
        let findings = top
            .iter()
            .find(|(k, _)| k == "findings")
            .map(|(_, v)| v)
            .ok_or_else(|| BaselineError("missing `findings` array".to_string()))?;
        let Json::Array(items) = findings else {
            return Err(BaselineError("`findings` must be an array".to_string()));
        };
        let mut entries = Vec::new();
        for item in items {
            let Json::Object(fields) = item else {
                return Err(BaselineError("each finding must be an object".to_string()));
            };
            let get = |name: &str| -> String {
                fields
                    .iter()
                    .find(|(k, _)| k == name)
                    .and_then(|(_, v)| match v {
                        Json::String(s) => Some(s.clone()),
                        _ => None,
                    })
                    .unwrap_or_default()
            };
            let id = get("id");
            if id.is_empty() {
                return Err(BaselineError("finding entry missing `id`".to_string()));
            }
            entries.push(BaselineEntry {
                id,
                rule: get("rule"),
                file: get("file"),
                message: get("message"),
            });
        }
        Ok(Baseline { entries })
    }

    /// Mark report findings matching a baseline id; returns the stale
    /// entries (baselined ids that matched nothing this run).
    pub fn apply(&self, report: &mut Report) -> Vec<&BaselineEntry> {
        let mut matched: BTreeSet<&str> = BTreeSet::new();
        let ids: BTreeSet<&str> = self.entries.iter().map(|e| e.id.as_str()).collect();
        for f in &mut report.findings {
            if ids.contains(f.id.as_str()) {
                f.baselined = true;
                matched.insert(f.id.as_str());
            }
        }
        self.entries.iter().filter(|e| !matched.contains(e.id.as_str())).collect()
    }
}

/// Serialize the report's current **deny-level** findings as a baseline
/// file. Warn-level findings are not baselined: they never fail a run, so
/// freezing them would only hide drift.
pub fn render(report: &Report, cfg: &LintConfig) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [\n");
    let deny: Vec<_> = report
        .findings
        .iter()
        .filter(|f| cfg.level(f.rule) == Level::Deny)
        .collect();
    for (i, f) in deny.iter().enumerate() {
        let comma = if i + 1 < deny.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"id\": {}, \"rule\": {}, \"file\": {}, \"message\": {}}}{comma}\n",
            escape(&f.id),
            escape(f.rule.name()),
            escape(&f.file),
            escape(&f.message)
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validate that `text` is well-formed JSON (used by the test suite to
/// check the `--format json`/`--format sarif` emitters structurally).
pub fn validate_json(text: &str) -> Result<(), String> {
    Json::parse(text).map(|_| ())
}

/// JSON string-escape `s` (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value for the baseline format.
#[derive(Debug)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    /// Numbers, booleans and null — carried but unused by the baseline.
    Other,
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::String(s) => s,
                    _ => return Err(format!("object key must be a string at byte {pos}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::String(out));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = b
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                let cp = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {pos}")),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        // Copy the raw byte run up to the next quote or
                        // escape to keep UTF-8 sequences intact.
                        if c < 0x80 {
                            out.push(c as char);
                            *pos += 1;
                        } else {
                            let start = *pos;
                            while *pos < b.len() && b[*pos] >= 0x80 {
                                *pos += 1;
                            }
                            out.push_str(&String::from_utf8_lossy(&b[start..*pos]));
                        }
                    }
                }
            }
        }
        Some(_) => {
            // Number / true / false / null: consume the token.
            let start = *pos;
            while *pos < b.len()
                && !matches!(b[*pos], b',' | b'}' | b']' | b' ' | b'\t' | b'\r' | b'\n')
            {
                *pos += 1;
            }
            if *pos == start {
                return Err(format!("unexpected character at byte {pos}"));
            }
            Ok(Json::Other)
        }
        None => Err("unexpected end of input".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuleId;
    use crate::findings::Finding;

    #[test]
    fn parse_apply_and_stale() {
        let text = r#"{
          "version": 1,
          "findings": [
            {"id": "aaaa", "rule": "panic", "file": "a.rs", "message": "m1"},
            {"id": "bbbb", "rule": "panic", "file": "b.rs", "message": "m2"}
          ]
        }"#;
        let bl = Baseline::parse(text).expect("parse");
        assert_eq!(bl.entries.len(), 2);
        let mut report = Report::default();
        let mut f = Finding::new("a.rs", 1, RuleId::Panic, "m1");
        f.id = "aaaa".to_string();
        report.findings.push(f);
        let stale = bl.apply(&mut report);
        assert!(report.findings[0].baselined);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].id, "bbbb");
    }

    #[test]
    fn malformed_baseline_rejected() {
        assert!(Baseline::parse("[]").is_err());
        assert!(Baseline::parse("{\"findings\": 3}").is_err());
        assert!(Baseline::parse("{\"findings\": [{\"rule\": \"panic\"}]}").is_err());
        assert!(Baseline::parse("{\"findings\": []} trailing").is_err());
        assert!(Baseline::parse("{\"findings\": []}").is_ok());
    }

    #[test]
    fn render_round_trips() {
        let cfg = LintConfig::default();
        let mut report = Report::default();
        report
            .findings
            .push(Finding::new("a.rs", 3, RuleId::Panic, "uses \"quotes\" and \\ slashes"));
        report.findings.push(Finding::new("a.rs", 4, RuleId::Index, "warn level, excluded"));
        report.assign_ids();
        let text = render(&report, &cfg);
        let bl = Baseline::parse(&text).expect("round trip");
        assert_eq!(bl.entries.len(), 1);
        assert_eq!(bl.entries[0].id, report.findings[0].id);
        assert_eq!(bl.entries[0].message, "uses \"quotes\" and \\ slashes");
    }

    #[test]
    fn escape_handles_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }
}
