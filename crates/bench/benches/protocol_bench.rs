//! End-to-end protocol benchmarks: wall-clock per-phase throughput of
//! the packed protocol and the CDN baseline on the standard workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use yoso_bench::{gap_params, random_inputs, rng, workload};
use yoso_core::baseline::BaselineEngine;
use yoso_core::{Engine, ExecutionConfig, ProtocolParams};
use yoso_runtime::Adversary;

fn bench_full_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/full_run");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        let params = gap_params(n, 0.25);
        let circuit = workload(params.k, 2, 2);
        let mut r = rng(9);
        let inputs = random_inputs(&mut r, &circuit);
        group.throughput(Throughput::Elements(circuit.mul_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let engine = Engine::new(params, ExecutionConfig::sweep());
            b.iter(|| {
                let mut r = rng(10);
                engine.run(&mut r, &circuit, &inputs, &Adversary::none()).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_full_protocol_with_proofs(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/full_run_with_nizks");
    group.sample_size(10);
    for n in [8usize, 16] {
        let params = gap_params(n, 0.25);
        let circuit = workload(params.k, 2, 1);
        let mut r = rng(11);
        let inputs = random_inputs(&mut r, &circuit);
        group.throughput(Throughput::Elements(circuit.mul_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let engine = Engine::new(params, ExecutionConfig::default());
            b.iter(|| {
                let mut r = rng(12);
                engine.run(&mut r, &circuit, &inputs, &Adversary::none()).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol/baseline_run");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        let gap = gap_params(n, 0.25);
        let params = ProtocolParams::new(n, gap.t, 1).unwrap();
        let circuit = workload(gap.k, 2, 2);
        let mut r = rng(13);
        let inputs = random_inputs(&mut r, &circuit);
        group.throughput(Throughput::Elements(circuit.mul_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let engine = BaselineEngine::new(params, ExecutionConfig::sweep());
            b.iter(|| {
                let mut r = rng(14);
                engine.run(&mut r, &circuit, &inputs, &Adversary::none()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
        .sample_size(10)
        .without_plots();
    targets = bench_full_protocol, bench_full_protocol_with_proofs, bench_baseline
}
criterion_main!(benches);
