//! Microbenchmarks for packed Shamir sharing: dealing, reconstruction
//! and the multiplication-friendly public product, across committee
//! sizes and packing factors.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use yoso_field::{F61, PrimeField};
use yoso_pss_sharing::PackedSharing;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(2)
}

/// (n, k) pairs following the paper's regime k ≈ n·ε with ε = 0.25.
const CONFIGS: [(usize, usize); 4] = [(16, 4), (64, 16), (128, 32), (256, 64)];

fn bench_share(c: &mut Criterion) {
    let mut group = c.benchmark_group("pss/share");
    for (n, k) in CONFIGS {
        let mut r = rng();
        let scheme = PackedSharing::<F61>::new(n, k).unwrap();
        let secrets: Vec<F61> = (0..k).map(|_| F61::random(&mut r)).collect();
        let degree = n / 2 + k - 1;
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}k{k}")), &n, |b, _| {
            b.iter(|| scheme.share(&mut r, black_box(&secrets), degree).unwrap())
        });
    }
    group.finish();
}

fn bench_reconstruct(c: &mut Criterion) {
    let mut group = c.benchmark_group("pss/reconstruct");
    for (n, k) in CONFIGS {
        let mut r = rng();
        let scheme = PackedSharing::<F61>::new(n, k).unwrap();
        let secrets: Vec<F61> = (0..k).map(|_| F61::random(&mut r)).collect();
        let degree = n / 2 + k - 1;
        let shares = scheme.share(&mut r, &secrets, degree).unwrap();
        let subset: Vec<usize> = (0..=degree).collect();
        let selected = shares.select(&subset);
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}k{k}")), &n, |b, _| {
            b.iter(|| scheme.reconstruct(black_box(&selected), degree).unwrap())
        });
    }
    group.finish();
}

fn bench_mul_public(c: &mut Criterion) {
    let mut group = c.benchmark_group("pss/mul_public");
    for (n, k) in CONFIGS {
        let mut r = rng();
        let scheme = PackedSharing::<F61>::new(n, k).unwrap();
        let secrets: Vec<F61> = (0..k).map(|_| F61::random(&mut r)).collect();
        let public: Vec<F61> = (0..k).map(|_| F61::random(&mut r)).collect();
        let shares = scheme.share(&mut r, &secrets, n - k).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}k{k}")), &n, |b, _| {
            b.iter(|| scheme.mul_public(black_box(&public), black_box(&shares)).unwrap())
        });
    }
    group.finish();
}

/// The batch APIs used by the layer loop: dealing and opening a whole
/// layer of sharings against one warm set of domain caches.
fn bench_batch(c: &mut Criterion) {
    const ROWS: usize = 16;
    let mut group = c.benchmark_group("pss/batch16");
    for (n, k) in CONFIGS {
        let mut r = rng();
        let scheme = PackedSharing::<F61>::new(n, k).unwrap();
        let degree = n / 2 + k - 1;
        let secrets: Vec<Vec<F61>> = (0..ROWS)
            .map(|_| (0..k).map(|_| F61::random(&mut r)).collect())
            .collect();
        let subset: Vec<usize> = (0..=degree).collect();
        let batch: Vec<_> = scheme
            .share_batch(&mut r, &secrets, degree)
            .unwrap()
            .iter()
            .map(|s| s.select(&subset))
            .collect();
        group.throughput(Throughput::Elements((ROWS * k) as u64));
        group.bench_with_input(
            BenchmarkId::new("share", format!("n{n}k{k}")),
            &n,
            |b, _| b.iter(|| scheme.share_batch(&mut r, black_box(&secrets), degree).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("reconstruct", format!("n{n}k{k}")),
            &n,
            |b, _| b.iter(|| scheme.reconstruct_batch(black_box(&batch), degree).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
        .without_plots();
    targets = bench_share, bench_reconstruct, bench_mul_public, bench_batch
}
criterion_main!(benches);
