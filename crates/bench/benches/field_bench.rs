//! Microbenchmarks for the field substrate: `F_p` arithmetic,
//! polynomial evaluation, Lagrange interpolation and batch inversion.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use yoso_field::{lagrange, F61, Poly, PrimeField};

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(1)
}

fn bench_field_ops(c: &mut Criterion) {
    let mut r = rng();
    let a = F61::random(&mut r);
    let b = F61::random(&mut r);
    c.bench_function("f61/mul", |bench| bench.iter(|| black_box(a) * black_box(b)));
    c.bench_function("f61/add", |bench| bench.iter(|| black_box(a) + black_box(b)));
    c.bench_function("f61/inv", |bench| bench.iter(|| black_box(a).inv().unwrap()));
    c.bench_function("f61/pow", |bench| bench.iter(|| black_box(a).pow(black_box(0x1234_5678))));
}

fn bench_poly(c: &mut Criterion) {
    let mut r = rng();
    let mut group = c.benchmark_group("poly/eval");
    for degree in [15usize, 63, 255] {
        let p = Poly::<F61>::random(&mut r, degree);
        let x = F61::random(&mut r);
        group.bench_with_input(BenchmarkId::from_parameter(degree), &p, |bench, p| {
            bench.iter(|| p.eval(black_box(x)))
        });
    }
    group.finish();
}

fn bench_lagrange(c: &mut Criterion) {
    let mut r = rng();
    let mut group = c.benchmark_group("lagrange");
    for m in [16usize, 64, 256] {
        let xs: Vec<F61> = (1..=m as u64).map(F61::from_u64).collect();
        let ys: Vec<F61> = (0..m).map(|_| F61::random(&mut r)).collect();
        group.bench_with_input(BenchmarkId::new("interpolate", m), &m, |bench, _| {
            bench.iter(|| lagrange::interpolate(black_box(&xs), black_box(&ys)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("basis_at", m), &m, |bench, _| {
            bench.iter(|| lagrange::basis_at(black_box(&xs), F61::ZERO).unwrap())
        });
    }
    group.finish();
}

fn bench_batch_invert(c: &mut Criterion) {
    let mut r = rng();
    let vals: Vec<F61> = (0..256).map(|_| F61::random(&mut r)).collect();
    c.bench_function("lagrange/batch_invert/256", |bench| {
        bench.iter(|| lagrange::batch_invert(black_box(&vals)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
        .without_plots();
    targets = bench_field_ops, bench_poly, bench_lagrange, bench_batch_invert
}
criterion_main!(benches);
