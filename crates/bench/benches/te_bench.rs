//! Microbenchmarks for the two threshold-encryption instantiations:
//! the mock field scheme (simulation engine) and threshold Paillier
//! (faithful cryptography), plus the NIZK layer.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use yoso_bignum::Nat;
use yoso_field::{F61, PrimeField};
use yoso_the::mock::MockTe;
use yoso_the::nizk;
use yoso_the::paillier::{self, EncryptionContext, ThresholdPaillier};

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(3)
}

fn bench_mock(c: &mut Criterion) {
    let mut r = rng();
    let (pk, shares) = MockTe::<F61>::keygen(&mut r, 16, 7).unwrap();
    let m = F61::random(&mut r);
    let (ct, enc_r) = MockTe::encrypt(&mut r, &pk, m);
    c.bench_function("mock/encrypt", |b| {
        b.iter(|| MockTe::encrypt(&mut r, &pk, black_box(m)))
    });
    c.bench_function("mock/partial_decrypt", |b| {
        b.iter(|| MockTe::partial_decrypt(black_box(&shares[0]), black_box(&ct)))
    });
    let partials: Vec<_> = shares[..8].iter().map(|s| MockTe::partial_decrypt(s, &ct)).collect();
    c.bench_function("mock/combine_t8", |b| {
        b.iter(|| MockTe::combine(&pk, &ct, black_box(&partials)).unwrap())
    });
    let cts: Vec<_> = (0..64).map(|_| MockTe::encrypt(&mut r, &pk, m).0).collect();
    let coeffs: Vec<F61> = (0..64).map(|_| F61::random(&mut r)).collect();
    c.bench_function("mock/eval_64", |b| {
        b.iter(|| MockTe::eval(black_box(&cts), black_box(&coeffs)).unwrap())
    });
    c.bench_function("mock/nizk_enc_prove", |b| {
        b.iter(|| nizk::enc_proof(&mut r, &pk, &ct, m, enc_r))
    });
    let proof = nizk::enc_proof(&mut r, &pk, &ct, m, enc_r);
    c.bench_function("mock/nizk_enc_verify", |b| {
        b.iter(|| nizk::verify_enc_proof(&pk, &ct, black_box(&proof)))
    });
    c.bench_function("mock/reshare", |b| b.iter(|| MockTe::reshare(&mut r, &pk, &shares[0])));
}

fn bench_paillier(c: &mut Criterion) {
    let mut r = rng();
    // 256-bit modulus: fast enough to bench, same algebra as 2048-bit.
    let (pk, shares) = ThresholdPaillier::keygen(&mut r, 128, 4, 1).unwrap();
    let m = Nat::from(123_456_789u64);
    let (ct, _) = ThresholdPaillier::encrypt(&mut r, &pk, &m);
    c.bench_function("paillier256/encrypt", |b| {
        b.iter(|| ThresholdPaillier::encrypt(&mut r, &pk, black_box(&m)))
    });
    c.bench_function("paillier256/partial_decrypt", |b| {
        b.iter(|| ThresholdPaillier::partial_decrypt(&pk, black_box(&shares[0]), &ct))
    });
    let partials: Vec<_> =
        shares[..2].iter().map(|s| ThresholdPaillier::partial_decrypt(&pk, s, &ct)).collect();
    c.bench_function("paillier256/combine", |b| {
        b.iter(|| ThresholdPaillier::combine(&pk, black_box(&partials), &Nat::one()).unwrap())
    });
    let pd = ThresholdPaillier::partial_decrypt(&pk, &shares[0], &ct);
    c.bench_function("paillier256/pdec_prove", |b| {
        b.iter(|| paillier::nizk::prove_pdec(&mut r, &pk, &ct, &shares[0], &pd))
    });
    let proof = paillier::nizk::prove_pdec(&mut r, &pk, &ct, &shares[0], &pd);
    c.bench_function("paillier256/pdec_verify", |b| {
        b.iter(|| paillier::nizk::verify_pdec(&pk, &ct, &pd, black_box(&proof)))
    });
}

/// The fixed-base precomputation paths: per-epoch table build,
/// table-backed encryption, and the batch APIs that amortize table and
/// Montgomery-context setup across a committee's contributions.
fn bench_fixed_base(c: &mut Criterion) {
    let mut r = rng();
    let (pk, shares) = ThresholdPaillier::keygen(&mut r, 128, 4, 1).unwrap();
    let ctx = EncryptionContext::new(&mut r, &pk);
    let m = Nat::from(123_456_789u64);
    c.bench_function("paillier256/fb_context_build", |b| {
        b.iter(|| EncryptionContext::new(&mut r, &pk))
    });
    c.bench_function("paillier256/fb_encrypt", |b| {
        b.iter(|| ctx.encrypt(&mut r, &pk, black_box(&m)))
    });
    let ms: Vec<Nat> = (0..32).map(|_| Nat::random_below(&mut r, &pk.n_mod)).collect();
    c.bench_function("paillier256/fb_encrypt_batch32", |b| {
        b.iter(|| ctx.encrypt_batch(&mut r, &pk, black_box(&ms)))
    });
    let cts: Vec<_> =
        ms.iter().map(|m| ThresholdPaillier::encrypt(&mut r, &pk, m).0).collect();
    c.bench_function("paillier256/partial_decrypt_batch32", |b| {
        b.iter(|| ThresholdPaillier::partial_decrypt_batch(&pk, &shares[0], black_box(&cts)))
    });
    c.bench_function("paillier256/reshare_batch4", |b| {
        b.iter(|| ThresholdPaillier::reshare_batch(&mut r, &pk, black_box(&shares)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
        .without_plots();
    targets = bench_mock, bench_paillier, bench_fixed_base
}
criterion_main!(benches);
