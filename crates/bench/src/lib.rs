//! Shared helpers for the experiment harness.
//!
//! The binaries in `src/bin/` regenerate every quantitative artifact of
//! the paper (see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured records):
//!
//! | Binary | Experiment | Artifact |
//! |---|---|---|
//! | `table1` | E1 | Table 1 (§6 committee-size analysis) |
//! | `online_comm` | E2 | online elements/gate vs `n` — ours flat, baseline linear |
//! | `offline_comm` | E3 | offline elements/gate vs `n` — both linear |
//! | `improvement` | E4 | §1.1.2 improvement factors (28×, >1000×) |
//! | `failstop` | E5 | §5.4 crash-tolerance sweep |
//! | `sortition_mc` | E6 | Monte-Carlo validation of the §6 tail bounds |
//! | `god_attack` | E7 | GOD under every active-attack strategy |
//! | `it_comparison` | E9 | the gap in the information-theoretic setting (§7) |
//! | `ablation_packing` | A1 | packing factor `k` as the design dial |
//! | `ablation_nizk` | A2 | NIZK share of posted traffic |

#![forbid(unsafe_code)]

pub mod scale;

use rand::SeedableRng;

use yoso_circuit::{generators, Circuit};
use yoso_core::{Engine, ExecutionConfig, ProtocolParams};
use yoso_field::{F61, PrimeField};
use yoso_runtime::Adversary;

/// Deterministic RNG for experiments.
pub fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Derives the paper-recommended parameters for committee size `n` and
/// gap `epsilon`, panicking on infeasible combinations (experiment
/// configs are fixed).
pub fn gap_params(n: usize, epsilon: f64) -> ProtocolParams {
    ProtocolParams::from_gap(n, epsilon).expect("experiment parameters must be feasible")
}

/// The standard experiment workload: a wide layered circuit whose
/// width scales with the packing factor so each layer forms
/// `width / k` full batches (the paper's "circuit width `O(n)`"
/// assumption).
pub fn workload(k: usize, batches_per_layer: usize, depth: usize) -> Circuit<F61> {
    generators::wide_layered::<F61>(k * batches_per_layer, depth, 2)
        .expect("workload circuit builds")
}

/// Random inputs matching a circuit's input layout.
pub fn random_inputs<R: rand::Rng + ?Sized>(rng: &mut R, circuit: &Circuit<F61>) -> Vec<Vec<F61>> {
    circuit
        .inputs_per_client()
        .iter()
        .map(|wires| wires.iter().map(|_| F61::random(rng)).collect())
        .collect()
}

/// Runs the packed protocol on the standard workload and returns
/// `(online elements/gate, offline elements/gate)`.
pub fn measure_packed(
    seed: u64,
    params: ProtocolParams,
    batches_per_layer: usize,
    depth: usize,
) -> (f64, f64) {
    let mut r = rng(seed);
    let circuit = workload(params.k, batches_per_layer, depth);
    let inputs = random_inputs(&mut r, &circuit);
    let engine = Engine::new(params, ExecutionConfig::sweep());
    let run = engine
        .run(&mut r, &circuit, &inputs, &Adversary::none())
        .expect("experiment run succeeds");
    (run.online_elements_per_gate(), run.offline_elements_per_gate())
}

/// Runs the CDN baseline on the same workload and returns its online
/// elements/gate (multiplication traffic only, matching
/// [`measure_packed`]'s numerator).
pub fn measure_baseline(
    seed: u64,
    params: ProtocolParams,
    k_for_workload: usize,
    batches_per_layer: usize,
    depth: usize,
) -> f64 {
    let mut r = rng(seed);
    let circuit = workload(k_for_workload, batches_per_layer, depth);
    let inputs = random_inputs(&mut r, &circuit);
    let engine = yoso_core::baseline::BaselineEngine::new(params, ExecutionConfig::sweep());
    let run = engine
        .run(&mut r, &circuit, &inputs, &Adversary::none())
        .expect("baseline run succeeds");
    run.elements("online/mult") as f64 / run.mul_gates as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shapes() {
        let c = workload(3, 2, 2);
        assert_eq!(c.mul_count(), 12);
        assert_eq!(c.mul_depth(), 2);
    }

    #[test]
    fn measured_costs_are_positive_and_ordered() {
        let params = gap_params(12, 0.25);
        let (online, offline) = measure_packed(1, params, 2, 1);
        assert!(online > 0.0);
        assert!(offline > online, "offline {offline} should dominate online {online}");
    }
}
