//! Experiment E2: online communication per multiplication gate vs
//! committee size `n` — the paper's headline claim (Theorem 1): the
//! packed protocol's online cost is `O(1)` per gate, *independent of
//! n*, while the CDN baseline (Gentry et al. '21) pays `Θ(n)`.
//!
//! Both protocols run on the same wide layered workload (width scales
//! with the packing factor so each layer forms full batches) and the
//! cost is **measured** from bulletin-board traffic, not estimated.
//!
//! ```text
//! cargo run --release -p yoso-bench --bin online_comm
//! ```

#![forbid(unsafe_code)]

use yoso_bench::{gap_params, measure_baseline, measure_packed};
use yoso_core::ProtocolParams;

fn main() {
    let epsilon = 0.25;
    let batches_per_layer = 2;
    let depth = 2;
    println!(
        "E2 — online elements per multiplication gate (gap ε = {epsilon}, measured)\n"
    );
    println!(
        "{:>6} {:>6} {:>6} {:>16} {:>18} {:>10}",
        "n", "t", "k", "packed (ours)", "CDN baseline", "ratio"
    );
    let mut series = Vec::new();
    for n in [8usize, 16, 32, 64, 128, 192] {
        let params = gap_params(n, epsilon);
        let (online, _) = measure_packed(42, params, batches_per_layer, depth);
        // Baseline uses the same committee/corruption but no packing.
        let base_params = ProtocolParams::new(n, params.t, 1).expect("baseline params");
        let baseline =
            measure_baseline(42, base_params, params.k, batches_per_layer, depth);
        println!(
            "{:>6} {:>6} {:>6} {:>16.1} {:>18.1} {:>9.1}×",
            n,
            params.t,
            params.k,
            online,
            baseline,
            baseline / online
        );
        series.push((n, online, baseline));
    }

    // Shape check, printed for EXPERIMENTS.md.
    let first = series.first().unwrap();
    let last = series.last().unwrap();
    println!(
        "\npacked protocol: per-gate cost changed {:.2}× while n grew {:.0}× (flat ⇒ O(1))",
        last.1 / first.1,
        last.0 as f64 / first.0 as f64
    );
    println!(
        "baseline: per-gate cost changed {:.2}× over the same range (linear ⇒ O(n))",
        last.2 / first.2
    );
}
