//! Ablation A1: the packing factor `k` as the design's central dial.
//!
//! At fixed committee size `n`, sweep `k` from 1 (traditional YOSO,
//! `ε = 0`) to the GOD-maximal value and measure:
//!
//! - online elements per gate (should fall as `1/k`),
//! - offline elements per gate (roughly flat — packing does not help
//!   the offline phase, the limitation the paper inherits from
//!   Turbopack and lists as future work §7),
//! - the corruption threshold `t` the configuration still tolerates
//!   (the price of packing: each unit of `k` costs roughly one unit
//!   of `t` via `t + 2(k−1) + 1 ≤ n − t`).
//!
//! ```text
//! cargo run --release -p yoso-bench --bin ablation_packing
//! ```

#![forbid(unsafe_code)]

use yoso_bench::measure_packed;
use yoso_core::ProtocolParams;

fn main() {
    let n = 64;
    println!("A1 — packing-factor sweep at n = {n} (measured)\n");
    println!(
        "{:>4} {:>8} {:>10} {:>16} {:>16} {:>12}",
        "k", "max t", "ε implied", "online el/gate", "offline el/gate", "k·online"
    );
    for k in [1usize, 2, 4, 8, 12, 16, 20, 24] {
        // Largest t compatible with GOD at this (n, k).
        let t = (n - 2 * (k - 1) - 1) / 2;
        let Ok(params) = ProtocolParams::new(n, t, k) else {
            println!("{k:>4}  infeasible");
            continue;
        };
        let (online, offline) = measure_packed(60, params, 2, 2);
        println!(
            "{:>4} {:>8} {:>10.3} {:>16.1} {:>16.1} {:>12.1}",
            k,
            t,
            params.epsilon(),
            online,
            offline,
            k as f64 * online
        );
    }
    println!(
        "\nReading: online cost falls exactly as 1/k (k·online constant = 4n).\n\
         The offline column also shrinks with k — its dominant terms (packing\n\
         helpers, Step-6 re-encryption) amortize per *batch* — but it remains\n\
         Θ(n) per gate in committee-size scaling (experiment E3), which is the\n\
         Turbopack-inherited limitation the paper lists as future work (§7).\n\
         Each unit of k costs ≈1 unit of corruption threshold t."
    );
}
