//! Experiment E4: the §1.1.2 improvement claims.
//!
//! The paper: *"for 5% global corruptions we can already get 28×
//! improvement by moving from committees of size 900 to 1000. For
//! larger corruption ratios such as 20%, we can get 1000× online
//! improvement … by moving from committees of size ≈18k to ≈20k."*
//!
//! Two parts:
//! 1. **Analytic factors at paper scale** from the §6 analysis (the
//!    packing factor `k` is the online gain).
//! 2. **Measured validation at simulation scale**: for each Table-1
//!    gap ε, run both protocols at a committee size we can simulate
//!    and compare the measured per-gate online ratio to the packing
//!    factor at that scale.
//!
//! ```text
//! cargo run --release -p yoso-bench --bin improvement
//! ```

#![forbid(unsafe_code)]

use yoso_bench::{gap_params, measure_baseline, measure_packed};
use yoso_core::ProtocolParams;
use yoso_sortition::{GapAnalysis, SecurityParams};

fn main() {
    println!("E4.1 — analytic online-improvement factors at paper scale\n");
    println!(
        "{:>7} {:>6} {:>9} {:>9} {:>10} {:>12} {:>16}",
        "C", "f", "c' (old)", "c (new)", "overhead", "gain k", "paper claim"
    );
    let claims: [(f64, f64, &str); 3] = [
        (1000.0, 0.05, "28x (900 -> 1000)"),
        (20000.0, 0.20, ">1000x (18k -> 20k)"),
        (20000.0, 0.05, "(large-gap regime)"),
    ];
    for (c_param, f, claim) in claims {
        if let Some(a) = GapAnalysis::compute(c_param, f, SecurityParams::default()) {
            println!(
                "{:>7} {:>6.2} {:>9} {:>9} {:>9.1}% {:>11}× {:>16}",
                c_param as u64,
                f,
                a.c_prime,
                a.c,
                100.0 * a.committee_overhead(),
                a.improvement_factor(),
                claim
            );
        }
    }

    println!("\nE4.2 — measured online ratio at simulation scale (ε varies, n = 96)\n");
    println!(
        "{:>6} {:>6} {:>6} {:>14} {:>14} {:>12} {:>12}",
        "n", "t", "k", "packed el/g", "base el/g", "measured", "predicted 2k"
    );
    for epsilon in [0.1, 0.2, 0.3, 0.4] {
        let n = 96;
        let params = gap_params(n, epsilon);
        let (online, _) = measure_packed(44, params, 2, 2);
        let base_params = ProtocolParams::new(n, params.t, 1).expect("baseline params");
        let baseline = measure_baseline(44, base_params, params.k, 2, 2);
        // Ours posts 1 share + proof per member per batch (4 elements);
        // baseline posts 2 decryptions × (1 + proof) per member per
        // gate (8 elements) ⇒ predicted ratio 2k.
        println!(
            "{:>6} {:>6} {:>6} {:>14.1} {:>14.1} {:>11.1}× {:>11}×",
            n,
            params.t,
            params.k,
            online,
            baseline,
            baseline / online,
            2 * params.k
        );
    }
    println!(
        "\nThe measured ratio tracks 2k (= packing factor × the baseline's two\n\
         threshold decryptions per gate), confirming the paper's k-fold online\n\
         saving; at paper-scale committees (k up to ~6600) the same accounting\n\
         yields the 28× and >1000× headline numbers above."
    );
}
