//! Experiment E6: Monte-Carlo validation of the §6 sortition tail
//! bounds at reduced security parameters.
//!
//! The paper's bounds are `2^{-128}` events — unobservable. Re-running
//! the same analysis at `k₂ = k₃ ∈ {6, 8, 10, 12}` gives observable
//! nominal failure probabilities; the measured rates must stay below
//! them (the Chernoff analysis is conservative).
//!
//! ```text
//! cargo run --release -p yoso-bench --bin sortition_mc
//! ```

#![forbid(unsafe_code)]

use yoso_bench::rng;
use yoso_sortition::{montecarlo, SecurityParams};

fn main() {
    let n_global = 1_000_000u64;
    let c_param = 2000.0;
    let f = 0.1;
    let trials = 20_000u64;
    println!(
        "E6 — Monte-Carlo tail-bound validation: N = {n_global}, C = {c_param}, f = {f}, \
         {trials} sampled committees per row\n"
    );
    println!(
        "{:>5} {:>12} {:>10} {:>14} {:>14} {:>14}",
        "k2=k3", "bound", "t", "corr. fails", "floor fails", "verdict"
    );
    let mut r = rng(2718);
    for k in [6u32, 8, 10, 12] {
        let sec = SecurityParams { k1: 2, k2: k, k3: k };
        let Some(report) = montecarlo::validate(&mut r, n_global, c_param, f, sec, trials) else {
            println!("{k:>5}  infeasible");
            continue;
        };
        let bound = 2f64.powi(-(k as i32));
        let ok = report.corruption_rate() <= bound && report.size_rate() <= bound;
        println!(
            "{:>5} {:>12.5} {:>10} {:>9} ({:>6.5}) {:>6} ({:>6.5}) {:>9}",
            k,
            bound,
            report.analysis.t,
            report.corruption_failures,
            report.corruption_rate(),
            report.size_failures,
            report.size_rate(),
            if ok { "holds" } else { "VIOLATED" }
        );
    }
    println!(
        "\nBoth bounded events — the corruption count reaching t, and the selected\n\
         honest count falling below the Chernoff floor (1−ε₃)(1−f)²C — stay below\n\
         their nominal rates, evidencing a correct (and conservative) implementation\n\
         of the paper's generalized analysis."
    );
}
