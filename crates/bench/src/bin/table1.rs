//! Experiment E1: regenerate the paper's **Table 1** (§6) — sample
//! sortition parameters with a corruption gap.
//!
//! ```text
//! cargo run --release -p yoso-bench --bin table1
//! ```

#![forbid(unsafe_code)]

use yoso_sortition::table1;

fn main() {
    println!("Table 1 — sample parameters (k1 = 64, k2 = k3 = 128)");
    println!(
        "{:>7} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "C", "f", "t", "c", "c'", "eps", "k"
    );
    for r in table1() {
        match r.analysis {
            Some(a) => println!(
                "{:>7} {:>6.2} {:>8} {:>8} {:>8} {:>8.2} {:>8}",
                r.c_param as u64, r.f, a.t, a.c, a.c_prime, a.eps, a.k
            ),
            None => println!(
                "{:>7} {:>6.2} {:>8} {:>8} {:>8} {:>8} {:>8}",
                r.c_param as u64, r.f, "⊥", "⊥", "⊥", "⊥", "⊥"
            ),
        }
    }
    println!(
        "\nLegend: t = corruption bound (w.h.p.), c = committee lower bound with gap,\n\
         c' = 2t (gap-free bound), eps = gap, k = packing factor.\n\
         Paper reference values: (1000, 0.05) → t=446, c=949, k=28;\n\
         (20000, 0.20) → t=9107, c≈20401, k=1093; (40000, 0.25) → t=20408, k=47."
    );
}
