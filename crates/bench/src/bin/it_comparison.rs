//! Experiment E9 (extension, paper §7 future work): the corruption gap
//! in the *information-theoretic* setting.
//!
//! Three protocols on equivalent SIMD multiplication workloads:
//!
//! - **IT-BGW, k = 1**: semi-honest information-theoretic YOSO
//!   (re-share everything between committees) — `Θ(n²)` per gate.
//! - **IT-packed, k ≈ nε**: same, with packed lanes — `Θ(n²/k)`.
//! - **Computational packed (this paper)**: `O(1)` online per gate.
//!
//! The gap helps the IT protocol by a factor `k` too, but its online
//! cost still grows with `n` — which is why the paper moves to the
//! computational setting for true scalability.
//!
//! ```text
//! cargo run --release -p yoso-bench --bin it_comparison
//! ```

#![forbid(unsafe_code)]

use yoso_bench::{gap_params, measure_packed, rng};
use yoso_core::itbgw::{simd_workload, ItEngine};
use yoso_core::ProtocolParams;
use yoso_field::{F61, PrimeField};

fn it_per_gate(n: usize, t: usize, k: usize, seed: u64) -> f64 {
    let params = ProtocolParams::new(n, t, k).expect("params");
    let engine = ItEngine::new(params).expect("IT engine");
    let program = simd_workload(k, 2);
    let mut r = rng(seed);
    let inputs: Vec<Vec<Vec<F61>>> = (0..2)
        .map(|_| {
            (0..2)
                .map(|_| (0..k).map(|_| F61::random(&mut r)).collect())
                .collect()
        })
        .collect();
    let run = engine.run(&mut r, &program, &inputs).expect("IT run");
    run.elements("it/reshare") as f64 / run.mul_lane_gates as f64
}

fn main() {
    let epsilon = 0.25;
    println!(
        "E9 — information-theoretic vs computational online cost per gate (ε = {epsilon})\n"
    );
    println!(
        "{:>6} {:>6} {:>14} {:>16} {:>18}",
        "n", "k", "IT-BGW (k=1)", "IT-packed (k)", "computational"
    );
    for n in [8usize, 16, 32, 64] {
        let params = gap_params(n, epsilon);
        let it_plain = it_per_gate(n, params.t, 1, 50);
        let it_packed = it_per_gate(n, params.t, params.k, 51);
        let (comp, _) = measure_packed(52, params, 2, 2);
        println!(
            "{:>6} {:>6} {:>14.0} {:>16.0} {:>18.1}",
            n, params.k, it_plain, it_packed, comp
        );
    }
    println!(
        "\nThe gap buys the IT protocol its k-fold saving as well (middle vs left\n\
         column), but both IT columns grow ~n² / ~n²/k while the computational\n\
         protocol stays flat — quantifying why the paper's construction needs\n\
         the threshold-encryption backbone for true committee-size independence."
    );
}
