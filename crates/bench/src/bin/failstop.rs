//! Experiment E5: fail-stop tolerance (§5.4).
//!
//! Claim: halving the packing factor (`k′ ≈ nε/2`) lets the protocol
//! finish even when `nε` honest parties crash during the online phase,
//! whereas full packing (`k ≈ nε`) cannot spare them.
//!
//! We sweep the number of crashed roles per committee and record
//! whether each configuration delivers output (crashes strike at the
//! online multiplication step, on top of `t` active corruptions).
//!
//! ```text
//! cargo run --release -p yoso-bench --bin failstop
//! ```

#![forbid(unsafe_code)]

use yoso_bench::{random_inputs, rng, workload};
use yoso_core::failstop::FailstopTradeoff;
use yoso_core::{crash_phases, Engine, ExecutionConfig, ProtocolParams};
use yoso_runtime::{ActiveAttack, Adversary};

fn completes(params: ProtocolParams, crashes: usize, seed: u64) -> bool {
    let mut r = rng(seed);
    let circuit = workload(params.k, 2, 1);
    let inputs = random_inputs(&mut r, &circuit);
    let adversary = Adversary::active(params.t, ActiveAttack::WrongValue)
        .with_failstops(crashes, crash_phases::ONLINE_MULT);
    let engine = Engine::new(params, ExecutionConfig::sweep());
    engine.run(&mut r, &circuit, &inputs, &adversary).is_ok()
}

fn main() {
    let n = 40;
    let epsilon = 0.2;
    let tr = FailstopTradeoff::derive(n, epsilon).expect("feasible");
    let n_eps = (n as f64 * epsilon) as usize;
    println!(
        "E5 — crash-tolerance sweep: n = {n}, ε = {epsilon}, t = {} active corruptions\n\
         full packing k = {}, halved packing k′ = {} (paper predicts tolerance ⌊nε⌋ = {n_eps})\n",
        tr.full.t, tr.full.k, tr.halved.k
    );
    println!("{:>9} {:>16} {:>16}", "crashes", "full k (ours)", "halved k (§5.4)");
    let mut full_limit = None;
    let mut halved_limit = None;
    for crashes in 0..=n_eps + 3 {
        let full_ok = completes(tr.full, crashes, 7);
        let halved_ok = completes(tr.halved, crashes, 7);
        println!(
            "{:>9} {:>16} {:>16}",
            crashes,
            if full_ok { "delivers" } else { "STALLS" },
            if halved_ok { "delivers" } else { "STALLS" }
        );
        if !full_ok && full_limit.is_none() {
            full_limit = Some(crashes);
        }
        if !halved_ok && halved_limit.is_none() {
            halved_limit = Some(crashes);
        }
    }
    println!(
        "\nfull packing stalls at {} crashes; halved packing at {} — the halved\n\
         configuration survives ⌊nε⌋ = {} crashes as §5.4 predicts, at a {:.1}×\n\
         online-cost premium.",
        full_limit.map_or("—".into(), |v| v.to_string()),
        halved_limit.map_or("—".into(), |v| v.to_string()),
        n_eps,
        tr.online_cost_ratio()
    );
}
