//! Experiment E3: offline communication per multiplication gate vs
//! committee size `n` — the paper's offline phase costs `O(n)`
//! elements per gate (§5.2 communication analysis), the same asymptotic
//! as prior work; the savings are purely online.
//!
//! ```text
//! cargo run --release -p yoso-bench --bin offline_comm
//! ```

#![forbid(unsafe_code)]

use yoso_bench::{gap_params, measure_packed};

fn main() {
    let epsilon = 0.25;
    let batches_per_layer = 2;
    let depth = 2;
    println!("E3 — offline elements per multiplication gate (gap ε = {epsilon}, measured)\n");
    println!("{:>6} {:>6} {:>6} {:>16} {:>16}", "n", "t", "k", "offline/gate", "offline/(n·gate)");
    let mut series = Vec::new();
    for n in [8usize, 16, 32, 64, 128] {
        let params = gap_params(n, epsilon);
        let (_, offline) = measure_packed(43, params, batches_per_layer, depth);
        println!(
            "{:>6} {:>6} {:>6} {:>16.1} {:>16.2}",
            n,
            params.t,
            params.k,
            offline,
            offline / n as f64
        );
        series.push((n, offline));
    }
    let first = series.first().unwrap();
    let last = series.last().unwrap();
    let n_growth = last.0 as f64 / first.0 as f64;
    let cost_growth = last.1 / first.1;
    println!(
        "\nn grew {:.0}×, offline per-gate cost grew {:.1}× — linear in n as the paper states \
         (normalized column should be roughly flat).",
        n_growth, cost_growth
    );
}
