//! Hot-path smoke benchmark (no criterion, single short run).
//!
//! Times the three inner loops this repo's performance work targets —
//! packed dealing, packed reconstruction and Paillier encryption — at
//! committee sizes n ∈ {32, 128, 512}, comparing the precomputed paths
//! (warm [`EvalDomain`] caches, fixed-base [`EncryptionContext`]
//! tables) against the naive per-call costs they replace. Prints a
//! table of ns/op and writes the machine-readable record to
//! `BENCH_hotpath.json` at the repo root.
//!
//! Acceptance targets (see DESIGN.md §perf): ≥5× on repeated packed
//! reconstruction at n = 512, ≥2× on batched Paillier encryption.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use rand::SeedableRng;
use yoso_bignum::Nat;
use yoso_field::{PrimeField, F61};
use yoso_pss_sharing::PackedSharing;
use yoso_the::paillier::{EncryptionContext, ThresholdPaillier};

/// Committee sizes exercised; k follows the paper's k ≈ n/4 regime.
const SIZES: [usize; 3] = [32, 128, 512];
/// Paillier prime size — small enough for a smoke run, large enough
/// that exponentiation dominates.
const PRIME_BITS: usize = 256;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Median-of-3 wall time of `iters` runs of `f`, in ns per iteration.
fn time_ns<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples = Vec::with_capacity(3);
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[1]
}

struct Row {
    n: usize,
    k: usize,
    share_ns: f64,
    recon_cached_ns: f64,
    recon_naive_ns: f64,
    recon_speedup: f64,
    enc_naive_ns: f64,
    enc_batched_ns: f64,
    enc_speedup: f64,
}

fn bench_pss(n: usize) -> (f64, f64, f64) {
    let k = n / 4;
    let degree = n / 2 + k - 1;
    let mut r = rng(7);
    let scheme = PackedSharing::<F61>::new(n, k).unwrap();
    let secrets: Vec<F61> = (0..k).map(|_| F61::random(&mut r)).collect();
    let shares = scheme.share(&mut r, &secrets, degree).unwrap();
    let subset: Vec<usize> = (0..=degree).collect();
    let selected = shares.select(&subset);
    let iters = (20_000 / n).max(8);

    let share_ns = time_ns(iters, || scheme.share(&mut r, &secrets, degree).unwrap());
    // Warm path: the scheme's EvalDomain caches are hit on every call
    // after the first — the steady state inside the protocol's layer
    // loop, where one subset reconstructs a whole layer of gates.
    scheme.reconstruct(&selected, degree).unwrap();
    let cached_ns = time_ns(iters, || scheme.reconstruct(&selected, degree).unwrap());
    // Naive path: a fresh scheme per call pays the full domain build
    // (weights, master polynomial, basis rows) every time — the
    // per-call cost before domains were cached.
    let naive_ns = time_ns(iters, || {
        PackedSharing::<F61>::new(n, k)
            .unwrap()
            .reconstruct(&selected, degree)
            .unwrap()
    });
    (share_ns, cached_ns, naive_ns)
}

fn bench_paillier(batch: usize) -> (f64, f64) {
    let mut r = rng(11);
    let (pk, _) = ThresholdPaillier::keygen(&mut r, PRIME_BITS, 3, 1).unwrap();
    let ms: Vec<Nat> =
        (0..batch).map(|_| Nat::random_below(&mut r, &pk.n_mod)).collect();

    let naive_total = time_ns(1, || {
        ms.iter()
            .map(|m| ThresholdPaillier::encrypt(&mut r, &pk, m))
            .collect::<Vec<_>>()
    });
    // The batched path includes the table build: that is the real cost
    // a committee member pays once per epoch before encrypting its
    // batch of contributions.
    let batched_total = time_ns(1, || {
        let ctx = EncryptionContext::new(&mut r, &pk);
        ctx.encrypt_batch(&mut r, &pk, &ms)
    });
    (naive_total / batch as f64, batched_total / batch as f64)
}

fn main() {
    let mut rows = Vec::new();
    println!(
        "{:>5} {:>5} {:>12} {:>14} {:>13} {:>8} {:>12} {:>12} {:>8}",
        "n", "k", "share ns", "recon warm ns", "recon cold ns", "speedup", "enc ns", "enc batch ns", "speedup"
    );
    for n in SIZES {
        let (share_ns, recon_cached_ns, recon_naive_ns) = bench_pss(n);
        let (enc_naive_ns, enc_batched_ns) = bench_paillier(n);
        let row = Row {
            n,
            k: n / 4,
            share_ns,
            recon_cached_ns,
            recon_naive_ns,
            recon_speedup: recon_naive_ns / recon_cached_ns,
            enc_naive_ns,
            enc_batched_ns,
            enc_speedup: enc_naive_ns / enc_batched_ns,
        };
        println!(
            "{:>5} {:>5} {:>12.0} {:>14.0} {:>13.0} {:>7.1}x {:>12.0} {:>12.0} {:>7.1}x",
            row.n,
            row.k,
            row.share_ns,
            row.recon_cached_ns,
            row.recon_naive_ns,
            row.recon_speedup,
            row.enc_naive_ns,
            row.enc_batched_ns,
            row.enc_speedup
        );
        rows.push(row);
    }

    let mut json = String::from("{\n  \"bench\": \"hotpath\",\n  \"field\": \"F61\",\n");
    let _ = writeln!(json, "  \"paillier_prime_bits\": {PRIME_BITS},");
    json.push_str("  \"configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"n\": {}, \"k\": {}, \"share_ns\": {:.0}, \
             \"reconstruct_cached_ns\": {:.0}, \"reconstruct_naive_ns\": {:.0}, \
             \"reconstruct_speedup\": {:.2}, \"paillier_encrypt_naive_ns\": {:.0}, \
             \"paillier_encrypt_batched_ns\": {:.0}, \"paillier_speedup\": {:.2}}}",
            r.n,
            r.k,
            r.share_ns,
            r.recon_cached_ns,
            r.recon_naive_ns,
            r.recon_speedup,
            r.enc_naive_ns,
            r.enc_batched_ns,
            r.enc_speedup
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    std::fs::write(path, &json).expect("write BENCH_hotpath.json");
    println!("\nwrote {path}");

    let last = rows.last().unwrap();
    assert!(
        last.recon_speedup >= 5.0,
        "cached reconstruct at n=512 must be ≥5× naive (got {:.1}×)",
        last.recon_speedup
    );
    // Table construction amortizes with batch size; the target applies
    // at the protocol's operating scale, not at tiny batches.
    assert!(
        last.enc_speedup >= 2.0,
        "batched Paillier encryption at n=512 must be ≥2× naive (got {:.1}×)",
        last.enc_speedup
    );
    println!(
        "acceptance: reconstruct {:.1}x (>=5x), paillier {:.1}x (>=2x) at n=512 — ok",
        last.recon_speedup, last.enc_speedup
    );
}
