//! Hot-path smoke benchmark (no criterion, single short run).
//!
//! Times the inner loops this repo's performance work targets — packed
//! dealing, packed reconstruction, Paillier encryption, committee
//! re-encryption and verified threshold decryption — at committee
//! sizes n ∈ {32, 128, 512}, comparing the optimized paths (warm
//! [`EvalDomain`] caches, fixed-base [`EncryptionContext`] tables, the
//! parallel buffer-and-replay re-encryption pipeline, Straus/Pippenger
//! multi-exponentiation) against the naive per-call costs they
//! replace. Prints tables of ns/op and writes the machine-readable
//! record to `BENCH_hotpath.json` at the repo root.
//!
//! With `--smoke`, runs a single tiny config (n = 16) and skips the
//! acceptance assertions — the CI mode that keeps the bench path from
//! rotting without paying for a full run.
//!
//! Also times *cold* interpolation — naive Lagrange ([`EvalDomain`])
//! vs the mixed-radix transform ([`NttDomain`]) — over subgroup point
//! sets of smooth sizes up to 1287, asserting bit-identical outputs in
//! every mode.
//!
//! Also measures the role-sharded execution mode end to end: the full
//! three-phase pipeline wall-clock with the committee work split
//! across 1/2/4/8 in-process workers sharing one board
//! (`worker_configs` in the JSON record) — the same partitioning
//! `yoso worker` runs across OS processes, minus spawn overhead.
//!
//! Acceptance targets (see DESIGN.md §perf): ≥5× on repeated packed
//! reconstruction at n = 512, ≥2× on batched Paillier encryption, ≥2×
//! on the multi-exp verified-decryption pipeline, ≥5× on cold NTT
//! interpolation at size ≥1024, parallel re-encryption never >5%
//! slower than sequential at any size, and — gated on the host's
//! hardware thread count, with a logged skip otherwise — ≥3× on
//! 8-thread re-encryption and ≥1.5× end-to-end at 4 workers.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use rand::SeedableRng;
use yoso_bignum::Nat;
use yoso_core::messages::Post;
use yoso_core::tsk::TskChain;
use yoso_core::ExecutionConfig;
use yoso_field::{EvalDomain, NttDomain, PrimeField, F61};
use yoso_pss_sharing::PackedSharing;
use yoso_runtime::{BulletinBoard, Committee};
use yoso_the::mock::{LinearPke, MockTe, PkePublicKey};
use yoso_the::paillier::nizk::{prove_pdec, verify_pdec, verify_pdec_batch, PdecProof};
use yoso_the::paillier::{Ciphertext, EncryptionContext, PartialDec, ThresholdPaillier};

/// Committee sizes exercised; k follows the paper's k ≈ n/4 regime.
const SIZES: [usize; 3] = [32, 128, 512];
/// Cold-interpolation point counts: smooth divisors of `p − 1`
/// (33 = 3·11, 143 = 11·13, 525 = 3·5²·7, 1287 = 3²·11·13), so the
/// naive and transform paths run over the identical subgroup points.
const INTERP_SIZES: [usize; 4] = [33, 143, 525, 1287];
/// Paillier prime size — small enough for a smoke run, large enough
/// that exponentiation dominates.
const PRIME_BITS: usize = 256;
/// Worker threads for the parallel re-encryption column.
const PAR_THREADS: usize = 8;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Median-of-3 wall time of `iters` runs of `f`, in ns per iteration.
fn time_ns<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples = Vec::with_capacity(3);
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[1]
}

struct Row {
    n: usize,
    k: usize,
    share_ns: f64,
    recon_cached_ns: f64,
    recon_naive_ns: f64,
    recon_speedup: f64,
    enc_naive_ns: f64,
    enc_batched_ns: f64,
    enc_speedup: f64,
    reenc_seq_ns: f64,
    reenc_par_ns: f64,
    reenc_speedup: f64,
    pdec_naive_ns: f64,
    pdec_multiexp_ns: f64,
    pdec_speedup: f64,
}

fn bench_pss(n: usize) -> (f64, f64, f64) {
    let k = n / 4;
    let degree = n / 2 + k - 1;
    let mut r = rng(7);
    let scheme = PackedSharing::<F61>::new(n, k).unwrap();
    let secrets: Vec<F61> = (0..k).map(|_| F61::random(&mut r)).collect();
    let shares = scheme.share(&mut r, &secrets, degree).unwrap();
    let subset: Vec<usize> = (0..=degree).collect();
    let selected = shares.select(&subset);
    let iters = (20_000 / n).max(8);

    let share_ns = time_ns(iters, || scheme.share(&mut r, &secrets, degree).unwrap());
    // Warm path: the scheme's EvalDomain caches are hit on every call
    // after the first — the steady state inside the protocol's layer
    // loop, where one subset reconstructs a whole layer of gates.
    scheme.reconstruct(&selected, degree).unwrap();
    let cached_ns = time_ns(iters, || scheme.reconstruct(&selected, degree).unwrap());
    // Naive path: a fresh scheme per call pays the full domain build
    // (weights, master polynomial, basis rows) every time — the
    // per-call cost before domains were cached.
    let naive_ns = time_ns(iters, || {
        PackedSharing::<F61>::new(n, k)
            .unwrap()
            .reconstruct(&selected, degree)
            .unwrap()
    });
    (share_ns, cached_ns, naive_ns)
}

fn bench_paillier(batch: usize) -> (f64, f64) {
    let mut r = rng(11);
    let (pk, _) = ThresholdPaillier::keygen(&mut r, PRIME_BITS, 3, 1).unwrap();
    let ms: Vec<Nat> =
        (0..batch).map(|_| Nat::random_below(&mut r, &pk.n_mod)).collect();

    let naive_total = time_ns(1, || {
        ms.iter()
            .map(|m| ThresholdPaillier::encrypt(&mut r, &pk, m))
            .collect::<Vec<_>>()
    });
    // The batched path includes the table build: that is the real cost
    // a committee member pays once per epoch before encrypting its
    // batch of contributions.
    let batched_total = time_ns(1, || {
        let ctx = EncryptionContext::new(&mut r, &pk);
        ctx.encrypt_batch(&mut r, &pk, &ms)
    });
    (naive_total / batch as f64, batched_total / batch as f64)
}

/// Committee re-encryption of k = n/4 items at 1 vs `PAR_THREADS`
/// worker threads (the buffer-and-replay pipeline in
/// [`TskChain::reencrypt`]). Returns ns per item.
fn bench_reenc(n: usize) -> (f64, f64) {
    let k = (n / 4).max(1);
    let t = (n / 4).max(1);
    let mut r = rng(13);
    let chain = TskChain::<F61>::keygen(&mut r, n, t).unwrap();
    let committee = Committee::honest("bench", n);
    let items: Vec<(PkePublicKey<F61>, yoso_the::mock::Ciphertext<F61>)> = (0..k)
        .map(|_| {
            let target = LinearPke::<F61>::keygen(&mut r);
            let m = F61::random(&mut r);
            let (ct, _) = MockTe::encrypt(&mut r, &chain.pk, m);
            (target.public, ct)
        })
        .collect();
    let iters = (1024 / n).max(1);
    let phase = "offline/6-reenc-shares";
    let seq_cfg = ExecutionConfig::default().with_threads(1);
    let par_cfg = ExecutionConfig::default().with_threads(PAR_THREADS);
    let seq_total = time_ns(iters, || {
        let board: BulletinBoard<Post> = BulletinBoard::new();
        chain.reencrypt(&mut r, &board, &committee, &seq_cfg, phase, &items).unwrap()
    });
    let par_total = time_ns(iters, || {
        let board: BulletinBoard<Post> = BulletinBoard::new();
        chain.reencrypt(&mut r, &board, &committee, &par_cfg, phase, &items).unwrap()
    });
    (seq_total / k as f64, par_total / k as f64)
}

/// The verified threshold-decryption pipeline over a batch of
/// ciphertexts: t+1 partial decryptions per ciphertext, NIZK
/// verification of every partial, and the Lagrange combine. Naive =
/// per-ciphertext loop ([`ThresholdPaillier::partial_decrypt`] +
/// [`verify_pdec`] + [`ThresholdPaillier::combine`]); multiexp =
/// the batched pipeline ([`ThresholdPaillier::partial_decrypt_batch`]
/// + [`verify_pdec_batch`] + [`ThresholdPaillier::combine_batch`]).
///
/// Proofs are generated outside the timed region — both columns
/// measure the decrypting side only. Returns ns per ciphertext.
fn bench_pdec(batch: usize) -> (f64, f64) {
    let mut r = rng(17);
    let (pk, shares) = ThresholdPaillier::keygen(&mut r, PRIME_BITS, 3, 1).unwrap();
    let subset = &shares[..pk.threshold + 1];
    let cts: Vec<Ciphertext> = (0..batch)
        .map(|_| {
            let m = Nat::random_below(&mut r, &pk.n_mod);
            ThresholdPaillier::encrypt(&mut r, &pk, &m).0
        })
        .collect();
    // proofs[si][ci] proves subset[si]'s partial decryption of cts[ci].
    let proofs: Vec<Vec<PdecProof>> = subset
        .iter()
        .map(|share| {
            cts.iter()
                .map(|ct| {
                    let pd = ThresholdPaillier::partial_decrypt(&pk, share, ct);
                    prove_pdec(&mut r, &pk, ct, share, &pd)
                })
                .collect()
        })
        .collect();

    let naive_total = time_ns(1, || {
        let mut out = Vec::with_capacity(batch);
        for (ci, ct) in cts.iter().enumerate() {
            let mut partials = Vec::with_capacity(subset.len());
            for (si, share) in subset.iter().enumerate() {
                let pd = ThresholdPaillier::partial_decrypt(&pk, share, ct);
                assert!(verify_pdec(&pk, ct, &pd, &proofs[si][ci]));
                partials.push(pd);
            }
            out.push(ThresholdPaillier::combine(&pk, &partials, &Nat::one()).unwrap());
        }
        out
    });
    let multiexp_total = time_ns(1, || {
        let per_share: Vec<Vec<PartialDec>> = subset
            .iter()
            .map(|share| ThresholdPaillier::partial_decrypt_batch(&pk, share, &cts))
            .collect();
        let mut items: Vec<(&Ciphertext, &PartialDec, &PdecProof)> =
            Vec::with_capacity(subset.len() * batch);
        for (si, pds) in per_share.iter().enumerate() {
            for (ci, ct) in cts.iter().enumerate() {
                items.push((ct, &pds[ci], &proofs[si][ci]));
            }
        }
        assert!(verify_pdec_batch(&mut r, &pk, &items));
        let sets: Vec<Vec<PartialDec>> = (0..batch)
            .map(|ci| per_share.iter().map(|pds| pds[ci].clone()).collect())
            .collect();
        ThresholdPaillier::combine_batch(&pk, &sets, &Nat::one()).unwrap()
    });
    (naive_total / batch as f64, multiexp_total / batch as f64)
}

struct InterpRow {
    size: usize,
    naive_ns: f64,
    ntt_ns: f64,
    speedup: f64,
}

struct BoardRow {
    batch: usize,
    per_post_ns: f64,
    batch_post_ns: f64,
    batch_speedup: f64,
    tcp_batch_ns: f64,
    inproc_posts_per_sec: f64,
    inproc_bytes_per_sec: f64,
    tcp_posts_per_sec: f64,
    tcp_bytes_per_sec: f64,
    tcp_pipelined_ns: f64,
    tcp_pipelined_posts_per_sec: f64,
    tcp_pipeline_speedup: f64,
}

/// Elements metered per posting in the board-throughput bench (a
/// μ-share with its NIZK: ciphertext + proof, as in the online phase).
const BOARD_POST_ELEMENTS: u64 = 5;

/// Frame cap for the TCP posting columns: small enough that a batch
/// spans many wire frames, which is the regime the pipelined protocol
/// targets (an engine flush of a full parallel buffer splits into many
/// frames under the 64MiB server cap; at the default cap a small bench
/// batch would fit one frame and both modes would degenerate to one
/// round trip). Both TCP columns use the same cap, so the comparison
/// isolates the ack discipline: one round trip per frame (lockstep) vs
/// one per window (pipelined). 512 B ≈ 8 posts per frame, so a batch
/// of 256 spans ~32 frames — lockstep pays ~32 ack waits where
/// pipelined pays one, which is the gap the headline assert pins.
const TCP_BENCH_FRAME_CAP: usize = 512;

/// Pipelining window for the pipelined TCP column (the client
/// default).
const TCP_BENCH_WINDOW: usize = 32;

/// Board posting throughput: `batch` μ-share posts issued one
/// [`BulletinBoard::post`] call at a time vs one
/// [`BulletinBoard::post_batch`] call, on the in-process backend (both
/// pay board construction per iteration, so the comparison isolates
/// the per-post lock/meter/alloc overhead the batched path removes),
/// plus the same `post_batch` over a loopback-TCP `board-server` in
/// both wire modes: lockstep (one round trip per frame) and pipelined
/// (windowed frames, coalesced acks), at the same capped frame size so
/// each batch spans many frames. Returns ns per post for each mode.
fn bench_board(batch: usize) -> BoardRow {
    use yoso_runtime::RoleId;

    let bytes = yoso_core::messages::to_bytes(BOARD_POST_ELEMENTS);
    let msgs: Vec<Post> = vec![Post::MulShare; batch];
    let role = RoleId::new("bench", 0);
    let iters = (65_536 / batch).max(4);

    // Boards live outside the timed closures so what is measured is
    // posting cost, not board construction/teardown; the log grows
    // across iterations but appends stay O(1) amortized.
    let board: BulletinBoard<Post> = BulletinBoard::new();
    let per_post_total = time_ns(iters, || {
        for m in &msgs {
            board.post(role.clone(), m.clone(), "bench/board", BOARD_POST_ELEMENTS, bytes).unwrap();
        }
    });
    drop(board);
    let board: BulletinBoard<Post> = BulletinBoard::new();
    let batch_total = time_ns(iters, || {
        board
            .post_batch(role.clone(), "bench/board", &msgs, BOARD_POST_ELEMENTS, bytes)
            .unwrap();
    });
    drop(board);
    // One server per mode for all its iterations (spawning a listener
    // per iteration would swamp the frame cost being measured). Both
    // TCP modes post through the same capped chunking (see
    // [`TCP_BENCH_FRAME_CAP`]); only the ack discipline differs.
    let lockstep_opts = yoso_runtime::TcpOptions {
        pipeline_window: 1,
        max_post_frame_bytes: TCP_BENCH_FRAME_CAP,
        ..yoso_runtime::TcpOptions::default()
    };
    let (mut handle, board) =
        yoso_runtime::tcp::loopback_with::<Post>(lockstep_opts).expect("loopback server");
    let tcp_total = time_ns(iters, || {
        board
            .post_batch(role.clone(), "bench/board", &msgs, BOARD_POST_ELEMENTS, bytes)
            .unwrap();
    });
    handle.shutdown();
    let pipelined_opts = yoso_runtime::TcpOptions {
        pipeline_window: TCP_BENCH_WINDOW,
        max_post_frame_bytes: TCP_BENCH_FRAME_CAP,
        ..yoso_runtime::TcpOptions::default()
    };
    let (mut handle, board) =
        yoso_runtime::tcp::loopback_with::<Post>(pipelined_opts).expect("loopback server");
    let tcp_pipelined_total = time_ns(iters, || {
        board
            .post_batch(role.clone(), "bench/board", &msgs, BOARD_POST_ELEMENTS, bytes)
            .unwrap();
    });
    handle.shutdown();

    let per_post_ns = per_post_total / batch as f64;
    let batch_post_ns = batch_total / batch as f64;
    let tcp_batch_ns = tcp_total / batch as f64;
    let tcp_pipelined_ns = tcp_pipelined_total / batch as f64;
    BoardRow {
        batch,
        per_post_ns,
        batch_post_ns,
        batch_speedup: per_post_ns / batch_post_ns,
        tcp_batch_ns,
        inproc_posts_per_sec: 1e9 / batch_post_ns,
        inproc_bytes_per_sec: 1e9 / batch_post_ns * bytes as f64,
        tcp_posts_per_sec: 1e9 / tcp_batch_ns,
        tcp_bytes_per_sec: 1e9 / tcp_batch_ns * bytes as f64,
        tcp_pipelined_ns,
        tcp_pipelined_posts_per_sec: 1e9 / tcp_pipelined_ns,
        tcp_pipeline_speedup: tcp_batch_ns / tcp_pipelined_ns,
    }
}

struct WorkerRow {
    workers: usize,
    wall_ns: f64,
    speedup: f64,
    /// Worker 0's per-stage wall-clock seconds (setup/offline/online),
    /// showing where the pipeline's time goes as the fleet scales.
    stage_secs: Vec<(&'static str, f64)>,
}

/// End-to-end pipeline wall-clock with the committee work role-sharded
/// across `workers` in-process worker threads sharing one board — the
/// same partitioning `yoso worker` runs across OS processes, minus
/// spawn and TCP overhead. `workers == 1` is the solo engine. Proofs
/// stay on (the per-member NIZK work is exactly what the partition
/// distributes).
fn bench_worker_pipeline(n: usize, workers: usize) -> (f64, Vec<(&'static str, f64)>) {
    use yoso_core::{Engine, ProtocolParams};
    use yoso_runtime::Adversary;

    let params = ProtocolParams::from_gap(n, 0.25).unwrap();
    let circuit =
        yoso_circuit::generators::inner_product::<F61>(2 * params.k).unwrap();
    let mut r = rng(23);
    let inputs: Vec<Vec<F61>> = circuit
        .inputs_per_client()
        .iter()
        .map(|ws| ws.iter().map(|_| F61::random(&mut r)).collect())
        .collect();
    let adversary = Adversary::none();
    // Worker 0's per-stage wall-clock: where a sharded run's time goes
    // (compute is split across workers, board waits are not).
    let stages = std::sync::Mutex::new(Vec::new());
    let wall = time_ns(1, || {
        let board: BulletinBoard<Post> = BulletinBoard::new();
        if workers == 1 {
            let mut wr = rng(29);
            let run = Engine::new(params, ExecutionConfig::default())
                .run_with_board(&mut wr, &circuit, &inputs, &adversary, &board)
                .unwrap();
            *stages.lock().unwrap() = run.stage_wall_secs;
            return;
        }
        std::thread::scope(|s| {
            for w in 0..workers {
                let board = board.clone();
                let (circuit, inputs, adversary) = (&circuit, &inputs, &adversary);
                let stages = &stages;
                s.spawn(move || {
                    let cfg = ExecutionConfig::default()
                        .with_partition(params.worker_role_range(w, workers));
                    let mut wr = rng(29);
                    let run = Engine::new(params, cfg)
                        .run_with_board(&mut wr, circuit, inputs, adversary, &board)
                        .unwrap();
                    if w == 0 {
                        *stages.lock().unwrap() = run.stage_wall_secs;
                    }
                });
            }
        });
    });
    (wall, stages.into_inner().unwrap())
}

/// Cold interpolation over an order-`size` subgroup: naive Lagrange
/// (fresh [`EvalDomain`] per call, `O(n²)` construction) vs the
/// mixed-radix transform (fresh [`NttDomain`] per call, `O(n log n)`
/// including the deterministic generator search). Both paths pay full
/// domain construction — the dealing/reconstruction cost for a subset
/// seen for the first time. Asserts the interpolated polynomials are
/// bit-identical before timing. Returns (naive ns, ntt ns) per call.
fn bench_interp(size: usize) -> (f64, f64) {
    let mut r = rng(19);
    let domain = NttDomain::<F61>::new(size).unwrap();
    let points = domain.points().to_vec();
    let ys: Vec<F61> = (0..size).map(|_| F61::random(&mut r)).collect();
    let via_lagrange = EvalDomain::new(points.clone()).unwrap().interpolate(&ys).unwrap();
    let via_ntt = domain.interpolate(&ys).unwrap();
    assert_eq!(
        via_lagrange, via_ntt,
        "NTT and Lagrange interpolation must be bit-identical at size {size}"
    );
    let iters = (4096 / size).max(1);
    let naive_ns =
        time_ns(iters, || EvalDomain::new(points.clone()).unwrap().interpolate(&ys).unwrap());
    let ntt_ns =
        time_ns(iters, || NttDomain::<F61>::new(size).unwrap().interpolate(&ys).unwrap());
    (naive_ns, ntt_ns)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: Vec<usize> = if smoke { vec![16] } else { SIZES.to_vec() };
    let interp_sizes: Vec<usize> = if smoke { vec![18] } else { INTERP_SIZES.to_vec() };
    let host_threads =
        std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let mut rows = Vec::new();
    println!(
        "{:>5} {:>5} {:>12} {:>14} {:>13} {:>8} {:>12} {:>12} {:>8}",
        "n", "k", "share ns", "recon warm ns", "recon cold ns", "speedup", "enc ns", "enc batch ns", "speedup"
    );
    for &n in &sizes {
        let (share_ns, recon_cached_ns, recon_naive_ns) = bench_pss(n);
        let (enc_naive_ns, enc_batched_ns) = bench_paillier(n);
        let (reenc_seq_ns, reenc_par_ns) = bench_reenc(n);
        let (pdec_naive_ns, pdec_multiexp_ns) = bench_pdec(n);
        let row = Row {
            n,
            k: n / 4,
            share_ns,
            recon_cached_ns,
            recon_naive_ns,
            recon_speedup: recon_naive_ns / recon_cached_ns,
            enc_naive_ns,
            enc_batched_ns,
            enc_speedup: enc_naive_ns / enc_batched_ns,
            reenc_seq_ns,
            reenc_par_ns,
            reenc_speedup: reenc_seq_ns / reenc_par_ns,
            pdec_naive_ns,
            pdec_multiexp_ns,
            pdec_speedup: pdec_naive_ns / pdec_multiexp_ns,
        };
        println!(
            "{:>5} {:>5} {:>12.0} {:>14.0} {:>13.0} {:>7.1}x {:>12.0} {:>12.0} {:>7.1}x",
            row.n,
            row.k,
            row.share_ns,
            row.recon_cached_ns,
            row.recon_naive_ns,
            row.recon_speedup,
            row.enc_naive_ns,
            row.enc_batched_ns,
            row.enc_speedup
        );
        rows.push(row);
    }
    println!(
        "\n{:>5} {:>5} {:>13} {:>13} {:>8} {:>14} {:>16} {:>8}",
        "n", "k", "reenc seq ns", "reenc par ns", "speedup", "pdec naive ns", "pdec multiexp ns", "speedup"
    );
    for row in &rows {
        println!(
            "{:>5} {:>5} {:>13.0} {:>13.0} {:>7.1}x {:>14.0} {:>16.0} {:>7.1}x",
            row.n,
            row.k,
            row.reenc_seq_ns,
            row.reenc_par_ns,
            row.reenc_speedup,
            row.pdec_naive_ns,
            row.pdec_multiexp_ns,
            row.pdec_speedup
        );
    }

    let mut interp_rows = Vec::new();
    println!(
        "\n{:>6} {:>16} {:>14} {:>8}",
        "size", "interp naive ns", "interp ntt ns", "speedup"
    );
    for &size in &interp_sizes {
        let (naive_ns, ntt_ns) = bench_interp(size);
        let row = InterpRow { size, naive_ns, ntt_ns, speedup: naive_ns / ntt_ns };
        println!(
            "{:>6} {:>16.0} {:>14.0} {:>7.1}x",
            row.size, row.naive_ns, row.ntt_ns, row.speedup
        );
        interp_rows.push(row);
    }

    let board_batches: Vec<usize> = if smoke { vec![32] } else { vec![64, 256, 1024] };
    let mut board_rows = Vec::new();
    println!(
        "\n{:>6} {:>12} {:>13} {:>8} {:>12} {:>14} {:>14} {:>15} {:>8}   (tcp frame cap {TCP_BENCH_FRAME_CAP} B, window {TCP_BENCH_WINDOW})",
        "batch", "per-post ns", "post_batch ns", "speedup", "tcp batch ns", "inproc post/s", "tcp post/s", "tcp piped post/s", "speedup"
    );
    for &batch in &board_batches {
        let row = bench_board(batch);
        println!(
            "{:>6} {:>12.0} {:>13.0} {:>7.1}x {:>12.0} {:>14.0} {:>14.0} {:>15.0} {:>7.1}x",
            row.batch,
            row.per_post_ns,
            row.batch_post_ns,
            row.batch_speedup,
            row.tcp_batch_ns,
            row.inproc_posts_per_sec,
            row.tcp_posts_per_sec,
            row.tcp_pipelined_posts_per_sec,
            row.tcp_pipeline_speedup
        );
        board_rows.push(row);
    }

    // Role-sharded end-to-end pipeline: same committee, 1/2/4/8
    // workers. The wall-clock at w workers is gated by the slowest
    // worker's proof slice, so the speedup ceiling is w (minus the
    // replicated value computation every worker pays).
    let worker_n = if smoke { 16 } else { 32 };
    let worker_counts: Vec<usize> = if smoke { vec![1, 2] } else { vec![1, 2, 4, 8] };
    let mut worker_rows: Vec<WorkerRow> = Vec::new();
    println!(
        "\n{:>8} {:>16} {:>8}   (end-to-end pipeline, n = {worker_n})",
        "workers", "wall ms", "speedup"
    );
    for &workers in &worker_counts {
        let (wall_ns, stage_secs) = bench_worker_pipeline(worker_n, workers);
        let speedup = worker_rows.first().map_or(1.0, |base| base.wall_ns / wall_ns);
        let breakdown: Vec<String> = stage_secs
            .iter()
            .map(|(name, secs)| format!("{name} {:.0}ms", secs * 1e3))
            .collect();
        println!(
            "{:>8} {:>16.1} {:>7.2}x   [{}]",
            workers,
            wall_ns / 1e6,
            speedup,
            breakdown.join("  ")
        );
        worker_rows.push(WorkerRow { workers, wall_ns, speedup, stage_secs });
    }

    let mut json = String::from("{\n  \"bench\": \"hotpath\",\n  \"field\": \"F61\",\n");
    let _ = writeln!(json, "  \"paillier_prime_bits\": {PRIME_BITS},");
    let _ = writeln!(json, "  \"host_parallelism\": {host_threads},");
    let _ = writeln!(json, "  \"reenc_par_threads\": {PAR_THREADS},");
    json.push_str("  \"configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"n\": {}, \"k\": {}, \"share_ns\": {:.0}, \
             \"reconstruct_cached_ns\": {:.0}, \"reconstruct_naive_ns\": {:.0}, \
             \"reconstruct_speedup\": {:.2}, \"paillier_encrypt_naive_ns\": {:.0}, \
             \"paillier_encrypt_batched_ns\": {:.0}, \"paillier_speedup\": {:.2}, \
             \"reenc_seq_ns\": {:.0}, \"reenc_par_ns\": {:.0}, \
             \"reenc_speedup\": {:.2}, \"partial_decrypt_naive_ns\": {:.0}, \
             \"partial_decrypt_multiexp_ns\": {:.0}, \"partial_decrypt_speedup\": {:.2}}}",
            r.n,
            r.k,
            r.share_ns,
            r.recon_cached_ns,
            r.recon_naive_ns,
            r.recon_speedup,
            r.enc_naive_ns,
            r.enc_batched_ns,
            r.enc_speedup,
            r.reenc_seq_ns,
            r.reenc_par_ns,
            r.reenc_speedup,
            r.pdec_naive_ns,
            r.pdec_multiexp_ns,
            r.pdec_speedup
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"interp_configs\": [\n");
    for (i, r) in interp_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"size\": {}, \"interp_naive_ns\": {:.0}, \"interp_ntt_ns\": {:.0}, \
             \"interp_speedup\": {:.2}}}",
            r.size, r.naive_ns, r.ntt_ns, r.speedup
        );
        json.push_str(if i + 1 < interp_rows.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(json, "  ],\n  \"tcp_frame_cap_bytes\": {TCP_BENCH_FRAME_CAP},");
    let _ = writeln!(json, "  \"tcp_pipeline_window\": {TCP_BENCH_WINDOW},");
    json.push_str("  \"board_configs\": [\n");
    for (i, r) in board_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"batch\": {}, \"per_post_ns\": {:.0}, \"post_batch_ns\": {:.0}, \
             \"post_batch_speedup\": {:.2}, \"tcp_post_batch_ns\": {:.0}, \
             \"inproc_posts_per_sec\": {:.0}, \"inproc_bytes_per_sec\": {:.0}, \
             \"tcp_posts_per_sec\": {:.0}, \"tcp_bytes_per_sec\": {:.0}, \
             \"tcp_pipelined_post_ns\": {:.0}, \"tcp_pipelined_posts_per_sec\": {:.0}, \
             \"tcp_pipeline_speedup\": {:.2}}}",
            r.batch,
            r.per_post_ns,
            r.batch_post_ns,
            r.batch_speedup,
            r.tcp_batch_ns,
            r.inproc_posts_per_sec,
            r.inproc_bytes_per_sec,
            r.tcp_posts_per_sec,
            r.tcp_bytes_per_sec,
            r.tcp_pipelined_ns,
            r.tcp_pipelined_posts_per_sec,
            r.tcp_pipeline_speedup
        );
        json.push_str(if i + 1 < board_rows.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(json, "  ],\n  \"worker_pipeline_n\": {worker_n},");
    json.push_str("  \"worker_configs\": [\n");
    for (i, r) in worker_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workers\": {}, \"wall_ns\": {:.0}, \"speedup\": {:.2}, \"stages_ms\": {{",
            r.workers, r.wall_ns, r.speedup
        );
        for (j, (name, secs)) in r.stage_secs.iter().enumerate() {
            let _ = write!(json, "\"{name}\": {:.1}", secs * 1e3);
            if j + 1 < r.stage_secs.len() {
                json.push_str(", ");
            }
        }
        json.push_str("}}");
        json.push_str(if i + 1 < worker_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    std::fs::write(path, &json).expect("write BENCH_hotpath.json");
    println!("\nwrote {path}");

    if smoke {
        println!("smoke mode: acceptance assertions skipped");
        return;
    }
    let last = rows.last().unwrap();
    assert!(
        last.recon_speedup >= 5.0,
        "cached reconstruct at n=512 must be ≥5× naive (got {:.1}×)",
        last.recon_speedup
    );
    // Table construction amortizes with batch size; the target applies
    // at the protocol's operating scale, not at tiny batches.
    assert!(
        last.enc_speedup >= 2.0,
        "batched Paillier encryption at n=512 must be ≥2× naive (got {:.1}×)",
        last.enc_speedup
    );
    assert!(
        last.pdec_speedup >= 2.0,
        "multi-exp verified decryption at n=512 must be ≥2× the per-ciphertext loop (got {:.1}×)",
        last.pdec_speedup
    );
    let big_interp = interp_rows
        .iter()
        .find(|r| r.size >= 1024)
        .expect("non-smoke interp sizes include one >= 1024");
    assert!(
        big_interp.speedup >= 5.0,
        "cold NTT interpolation at size {} must be ≥5× naive Lagrange (got {:.1}×)",
        big_interp.size,
        big_interp.speedup
    );
    // Batched posting must amortize the per-post lock/meter/alloc cost:
    // at batch ≥ 256, one post_batch call must deliver ≥5× the posts/sec
    // of the post-at-a-time loop on the in-process backend.
    for r in board_rows.iter().filter(|r| r.batch >= 256) {
        assert!(
            r.batch_speedup >= 5.0,
            "post_batch at batch {} must be ≥5× per-post posting (got {:.1}×)",
            r.batch,
            r.batch_speedup
        );
    }
    // The pipelined wire protocol must close the TCP-vs-in-process gap
    // it targets: at batch ≥ 256, where a flush spans many frames,
    // coalescing acks (one round trip per window instead of one per
    // frame) must deliver ≥3× the lockstep posting rate.
    for r in board_rows.iter().filter(|r| r.batch >= 256) {
        assert!(
            r.tcp_pipeline_speedup >= 3.0,
            "pipelined TCP posting at batch {} must be ≥3× lockstep (got {:.1}×)",
            r.batch,
            r.tcp_pipeline_speedup
        );
    }
    // Parallel re-encryption must never lose to sequential: below the
    // per-thread minimum batch, par_map falls back inline, so even at
    // the smallest size the parallel column may only trail within
    // measurement noise (≤5%).
    for r in &rows {
        assert!(
            r.reenc_speedup >= 0.95,
            "parallel re-encryption at n={} must not be >5% slower than sequential (got {:.2}×)",
            r.n,
            r.reenc_speedup
        );
    }
    // Role-sharded end-to-end speedup needs real cores: 4 workers
    // cannot beat 1 on fewer than 4 hardware threads.
    if host_threads >= 4 {
        let at4 = worker_rows
            .iter()
            .find(|r| r.workers == 4)
            .expect("non-smoke worker counts include 4");
        assert!(
            at4.speedup >= 1.5,
            "4-worker end-to-end pipeline must be ≥1.5× single-process (got {:.2}×)",
            at4.speedup
        );
        println!("acceptance: 4-worker end-to-end {:.2}x (>=1.5x) — ok", at4.speedup);
    } else {
        println!(
            "acceptance: 4-worker end-to-end speedup recorded but not asserted \
             (host has {host_threads} hardware threads, needs 4)"
        );
    }
    // The re-encryption target needs real hardware parallelism: the
    // pipeline is correct at any thread count (the determinism tests
    // pin that), but an 8-thread wall-clock win cannot materialize on
    // fewer than 8 hardware threads.
    if host_threads >= PAR_THREADS {
        assert!(
            last.reenc_speedup >= 3.0,
            "8-thread re-encryption at n=512 must be ≥3× sequential (got {:.1}×)",
            last.reenc_speedup
        );
        println!(
            "acceptance: reconstruct {:.1}x (>=5x), paillier {:.1}x (>=2x), pdec {:.1}x (>=2x), interp {:.1}x (>=5x at size {}), reenc {:.1}x (>=3x) at n=512 — ok",
            last.recon_speedup, last.enc_speedup, last.pdec_speedup, big_interp.speedup, big_interp.size, last.reenc_speedup
        );
    } else {
        println!(
            "acceptance: reconstruct {:.1}x (>=5x), paillier {:.1}x (>=2x), pdec {:.1}x (>=2x), interp {:.1}x (>=5x at size {}) at n=512 — ok; \
             reenc {:.1}x recorded but not asserted (host has {host_threads} hardware threads, needs {PAR_THREADS})",
            last.recon_speedup, last.enc_speedup, last.pdec_speedup, big_interp.speedup, big_interp.size, last.reenc_speedup
        );
    }
}
