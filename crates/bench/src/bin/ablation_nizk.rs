//! Ablation A2: where the communication goes — proofs vs payloads,
//! and per-phase breakdown.
//!
//! The paper prices everything in ring elements but does not break the
//! costs down. This ablation decomposes the measured traffic of one
//! protocol run into protocol payload vs NIZK overhead (computed from
//! the message layout constants that the meter charges), per phase.
//!
//! ```text
//! cargo run --release -p yoso-bench --bin ablation_nizk
//! ```

#![forbid(unsafe_code)]

use yoso_bench::{gap_params, random_inputs, rng, workload};
use yoso_core::messages::{
    proof_elements, reshare_elements, CT_ELEMENTS, ENC_PDEC_PROOF_ELEMENTS, ENC_PROOF_ELEMENTS,
    MULSHARE_PROOF_ELEMENTS, PDEC_ELEMENTS, PDEC_PROOF_ELEMENTS,
};
use yoso_core::{Engine, ExecutionConfig};
use yoso_runtime::Adversary;

fn main() {
    let n = 32;
    let params = gap_params(n, 0.25);
    let circuit = workload(params.k, 2, 2);
    let mut r = rng(70);
    let inputs = random_inputs(&mut r, &circuit);
    let engine = Engine::new(params, ExecutionConfig::sweep());
    let run = engine.run(&mut r, &circuit, &inputs, &Adversary::none()).expect("run");

    // Proof fraction per message type (from the metered layout).
    let frac = |payload: u64, proof: u64| proof as f64 / (payload + proof) as f64;
    let contribution = frac(CT_ELEMENTS, ENC_PROOF_ELEMENTS);
    let beaver_b = frac(2 * CT_ELEMENTS, proof_elements(4, 2));
    let pdec = frac(PDEC_ELEMENTS, PDEC_PROOF_ELEMENTS);
    let enc_pdec = frac(CT_ELEMENTS, ENC_PDEC_PROOF_ELEMENTS);
    let mulshare = frac(1, MULSHARE_PROOF_ELEMENTS);
    let nt = (n as u64, params.t as u64);
    let reshare_total = reshare_elements(nt.0, nt.1);
    let reshare_payload = (nt.1 + 1) + nt.0 * CT_ELEMENTS;
    let reshare = frac(reshare_payload, reshare_total - reshare_payload);

    println!("A2 — NIZK share of traffic at n = {n}, t = {}, k = {}\n", params.t, params.k);
    println!("per-message proof fractions:");
    println!("  TEnc contribution        {:>5.1}%", 100.0 * contribution);
    println!("  Beaver b-side            {:>5.1}%", 100.0 * beaver_b);
    println!("  partial decryption       {:>5.1}%", 100.0 * pdec);
    println!("  encrypted partial (re-enc) {:>3.1}%", 100.0 * enc_pdec);
    println!("  online μ-share           {:>5.1}%", 100.0 * mulshare);
    println!("  tsk re-share             {:>5.1}%", 100.0 * reshare);

    println!("\nper-phase totals (elements) and estimated proof share:");
    let proof_share_of_phase = |phase: &str| -> f64 {
        match phase {
            p if p.starts_with("offline/1") => (contribution + beaver_b) / 2.0,
            p if p.starts_with("offline/2") || p.starts_with("offline/4") => contribution,
            p if p.starts_with("offline/3") => pdec,
            p if p.starts_with("offline/5") || p.starts_with("offline/6") => enc_pdec,
            p if p.starts_with("online/1") || p.starts_with("online/4") => enc_pdec,
            p if p.starts_with("online/3") => mulshare,
            p if p.contains("handover") => reshare,
            _ => 0.0,
        }
    };
    let mut total = 0u64;
    let mut total_proof = 0.0;
    for (phase, stats) in &run.phases {
        let share = proof_share_of_phase(phase);
        println!(
            "  {phase:<26} {:>10}   ~{:>4.1}% proofs",
            stats.elements,
            100.0 * share
        );
        total += stats.elements;
        total_proof += stats.elements as f64 * share;
    }
    println!(
        "\noverall: {:.1}% of the {} posted elements are NIZK overhead — a \n\
         constant factor, leaving the asymptotic claims untouched.",
        100.0 * total_proof / total as f64,
        total
    );
}
