//! Experiment E7: guaranteed output delivery under active attack
//! (Theorem 1).
//!
//! Runs the full protocol with `t` actively corrupted roles in *every*
//! committee, across all implemented attack strategies and multiple
//! circuit shapes, and checks the delivered outputs against cleartext
//! evaluation. Also verifies the converse: the outputs are *correct*,
//! not just delivered (the additive attack must not shift results).
//!
//! ```text
//! cargo run --release -p yoso-bench --bin god_attack
//! ```

#![forbid(unsafe_code)]

use yoso_bench::{random_inputs, rng};
use yoso_circuit::generators;
use yoso_core::{Engine, ExecutionConfig, ProtocolParams};
use yoso_field::F61;
use yoso_runtime::{ActiveAttack, Adversary};

fn main() {
    let params = ProtocolParams::new(16, 3, 3).expect("params");
    let engine = Engine::new(params, ExecutionConfig::default());
    let attacks = [
        ActiveAttack::WrongValue,
        ActiveAttack::BadProof,
        ActiveAttack::Silent,
        ActiveAttack::AdditiveOffset,
    ];
    let mut circuits = vec![
        ("inner_product(6)", generators::inner_product::<F61>(6).unwrap()),
        ("poly_eval(4)", generators::poly_eval::<F61>(4).unwrap()),
        ("federated_stats(3,3)", generators::federated_stats::<F61>(3, 3).unwrap()),
    ];
    let mut mimc_rng = rng(1);
    circuits.push(("mimc(3)", generators::mimc::<F61, _>(&mut mimc_rng, 3).unwrap()));

    println!(
        "E7 — GOD under active attack: n = {}, t = {} malicious per committee\n",
        params.n, params.t
    );
    println!("{:<24} {:>16} {:>10}", "circuit", "attack", "outcome");
    let mut all_ok = true;
    for (name, circuit) in &circuits {
        for attack in attacks {
            let mut r = rng(1000 + name.len() as u64);
            let inputs = random_inputs(&mut r, circuit);
            let expected = circuit.evaluate(&inputs).expect("cleartext evaluation");
            let adversary = Adversary::active(params.t, attack);
            let outcome = match engine.run(&mut r, circuit, &inputs, &adversary) {
                Ok(run) if run.outputs == expected => "correct",
                Ok(_) => {
                    all_ok = false;
                    "WRONG OUTPUT"
                }
                Err(_) => {
                    all_ok = false;
                    "ABORTED"
                }
            };
            println!("{name:<24} {attack:>16?} {outcome:>10}");
        }
    }
    println!(
        "\n{}",
        if all_ok {
            "Every run delivered the correct output — GOD holds under all attack\n\
             strategies (Theorem 1)."
        } else {
            "GOD VIOLATION OBSERVED — investigate!"
        }
    );
    assert!(all_ok);
}
