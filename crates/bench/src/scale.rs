//! Paper-scale allocation profile: the `yoso bench-scale` harness.
//!
//! Runs the mock-scheme end-to-end protocol at Table-1 committee sizes
//! (`n ∈ {512, 1024, 2048}`, `ε = 0.25`) twice per size — once in
//! streaming mode (bounded board retention + pooled share-buffer
//! arenas, [`ExecutionConfig::with_streaming`]) and once materialized
//! (the legacy full-history, fresh-buffers-per-call profile) — and
//! records for each run:
//!
//! - wall-clock per protocol stage,
//! - hot-path buffer allocations ([`yoso_field::allocstats`]) total and
//!   per multiplication gate,
//! - process-wide allocation counts when the host binary registered the
//!   counting allocator (`--features bench-alloc`, see `yoso-cli`),
//! - peak RSS (`VmHWM`) and current RSS (`VmRSS`) from
//!   `/proc/self/status`,
//! - the FNV-1a 64 transcript hash.
//!
//! The report lands in `BENCH_scale.json` at the repo root. Acceptance
//! gates (skipped under `--smoke`, which shrinks the sizes for CI):
//! the streaming and materialized transcripts must hash identically at
//! every size, and at the largest size the materialized run must
//! perform at least 2× the streaming run's hot-path allocations.
//!
//! Within each size the **streaming run goes first**: `VmHWM` is a
//! monotone per-process high-water mark, so the lower-footprint mode
//! must be sampled before the full-history mode at the same size or
//! its reading would just echo the materialized peak.

use std::time::Instant;

use yoso_core::messages::Post;
use yoso_core::{Engine, ExecutionConfig, ProtocolParams};
use yoso_field::{allocstats, F61};
use yoso_runtime::{Adversary, BulletinBoard, PhaseAccumulator};

use crate::{random_inputs, rng, workload};

/// Committee sizes for the full profile (Table 1's range).
pub const FULL_SIZES: [usize; 3] = [512, 1024, 2048];
/// Committee sizes for `--smoke` (CI-fast, asserts transcript identity
/// but not the allocation ratio).
pub const SMOKE_SIZES: [usize; 2] = [32, 64];
/// Corruption gap used throughout the experiments.
pub const EPSILON: f64 = 0.25;

/// One protocol execution's measurements.
#[derive(Debug, Clone)]
pub struct ModeRun {
    /// `"streaming"` or `"materialized"`.
    pub mode: &'static str,
    /// Total wall-clock seconds.
    pub wall_secs: f64,
    /// Per-stage wall-clock seconds, in execution order.
    pub stage_wall_secs: Vec<(&'static str, f64)>,
    /// Hot-path buffer allocations recorded by
    /// [`yoso_field::allocstats`] during the run.
    pub hot_allocs: u64,
    /// Process-wide allocation count delta (`None` without the
    /// `bench-alloc` feature in the host binary).
    pub global_allocs: Option<u64>,
    /// Process-wide allocated-bytes delta (same gating).
    pub global_alloc_bytes: Option<u64>,
    /// FNV-1a 64 hash of the full transcript.
    pub transcript_hash: u64,
    /// `VmHWM` sampled right after the run (monotone per process).
    pub peak_rss_kb: Option<u64>,
    /// `VmRSS` sampled right after the run.
    pub rss_kb: Option<u64>,
    /// Synchronous rounds the run consumed.
    pub rounds: u64,
}

/// Both executions at one committee size.
#[derive(Debug, Clone)]
pub struct SizeReport {
    /// Committee size.
    pub n: usize,
    /// Packing factor.
    pub k: usize,
    /// Corruption threshold.
    pub t: usize,
    /// Multiplication gates in the workload circuit.
    pub mul_gates: usize,
    /// Run seed (deterministic per size).
    pub seed: u64,
    /// The streaming-mode run (always executed first).
    pub streaming: ModeRun,
    /// The materialized (legacy) run.
    pub materialized: ModeRun,
}

impl SizeReport {
    /// Materialized-over-streaming hot-path allocation ratio.
    pub fn hot_alloc_ratio(&self) -> f64 {
        self.materialized.hot_allocs as f64 / self.streaming.hot_allocs.max(1) as f64
    }
}

fn read_status_kb(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            let v = rest
                .trim_start_matches(':')
                .trim()
                .trim_end_matches("kB")
                .trim();
            return v.parse().ok();
        }
    }
    None
}

/// Peak resident set size in kB (`VmHWM`; Linux only, monotone per
/// process — sample the low-footprint mode first).
pub fn peak_rss_kb() -> Option<u64> {
    read_status_kb("VmHWM")
}

/// Current resident set size in kB (`VmRSS`; Linux only).
pub fn current_rss_kb() -> Option<u64> {
    read_status_kb("VmRSS")
}

#[cfg(feature = "bench-alloc")]
fn global_alloc_sample() -> Option<(u64, u64)> {
    let s = stats_alloc::INSTRUMENTED_SYSTEM.stats();
    Some((s.allocations, s.bytes_allocated))
}

#[cfg(not(feature = "bench-alloc"))]
fn global_alloc_sample() -> Option<(u64, u64)> {
    None
}

fn run_mode(
    params: ProtocolParams,
    circuit: &yoso_circuit::Circuit<F61>,
    inputs: &[Vec<F61>],
    seed: u64,
    streaming: bool,
) -> (ModeRun, Vec<Vec<F61>>) {
    let cfg = if streaming {
        ExecutionConfig {
            produce_proofs: false,
            ..ExecutionConfig::default()
        }
        .with_streaming()
    } else {
        // The legacy profile the streaming path is compared against:
        // full posting history, fresh buffers per call. Proofs are off
        // in both modes so the comparison isolates the share hot path.
        ExecutionConfig {
            produce_proofs: false,
            audit_board: true,
            ..ExecutionConfig::default()
        }
    };
    let engine = Engine::new(params, cfg);
    let board: BulletinBoard<Post> = BulletinBoard::new();
    let mut r = rng(seed);

    allocstats::reset();
    let global_before = global_alloc_sample();
    let start = Instant::now();
    let run = engine
        .run_with_board(&mut r, circuit, inputs, &Adversary::none(), &board)
        .expect("scale bench run succeeds");
    let wall_secs = start.elapsed().as_secs_f64();
    let hot_allocs = allocstats::hot_allocs();
    let global_after = global_alloc_sample();

    let transcript_hash = match run.transcript_hash {
        Some(h) => h,
        None => {
            // Materialized runs keep the whole posting history; fold it
            // through the same accumulator the streaming path uses so
            // the two hashes are comparable line for line.
            let mut acc = PhaseAccumulator::new();
            acc.finish(&board).expect("materialized board is readable");
            acc.transcript_hash()
        }
    };

    let (global_allocs, global_alloc_bytes) = match (global_before, global_after) {
        (Some((a0, b0)), Some((a1, b1))) => (Some(a1 - a0), Some(b1 - b0)),
        _ => (None, None),
    };

    (
        ModeRun {
            mode: if streaming { "streaming" } else { "materialized" },
            wall_secs,
            stage_wall_secs: run.stage_wall_secs.clone(),
            hot_allocs,
            global_allocs,
            global_alloc_bytes,
            transcript_hash,
            peak_rss_kb: peak_rss_kb(),
            rss_kb: current_rss_kb(),
            rounds: run.rounds,
        },
        run.outputs,
    )
}

/// Profiles one committee size: streaming first (see module docs),
/// then materialized, pinning output equality across the two.
pub fn profile_size(n: usize) -> SizeReport {
    let params = ProtocolParams::from_gap(n, EPSILON).expect("Table-1 sizes are feasible");
    let seed = 97 + n as u64;
    let mut r = rng(seed);
    let circuit = workload(params.k, 1, 2);
    let inputs = random_inputs(&mut r, &circuit);
    let mul_gates = circuit.mul_count();

    let (streaming, out_s) = run_mode(params, &circuit, &inputs, seed, true);
    let (materialized, out_m) = run_mode(params, &circuit, &inputs, seed, false);
    assert_eq!(out_s, out_m, "streaming must not change outputs (n = {n})");

    SizeReport {
        n,
        k: params.k,
        t: params.t,
        mul_gates,
        seed,
        streaming,
        materialized,
    }
}

/// One execution of the distributed-transform profile.
#[derive(Debug, Clone)]
pub struct TransformRun {
    /// `"solo-dist"`, `"fleet-dist"` or `"fleet-replicated"`.
    pub label: &'static str,
    /// In-process workers sharing the board.
    pub workers: usize,
    /// Whether the Step-4 packing transforms were distributed.
    pub dist: bool,
    /// Total wall-clock seconds for the whole fleet.
    pub wall_secs: f64,
    /// Per-stage wall-clock seconds of the leader worker.
    pub stage_wall_secs: Vec<(&'static str, f64)>,
    /// Fleet-total NTT butterfly multiplications
    /// ([`yoso_field::transformstats`]; global counters, so worker
    /// threads sum into one fleet figure).
    pub butterfly_muls: u64,
    /// Fleet-total slice-evaluation multiplications (range Horner,
    /// dealing-basis dots, ciphertext-row evaluations).
    pub slice_muls: u64,
    /// FNV-1a 64 hash of the full transcript.
    pub transcript_hash: u64,
}

impl TransformRun {
    /// Fleet-total transform operations (butterflies + slice muls).
    pub fn transform_ops(&self) -> u64 {
        self.butterfly_muls + self.slice_muls
    }

    /// Average transform operations per worker.
    pub fn per_worker_ops(&self) -> f64 {
        self.transform_ops() as f64 / self.workers.max(1) as f64
    }
}

/// The solo-vs-fleet transform breakdown at one committee size: the
/// distributed-transform fleet must post a byte-identical transcript
/// while doing strictly less total transform work than a replicated
/// fleet, so its per-worker share *decreases* with the worker count
/// instead of staying flat.
#[derive(Debug, Clone)]
pub struct TransformReport {
    /// Committee size.
    pub n: usize,
    /// Packing factor.
    pub k: usize,
    /// Corruption threshold.
    pub t: usize,
    /// Multiplication gates in the workload circuit.
    pub mul_gates: usize,
    /// Run seed.
    pub seed: u64,
    /// Single worker, transforms distributed (degenerate split: it
    /// owns every row).
    pub solo_dist: TransformRun,
    /// Four workers, transforms distributed.
    pub fleet_dist: TransformRun,
    /// Four workers, transforms replicated (the pre-distribution
    /// profile: every worker runs every transform).
    pub fleet_replicated: TransformRun,
}

fn run_transform(
    params: ProtocolParams,
    circuit: &yoso_circuit::Circuit<F61>,
    inputs: &[Vec<F61>],
    seed: u64,
    workers: usize,
    dist: bool,
    label: &'static str,
) -> TransformRun {
    use yoso_field::transformstats;

    let base = ExecutionConfig {
        produce_proofs: false,
        audit_board: true,
        ..ExecutionConfig::default()
    };
    let base = if dist { base.with_dist_transform() } else { base };

    let board: BulletinBoard<Post> = BulletinBoard::new();
    // Deltas, not resets: the counters are process-global, so
    // concurrent test threads must not clobber each other's window
    // start (the bench binary itself runs the profiles sequentially).
    let b0 = transformstats::butterfly_muls();
    let s0 = transformstats::slice_muls();
    let start = Instant::now();
    let leader_run = if workers == 1 {
        let mut r = rng(seed);
        Engine::new(params, base)
            .run_with_board(&mut r, circuit, inputs, &Adversary::none(), &board)
            .expect("transform profile solo run succeeds")
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let board = board.clone();
                    s.spawn(move || {
                        let cfg = base.with_partition(params.worker_role_range(w, workers));
                        let mut r = rng(seed);
                        Engine::new(params, cfg)
                            .run_with_board(&mut r, circuit, inputs, &Adversary::none(), &board)
                            .expect("transform profile worker run succeeds")
                    })
                })
                .collect();
            let mut runs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            runs.swap_remove(0)
        })
    };
    let wall_secs = start.elapsed().as_secs_f64();
    let butterfly_muls = transformstats::butterfly_muls() - b0;
    let slice_muls = transformstats::slice_muls() - s0;

    let mut acc = PhaseAccumulator::new();
    acc.finish(&board).expect("transform profile board is readable");

    TransformRun {
        label,
        workers,
        dist,
        wall_secs,
        stage_wall_secs: leader_run.stage_wall_secs,
        butterfly_muls,
        slice_muls,
        transcript_hash: acc.transcript_hash(),
    }
}

/// Committee size of the transform breakdown (full profile). The
/// breakdown measures work *distribution*, not scaling in `n`, so one
/// moderate size keeps the 4-worker in-process runs cheap.
pub const TRANSFORM_N: usize = 128;
/// Committee size of the transform breakdown under `--smoke`.
pub const TRANSFORM_SMOKE_N: usize = 32;
/// Worker count of the fleet rows.
pub const TRANSFORM_WORKERS: usize = 4;

/// Profiles the distributed transform at one size: solo vs 4-worker
/// fleet with transforms distributed, plus a replicated 4-worker fleet
/// as the baseline column.
pub fn profile_transform(n: usize) -> TransformReport {
    let params = ProtocolParams::from_gap(n, EPSILON).expect("transform profile size is feasible");
    let seed = 131 + n as u64;
    let mut r = rng(seed);
    let circuit = workload(params.k, 1, 2);
    let inputs = random_inputs(&mut r, &circuit);

    let solo_dist = run_transform(params, &circuit, &inputs, seed, 1, true, "solo-dist");
    let fleet_dist =
        run_transform(params, &circuit, &inputs, seed, TRANSFORM_WORKERS, true, "fleet-dist");
    let fleet_replicated = run_transform(
        params,
        &circuit,
        &inputs,
        seed,
        TRANSFORM_WORKERS,
        false,
        "fleet-replicated",
    );

    TransformReport {
        n,
        k: params.k,
        t: params.t,
        mul_gates: circuit.mul_count(),
        seed,
        solo_dist,
        fleet_dist,
        fleet_replicated,
    }
}

fn push_transform_json(json: &mut String, run: &TransformRun, last: bool) {
    use std::fmt::Write as _;
    writeln!(json, "      {{").unwrap();
    writeln!(json, "        \"label\": \"{}\",", run.label).unwrap();
    writeln!(json, "        \"workers\": {},", run.workers).unwrap();
    writeln!(json, "        \"dist\": {},", run.dist).unwrap();
    writeln!(json, "        \"wall_secs\": {:.6},", run.wall_secs).unwrap();
    writeln!(json, "        \"stage_wall_secs\": {{").unwrap();
    for (i, (name, secs)) in run.stage_wall_secs.iter().enumerate() {
        let comma = if i + 1 == run.stage_wall_secs.len() { "" } else { "," };
        writeln!(json, "          \"{name}\": {secs:.6}{comma}").unwrap();
    }
    writeln!(json, "        }},").unwrap();
    writeln!(json, "        \"butterfly_muls\": {},", run.butterfly_muls).unwrap();
    writeln!(json, "        \"slice_muls\": {},", run.slice_muls).unwrap();
    writeln!(json, "        \"transform_ops\": {},", run.transform_ops()).unwrap();
    writeln!(json, "        \"per_worker_transform_ops\": {:.1},", run.per_worker_ops()).unwrap();
    writeln!(json, "        \"transcript_hash\": \"{:#018x}\"", run.transcript_hash).unwrap();
    writeln!(json, "      }}{}", if last { "" } else { "," }).unwrap();
}

fn push_mode_json(json: &mut String, run: &ModeRun, mul_gates: usize, last: bool) {
    use std::fmt::Write as _;
    let opt = |v: Option<u64>| v.map_or_else(|| "null".into(), |x| x.to_string());
    writeln!(json, "        {{").unwrap();
    writeln!(json, "          \"mode\": \"{}\",", run.mode).unwrap();
    writeln!(json, "          \"wall_secs\": {:.6},", run.wall_secs).unwrap();
    writeln!(json, "          \"stage_wall_secs\": {{").unwrap();
    for (i, (name, secs)) in run.stage_wall_secs.iter().enumerate() {
        let comma = if i + 1 == run.stage_wall_secs.len() { "" } else { "," };
        writeln!(json, "            \"{name}\": {secs:.6}{comma}").unwrap();
    }
    writeln!(json, "          }},").unwrap();
    writeln!(json, "          \"hot_allocs\": {},", run.hot_allocs).unwrap();
    writeln!(
        json,
        "          \"hot_allocs_per_gate\": {:.4},",
        run.hot_allocs as f64 / mul_gates.max(1) as f64
    )
    .unwrap();
    writeln!(json, "          \"global_allocs\": {},", opt(run.global_allocs)).unwrap();
    writeln!(
        json,
        "          \"global_alloc_bytes\": {},",
        opt(run.global_alloc_bytes)
    )
    .unwrap();
    writeln!(
        json,
        "          \"transcript_hash\": \"{:#018x}\",",
        run.transcript_hash
    )
    .unwrap();
    writeln!(json, "          \"peak_rss_kb\": {},", opt(run.peak_rss_kb)).unwrap();
    writeln!(json, "          \"rss_kb\": {},", opt(run.rss_kb)).unwrap();
    writeln!(json, "          \"rounds\": {}", run.rounds).unwrap();
    writeln!(json, "        }}{}", if last { "" } else { "," }).unwrap();
}

/// Runs the full profile, writes `BENCH_scale.json`, prints a summary
/// and (full mode only) enforces the acceptance gates. Returns the
/// per-size reports for callers that want to post-process.
pub fn run_scale(smoke: bool) -> Vec<SizeReport> {
    use std::fmt::Write as _;

    let sizes: &[usize] = if smoke { &SMOKE_SIZES } else { &FULL_SIZES };
    println!(
        "bench-scale: n in {:?}, epsilon = {EPSILON}{}",
        sizes,
        if smoke { " (smoke)" } else { "" }
    );
    if global_alloc_sample().is_none() {
        println!(
            "bench-scale: counting allocator not linked (build with --features bench-alloc); \
             global_allocs will be null"
        );
    }

    let reports: Vec<SizeReport> = sizes
        .iter()
        .map(|&n| {
            let rep = profile_size(n);
            println!(
                "  n={:5}  k={:4}  t={:4}  gates={:5}  hot allocs {:>9} (materialized) vs {:>7} \
                 (streaming), ratio {:.1}x, hash {:#018x}",
                rep.n,
                rep.k,
                rep.t,
                rep.mul_gates,
                rep.materialized.hot_allocs,
                rep.streaming.hot_allocs,
                rep.hot_alloc_ratio(),
                rep.streaming.transcript_hash,
            );
            rep
        })
        .collect();

    let transform = profile_transform(if smoke { TRANSFORM_SMOKE_N } else { TRANSFORM_N });
    println!(
        "  transform n={}: fleet-dist {} ops over {} workers ({:.0}/worker) vs solo {} ops; \
         replicated fleet {} ops",
        transform.n,
        transform.fleet_dist.transform_ops(),
        transform.fleet_dist.workers,
        transform.fleet_dist.per_worker_ops(),
        transform.solo_dist.transform_ops(),
        transform.fleet_replicated.transform_ops(),
    );

    let mut json = String::from("{\n");
    writeln!(json, "  \"bench\": \"scale\",").unwrap();
    writeln!(json, "  \"smoke\": {smoke},").unwrap();
    writeln!(json, "  \"epsilon\": {EPSILON},").unwrap();
    writeln!(json, "  \"sizes\": [").unwrap();
    for (i, rep) in reports.iter().enumerate() {
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"n\": {},", rep.n).unwrap();
        writeln!(json, "      \"k\": {},", rep.k).unwrap();
        writeln!(json, "      \"t\": {},", rep.t).unwrap();
        writeln!(json, "      \"mul_gates\": {},", rep.mul_gates).unwrap();
        writeln!(json, "      \"seed\": {},", rep.seed).unwrap();
        writeln!(json, "      \"hot_alloc_ratio\": {:.4},", rep.hot_alloc_ratio()).unwrap();
        writeln!(
            json,
            "      \"transcript_identical\": {},",
            rep.streaming.transcript_hash == rep.materialized.transcript_hash
        )
        .unwrap();
        writeln!(json, "      \"modes\": [").unwrap();
        push_mode_json(&mut json, &rep.streaming, rep.mul_gates, false);
        push_mode_json(&mut json, &rep.materialized, rep.mul_gates, true);
        writeln!(json, "      ]").unwrap();
        writeln!(json, "    }}{}", if i + 1 == reports.len() { "" } else { "," }).unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"transform\": {{").unwrap();
    writeln!(json, "    \"n\": {},", transform.n).unwrap();
    writeln!(json, "    \"k\": {},", transform.k).unwrap();
    writeln!(json, "    \"t\": {},", transform.t).unwrap();
    writeln!(json, "    \"mul_gates\": {},", transform.mul_gates).unwrap();
    writeln!(json, "    \"seed\": {},", transform.seed).unwrap();
    writeln!(
        json,
        "    \"dist_transcript_identical\": {},",
        transform.solo_dist.transcript_hash == transform.fleet_dist.transcript_hash
    )
    .unwrap();
    writeln!(json, "    \"runs\": [").unwrap();
    push_transform_json(&mut json, &transform.solo_dist, false);
    push_transform_json(&mut json, &transform.fleet_dist, false);
    push_transform_json(&mut json, &transform.fleet_replicated, true);
    writeln!(json, "    ]").unwrap();
    writeln!(json, "  }},").unwrap();
    let rss_reported = reports
        .iter()
        .all(|r| r.streaming.peak_rss_kb.is_some() && r.materialized.peak_rss_kb.is_some());
    writeln!(json, "  \"acceptance\": {{").unwrap();
    writeln!(
        json,
        "    \"transcript_identical_all_sizes\": {},",
        reports
            .iter()
            .all(|r| r.streaming.transcript_hash == r.materialized.transcript_hash)
    )
    .unwrap();
    writeln!(
        json,
        "    \"hot_alloc_ratio_at_max_n\": {:.4},",
        reports.last().map_or(0.0, SizeReport::hot_alloc_ratio)
    )
    .unwrap();
    writeln!(json, "    \"peak_rss_reported\": {rss_reported},").unwrap();
    writeln!(
        json,
        "    \"transform_transcript_identical\": {},",
        transform.solo_dist.transcript_hash == transform.fleet_dist.transcript_hash
    )
    .unwrap();
    writeln!(
        json,
        "    \"transform_per_worker_ops_ratio\": {:.4},",
        transform.fleet_dist.per_worker_ops() / transform.solo_dist.per_worker_ops().max(1.0)
    )
    .unwrap();
    writeln!(
        json,
        "    \"transform_fleet_vs_replicated_ops_ratio\": {:.4}",
        transform.fleet_dist.transform_ops() as f64
            / transform.fleet_replicated.transform_ops().max(1) as f64
    )
    .unwrap();
    writeln!(json, "  }}").unwrap();
    json.push('}');
    json.push('\n');

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, &json).expect("write BENCH_scale.json");
    println!("wrote {path}");

    // Transcript identity is the correctness pin for the whole
    // streaming path — enforced even in smoke mode.
    for rep in &reports {
        assert_eq!(
            rep.streaming.transcript_hash, rep.materialized.transcript_hash,
            "streaming transcript diverged from materialized at n = {}",
            rep.n
        );
    }
    println!("transcripts byte-identical at every size — ok");

    // Distributed-transform gates hold in smoke mode too: the op
    // counters are deterministic, and transcript identity is the
    // correctness pin of the distribution.
    assert_eq!(
        transform.solo_dist.transcript_hash, transform.fleet_dist.transcript_hash,
        "distributed-transform fleet transcript diverged from solo at n = {}",
        transform.n
    );
    assert!(
        transform.fleet_dist.per_worker_ops() < transform.solo_dist.per_worker_ops(),
        "per-worker transform ops must shrink with the worker count ({:.0} fleet vs {:.0} solo)",
        transform.fleet_dist.per_worker_ops(),
        transform.solo_dist.per_worker_ops()
    );
    assert!(
        transform.fleet_dist.transform_ops() < transform.fleet_replicated.transform_ops(),
        "distributed fleet must do less total transform work than a replicated fleet \
         ({} vs {})",
        transform.fleet_dist.transform_ops(),
        transform.fleet_replicated.transform_ops()
    );
    println!(
        "transform: per-worker ops {:.0} (fleet) < {:.0} (solo), fleet total {} < {} replicated — ok",
        transform.fleet_dist.per_worker_ops(),
        transform.solo_dist.per_worker_ops(),
        transform.fleet_dist.transform_ops(),
        transform.fleet_replicated.transform_ops()
    );
    let hw = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    if !smoke && hw >= 4 {
        // Only meaningful when the 4 worker threads actually run in
        // parallel; on narrower hosts the fleet rows time-share one
        // core and the comparison is pure scheduler noise.
        assert!(
            transform.fleet_dist.wall_secs <= transform.fleet_replicated.wall_secs * 1.05,
            "distributed fleet must not be slower than the replicated fleet \
             ({:.3}s vs {:.3}s on {hw} hardware threads)",
            transform.fleet_dist.wall_secs,
            transform.fleet_replicated.wall_secs
        );
        println!(
            "transform wall: fleet-dist {:.3}s <= replicated {:.3}s * 1.05 — ok",
            transform.fleet_dist.wall_secs, transform.fleet_replicated.wall_secs
        );
    } else {
        println!(
            "transform wall recorded but not asserted ({} hardware threads{})",
            hw,
            if smoke { ", smoke mode" } else { "" }
        );
    }

    if smoke {
        println!("smoke mode: allocation-ratio and RSS acceptance assertions skipped");
        return reports;
    }

    let last = reports.last().expect("at least one size");
    assert!(
        last.hot_alloc_ratio() >= 2.0,
        "streaming path must allocate >= 2x fewer hot-path buffers at n = {} (ratio {:.2})",
        last.n,
        last.hot_alloc_ratio()
    );
    println!(
        "hot-path allocation ratio at n = {}: {:.1}x >= 2x — ok",
        last.n,
        last.hot_alloc_ratio()
    );
    if cfg!(target_os = "linux") {
        assert!(rss_reported, "peak RSS must be reported on Linux");
        println!("peak RSS reported for every run — ok");
    } else {
        println!("peak RSS recorded but not asserted (non-Linux host)");
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The transform counters are process-global, so tests that run
    /// full protocol executions serialize on this lock to keep each
    /// other's deltas clean.
    static COUNTER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn rss_readout_works_on_linux() {
        if cfg!(target_os = "linux") {
            // Two separate /proc reads race against allocation between
            // them, so only read-once sanity is asserted here.
            let rss = current_rss_kb().expect("VmRSS present");
            assert!(rss > 0);
            let hwm = peak_rss_kb().expect("VmHWM present");
            assert!(hwm > 0);
        }
    }

    #[test]
    fn transform_profile_distributes_work() {
        let _guard = COUNTER_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let rep = profile_transform(16);
        assert_eq!(
            rep.solo_dist.transcript_hash, rep.fleet_dist.transcript_hash,
            "fleet dist transcript must match solo dist"
        );
        assert!(rep.solo_dist.transform_ops() > 0);
        assert!(
            rep.fleet_dist.transform_ops() < rep.fleet_replicated.transform_ops(),
            "distributing must cut fleet-total transform work ({} vs {})",
            rep.fleet_dist.transform_ops(),
            rep.fleet_replicated.transform_ops()
        );
        assert!(
            rep.fleet_dist.per_worker_ops() < rep.solo_dist.per_worker_ops(),
            "per-worker transform work must decrease with the worker count"
        );
    }

    #[test]
    fn tiny_profile_is_internally_consistent() {
        let _guard = COUNTER_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let rep = profile_size(16);
        assert_eq!(
            rep.streaming.transcript_hash,
            rep.materialized.transcript_hash
        );
        assert_eq!(rep.streaming.rounds, rep.materialized.rounds);
        assert!(rep.streaming.hot_allocs > 0);
        assert!(
            rep.materialized.hot_allocs > rep.streaming.hot_allocs,
            "fresh-buffer mode must allocate more ({} vs {})",
            rep.materialized.hot_allocs,
            rep.streaming.hot_allocs
        );
    }
}
