//! Distributed-transform parity (DESIGN §13): with `dist_transform`
//! enabled, the fleet transcript — including the per-batch
//! `TransformSlice` records — must be byte-identical to the solo run
//! at worker counts 1/2/4/8, through uneven role splits and workers
//! that own zero roles. The slice-dealing half is pinned by a
//! proptest: the union of `share_slice_into` slices over any
//! `RolePartition::of_workers` split reproduces the full deal
//! bit-for-bit on both the Lagrange and the Subgroup/NTT paths.

use proptest::prelude::*;
use rand::SeedableRng;
use yoso_circuit::generators;
use yoso_core::messages::Post;
use yoso_core::{Engine, ExecutionConfig, ProtocolParams, RolePartition, RunResult};
use yoso_field::{F61, PrimeField};
use yoso_pss_sharing::{PackedSharing, PointLayout, PssScratch};
use yoso_runtime::{Adversary, BulletinBoard};

fn f(v: u64) -> F61 {
    F61::from(v)
}

const SEED: u64 = 90125;

fn workload(params: ProtocolParams) -> (yoso_circuit::Circuit<F61>, Vec<Vec<F61>>) {
    let width = 2 * params.k;
    let circuit = generators::inner_product::<F61>(width).unwrap();
    let inputs: Vec<Vec<F61>> = vec![
        (1..=width as u64).map(f).collect(),
        (10..10 + width as u64).map(f).collect(),
    ];
    (circuit, inputs)
}

fn render(board: &BulletinBoard<Post>) -> String {
    let mut transcript = String::new();
    for p in board.postings().unwrap() {
        transcript.push_str(&format!("{}|{}|{}|{:?}\n", p.round, p.from, p.phase, p.message));
    }
    transcript
}

/// Single-process reference run with distributed transforms on.
fn solo_run(params: ProtocolParams) -> (String, RunResult<F61>) {
    let (circuit, inputs) = workload(params);
    let board: BulletinBoard<Post> = BulletinBoard::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    let run = Engine::new(params, ExecutionConfig::default().with_dist_transform())
        .run_with_board(&mut rng, &circuit, &inputs, &Adversary::none(), &board)
        .unwrap();
    (render(&board), run)
}

/// `workers` in-process workers sharing one board, each owning its
/// canonical role range, all with distributed transforms on.
fn sharded_run(params: ProtocolParams, workers: usize) -> (String, Vec<RunResult<F61>>) {
    let (circuit, inputs) = workload(params);
    let board: BulletinBoard<Post> = BulletinBoard::new();
    let runs: Vec<RunResult<F61>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let board = board.clone();
                let circuit = &circuit;
                let inputs = &inputs;
                s.spawn(move || {
                    let cfg = ExecutionConfig::default()
                        .with_dist_transform()
                        .with_partition(params.worker_role_range(w, workers));
                    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
                    Engine::new(params, cfg)
                        .run_with_board(&mut rng, circuit, inputs, &Adversary::none(), &board)
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    (render(&board), runs)
}

#[test]
fn dist_transform_posts_slices_and_preserves_outputs() {
    // The dist-transform run must compute the exact same result as the
    // replicated reference (same RNG stream by construction), with the
    // transcript differing only by the added TransformSlice records.
    let params = ProtocolParams::new(10, 2, 3).unwrap();
    let (circuit, inputs) = workload(params);
    let board: BulletinBoard<Post> = BulletinBoard::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    let reference = Engine::new(params, ExecutionConfig::default())
        .run_with_board(&mut rng, &circuit, &inputs, &Adversary::none(), &board)
        .unwrap();
    let reference_log = render(&board);
    assert!(!reference_log.contains("TransformSlice"));

    let (dist_log, dist) = solo_run(params);
    assert_eq!(reference.outputs, dist.outputs);
    assert_eq!(reference.mu, dist.mu);
    assert!(dist_log.contains("TransformSlice"), "dist run must post slice records");
    // Stripping the TransformSlice lines recovers the replicated
    // transcript exactly: every other posting is untouched.
    let stripped: String =
        dist_log.lines().filter(|l| !l.contains("TransformSlice")).fold(String::new(), |mut s, l| {
            s.push_str(l);
            s.push('\n');
            s
        });
    assert_eq!(reference_log, stripped);
}

#[test]
fn dist_transform_sharded_transcript_byte_identical_to_solo() {
    let params = ProtocolParams::new(10, 2, 3).unwrap();
    let (solo_log, solo) = solo_run(params);
    assert!(solo_log.contains("TransformSlice"));
    // 2 splits n = 10 evenly; 4 and 8 give uneven role ranges.
    for workers in [2usize, 4, 8] {
        let (log, runs) = sharded_run(params, workers);
        assert_eq!(
            solo_log, log,
            "{workers}-worker dist-transform transcript must match single-process"
        );
        for (w, run) in runs.iter().enumerate() {
            assert_eq!(solo.outputs, run.outputs, "worker {w}/{workers} outputs");
            assert_eq!(solo.mu, run.mu, "worker {w}/{workers} mu");
            assert_eq!(solo.phases, run.phases, "worker {w}/{workers} phases");
        }
    }
}

#[test]
fn dist_transform_zero_role_worker_agrees() {
    // 12 workers over n = 10: worker 0 owns [0, 0) and posts no slice
    // contributions, yet must still converge on the same transcript.
    let params = ProtocolParams::new(10, 2, 3).unwrap();
    let empty = params.worker_role_range(0, 12);
    assert_eq!((empty.lo(), empty.hi()), (0, 0));
    let (solo_log, solo) = solo_run(params);
    let (log, runs) = sharded_run(params, 12);
    assert_eq!(solo_log, log);
    assert_eq!(solo.outputs, runs[0].outputs);
    assert_eq!(solo.mu, runs[0].mu);
}

/// Unions the `share_slice_into` slices of a `workers`-way partition,
/// re-seeding the dealer RNG from `seed` for each slice — the same
/// discipline `ItEngine::deal_distributed` uses, since every slice
/// call draws the full random tail.
fn union_deal(
    scheme: &PackedSharing<F61>,
    seed: u64,
    secrets: &[F61],
    degree: usize,
    workers: usize,
) -> Vec<F61> {
    let n = scheme.n();
    let mut union: Vec<F61> = Vec::with_capacity(n);
    let mut slice = Vec::new();
    let mut scratch = PssScratch::default();
    for w in 0..workers {
        let part = RolePartition::of_workers(w, workers, n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        scheme
            .share_slice_into(&mut rng, secrets, degree, part.lo(), part.hi(), &mut slice, &mut scratch)
            .unwrap();
        union.extend_from_slice(&slice);
    }
    union
}

/// (n, k, degree) with 1 <= k <= degree+1 <= n — small enough for the
/// Lagrange path, uneven under most worker splits.
fn small_params() -> impl Strategy<Value = (usize, usize, usize)> {
    (3usize..20).prop_flat_map(|n| {
        (1usize..=n.min(5)).prop_flat_map(move |k| ((k - 1)..n).prop_map(move |d| (n, k, d)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn slice_union_matches_full_lagrange_deal(
        (n, k, d) in small_params(), seed in any::<u64>(), secrets_seed in any::<u64>()
    ) {
        let scheme = PackedSharing::<F61>::new(n, k).unwrap();
        let mut srng = rand::rngs::StdRng::seed_from_u64(secrets_seed);
        let secrets: Vec<F61> = (0..k).map(|_| F61::random(&mut srng)).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let full = scheme.share(&mut rng, &secrets, d).unwrap();
        // Worker counts past n force zero-role slices; counts that do
        // not divide n force uneven ones.
        for workers in [1usize, 2, 4, 8] {
            let union = union_deal(&scheme, seed, &secrets, d, workers);
            prop_assert_eq!(
                full.values(), &union[..],
                "n={} k={} d={} workers={}", n, k, d, workers
            );
        }
    }

    #[test]
    fn slice_union_matches_full_ntt_deal(
        seed in any::<u64>(), secrets_seed in any::<u64>(), workers in 1usize..10
    ) {
        // Sized so degree + 1 = 64 clears the NTT dealing crossover on
        // the Subgroup layout: the full deal runs the prefix-inverse +
        // forward transform, slices run prefix-inverse + range Horner.
        let (n, k) = (90usize, 6usize);
        let d = 63;
        let fast = PackedSharing::<F61>::with_layout(n, k, PointLayout::Subgroup).unwrap();
        let mut slow = PackedSharing::<F61>::with_layout(n, k, PointLayout::Subgroup).unwrap();
        slow.disable_ntt();
        let mut srng = rand::rngs::StdRng::seed_from_u64(secrets_seed);
        let secrets: Vec<F61> = (0..k).map(|_| F61::random(&mut srng)).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let full = fast.share(&mut rng, &secrets, d).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let lagrange = slow.share(&mut rng, &secrets, d).unwrap();
        // NTT and Lagrange full deals agree, and the slice unions hit
        // the same bits through both machineries.
        prop_assert_eq!(full.values(), lagrange.values());
        let union = union_deal(&fast, seed, &secrets, d, workers);
        prop_assert_eq!(full.values(), &union[..], "ntt union, workers={}", workers);
        let slow_union = union_deal(&slow, seed, &secrets, d, workers);
        prop_assert_eq!(full.values(), &slow_union[..], "lagrange union, workers={}", workers);
    }
}
