//! White-box invariants of the online phase: the Turbopack relation
//! `v = μ + λ` on **every** wire, and output-step simulatability (the
//! Appendix-B Hybrid 3/4 step, executable).

use rand::SeedableRng;
use yoso_circuit::generators;
use yoso_core::offline::run_offline;
use yoso_core::online::run_online;
use yoso_core::setup::run_setup;
use yoso_core::{ExecutionConfig, ProtocolParams};
use yoso_field::{F61, PrimeField};
use yoso_runtime::{ActiveAttack, Adversary, BulletinBoard, Committee, LeakLog};
use yoso_the::mock::{LinearPke, MockTe};

#[test]
fn v_equals_mu_plus_lambda_on_every_wire() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(161);
    let params = ProtocolParams::new(10, 2, 2).unwrap();
    let cfg = ExecutionConfig::default();
    let circuit = generators::federated_stats::<F61>(2, 3).unwrap();
    let bc = circuit.batched(params.k);
    let board = BulletinBoard::new();

    let inputs: Vec<Vec<F61>> = circuit
        .inputs_per_client()
        .iter()
        .map(|ws| ws.iter().map(|_| F61::random(&mut rng)).collect())
        .collect();
    let wire_values = circuit.evaluate_wires(&inputs).unwrap();

    let setup =
        run_setup::<F61, _>(&mut rng, &params, &board, circuit.mul_depth(), circuit.clients())
            .unwrap();
    let offline =
        run_offline(&mut rng, &params, &board, &Adversary::none(), &cfg, &bc, &setup).unwrap();

    // Oracle-decrypt the λ masks before the online phase consumes the
    // artifacts (the chain is cloned; decrypting does not disturb it).
    let oracle = Committee::honest("oracle", params.n);
    let lambdas = offline
        .tsk
        .decrypt(&mut rng, &board, &oracle, &cfg, "test-oracle", &offline.lambda_cts)
        .unwrap();

    let online = run_online(
        &mut rng,
        &params,
        &board,
        &Adversary::none(),
        &cfg,
        &bc,
        &setup,
        offline,
        &inputs,
        &LeakLog::new(),
    )
    .unwrap();

    // The paper's central invariant (§3.1/§5.3): every wire satisfies
    // v = μ + λ.
    for w in 0..circuit.wire_count() {
        assert_eq!(
            wire_values[w],
            online.mu[w] + lambdas[w],
            "wire {w}: v = μ + λ must hold"
        );
    }
}

#[test]
fn v_equals_mu_plus_lambda_under_attack() {
    // The invariant survives t active corruptions in every committee.
    let mut rng = rand::rngs::StdRng::seed_from_u64(162);
    let params = ProtocolParams::new(12, 3, 2).unwrap();
    let cfg = ExecutionConfig::default();
    let adversary = Adversary::active(3, ActiveAttack::WrongValue);
    let circuit = generators::poly_eval::<F61>(3).unwrap();
    let bc = circuit.batched(params.k);
    let board = BulletinBoard::new();

    let inputs: Vec<Vec<F61>> = circuit
        .inputs_per_client()
        .iter()
        .map(|ws| ws.iter().map(|_| F61::random(&mut rng)).collect())
        .collect();
    let wire_values = circuit.evaluate_wires(&inputs).unwrap();

    let setup =
        run_setup::<F61, _>(&mut rng, &params, &board, circuit.mul_depth(), circuit.clients())
            .unwrap();
    let offline = run_offline(&mut rng, &params, &board, &adversary, &cfg, &bc, &setup).unwrap();
    let oracle = Committee::honest("oracle", params.n);
    let lambdas = offline
        .tsk
        .decrypt(&mut rng, &board, &oracle, &cfg, "test-oracle", &offline.lambda_cts)
        .unwrap();
    let online = run_online(
        &mut rng, &params, &board, &adversary, &cfg, &bc, &setup, offline, &inputs,
        &LeakLog::new(),
    )
    .unwrap();
    for w in 0..circuit.wire_count() {
        assert_eq!(wire_values[w], online.mu[w] + lambdas[w]);
    }
}

#[test]
fn output_partials_are_simulatable() {
    // The Appendix-B Hybrid 3/4 step, executable: a simulator that
    // knows only (a) the corrupt parties' key shares, (b) the public μ
    // of an output wire, and (c) the output value v from the ideal
    // functionality, produces honest-looking partial decryptions that
    // combine — together with the real corrupt partials — to the
    // λ = v − μ the real protocol would reveal. No honest shares, no
    // plaintext λ from the real execution are consumed.
    let mut rng = rand::rngs::StdRng::seed_from_u64(163);
    let n = 7;
    let t = 3;
    let (pk, shares) = MockTe::<F61>::keygen(&mut rng, n, t).unwrap();

    // Real execution side: a mask ciphertext for some output wire.
    let real_lambda = F61::random(&mut rng);
    let (ct, _) = MockTe::encrypt(&mut rng, &pk, real_lambda);
    let v = F61::from(4242u64); // ideal-functionality output
    let mu = v - real_lambda; // public on the board

    // Adversary's view: corrupt partial decryptions (parties 0..t).
    let corrupt: Vec<_> = shares[..t].iter().map(|s| MockTe::partial_decrypt(s, &ct)).collect();

    // Simulator: target λ = v − μ, fake the honest partials.
    let target_lambda = v - mu;
    let honest_parties: Vec<usize> = (t..n).collect();
    let simulated = MockTe::sim_partial_decrypt(
        &mut rng,
        &pk,
        &ct,
        target_lambda,
        &corrupt,
        &honest_parties,
    )
    .unwrap();

    // The combined view decrypts to exactly the right λ, so the
    // client's v = μ + λ comes out to the ideal output.
    let mut all = corrupt.clone();
    all.extend_from_slice(&simulated);
    let opened = MockTe::combine(&pk, &ct, &all).unwrap();
    assert_eq!(opened, target_lambda);
    assert_eq!(mu + opened, v);

    // And the simulated partials can be wrapped as Re-encrypt posts:
    // encrypting them to the client's key yields an opening equal to λ.
    let client = LinearPke::<F61>::keygen(&mut rng);
    let enc_partials: Vec<(usize, yoso_the::mock::Ciphertext<F61>)> = all
        .iter()
        .map(|pd| (pd.party, LinearPke::encrypt(&mut rng, &client.public, pd.value).0))
        .collect();
    // Client-side opening (as in ReencryptedValue::open).
    let subset = &enc_partials[..t + 1];
    let points: Vec<F61> = subset.iter().map(|(p, _)| F61::from_u64(*p as u64 + 1)).collect();
    let w = yoso_field::lagrange::basis_at(&points, F61::ZERO).unwrap();
    let mut s_u = F61::ZERO;
    for ((_, e), &wj) in subset.iter().zip(&w) {
        s_u += wj * (e.v - client.secret.scalar * e.u);
    }
    assert_eq!(ct.v - s_u, target_lambda);
}
