//! Stress tests for the threshold-key custody chain: long handover
//! chains under randomized adversaries, interleaved with decryptions
//! and re-encryptions.

use proptest::prelude::*;
use rand::SeedableRng;
use yoso_core::tsk::TskChain;
use yoso_core::ExecutionConfig;
use yoso_field::{F61, PrimeField};
use yoso_runtime::{ActiveAttack, Adversary, BulletinBoard, Committee};
use yoso_the::mock::{LinearPke, MockTe, PkeKeyPair};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn custody_survives_adversarial_handover_chains(
        seed in any::<u64>(),
        epochs in 1usize..5,
        attack_idx in 0usize..4,
    ) {
        let attack = [
            ActiveAttack::WrongValue,
            ActiveAttack::BadProof,
            ActiveAttack::Silent,
            ActiveAttack::AdditiveOffset,
        ][attack_idx];
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let (n, t) = (9usize, 3usize);
        let board = BulletinBoard::new();
        let cfg = ExecutionConfig::default();
        let mut chain = TskChain::<F61>::keygen(&mut r, n, t).unwrap();
        let adv = Adversary::active(t, attack);

        let m = F61::random(&mut r);
        let (ct, _) = MockTe::encrypt(&mut r, &chain.pk, m);

        for epoch in 0..epochs {
            // Decrypt under an adversarial committee.
            let dec_committee = adv.sample_committee(&mut r, format!("d{epoch}"), n);
            let got = chain
                .decrypt(&mut r, &board, &dec_committee, &cfg, "offline/x", &[ct])
                .unwrap();
            prop_assert_eq!(got[0], m);

            // Re-encrypt to a fresh target under the same committee.
            let target = LinearPke::<F61>::keygen(&mut r);
            let vals = chain.reencrypt(
                &mut r, &board, &dec_committee, &cfg, "offline/x",
                &[(target.public, ct)],
            ).unwrap();
            prop_assert_eq!(vals[0].open(target.secret.scalar).unwrap(), m);

            // Hand over under an adversarial outgoing committee.
            let out_committee = adv.sample_committee(&mut r, format!("h{epoch}"), n);
            let next_keys: Vec<PkeKeyPair<F61>> =
                (0..n).map(|_| LinearPke::keygen(&mut r)).collect();
            chain
                .handover(&mut r, &board, &out_committee, &cfg, "offline/handover", &next_keys)
                .unwrap();
        }

        // Final committee still decrypts.
        let fin = Committee::honest("final", n);
        prop_assert_eq!(
            chain.decrypt(&mut r, &board, &fin, &cfg, "x", &[ct]).unwrap()[0],
            m
        );
    }

    #[test]
    fn reencryption_openings_bind_to_coefficients(seed in any::<u64>(), m in any::<u64>()) {
        // value == a − sk·b must hold for the canonical coefficients of
        // any re-encrypted value, even with silent providers.
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let m = F61::from_u64(m);
        let (n, t) = (8usize, 2usize);
        let board = BulletinBoard::new();
        let cfg = ExecutionConfig::default();
        let chain = TskChain::<F61>::keygen(&mut r, n, t).unwrap();
        let adv = Adversary::active(t, ActiveAttack::Silent);
        let committee = adv.sample_committee(&mut r, "c", n);
        let target = LinearPke::<F61>::keygen(&mut r);
        let (ct, _) = MockTe::encrypt(&mut r, &chain.pk, m);
        let vals = chain
            .reencrypt(&mut r, &board, &committee, &cfg, "x", &[(target.public, ct)])
            .unwrap();
        let (a, b) = vals[0].opening_coefficients().unwrap();
        prop_assert_eq!(a - target.secret.scalar * b, m);
        prop_assert_eq!(vals[0].open(target.secret.scalar).unwrap(), m);
    }
}

#[test]
fn starved_chain_reports_not_enough_contributions() {
    // With every member silent, decryption must fail loudly, not hang
    // or return garbage.
    let mut r = rand::rngs::StdRng::seed_from_u64(1);
    let (n, t) = (5usize, 2usize);
    let board = BulletinBoard::new();
    let cfg = ExecutionConfig::default();
    let chain = TskChain::<F61>::keygen(&mut r, n, t).unwrap();
    let committee = Committee::with_behaviors(
        "dead",
        vec![yoso_runtime::Behavior::Malicious(ActiveAttack::Silent); n],
    );
    let (ct, _) = MockTe::encrypt(&mut r, &chain.pk, F61::ONE);
    let err = chain.decrypt(&mut r, &board, &committee, &cfg, "x", &[ct]).unwrap_err();
    assert!(matches!(
        err,
        yoso_core::ProtocolError::NotEnoughContributions { .. }
    ));
}
