//! Privacy accounting: the adversary's recorded view never exceeds the
//! information-theoretic privacy threshold of any secret object.
//!
//! A degree-`d` packed sharing of `k` secrets hides them from up to
//! `d − k + 1` shares; the λ-sharings have `d = t + k − 1`, so the
//! privacy threshold is exactly `t`. The `tsk` Shamir sharing has
//! threshold `t` as well. With `t_mal` malicious plus `ℓ` leaky roles
//! per committee, the adversary's per-object exposure is
//! `t_mal + ℓ ≤ t` — never more.

use rand::SeedableRng;
use yoso_circuit::generators;
use yoso_core::{Engine, ExecutionConfig, ProtocolParams};
use yoso_field::{F61, PrimeField};
use yoso_runtime::{ActiveAttack, Adversary};

fn run(params: ProtocolParams, adversary: &Adversary, seed: u64) -> yoso_core::RunResult<F61> {
    let circuit = generators::inner_product::<F61>(4).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let inputs: Vec<Vec<F61>> = circuit
        .inputs_per_client()
        .iter()
        .map(|ws| ws.iter().map(|_| F61::random(&mut rng)).collect())
        .collect();
    Engine::new(params, ExecutionConfig::default())
        .run(&mut rng, &circuit, &inputs, adversary)
        .unwrap()
}

#[test]
fn honest_run_leaks_nothing() {
    let params = ProtocolParams::new(10, 2, 2).unwrap();
    let result = run(params, &Adversary::none(), 1);
    assert!(result.leaks.is_empty());
}

#[test]
fn exposure_equals_corruption_and_stays_below_threshold() {
    // t = 3 threshold; adversary uses 2 malicious + 1 leaky = 3 ≤ t.
    let params = ProtocolParams::new(14, 3, 2).unwrap();
    let adversary = Adversary::active(2, ActiveAttack::BadProof).with_leaky(1);
    let result = run(params, &adversary, 2);
    assert!(!result.leaks.is_empty());
    let per_object = result.leaks.pieces_per_object();
    for (object, pieces) in &per_object {
        assert!(
            *pieces <= params.t,
            "object {object}: {pieces} exposed shares exceed the privacy threshold t = {}",
            params.t
        );
        assert_eq!(*pieces, 3, "object {object}: exposure should equal mal + leaky");
    }
    // Both λ-batch shares and tsk shares appear in the accounting.
    assert!(per_object.keys().any(|k| k.starts_with("batch")));
    assert!(per_object.keys().any(|k| k.starts_with("tsk/epoch")));
    assert_eq!(result.leaks.max_exposure(), 3);
}

#[test]
fn failstop_roles_do_not_leak() {
    // Fail-stop parties are honest: crashes must not add exposure.
    let params = ProtocolParams::with_failstops(14, 2, 2, 3).unwrap();
    let adversary = Adversary::active(2, ActiveAttack::WrongValue)
        .with_failstops(3, yoso_core::crash_phases::ONLINE_MULT);
    let result = run(params, &adversary, 3);
    assert_eq!(result.leaks.max_exposure(), 2, "only the 2 malicious roles expose shares");
}

#[test]
fn every_tsk_epoch_is_separately_accounted() {
    // Each committee handover re-randomizes tsk's sharing: exposures in
    // different epochs must not accumulate against one object.
    let params = ProtocolParams::new(10, 2, 1).unwrap();
    let adversary = Adversary::active(2, ActiveAttack::BadProof);
    let result = run(params, &adversary, 4);
    let per_object = result.leaks.pieces_per_object();
    let epochs: Vec<&String> =
        per_object.keys().filter(|k| k.starts_with("tsk/epoch")).collect();
    assert!(epochs.len() >= 2, "multiple custody epochs expected: {epochs:?}");
    for e in epochs {
        assert!(per_object[e] <= params.t);
    }
}
