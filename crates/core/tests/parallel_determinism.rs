//! The parallel engine must be a pure wall-clock optimization: for a
//! fixed seed, every board posting, output and leak record must be
//! byte-identical whatever `num_threads` is.

use rand::SeedableRng;
use yoso_circuit::generators;
use yoso_core::messages::Post;
use yoso_core::offline::run_offline;
use yoso_core::online::run_online;
use yoso_core::setup::run_setup;
use yoso_core::{Engine, ExecutionConfig, ProtocolParams};
use yoso_field::F61;
use yoso_runtime::{ActiveAttack, Adversary, BulletinBoard, LeakLog};

fn f(v: u64) -> F61 {
    F61::from(v)
}

/// Runs the full pipeline on its own board and renders the complete
/// posting log as a string (round, author, message for every post).
fn run_transcript(
    num_threads: usize,
    adversary: &Adversary,
) -> (String, Vec<Vec<F61>>, Vec<F61>) {
    let params = ProtocolParams::new(10, 2, 3).unwrap();
    let (transcript, outputs, mu, _) = run_transcript_phases(params, num_threads, adversary);
    (transcript, outputs, mu)
}

/// Like [`run_transcript`] but additionally returns the posting log
/// sliced by phase label, so individual pipeline steps can be checked
/// for thread-count independence in isolation.
fn run_transcript_phases(
    params: ProtocolParams,
    num_threads: usize,
    adversary: &Adversary,
) -> (String, Vec<Vec<F61>>, Vec<F61>, std::collections::BTreeMap<String, String>) {
    let board: BulletinBoard<Post> = BulletinBoard::new();
    run_transcript_phases_on(params, num_threads, adversary, &board)
}

/// Like [`run_transcript_phases`] but over a caller-supplied (possibly
/// remote) board, so the same pipeline can be driven over any
/// transport backend.
fn run_transcript_phases_on(
    params: ProtocolParams,
    num_threads: usize,
    adversary: &Adversary,
    board: &BulletinBoard<Post>,
) -> (String, Vec<Vec<F61>>, Vec<F61>, std::collections::BTreeMap<String, String>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
    let cfg = ExecutionConfig::default().with_threads(num_threads);
    let width = 2 * params.k;
    let circuit = generators::inner_product::<F61>(width).unwrap();
    let inputs: Vec<Vec<F61>> = vec![
        (1..=width as u64).map(f).collect(),
        (10..10 + width as u64).map(f).collect(),
    ];
    let bc = circuit.batched(params.k);
    let leak = LeakLog::new();
    let mut setup =
        run_setup::<F61, _>(&mut rng, &params, board, circuit.mul_depth(), circuit.clients())
            .unwrap();
    setup.tsk.set_leak_log(leak.clone());
    let offline =
        run_offline(&mut rng, &params, board, adversary, &cfg, &bc, &setup).unwrap();
    let online = run_online(
        &mut rng, &params, board, adversary, &cfg, &bc, &setup, offline, &inputs, &leak,
    )
    .unwrap();
    let mut transcript = String::new();
    let mut by_phase = std::collections::BTreeMap::<String, String>::new();
    for p in board.postings().unwrap() {
        let line = format!("{}|{}|{}|{:?}\n", p.round, p.from, p.phase, p.message);
        transcript.push_str(&line);
        by_phase.entry(p.phase.to_string()).or_default().push_str(&line);
    }
    (transcript, online.outputs, online.mu, by_phase)
}

#[test]
fn transcript_identical_across_thread_counts_honest() {
    let adv = Adversary::none();
    let (t1, out1, mu1) = run_transcript(1, &adv);
    assert!(!t1.is_empty());
    for threads in [2, 4, 8] {
        let (tn, outn, mun) = run_transcript(threads, &adv);
        assert_eq!(t1, tn, "posting log must not depend on num_threads={threads}");
        assert_eq!(out1, outn);
        assert_eq!(mu1, mun);
    }
}

#[test]
fn reenc_shares_phase_transcript_identical_across_thread_counts() {
    // `offline/6-reenc-shares` is the widest re-encryption fan-out in
    // the offline pipeline (one item per mul-gate share vector), so it
    // is the phase most likely to expose scheduling-dependent posting
    // order. Slice the log down to exactly that phase and require the
    // slice to be byte-identical at 1, 2 and 8 worker threads.
    const PHASE: &str = "offline/6-reenc-shares";
    let adv = Adversary::none();
    let params = ProtocolParams::new(10, 2, 3).unwrap();
    let (_, _, _, phases1) = run_transcript_phases(params, 1, &adv);
    let slice1 = phases1.get(PHASE).expect("phase must appear in the posting log");
    assert!(
        slice1.lines().count() > 1,
        "{PHASE} must carry real fan-out traffic, got:\n{slice1}"
    );
    for threads in [2, 8] {
        let (_, _, _, phasesn) = run_transcript_phases(params, threads, &adv);
        let slicen = phasesn.get(PHASE).expect("phase must appear in the posting log");
        assert_eq!(
            slice1, slicen,
            "{PHASE} posting log must not depend on num_threads={threads}"
        );
    }
}

#[test]
fn every_phase_transcript_identical_across_thread_counts() {
    // The full offline+online posting log, sliced per phase label, must
    // be byte-identical at 1, 2 and 8 worker threads — not just the
    // 6-reenc-shares slice. This pins every parallelized step at once:
    // Beaver fan-out, all four re-encryption phases (offline input and
    // share packing, the online KFF key distribution hand-off, and the
    // output phase), and the per-member online share computation.
    const REENC_PHASES: [&str; 4] = [
        "offline/5-reenc-inputs",
        "offline/6-reenc-shares",
        "online/1-keydist",
        "online/4-output",
    ];
    let adv = Adversary::none();
    let params = ProtocolParams::new(10, 2, 3).unwrap();
    let (_, _, _, phases1) = run_transcript_phases(params, 1, &adv);
    for phase in REENC_PHASES {
        let slice = phases1.get(phase).expect("re-encryption phase must appear in the log");
        assert!(
            slice.lines().count() > 1,
            "{phase} must carry real re-encryption traffic, got:\n{slice}"
        );
    }
    for threads in [2, 8] {
        let (_, _, _, phasesn) = run_transcript_phases(params, threads, &adv);
        assert_eq!(
            phases1.keys().collect::<Vec<_>>(),
            phasesn.keys().collect::<Vec<_>>(),
            "phase set must not depend on num_threads={threads}"
        );
        for (phase, slice1) in &phases1 {
            assert_eq!(
                slice1,
                &phasesn[phase],
                "{phase} posting log must not depend on num_threads={threads}"
            );
        }
    }
}

#[test]
fn transcript_identical_across_thread_counts_subgroup_layout() {
    // The NTT fast paths (subgroup point layout) must stay a pure
    // wall-clock optimization too: with the transform plan active in
    // every scheme the pipeline builds, the complete posting log,
    // outputs and μ values must be byte-identical at 1, 2 and 8
    // threads — and identical to each other per phase slice.
    let adv = Adversary::none();
    let params = ProtocolParams::new(14, 2, 4)
        .unwrap()
        .with_layout(yoso_core::PointLayout::Subgroup);
    let (t1, out1, mu1, _) = run_transcript_phases(params, 1, &adv);
    assert!(!t1.is_empty());
    for threads in [2, 8] {
        let (tn, outn, mun, _) = run_transcript_phases(params, threads, &adv);
        assert_eq!(t1, tn, "subgroup-layout log must not depend on num_threads={threads}");
        assert_eq!(out1, outn);
        assert_eq!(mu1, mun);
    }
}

#[test]
fn transcript_identical_across_thread_counts_adversarial() {
    // Malicious and leaky members exercise the buffered leak-record
    // and garbage-proof paths.
    let adv = Adversary::active(2, ActiveAttack::WrongValue);
    let (t1, out1, _) = run_transcript(1, &adv);
    let (t4, out4, _) = run_transcript(4, &adv);
    assert_eq!(t1, t4);
    assert_eq!(out1, out4);
}

#[test]
fn parallel_engine_matches_cleartext_evaluation() {
    let circuit = generators::inner_product::<F61>(5).unwrap();
    let x: Vec<F61> = (1..=5u64).map(f).collect();
    let y: Vec<F61> = (7..12u64).map(f).collect();
    let expect = circuit.evaluate(&[x.clone(), y.clone()]).unwrap();
    let engine = Engine::new(
        ProtocolParams::new(10, 2, 3).unwrap(),
        ExecutionConfig::default().with_threads(4),
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let run = engine.run(&mut rng, &circuit, &[x, y], &Adversary::none()).unwrap();
    assert_eq!(run.outputs, expect);
}

#[test]
fn engine_results_identical_across_thread_counts() {
    let circuit = generators::inner_product::<F61>(4).unwrap();
    let x: Vec<F61> = (1..=4u64).map(f).collect();
    let y: Vec<F61> = (5..=8u64).map(f).collect();
    let params = ProtocolParams::new(8, 1, 2).unwrap();
    let mut runs = Vec::new();
    for threads in [1usize, 3] {
        let engine = Engine::new(params, ExecutionConfig::default().with_threads(threads));
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let run = engine.run(&mut rng, &circuit, &[x.clone(), y.clone()], &Adversary::none())
            .unwrap();
        runs.push((run.outputs, run.mu, run.rounds, run.phases));
    }
    assert_eq!(runs[0].0, runs[1].0);
    assert_eq!(runs[0].1, runs[1].1);
    assert_eq!(runs[0].2, runs[1].2);
    // Identical per-phase communication metering, entry for entry.
    let stats = |phases: &[(String, yoso_runtime::PhaseStats)]| {
        phases
            .iter()
            .map(|(k, s)| format!("{k}:{}e/{}b/{}m", s.elements, s.bytes, s.messages))
            .collect::<Vec<_>>()
    };
    assert_eq!(stats(&runs[0].3), stats(&runs[1].3));
}

#[test]
fn transport_parity_tcp_transcript_byte_identical() {
    // The tentpole guarantee of the pluggable transport: the full
    // offline+online pipeline over a loopback-TCP board server must
    // produce a transcript byte-identical to the in-process backend,
    // at every thread count. Server-side sequencing preserves the
    // driver's posting order, and the WireMessage codec round-trips
    // every Post variant, so nothing may differ — not postings, not
    // outputs, not μ values.
    let adv = Adversary::none();
    let params = ProtocolParams::new(10, 2, 3).unwrap();
    let (local, out_local, mu_local, phases_local) = run_transcript_phases(params, 1, &adv);
    assert!(!local.is_empty());
    // Both posting modes must match: strict lockstep (window 1, one
    // round trip per frame) and pipelined (windowed frames with
    // coalesced acks) — pipelining is a latency optimization, never a
    // transcript change.
    for window in [1usize, 8] {
        for threads in [1usize, 2, 8] {
            let opts = yoso_runtime::TcpOptions {
                pipeline_window: window,
                ..yoso_runtime::TcpOptions::default()
            };
            let (mut handle, board) =
                yoso_runtime::tcp::loopback_with::<Post>(opts).expect("loopback server");
            assert_eq!(board.backend_name(), "loopback-tcp");
            let (remote, out_remote, mu_remote, phases_remote) =
                run_transcript_phases_on(params, threads, &adv, &board);
            handle.shutdown();
            assert_eq!(
                local, remote,
                "TCP transcript must be byte-identical to in-process at \
                 num_threads={threads}, pipeline_window={window}"
            );
            assert_eq!(out_local, out_remote);
            assert_eq!(mu_local, mu_remote);
            assert_eq!(phases_local, phases_remote);
        }
    }
}

#[test]
fn transport_parity_engine_over_tcp_backend() {
    // The same parity through the public Engine API: configure the run
    // with BoardBackend::Tcp and compare against the default backend.
    let circuit = generators::inner_product::<F61>(4).unwrap();
    let x: Vec<F61> = (1..=4u64).map(f).collect();
    let y: Vec<F61> = (5..=8u64).map(f).collect();
    let params = ProtocolParams::new(8, 1, 2).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let local = Engine::new(params, ExecutionConfig::default())
        .run(&mut rng, &circuit, &[x.clone(), y.clone()], &Adversary::none())
        .unwrap();

    // board_window 1 = lockstep, 8 = pipelined: the engine-level knob
    // must be invisible in every observable result.
    for window in [1usize, 8] {
        let server = yoso_runtime::BoardServer::bind(std::net::SocketAddr::from((
            [127, 0, 0, 1],
            0,
        )))
        .unwrap();
        let mut handle = server.spawn().unwrap();
        let cfg = ExecutionConfig::default()
            .with_board(yoso_core::BoardBackend::Tcp(handle.addr()))
            .with_board_window(window)
            .with_threads(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let remote = Engine::new(params, cfg)
            .run(&mut rng, &circuit, &[x.clone(), y.clone()], &Adversary::none())
            .unwrap();
        handle.shutdown();

        assert_eq!(local.outputs, remote.outputs, "board_window={window}");
        assert_eq!(local.mu, remote.mu);
        assert_eq!(local.rounds, remote.rounds);
        assert_eq!(local.phases, remote.phases);
    }
}
