//! Role-sharded worker parity: for a fixed seed, N workers splitting
//! the committee roles over one shared board must produce a transcript
//! byte-identical to the single-process run — same postings, same
//! outputs, same μ values, same per-phase metering — for even and
//! uneven role splits, including workers that own zero roles.

use rand::SeedableRng;
use yoso_circuit::generators;
use yoso_core::messages::Post;
use yoso_core::{
    Engine, ExecutionConfig, ProtocolError, ProtocolParams, RolePartition, RunResult,
};
use yoso_field::F61;
use yoso_runtime::{ActiveAttack, Adversary, BulletinBoard};

fn f(v: u64) -> F61 {
    F61::from(v)
}

const SEED: u64 = 4242;

fn workload(params: ProtocolParams) -> (yoso_circuit::Circuit<F61>, Vec<Vec<F61>>) {
    let width = 2 * params.k;
    let circuit = generators::inner_product::<F61>(width).unwrap();
    let inputs: Vec<Vec<F61>> = vec![
        (1..=width as u64).map(f).collect(),
        (10..10 + width as u64).map(f).collect(),
    ];
    (circuit, inputs)
}

/// Renders the complete posting log in the canonical line format used
/// across the determinism suites.
fn render(board: &BulletinBoard<Post>) -> String {
    let mut transcript = String::new();
    for p in board.postings().unwrap() {
        transcript.push_str(&format!("{}|{}|{}|{:?}\n", p.round, p.from, p.phase, p.message));
    }
    transcript
}

/// The single-process reference run.
fn solo_run(params: ProtocolParams, adversary: &Adversary) -> (String, RunResult<F61>) {
    let (circuit, inputs) = workload(params);
    let board: BulletinBoard<Post> = BulletinBoard::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    let run = Engine::new(params, ExecutionConfig::default())
        .run_with_board(&mut rng, &circuit, &inputs, adversary, &board)
        .unwrap();
    (render(&board), run)
}

/// Runs `workers` in-process simulated workers: one thread per worker,
/// all sharing a cloned handle to the same board, each seeded with the
/// same root seed and owning its canonical contiguous role range.
fn sharded_run(
    params: ProtocolParams,
    workers: usize,
    adversary: &Adversary,
) -> (String, Vec<RunResult<F61>>) {
    let (circuit, inputs) = workload(params);
    let board: BulletinBoard<Post> = BulletinBoard::new();
    let runs: Vec<RunResult<F61>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let board = board.clone();
                let circuit = &circuit;
                let inputs = &inputs;
                s.spawn(move || {
                    let cfg = ExecutionConfig::default()
                        .with_partition(params.worker_role_range(w, workers));
                    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
                    Engine::new(params, cfg)
                        .run_with_board(&mut rng, circuit, inputs, adversary, &board)
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    (render(&board), runs)
}

#[test]
fn sharded_transcript_byte_identical_to_solo() {
    let params = ProtocolParams::new(10, 2, 3).unwrap();
    let adv = Adversary::none();
    let (solo_log, solo) = solo_run(params, &adv);
    assert!(!solo_log.is_empty());
    for workers in [2usize, 4, 8] {
        let (log, runs) = sharded_run(params, workers, &adv);
        assert_eq!(
            solo_log, log,
            "{workers}-worker transcript must be byte-identical to single-process"
        );
        for (w, run) in runs.iter().enumerate() {
            assert_eq!(solo.outputs, run.outputs, "worker {w}/{workers} outputs");
            assert_eq!(solo.mu, run.mu, "worker {w}/{workers} mu");
            assert_eq!(solo.rounds, run.rounds, "worker {w}/{workers} rounds");
            // Every worker rebuilds full-run metering from the shared
            // log, so all workers agree with the solo meter.
            assert_eq!(solo.phases, run.phases, "worker {w}/{workers} phases");
        }
    }
}

#[test]
fn uneven_role_ranges_still_agree() {
    // n = 10 does not divide by 4: ranges are 2/3/2/3 wide. n = 10
    // with 8 workers mixes 1- and 2-wide ranges.
    let params = ProtocolParams::new(10, 2, 3).unwrap();
    for workers in [4usize, 8] {
        let sizes: Vec<usize> = (0..workers)
            .map(|w| {
                let p = params.worker_role_range(w, workers);
                p.hi() - p.lo()
            })
            .collect();
        assert!(
            sizes.iter().any(|&s| s != sizes[0]),
            "split {workers} of n=10 should be uneven, got {sizes:?}"
        );
    }
    let adv = Adversary::none();
    let (solo_log, _) = solo_run(params, &adv);
    let (log, _) = sharded_run(params, 4, &adv);
    assert_eq!(solo_log, log);
}

#[test]
fn zero_role_worker_participates_without_posting() {
    // 12 workers over n = 10 roles: worker 0 owns the empty range
    // [0, 0) (and is *not* the leader — worker 1 owning [0, 1) is).
    // The run must still converge with the identical transcript.
    let params = ProtocolParams::new(10, 2, 3).unwrap();
    let empty = params.worker_role_range(0, 12);
    assert_eq!((empty.lo(), empty.hi()), (0, 0));
    assert!(!empty.is_leader());
    assert!(params.worker_role_range(1, 12).is_leader());
    let adv = Adversary::none();
    let (solo_log, solo) = solo_run(params, &adv);
    let (log, runs) = sharded_run(params, 12, &adv);
    assert_eq!(solo_log, log);
    // The zero-role worker still recovers the full result set.
    assert_eq!(solo.outputs, runs[0].outputs);
    assert_eq!(solo.mu, runs[0].mu);
}

#[test]
fn sharded_parity_under_active_attack() {
    // Corrupt members post garbage instead of skipping: the behavior
    // tags (not the proofs, which only owners produce) decide validity
    // identically on every worker.
    let params = ProtocolParams::new(10, 2, 3).unwrap();
    let adv = Adversary::active(2, ActiveAttack::WrongValue);
    let (solo_log, solo) = solo_run(params, &adv);
    let (log, runs) = sharded_run(params, 4, &adv);
    assert_eq!(solo_log, log);
    for run in &runs {
        assert_eq!(solo.outputs, run.outputs);
    }
}

#[test]
fn sharded_run_requires_audit_board() {
    let params = ProtocolParams::new(10, 2, 3).unwrap();
    let (circuit, inputs) = workload(params);
    let board: BulletinBoard<Post> = BulletinBoard::new();
    let cfg = ExecutionConfig::sweep().with_partition(RolePartition::range(0, 5));
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    let err = Engine::new(params, cfg)
        .run_with_board(&mut rng, &circuit, &inputs, &Adversary::none(), &board)
        .unwrap_err();
    assert!(matches!(err, ProtocolError::BadParameters(_)), "{err}");
}

#[test]
fn sharded_run_rejects_partition_beyond_committee() {
    let params = ProtocolParams::new(10, 2, 3).unwrap();
    let (circuit, inputs) = workload(params);
    let board: BulletinBoard<Post> = BulletinBoard::new();
    let cfg = ExecutionConfig::default().with_partition(RolePartition::range(0, 11));
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    let err = Engine::new(params, cfg)
        .run_with_board(&mut rng, &circuit, &inputs, &Adversary::none(), &board)
        .unwrap_err();
    assert!(matches!(err, ProtocolError::BadParameters(_)), "{err}");
}
