//! White-box invariants of the offline phase: decrypt the produced
//! ciphertexts with the key-custody oracle and check the paper's
//! correlated-randomness relations hold exactly.

use rand::SeedableRng;
use yoso_circuit::{generators, Gate};
use yoso_core::offline::{debug_open_batch_lambda, run_offline};
use yoso_core::setup::run_setup;
use yoso_core::{ExecutionConfig, ProtocolParams};
use yoso_field::{F61, PrimeField};
use yoso_runtime::{Adversary, BulletinBoard, Committee};

#[test]
fn offline_correlations_are_exact() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2718);
    let params = ProtocolParams::new(10, 2, 2).unwrap();
    let cfg = ExecutionConfig::default();
    let circuit = generators::poly_eval::<F61>(3).unwrap();
    let bc = circuit.batched(params.k);
    let board = BulletinBoard::new();

    let setup =
        run_setup::<F61, _>(&mut rng, &params, &board, circuit.mul_depth(), circuit.clients())
            .unwrap();
    let offline =
        run_offline(&mut rng, &params, &board, &Adversary::none(), &cfg, &bc, &setup).unwrap();

    // Oracle: decrypt every wire mask with the post-offline chain.
    let oracle = Committee::honest("oracle", params.n);
    let lambdas = offline
        .tsk
        .decrypt(&mut rng, &board, &oracle, &cfg, "test-oracle", &offline.lambda_cts)
        .unwrap();

    // (1) λ propagates linearly through linear gates.
    for (w, gate) in circuit.gates().iter().enumerate() {
        match *gate {
            Gate::Add(a, b) => assert_eq!(lambdas[w], lambdas[a.0] + lambdas[b.0]),
            Gate::Sub(a, b) => assert_eq!(lambdas[w], lambdas[a.0] - lambdas[b.0]),
            Gate::MulConst(a, c) => assert_eq!(lambdas[w], lambdas[a.0] * c),
            Gate::Const(_) => assert_eq!(lambdas[w], F61::ZERO),
            Gate::Output(a, _) => assert_eq!(lambdas[w], lambdas[a.0]),
            Gate::Input { .. } | Gate::Mul(_, _) => {}
        }
    }

    // (2) Per batch: the packed α/β vectors equal the per-wire masks in
    // batch order, and Γ = λ_α·λ_β − λ_γ.
    for (batch, shares) in bc.mul_batches.iter().zip(&offline.batch_shares) {
        let k_b = batch.gates.len();
        let alpha =
            debug_open_batch_lambda(&params, &setup, batch, &shares.alpha, k_b).unwrap();
        let beta = debug_open_batch_lambda(&params, &setup, batch, &shares.beta, k_b).unwrap();
        let gamma = debug_open_batch_lambda(&params, &setup, batch, &shares.gamma, k_b).unwrap();
        let left = batch.left_wires(&circuit);
        let right = batch.right_wires(&circuit);
        for j in 0..k_b {
            assert_eq!(alpha[j], lambdas[left[j].0], "α routing");
            assert_eq!(beta[j], lambdas[right[j].0], "β routing");
            assert_eq!(
                gamma[j],
                lambdas[left[j].0] * lambdas[right[j].0] - lambdas[batch.gates[j].0],
                "Γ relation"
            );
        }
    }

    // (3) Input-wire re-encryptions open (with the client's KFF secret)
    // to the wire masks.
    for (w, client, rv) in &offline.input_reenc {
        let sk = setup.client_kff_pairs[*client].secret.scalar;
        assert_eq!(rv.open(sk).unwrap(), lambdas[*w]);
    }
}

#[test]
fn offline_correlations_survive_active_adversary() {
    // Same invariants with t malicious roles in every committee.
    let mut rng = rand::rngs::StdRng::seed_from_u64(3141);
    let params = ProtocolParams::new(12, 3, 2).unwrap();
    let cfg = ExecutionConfig::default();
    let circuit = generators::inner_product::<F61>(4).unwrap();
    let bc = circuit.batched(params.k);
    let board = BulletinBoard::new();
    let adversary =
        Adversary::active(3, yoso_runtime::ActiveAttack::WrongValue);

    let setup =
        run_setup::<F61, _>(&mut rng, &params, &board, circuit.mul_depth(), circuit.clients())
            .unwrap();
    let offline = run_offline(&mut rng, &params, &board, &adversary, &cfg, &bc, &setup).unwrap();

    let oracle = Committee::honest("oracle", params.n);
    let lambdas = offline
        .tsk
        .decrypt(&mut rng, &board, &oracle, &cfg, "test-oracle", &offline.lambda_cts)
        .unwrap();
    for (batch, shares) in bc.mul_batches.iter().zip(&offline.batch_shares) {
        let k_b = batch.gates.len();
        let gamma = debug_open_batch_lambda(&params, &setup, batch, &shares.gamma, k_b).unwrap();
        let left = batch.left_wires(&circuit);
        let right = batch.right_wires(&circuit);
        for j in 0..k_b {
            assert_eq!(
                gamma[j],
                lambdas[left[j].0] * lambdas[right[j].0] - lambdas[batch.gates[j].0]
            );
        }
    }
}

#[test]
fn masks_differ_between_runs() {
    // The λ values are jointly random: two runs with the same seed for
    // inputs but different protocol randomness give different masks.
    let params = ProtocolParams::new(8, 1, 2).unwrap();
    let cfg = ExecutionConfig::default();
    let circuit = generators::inner_product::<F61>(3).unwrap();
    let bc = circuit.batched(params.k);

    let masks = |seed: u64| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let board = BulletinBoard::new();
        let setup = run_setup::<F61, _>(
            &mut rng,
            &params,
            &board,
            circuit.mul_depth(),
            circuit.clients(),
        )
        .unwrap();
        let offline =
            run_offline(&mut rng, &params, &board, &Adversary::none(), &cfg, &bc, &setup)
                .unwrap();
        let oracle = Committee::honest("oracle", params.n);
        offline
            .tsk
            .decrypt(&mut rng, &board, &oracle, &cfg, "t", &offline.lambda_cts)
            .unwrap()
    };
    assert_ne!(masks(1), masks(2));
}
