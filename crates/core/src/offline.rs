//! The offline phase `Π_YOSO-Offline` (paper §5.2).
//!
//! Circuit-dependent preprocessing, executed before inputs are known:
//!
//! - **Step 1** — Beaver triples: two committees jointly produce, per
//!   multiplication gate, an encrypted triple `(cᵃ, cᵇ, cᶜ)` with
//!   `c = a·b`, each contribution carrying an encryption NIZK.
//! - **Step 2** — random wire values: a committee sums per-member
//!   encrypted randomness into a mask ciphertext `c^λ` for every
//!   input-gate and multiplication output wire.
//! - **Step 3** — dependent wire values: addition-type masks follow
//!   homomorphically; for each multiplication gate the current
//!   tsk-holding committee `Decrypt`s `ε = λ_α + a` and `δ = λ_β + b`
//!   and everyone computes `c^Γ = ε·c_β − δ·cᵃ + cᶜ − c_γ`
//!   (encrypting `Γ = λ_α·λ_β − λ_γ`). One committee per
//!   multiplication layer, handing `tsk` to the next.
//! - **Step 4** — packing: per batch of `k` multiplication gates, the
//!   helper committee's summed random encryptions extend the `k`
//!   masks to a degree-`(t+k−1)` polynomial; everyone *locally*
//!   evaluates the `n` packed-share ciphertexts via `TEval` with
//!   Lagrange coefficients. Done three times per batch (`λ_α`, `λ_β`
//!   in batch order, and `Γ_γ`) — this is what solves Turbopack's
//!   network-routing problem without online communication.
//! - **Step 5** — per input wire, `Re-encrypt` the mask to the
//!   contributing client's KFF.
//! - **Step 6** — per batch and member, `Re-encrypt` the three packed
//!   shares to the KFF of the online role that will consume them.
//!
//! Total communication: `O(n)` ring elements per gate (measured, not
//! estimated — see experiment E3).

use std::collections::BTreeMap;

use rand::{Rng, SeedableRng};

use yoso_circuit::{BatchedCircuit, Gate, MulBatch};
use yoso_field::{allocstats, PrimeField};
use yoso_pss_sharing::{PackedSharing, ScratchPool};
use yoso_runtime::{Adversary, Behavior, BulletinBoard, Committee};
use yoso_the::mock::{Ciphertext, MockTe, PkePublicKey};
use yoso_the::nizk::{self, enc_proof, verify_enc_proof, EncProof};

use crate::messages::{self, ContributionStep, Post, CT_ELEMENTS, ENC_PROOF_ELEMENTS};
use crate::parallel::PostBuffer;
use crate::setup::SetupArtifacts;
use crate::tsk::{ReencryptedValue, TskChain};
use crate::workitem::ShardedBoard;
use crate::{ExecutionConfig, ProtocolError};

/// The re-encrypted packed shares of one multiplication batch: entry
/// `i` of each vector targets the KFF of online role `(layer, i)`.
#[derive(Debug, Clone)]
pub struct BatchShares<F: PrimeField> {
    /// Packed shares of `λ_α` (left inputs, batch order).
    pub alpha: Vec<ReencryptedValue<F>>,
    /// Packed shares of `λ_β` (right inputs, batch order).
    pub beta: Vec<ReencryptedValue<F>>,
    /// Packed shares of `Γ = λ_α·λ_β − λ_γ`.
    pub gamma: Vec<ReencryptedValue<F>>,
}

/// Everything the offline phase hands to the online phase.
#[derive(Debug, Clone)]
pub struct OfflineArtifacts<F: PrimeField> {
    /// Per-wire mask ciphertexts `c^λ` (indexed by wire id).
    pub lambda_cts: Vec<Ciphertext<F>>,
    /// Per-batch re-encrypted packed shares (parallel to
    /// `BatchedCircuit::mul_batches`).
    pub batch_shares: Vec<BatchShares<F>>,
    /// Per input wire: `(wire, client, re-encrypted λ targeting the
    /// client's KFF)`.
    pub input_reenc: Vec<(usize, usize, ReencryptedValue<F>)>,
    /// The tsk custody chain (now with the post-offline committee).
    pub tsk: TskChain<F>,
}

/// Reusable buffers for [`summed_contribution_into`]. The offline
/// phase calls it once per maskable wire (Step 2) and `3t` times per
/// batch (Step 4 helpers), each call collecting up to `n` ciphertexts
/// — fresh per-call vectors are an allocation cliff at Table-1
/// committee sizes. In arena mode (`reuse`) the buffers persist
/// across calls; otherwise every call re-grows them from empty (the
/// legacy profile the allocation bench compares against).
struct ContribBufs<F: PrimeField> {
    valid: Vec<Ciphertext<F>>,
    ones: Vec<F>,
    reuse: bool,
}

impl<F: PrimeField> ContribBufs<F> {
    fn new(reuse: bool) -> Self {
        ContribBufs { valid: Vec::new(), ones: Vec::new(), reuse }
    }

    /// Prepares the buffers for one call, dropping capacity first in
    /// the fresh-buffer (non-arena) mode.
    fn reset(&mut self, capacity: usize) {
        if !self.reuse {
            self.valid = Vec::new();
            self.ones = Vec::new();
        }
        self.valid.clear();
        if self.valid.capacity() < capacity {
            allocstats::bump();
            self.valid.reserve(capacity);
        }
    }
}

/// Collects one encrypted-randomness contribution per participating
/// member and returns the homomorphic sum of the *valid* ones.
/// Posts are appended to `posts` rather than sent, so the caller can
/// run many of these concurrently and replay the posts in order.
///
/// Malicious members with `WrongValue`/`AdditiveOffset` submit garbage
/// proofs (filtered); `BadProof` submits a correct ciphertext with a
/// garbage proof (also filtered — which is safe: sums of any subset of
/// valid contributions that includes at least one honest one are
/// uniform).
///
/// Every member's work runs from its own child RNG (seed drawn
/// sequentially from `rng`), so a role-sharded worker that skips the
/// proof work of members it does not own (`cfg.partition`) still draws
/// identical values for every member — the per-member value draws
/// precede the proof draws inside the child stream. Non-owned members'
/// validity is behavior-predicted (honest ⇒ valid, malicious ⇒
/// invalid), exactly the [`ExecutionConfig::sweep`] semantics.
#[allow(clippy::too_many_arguments)]
fn summed_contribution_into<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    posts: &mut PostBuffer,
    committee: &Committee,
    cfg: &ExecutionConfig,
    tpk: &yoso_the::mock::PublicKey<F>,
    phase: &'static str,
    step: ContributionStep,
    bufs: &mut ContribBufs<F>,
) -> Result<Ciphertext<F>, ProtocolError> {
    bufs.reset(committee.n());
    for i in 0..committee.n() {
        let behavior = committee.behavior(i);
        if !behavior.participates_at(crate::engine::phase_index(phase)) {
            continue;
        }
        let mut mrng = rand::rngs::StdRng::seed_from_u64(rng.next_u64());
        let owned = cfg.partition.owns(i);
        let prove = cfg.produce_proofs && owned;
        let (ct, valid) = match behavior {
            Behavior::Honest | Behavior::Leaky | Behavior::FailStop { .. } => {
                let m = F::random(&mut mrng);
                let (ct, r) = MockTe::encrypt(&mut mrng, tpk, m);
                let ok = if prove {
                    let proof = enc_proof(&mut mrng, tpk, &ct, m, r);
                    verify_enc_proof(tpk, &ct, &proof)
                } else {
                    true
                };
                (ct, ok)
            }
            Behavior::Malicious(_) => {
                let junk = F::random(&mut mrng);
                let (ct, _) = MockTe::encrypt(&mut mrng, tpk, junk);
                let ok = if prove {
                    let proof = EncProof::<F>::garbage(&mut mrng);
                    verify_enc_proof(tpk, &ct, &proof)
                } else {
                    false
                };
                (ct, ok)
            }
        };
        posts.record(
            owned,
            committee.role(i),
            Post::Contribution { step, ciphertexts: 1 },
            phase,
            CT_ELEMENTS + ENC_PROOF_ELEMENTS,
        );
        if valid {
            bufs.valid.push(ct);
        }
    }
    if bufs.valid.is_empty() {
        return Err(ProtocolError::NotEnoughContributions {
            step: "summed contribution",
            got: 0,
            need: 1,
        });
    }
    allocstats::ensure_filled(&mut bufs.ones, bufs.valid.len(), F::ONE);
    Ok(MockTe::eval(&bufs.valid, &bufs.ones)?)
}

/// [`summed_contribution_into`] posting through the sharded board.
#[allow(clippy::too_many_arguments)]
fn summed_contribution<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    sb: &ShardedBoard<'_>,
    committee: &Committee,
    cfg: &ExecutionConfig,
    tpk: &yoso_the::mock::PublicKey<F>,
    phase: &'static str,
    step: ContributionStep,
    bufs: &mut ContribBufs<F>,
) -> Result<Ciphertext<F>, ProtocolError> {
    let mut posts = PostBuffer::new();
    let result =
        summed_contribution_into(rng, &mut posts, committee, cfg, tpk, phase, step, bufs);
    sb.flush_buffer(posts)?;
    result
}

/// An encrypted Beaver triple.
#[derive(Debug, Clone, Copy)]
pub struct EncryptedTriple<F: PrimeField> {
    /// Encryption of `a`.
    pub a: Ciphertext<F>,
    /// Encryption of `b`.
    pub b: Ciphertext<F>,
    /// Encryption of `c = a·b`.
    pub c: Ciphertext<F>,
}

/// Produces one encrypted Beaver triple, buffering its board posts.
fn one_triple<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    posts: &mut PostBuffer,
    c1: &Committee,
    c2: &Committee,
    cfg: &ExecutionConfig,
    tpk: &yoso_the::mock::PublicKey<F>,
    phase: &'static str,
) -> Result<EncryptedTriple<F>, ProtocolError> {
    // a-side contributions from C1. Triples are produced in parallel
    // (one child RNG each), so the buffers stay per-call here.
    let mut bufs = ContribBufs::new(false);
    let c_a = summed_contribution_into(
        rng,
        posts,
        c1,
        cfg,
        tpk,
        phase,
        ContributionStep::Beaver,
        &mut bufs,
    )?;

    // b-side: each C2 member posts (c_b_i, c_c_i = b_i·c^a) with a
    // proof of the joint relation. Per-member child RNGs keep the
    // value draws identical when a sharded worker skips proof work
    // for members it does not own.
    let mut b_parts: Vec<Ciphertext<F>> = Vec::new();
    let mut c_parts: Vec<Ciphertext<F>> = Vec::new();
    for i in 0..c2.n() {
        let behavior = c2.behavior(i);
        if !behavior.participates_at(crate::engine::phase_index(phase)) {
            continue;
        }
        let mut mrng = rand::rngs::StdRng::seed_from_u64(rng.next_u64());
        let owned = cfg.partition.owns(i);
        let prove = cfg.produce_proofs && owned;
        let (cb, cc, valid) = match behavior {
            Behavior::Honest | Behavior::Leaky | Behavior::FailStop { .. } => {
                let b_i = F::random(&mut mrng);
                let (cb, r) = MockTe::encrypt(&mut mrng, tpk, b_i);
                let cc = Ciphertext { u: b_i * c_a.u, v: b_i * c_a.v };
                let ok = if prove {
                    let proof = beaver_b_proof(&mut mrng, tpk, &c_a, &cb, &cc, b_i, r);
                    verify_beaver_b_proof(tpk, &c_a, &cb, &cc, &proof)
                } else {
                    true
                };
                (cb, cc, ok)
            }
            Behavior::Malicious(_) => {
                let junk = F::random(&mut mrng);
                let (cb, _) = MockTe::encrypt(&mut mrng, tpk, junk);
                let fake = F::random(&mut mrng);
                let cc = Ciphertext { u: fake * c_a.u, v: fake * c_a.v + F::ONE };
                let ok = if prove {
                    let proof = nizk::LinearProof::<F> {
                        commitment: vec![F::random(&mut mrng); 4],
                        response: vec![F::random(&mut mrng); 2],
                    };
                    verify_beaver_b_proof(tpk, &c_a, &cb, &cc, &proof)
                } else {
                    false
                };
                (cb, cc, ok)
            }
        };
        let elements = 2 * CT_ELEMENTS + messages::proof_elements(4, 2);
        posts.record(
            owned,
            c2.role(i),
            Post::Contribution { step: ContributionStep::Beaver, ciphertexts: 2 },
            phase,
            elements,
        );
        if valid {
            b_parts.push(cb);
            c_parts.push(cc);
        }
    }
    if b_parts.is_empty() {
        return Err(ProtocolError::NotEnoughContributions {
            step: "beaver b-side",
            got: 0,
            need: 1,
        });
    }
    let ones = vec![F::ONE; b_parts.len()];
    let c_b = MockTe::eval(&b_parts, &ones)?;
    let c_c = MockTe::eval(&c_parts, &ones)?;
    Ok(EncryptedTriple { a: c_a, b: c_b, c: c_c })
}

/// Step 1: two committees produce one encrypted Beaver triple per
/// multiplication gate (`Beaver-Triple` in the paper).
///
/// Triples are independent, so each one runs from its own child RNG
/// (seeds drawn sequentially from `rng`) on up to `cfg.num_threads`
/// workers; posts are replayed in triple order, making the transcript
/// independent of the thread count.
pub fn beaver_triples<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    board: &BulletinBoard<Post>,
    c1: &Committee,
    c2: &Committee,
    cfg: &ExecutionConfig,
    tpk: &yoso_the::mock::PublicKey<F>,
    count: usize,
) -> Result<Vec<EncryptedTriple<F>>, ProtocolError> {
    let sb = ShardedBoard::new(board, cfg.partition)?;
    beaver_triples_in(rng, &sb, c1, c2, cfg, tpk, count)
}

/// [`beaver_triples`] posting through an existing sharded board, so an
/// engine-level caller can keep one position accounting across phases.
pub(crate) fn beaver_triples_in<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    sb: &ShardedBoard<'_>,
    c1: &Committee,
    c2: &Committee,
    cfg: &ExecutionConfig,
    tpk: &yoso_the::mock::PublicKey<F>,
    count: usize,
) -> Result<Vec<EncryptedTriple<F>>, ProtocolError> {
    let phase = "offline/1-beaver";
    let seeds: Vec<u64> = (0..count).map(|_| rng.next_u64()).collect();
    let results = crate::parallel::par_map(cfg.num_threads, &seeds, |_, &seed| {
        let mut trng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut posts = PostBuffer::new();
        let triple = one_triple(&mut trng, &mut posts, c1, c2, cfg, tpk, phase);
        (triple, posts)
    });
    let mut triples = Vec::with_capacity(count);
    for (triple, posts) in results {
        sb.flush_buffer(posts)?;
        triples.push(triple?);
    }
    Ok(triples)
}

/// The b-side Beaver relation: witness `(b, r)` with
/// `c_b = TEnc(b; r)` and `c_c = b · c_a`.
fn beaver_b_statement<F: PrimeField>(
    tpk: &yoso_the::mock::PublicKey<F>,
    c_a: &Ciphertext<F>,
    c_b: &Ciphertext<F>,
    c_c: &Ciphertext<F>,
) -> nizk::linear::Statement<F> {
    nizk::linear::Statement::new(
        vec![
            vec![F::ZERO, tpk.g],
            vec![F::ONE, tpk.h],
            vec![c_a.u, F::ZERO],
            vec![c_a.v, F::ZERO],
        ],
        vec![c_b.u, c_b.v, c_c.u, c_c.v],
    )
}

fn beaver_b_proof<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    tpk: &yoso_the::mock::PublicKey<F>,
    c_a: &Ciphertext<F>,
    c_b: &Ciphertext<F>,
    c_c: &Ciphertext<F>,
    b: F,
    r: F,
) -> nizk::LinearProof<F> {
    let st = beaver_b_statement(tpk, c_a, c_b, c_c);
    nizk::prove_linear(rng, b"yoso-pss/nizk/beaver-b/v1", &st, &[b, r])
}

fn verify_beaver_b_proof<F: PrimeField>(
    tpk: &yoso_the::mock::PublicKey<F>,
    c_a: &Ciphertext<F>,
    c_b: &Ciphertext<F>,
    c_c: &Ciphertext<F>,
    proof: &nizk::LinearProof<F>,
) -> bool {
    nizk::verify_linear(b"yoso-pss/nizk/beaver-b/v1", &beaver_b_statement(tpk, c_a, c_b, c_c), proof)
}

/// Step 4 packing: given the `k_b` per-wire mask ciphertexts of a
/// batch and `t` summed helper-randomness ciphertexts, computes the
/// `n` packed-share ciphertexts by homomorphic Lagrange evaluation.
///
/// The implied polynomial has the batch secrets at the scheme's `k_b`
/// secret points and the helpers at its first `t` party points —
/// degree `t + k_b − 1`, exactly the paper's construction. Using the
/// scheme's own dealing rows ([`PackedSharing::dealing_basis_rows`])
/// keeps the homomorphic packing on whatever [`PointLayout`] the
/// protocol runs, so the online roles can open these ciphertexts with
/// the same scheme (and its transform fast paths) they use everywhere
/// else.
///
/// [`PointLayout`]: yoso_pss_sharing::PointLayout
pub fn pack_ciphertexts<F: PrimeField>(
    scheme: &PackedSharing<F>,
    t: usize,
    wire_cts: &[Ciphertext<F>],
    helper_cts: &[Ciphertext<F>],
) -> Result<Vec<Ciphertext<F>>, ProtocolError> {
    if helper_cts.len() != t {
        return Err(ProtocolError::Invariant("need exactly t helper ciphertexts for packing"));
    }
    let k_b = wire_cts.len();
    if scheme.k() != k_b {
        return Err(ProtocolError::Invariant("packing scheme width does not match the wire count"));
    }
    let rows = scheme.dealing_basis_rows(t + k_b - 1)?;
    // Replicated-path transform work: every row is a ciphertext dot
    // product, 2·(k_b + t) field multiplications — same ledger as the
    // distributed slice path, so the bench compares like for like.
    yoso_field::transformstats::bump_slice_muls((rows.len() * 2 * (k_b + t)) as u64);
    let mut all_cts: Vec<Ciphertext<F>> = wire_cts.to_vec();
    all_cts.extend_from_slice(helper_cts);
    rows.into_iter()
        .map(|row| Ok(MockTe::eval(&all_cts, &row)?))
        .collect()
}

/// Runs the full offline phase.
///
/// `setup.tsk` must currently be held by the committee this function
/// samples as the first dependent-values committee.
///
/// # Errors
///
/// Propagates sub-step errors; under the declared corruption model
/// none should occur (GOD).
pub fn run_offline<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    params: &crate::ProtocolParams,
    board: &BulletinBoard<Post>,
    adversary: &Adversary,
    cfg: &ExecutionConfig,
    bc: &BatchedCircuit<F>,
    setup: &SetupArtifacts<F>,
) -> Result<OfflineArtifacts<F>, ProtocolError> {
    let sb = ShardedBoard::new(board, cfg.partition)?;
    let pool = ScratchPool::new(cfg.streaming);
    run_offline_in(rng, params, &sb, adversary, cfg, bc, setup, &pool)
}

/// [`run_offline`] posting through an existing sharded board (the
/// engine keeps one accounting across setup/offline/online so worker
/// processes agree on every canonical board position).
#[allow(clippy::too_many_lines, clippy::too_many_arguments, clippy::needless_range_loop)]
pub(crate) fn run_offline_in<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    params: &crate::ProtocolParams,
    sb: &ShardedBoard<'_>,
    adversary: &Adversary,
    cfg: &ExecutionConfig,
    bc: &BatchedCircuit<F>,
    setup: &SetupArtifacts<F>,
    pool: &ScratchPool<F>,
) -> Result<OfflineArtifacts<F>, ProtocolError> {
    let n = params.n;
    let t = params.t;
    // One contribution arena for the whole phase: Step 2 runs once per
    // maskable wire, Step 4 `3t` times per batch — all sequential.
    let mut contrib = ContribBufs::new(pool.reuse());
    let mut tsk = setup.tsk.clone();
    let tpk = tsk.pk.clone();
    let circuit = &bc.circuit;

    // ---- Step 1: Beaver triples, one per multiplication gate.
    let c1 = adversary.sample_committee(rng, "off-beaver-a", n);
    let c2 = adversary.sample_committee(rng, "off-beaver-b", n);
    let mul_wires: Vec<usize> = circuit
        .mul_layers()
        .iter()
        .flat_map(|layer| layer.iter().map(|w| w.0))
        .collect();
    let triples = beaver_triples_in(rng, sb, &c1, &c2, cfg, &tpk, mul_wires.len())?;
    sb.advance_round()?;
    // triple_of[wire] = index into `triples`.
    let mut triple_of = vec![usize::MAX; circuit.wire_count()];
    for (idx, &w) in mul_wires.iter().enumerate() {
        triple_of[w] = idx;
    }

    // ---- Step 2: random wire values for input and mul output wires.
    let c3 = adversary.sample_committee(rng, "off-randomness", n);
    let phase2 = "offline/2-wire-rand";
    let zero_ct = Ciphertext { u: F::ZERO, v: F::ZERO };
    let mut lambda_cts: Vec<Ciphertext<F>> = vec![zero_ct; circuit.wire_count()];
    for (w, gate) in circuit.gates().iter().enumerate() {
        if matches!(gate, Gate::Input { .. } | Gate::Mul(_, _)) {
            lambda_cts[w] = summed_contribution(
                rng,
                sb,
                &c3,
                cfg,
                &tpk,
                phase2,
                ContributionStep::WireRandom,
                &mut contrib,
            )?;
        }
    }

    sb.advance_round()?;

    // ---- Step 3: dependent wire values (and Γ per mul gate),
    // processed in gate order; one decrypt committee per mul layer.
    let mut gamma_cts: Vec<Option<Ciphertext<F>>> = vec![None; circuit.wire_count()];
    // Propagate masks through linear gates first (mask of a linear gate
    // is the same linear function of its input masks).
    for (w, gate) in circuit.gates().iter().enumerate() {
        match *gate {
            Gate::Add(a, b) => {
                lambda_cts[w] = MockTe::eval(&[lambda_cts[a.0], lambda_cts[b.0]], &[F::ONE, F::ONE])?;
            }
            Gate::Sub(a, b) => {
                lambda_cts[w] =
                    MockTe::eval(&[lambda_cts[a.0], lambda_cts[b.0]], &[F::ONE, -F::ONE])?;
            }
            Gate::MulConst(a, c) => {
                lambda_cts[w] = MockTe::eval(&[lambda_cts[a.0]], &[c])?;
            }
            Gate::Const(_) => {
                lambda_cts[w] = zero_ct; // public constants carry a zero mask
            }
            Gate::Output(a, _) => {
                lambda_cts[w] = lambda_cts[a.0];
            }
            Gate::Input { .. } | Gate::Mul(_, _) => {}
        }
    }
    // Linear propagation is complete before any decryption because the
    // mul-output masks were fixed independently in Step 2; only the Γ
    // values need the ε/δ openings below.
    for (layer_idx, layer) in circuit.mul_layers().iter().enumerate() {
        let committee = adversary.sample_committee(rng, format!("off-dep-{layer_idx}"), n);
        let phase = "offline/3-dependent";
        // Build ε/δ ciphertexts for the layer.
        let mut eps_delta = Vec::with_capacity(layer.len() * 2);
        for &gw in layer {
            let (a, b) = match circuit.gates()[gw.0] {
                Gate::Mul(a, b) => (a, b),
                _ => {
                    return Err(ProtocolError::Invariant(
                        "mul layer contains a non-mul gate",
                    ))
                }
            };
            let tr = &triples[triple_of[gw.0]];
            eps_delta.push(MockTe::eval(&[lambda_cts[a.0], tr.a], &[F::ONE, F::ONE])?);
            eps_delta.push(MockTe::eval(&[lambda_cts[b.0], tr.b], &[F::ONE, F::ONE])?);
        }
        let opened = tsk.decrypt_in(rng, sb, &committee, cfg, phase, &eps_delta)?;
        for (j, &gw) in layer.iter().enumerate() {
            let (_, b) = match circuit.gates()[gw.0] {
                Gate::Mul(a, b) => (a, b),
                _ => {
                    return Err(ProtocolError::Invariant(
                        "mul layer contains a non-mul gate",
                    ))
                }
            };
            let tr = &triples[triple_of[gw.0]];
            let eps = opened[2 * j];
            let delta = opened[2 * j + 1];
            // c^Γ = ε·c_β − δ·cᵃ + cᶜ − c_γ.
            let gamma = MockTe::eval(
                &[lambda_cts[b.0], tr.a, tr.c, lambda_cts[gw.0]],
                &[eps, -delta, F::ONE, -F::ONE],
            )?;
            gamma_cts[gw.0] = Some(gamma);
        }
        // Hand tsk to the next committee in the chain.
        let next_keys: Vec<yoso_the::mock::PkeKeyPair<F>> =
            (0..n).map(|_| yoso_the::mock::LinearPke::keygen(rng)).collect();
        tsk.handover_in(rng, sb, &committee, cfg, "offline/handover", &next_keys)?;
        sb.advance_round()?;
    }

    // ---- Step 4: packing per batch (helpers contributed by c3 as part
    // of its single message; metered under the packing phase).
    let phase4 = "offline/4-pack";
    type PackedTriple<F> = (Vec<Ciphertext<F>>, Vec<Ciphertext<F>>, Vec<Ciphertext<F>>);
    let mut packed: Vec<PackedTriple<F>> = Vec::with_capacity(bc.mul_batches.len());
    // One packing scheme per batch width, on the protocol's point
    // layout; the dealing-row cache inside makes repeated batches of
    // the same width reuse one basis matrix.
    let mut pack_schemes: BTreeMap<usize, PackedSharing<F>> = BTreeMap::new();
    for batch in &bc.mul_batches {
        let k_b = batch.gates.len();
        let scheme = match pack_schemes.entry(k_b) {
            std::collections::btree_map::Entry::Occupied(e) => &*e.into_mut(),
            std::collections::btree_map::Entry::Vacant(v) => {
                &*v.insert(PackedSharing::with_layout(n, k_b, params.layout)?)
            }
        };
        let alpha_wires = batch.left_wires(circuit);
        let beta_wires = batch.right_wires(circuit);
        let alpha_cts: Vec<Ciphertext<F>> =
            alpha_wires.iter().map(|w| lambda_cts[w.0]).collect();
        let beta_cts: Vec<Ciphertext<F>> =
            beta_wires.iter().map(|w| lambda_cts[w.0]).collect();
        let gamma_in: Vec<Ciphertext<F>> = batch
            .gates
            .iter()
            .map(|w| {
                gamma_cts[w.0].ok_or(ProtocolError::Invariant(
                    "Γ ciphertext missing for a mul gate after step 3",
                ))
            })
            .collect::<Result<_, _>>()?;
        let mut gather_helpers = |rng: &mut R| -> Result<Vec<Ciphertext<F>>, ProtocolError> {
            let mut helpers = Vec::with_capacity(t);
            for _ in 0..t {
                helpers.push(summed_contribution(
                    rng,
                    sb,
                    &c3,
                    cfg,
                    &tpk,
                    phase4,
                    ContributionStep::PackHelper,
                    &mut contrib,
                )?);
            }
            Ok(helpers)
        };
        if cfg.dist_transform {
            // Distributed transform (DESIGN §13): helpers are gathered
            // in the same α → β → Γ order as the replicated path (the
            // RNG stream — and therefore every computed value — is
            // identical), then each worker evaluates only its owned
            // dealing rows and the batch is recombined off the board.
            let helpers_a = gather_helpers(rng)?;
            let helpers_b = gather_helpers(rng)?;
            let helpers_g = gather_helpers(rng)?;
            let [alpha, beta, gamma] = crate::disttransform::dist_pack_batch(
                sb,
                scheme,
                t,
                [
                    crate::disttransform::PackInputs { wires: &alpha_cts, helpers: &helpers_a },
                    crate::disttransform::PackInputs { wires: &beta_cts, helpers: &helpers_b },
                    crate::disttransform::PackInputs { wires: &gamma_in, helpers: &helpers_g },
                ],
                crate::disttransform::DIST_PACK_PHASE,
            )?;
            packed.push((alpha, beta, gamma));
        } else {
            let mut pack_one =
                |rng: &mut R, wires_cts: &[Ciphertext<F>]| -> Result<Vec<Ciphertext<F>>, ProtocolError> {
                    let helpers = gather_helpers(rng)?;
                    pack_ciphertexts(scheme, t, wires_cts, &helpers)
                };
            let alpha = pack_one(rng, &alpha_cts)?;
            let beta = pack_one(rng, &beta_cts)?;
            let gamma = pack_one(rng, &gamma_in)?;
            packed.push((alpha, beta, gamma));
        }
    }

    // ---- Step 5: re-encrypt input-wire masks to client KFFs.
    let c5 = adversary.sample_committee(rng, "off-reenc-in", n);
    let phase5 = "offline/5-reenc-inputs";
    let mut input_items: Vec<(PkePublicKey<F>, Ciphertext<F>)> = Vec::new();
    let mut input_meta: Vec<(usize, usize)> = Vec::new();
    for (client, wires) in circuit.inputs_per_client().iter().enumerate() {
        for w in wires {
            input_items.push((setup.client_kff_pairs[client].public, lambda_cts[w.0]));
            input_meta.push((w.0, client));
        }
    }
    let input_vals = tsk.reencrypt_in(rng, sb, &c5, cfg, phase5, &input_items)?;
    let input_reenc = input_meta
        .into_iter()
        .zip(input_vals)
        .map(|((w, client), v)| (w, client, v))
        .collect();
    sb.advance_round()?;
    let next_keys: Vec<yoso_the::mock::PkeKeyPair<F>> =
        (0..n).map(|_| yoso_the::mock::LinearPke::keygen(rng)).collect();
    tsk.handover_in(rng, sb, &c5, cfg, "offline/handover", &next_keys)?;

    // ---- Step 6: re-encrypt packed shares to the online roles' KFFs.
    let c6 = adversary.sample_committee(rng, "off-reenc-shares", n);
    let phase6 = "offline/6-reenc-shares";
    let mut batch_shares = Vec::with_capacity(bc.mul_batches.len());
    for (batch, (alpha, beta, gamma)) in bc.mul_batches.iter().zip(&packed) {
        let layer = batch.layer;
        let mut items: Vec<(PkePublicKey<F>, Ciphertext<F>)> = Vec::with_capacity(3 * n);
        for i in 0..n {
            items.push((setup.kff_pairs[layer][i].public, alpha[i]));
        }
        for i in 0..n {
            items.push((setup.kff_pairs[layer][i].public, beta[i]));
        }
        for i in 0..n {
            items.push((setup.kff_pairs[layer][i].public, gamma[i]));
        }
        let mut vals = tsk.reencrypt_in(rng, sb, &c6, cfg, phase6, &items)?;
        let gamma_v: Vec<ReencryptedValue<F>> = vals.split_off(2 * n);
        let beta_v: Vec<ReencryptedValue<F>> = vals.split_off(n);
        batch_shares.push(BatchShares { alpha: vals, beta: beta_v, gamma: gamma_v });
    }
    let next_keys: Vec<yoso_the::mock::PkeKeyPair<F>> =
        (0..n).map(|_| yoso_the::mock::LinearPke::keygen(rng)).collect();
    tsk.handover_in(rng, sb, &c6, cfg, "offline/handover", &next_keys)?;
    sb.advance_round()?;

    Ok(OfflineArtifacts { lambda_cts, batch_shares, input_reenc, tsk })
}

/// Returns the λ mask implied for a mul batch (test oracle): opens the
/// packed-share re-encryptions with the KFF secrets and reconstructs.
#[doc(hidden)]
pub fn debug_open_batch_lambda<F: PrimeField>(
    params: &crate::ProtocolParams,
    setup: &SetupArtifacts<F>,
    batch: &MulBatch,
    shares: &[ReencryptedValue<F>],
    k_b: usize,
) -> Result<Vec<F>, ProtocolError> {
    let scheme = PackedSharing::<F>::with_layout(params.n, k_b, params.layout)?;
    let mut opened = Vec::with_capacity(params.n);
    for (i, rv) in shares.iter().enumerate() {
        let sk = setup.kff_pairs[batch.layer][i].secret.scalar;
        opened.push(yoso_pss_sharing::Share { party: i, value: rv.open(sk)? });
    }
    Ok(scheme.reconstruct(&opened[..params.packing_degree() + 1], params.packing_degree())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use yoso_field::F61;
    use yoso_runtime::{ActiveAttack, Committee as RtCommittee};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(31415)
    }

    fn cfg() -> ExecutionConfig {
        ExecutionConfig::default()
    }

    #[test]
    fn beaver_triples_multiply_correctly() {
        let mut r = rng();
        let board = BulletinBoard::new();
        let chain = TskChain::<F61>::keygen(&mut r, 6, 2).unwrap();
        let c1 = RtCommittee::honest("c1", 6);
        let c2 = RtCommittee::honest("c2", 6);
        let triples =
            beaver_triples(&mut r, &board, &c1, &c2, &cfg(), &chain.pk, 3).unwrap();
        let dec = RtCommittee::honest("d", 6);
        for tr in &triples {
            let opened = chain
                .decrypt(&mut r, &board, &dec, &cfg(), "t", &[tr.a, tr.b, tr.c])
                .unwrap();
            assert_eq!(opened[0] * opened[1], opened[2]);
        }
    }

    #[test]
    fn beaver_triples_with_malicious_contributors() {
        let mut r = rng();
        let board = BulletinBoard::new();
        let chain = TskChain::<F61>::keygen(&mut r, 7, 2).unwrap();
        let adv = Adversary::active(2, ActiveAttack::WrongValue);
        let c1 = adv.sample_committee(&mut r, "c1", 7);
        let c2 = adv.sample_committee(&mut r, "c2", 7);
        let triples =
            beaver_triples(&mut r, &board, &c1, &c2, &cfg(), &chain.pk, 2).unwrap();
        let dec = RtCommittee::honest("d", 7);
        for tr in &triples {
            let opened = chain
                .decrypt(&mut r, &board, &dec, &cfg(), "t", &[tr.a, tr.b, tr.c])
                .unwrap();
            assert_eq!(opened[0] * opened[1], opened[2], "a·b must equal c despite attackers");
        }
    }

    #[test]
    fn packing_reconstructs_secrets_at_secret_points() {
        // Encrypt known values, pack, decrypt all shares, interpolate.
        let mut r = rng();
        let board = BulletinBoard::new();
        let n = 9;
        let t = 2;
        let k_b = 3;
        let chain = TskChain::<F61>::keygen(&mut r, n, t).unwrap();
        let committee = RtCommittee::honest("c", n);
        let values = [F61::from(11u64), F61::from(22u64), F61::from(33u64)];
        let wire_cts: Vec<Ciphertext<F61>> =
            values.iter().map(|&v| MockTe::encrypt(&mut r, &chain.pk, v).0).collect();
        let helper_cts: Vec<Ciphertext<F61>> = (0..t)
            .map(|_| {
                let h: F61 = yoso_field::PrimeField::random(&mut r);
                MockTe::encrypt(&mut r, &chain.pk, h).0
            })
            .collect();
        let scheme = PackedSharing::<F61>::new(n, k_b).unwrap();
        let packed = pack_ciphertexts(&scheme, t, &wire_cts, &helper_cts).unwrap();
        assert_eq!(packed.len(), n);
        // Decrypt the share ciphertexts and reconstruct via packed Shamir.
        let share_vals =
            chain.decrypt(&mut r, &board, &committee, &cfg(), "t", &packed).unwrap();
        let shares: Vec<yoso_pss_sharing::Share<F61>> = share_vals
            .iter()
            .enumerate()
            .map(|(i, &v)| yoso_pss_sharing::Share { party: i, value: v })
            .collect();
        let degree = t + k_b - 1;
        let got = scheme.reconstruct(&shares[..degree + 1], degree).unwrap();
        assert_eq!(got, values.to_vec());
        // Surplus shares are consistent with the packing degree.
        let got_all = scheme.reconstruct(&shares, degree).unwrap();
        assert_eq!(got_all, values.to_vec());
    }

    #[test]
    fn pack_rejects_wrong_helper_count() {
        let mut r = rng();
        let chain = TskChain::<F61>::keygen(&mut r, 5, 2).unwrap();
        let ct = MockTe::encrypt(&mut r, &chain.pk, F61::from(1u64)).0;
        let scheme = PackedSharing::<F61>::new(5, 1).unwrap();
        assert!(matches!(
            pack_ciphertexts::<F61>(&scheme, 2, &[ct], &[ct]),
            Err(ProtocolError::Invariant(_))
        ));
    }

    #[test]
    fn packing_on_subgroup_layout_reconstructs() {
        // Same flow as above but with every point on the subgroup
        // layout — the ciphertext rows and the reconstructing scheme
        // must agree on the geometry.
        use yoso_pss_sharing::PointLayout;
        let mut r = rng();
        let board = BulletinBoard::new();
        let (n, t, k_b) = (9, 2, 3);
        let chain = TskChain::<F61>::keygen(&mut r, n, t).unwrap();
        let committee = RtCommittee::honest("c", n);
        let values = [F61::from(7u64), F61::from(8u64), F61::from(9u64)];
        let wire_cts: Vec<Ciphertext<F61>> =
            values.iter().map(|&v| MockTe::encrypt(&mut r, &chain.pk, v).0).collect();
        let helper_cts: Vec<Ciphertext<F61>> = (0..t)
            .map(|_| {
                let h: F61 = yoso_field::PrimeField::random(&mut r);
                MockTe::encrypt(&mut r, &chain.pk, h).0
            })
            .collect();
        let scheme = PackedSharing::<F61>::with_layout(n, k_b, PointLayout::Subgroup).unwrap();
        let packed = pack_ciphertexts(&scheme, t, &wire_cts, &helper_cts).unwrap();
        let share_vals =
            chain.decrypt(&mut r, &board, &committee, &cfg(), "t", &packed).unwrap();
        let shares: Vec<yoso_pss_sharing::Share<F61>> = share_vals
            .iter()
            .enumerate()
            .map(|(i, &v)| yoso_pss_sharing::Share { party: i, value: v })
            .collect();
        let degree = t + k_b - 1;
        assert_eq!(scheme.reconstruct(&shares, degree).unwrap(), values.to_vec());
    }
}
