//! The CDN-style baseline: YOSO MPC in the style of Gentry et al.
//! (CRYPTO'21, reference \[29\] of the paper).
//!
//! The comparison point for every experiment. The circuit is evaluated
//! **gate by gate over threshold ciphertexts**:
//!
//! - Clients encrypt their inputs under `tpk` and post them.
//! - Addition is free (homomorphic).
//! - Each multiplication consumes a Beaver triple prepared offline and
//!   performs **two public threshold decryptions** in the online
//!   phase — `n` partial decryptions (plus proofs) each, so the online
//!   cost is `Θ(n)` ring elements per gate. One committee serves each
//!   multiplication layer and hands `tsk` to the next (`O(n²)` per
//!   handover, amortized over the layer's gates).
//! - Outputs are re-encrypted to the receiving clients (`Re-encrypt*`),
//!   as in the packed protocol.
//!
//! Everything else (committees, adversary handling, NIZKs, metering) is
//! shared with the packed protocol, so measured differences isolate
//! exactly the paper's contribution: packed offline masks + `O(1)`
//! online multiplication.

use rand::Rng;

use yoso_circuit::{Circuit, Gate};
use yoso_field::PrimeField;
use yoso_runtime::{Adversary, BulletinBoard, PhaseStats, RoleId};
use yoso_the::mock::{Ciphertext, LinearPke, MockTe, PkeKeyPair, PkePublicKey};
use yoso_the::nizk::{enc_proof, verify_enc_proof};

use crate::messages::{self, Post, CT_ELEMENTS, ENC_PROOF_ELEMENTS};
use crate::offline::{beaver_triples, EncryptedTriple};
use crate::tsk::TskChain;
use crate::{ExecutionConfig, ProtocolError, ProtocolParams};

/// The outcome of a baseline run.
#[derive(Debug, Clone)]
pub struct BaselineResult<F: PrimeField> {
    /// Per-client outputs in output-gate order.
    pub outputs: Vec<Vec<F>>,
    /// Per-phase communication statistics.
    pub phases: Vec<(String, PhaseStats)>,
    /// Multiplication gate count.
    pub mul_gates: usize,
}

impl<F: PrimeField> BaselineResult<F> {
    /// Total elements under phases starting with `prefix`.
    pub fn elements(&self, prefix: &str) -> u64 {
        self.phases
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, s)| s.elements)
            .sum()
    }

    /// Online elements per multiplication gate.
    pub fn online_elements_per_gate(&self) -> f64 {
        self.elements("online") as f64 / self.mul_gates.max(1) as f64
    }

    /// Offline elements per multiplication gate.
    pub fn offline_elements_per_gate(&self) -> f64 {
        self.elements("offline") as f64 / self.mul_gates.max(1) as f64
    }
}

/// Fetches the ciphertext already computed for wire `w`. The circuit is
/// topologically ordered, so operands precede their gate; a `None` here
/// is a driver bug surfaced as a typed error rather than a panic.
fn wire_ct<F: PrimeField>(
    cts: &[Option<Ciphertext<F>>],
    w: usize,
) -> Result<Ciphertext<F>, ProtocolError> {
    cts.get(w).copied().flatten().ok_or(ProtocolError::Invariant(
        "baseline reached a gate before its operand wire was evaluated",
    ))
}

/// The CDN-style baseline engine.
#[derive(Debug, Clone, Copy)]
pub struct BaselineEngine {
    params: ProtocolParams,
    config: ExecutionConfig,
}

impl BaselineEngine {
    /// Creates a baseline engine. The packing factor in `params` is
    /// ignored (the baseline has `k = 1` semantically).
    pub fn new(params: ProtocolParams, config: ExecutionConfig) -> Self {
        BaselineEngine { params, config }
    }

    /// Runs the baseline protocol.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors (none occur within the corruption
    /// model).
    #[allow(clippy::too_many_lines)]
    pub fn run<F: PrimeField, R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        circuit: &Circuit<F>,
        inputs: &[Vec<F>],
        adversary: &Adversary,
    ) -> Result<BaselineResult<F>, ProtocolError> {
        let n = self.params.n;
        let cfg = &self.config;
        let board: BulletinBoard<Post> = if cfg.audit_board {
            BulletinBoard::new()
        } else {
            BulletinBoard::metered_only()
        };
        let mut tsk = TskChain::<F>::keygen(rng, n, self.params.t)?;
        let tpk = tsk.pk.clone();

        // ---- Offline: one Beaver triple per multiplication gate.
        let c1 = adversary.sample_committee(rng, "base-beaver-a", n);
        let c2 = adversary.sample_committee(rng, "base-beaver-b", n);
        let mul_wires: Vec<usize> = circuit
            .mul_layers()
            .iter()
            .flat_map(|l| l.iter().map(|w| w.0))
            .collect();
        let triples: Vec<EncryptedTriple<F>> =
            beaver_triples(rng, &board, &c1, &c2, cfg, &tpk, mul_wires.len())?;
        let mut triple_of = vec![usize::MAX; circuit.wire_count()];
        for (idx, &w) in mul_wires.iter().enumerate() {
            triple_of[w] = idx;
        }

        // ---- Online: clients post encrypted inputs.
        let phase_in = "online/input";
        let mut cts: Vec<Option<Ciphertext<F>>> = vec![None; circuit.wire_count()];
        let mut next_input = vec![0usize; circuit.clients()];
        for (w, gate) in circuit.gates().iter().enumerate() {
            if let Gate::Input { client } = *gate {
                let v = inputs[client][next_input[client]];
                next_input[client] += 1;
                let (ct, r) = MockTe::encrypt(rng, &tpk, v);
                if cfg.produce_proofs {
                    let proof = enc_proof(rng, &tpk, &ct, v, r);
                    debug_assert!(verify_enc_proof(&tpk, &ct, &proof));
                }
                board.post(
                    RoleId::new("client", client),
                    Post::BaselineInput,
                    phase_in,
                    CT_ELEMENTS + ENC_PROOF_ELEMENTS,
                    messages::to_bytes(CT_ELEMENTS + ENC_PROOF_ELEMENTS),
                )?;
                cts[w] = Some(ct);
            }
        }

        // ---- Online: evaluate gate by gate; one committee per layer.
        let phase_mul = "online/mult";
        let mut current_layer = usize::MAX;
        let mut layer_committee = adversary.sample_committee(rng, "base-mult-boot", n);
        let gate_layer: Vec<Option<usize>> = {
            let mut v = vec![None; circuit.wire_count()];
            for (l, layer) in circuit.mul_layers().iter().enumerate() {
                for w in layer {
                    v[w.0] = Some(l);
                }
            }
            v
        };
        for (w, gate) in circuit.gates().iter().enumerate() {
            let ct = match *gate {
                Gate::Input { .. } => continue,
                Gate::Const(c) => Ciphertext { u: F::ZERO, v: c },
                Gate::Add(a, b) => MockTe::eval(
                    &[wire_ct(&cts, a.0)?, wire_ct(&cts, b.0)?],
                    &[F::ONE, F::ONE],
                )?,
                Gate::Sub(a, b) => MockTe::eval(
                    &[wire_ct(&cts, a.0)?, wire_ct(&cts, b.0)?],
                    &[F::ONE, -F::ONE],
                )?,
                Gate::MulConst(a, c) => MockTe::eval(&[wire_ct(&cts, a.0)?], &[c])?,
                Gate::Output(a, _) => wire_ct(&cts, a.0)?,
                Gate::Mul(a, b) => {
                    let layer = gate_layer[w].ok_or(ProtocolError::Invariant(
                        "mul gate missing from the layer index",
                    ))?;
                    if layer != current_layer {
                        // New layer: fresh committee takes over tsk.
                        let committee =
                            adversary.sample_committee(rng, format!("base-mult-{layer}"), n);
                        if current_layer != usize::MAX {
                            let next_keys: Vec<PkeKeyPair<F>> =
                                (0..n).map(|_| LinearPke::keygen(rng)).collect();
                            tsk.handover(
                                rng,
                                &board,
                                &layer_committee,
                                cfg,
                                "online/handover",
                                &next_keys,
                            )?;
                        }
                        layer_committee = committee;
                        current_layer = layer;
                    }
                    let tr = &triples[triple_of[w]];
                    let c_eps =
                        MockTe::eval(&[wire_ct(&cts, a.0)?, tr.a], &[F::ONE, F::ONE])?;
                    let c_del =
                        MockTe::eval(&[wire_ct(&cts, b.0)?, tr.b], &[F::ONE, F::ONE])?;
                    let opened = tsk.decrypt(
                        rng,
                        &board,
                        &layer_committee,
                        cfg,
                        phase_mul,
                        &[c_eps, c_del],
                    )?;
                    let (eps, del) = (opened[0], opened[1]);
                    // x·y = (ε−a)(δ−b) = εδ − ε·b − δ·a + ab.
                    let mut out = MockTe::eval(&[tr.b, tr.a, tr.c], &[-eps, -del, F::ONE])?;
                    out = MockTe::add_plain(&out, eps * del);
                    out
                }
            };
            cts[w] = Some(ct);
        }

        // ---- Output: Re-encrypt* to clients.
        let phase_out = "online/output";
        let out_committee = adversary.sample_committee(rng, "base-output", n);
        let client_keys: Vec<PkeKeyPair<F>> =
            (0..circuit.clients()).map(|_| LinearPke::keygen(rng)).collect();
        let out_items: Vec<(PkePublicKey<F>, Ciphertext<F>)> = circuit
            .outputs()
            .iter()
            .map(|&(w, client)| Ok((client_keys[client].public, wire_ct(&cts, w.0)?)))
            .collect::<Result<_, ProtocolError>>()?;
        let out_vals = tsk.reencrypt(rng, &board, &out_committee, cfg, phase_out, &out_items)?;
        let mut outputs: Vec<Vec<F>> = vec![Vec::new(); circuit.clients()];
        for (&(_, client), rv) in circuit.outputs().iter().zip(&out_vals) {
            outputs[client].push(rv.open(client_keys[client].secret.scalar)?);
        }

        Ok(BaselineResult {
            outputs,
            phases: board.meter().phases(),
            mul_gates: circuit.mul_count(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use yoso_circuit::generators;
    use yoso_field::F61;
    use yoso_runtime::ActiveAttack;

    fn f(v: u64) -> F61 {
        F61::from(v)
    }

    #[test]
    fn baseline_computes_correctly() {
        let mut r = rand::rngs::StdRng::seed_from_u64(11);
        let circuit = generators::poly_eval::<F61>(3).unwrap();
        let inputs = vec![vec![f(2)], vec![f(1), f(2), f(3), f(4)]];
        let expect = circuit.evaluate(&inputs).unwrap();
        let engine = BaselineEngine::new(
            ProtocolParams::new(7, 3, 1).unwrap(),
            ExecutionConfig::default(),
        );
        let run = engine.run(&mut r, &circuit, &inputs, &Adversary::none()).unwrap();
        assert_eq!(run.outputs, expect);
    }

    #[test]
    fn baseline_god_under_attack() {
        let mut r = rand::rngs::StdRng::seed_from_u64(12);
        let circuit = generators::inner_product::<F61>(3).unwrap();
        let x: Vec<F61> = (1..=3u64).map(f).collect();
        let y: Vec<F61> = (4..=6u64).map(f).collect();
        let expect = circuit.evaluate(&[x.clone(), y.clone()]).unwrap();
        let engine = BaselineEngine::new(
            ProtocolParams::new(7, 2, 1).unwrap(),
            ExecutionConfig::default(),
        );
        let adv = Adversary::active(2, ActiveAttack::WrongValue);
        let run = engine.run(&mut r, &circuit, &[x, y], &adv).unwrap();
        assert_eq!(run.outputs, expect);
    }

    #[test]
    fn baseline_online_cost_scales_linearly_with_n() {
        let circuit = generators::inner_product::<F61>(4).unwrap();
        let x: Vec<F61> = (1..=4u64).map(f).collect();
        let y: Vec<F61> = (5..=8u64).map(f).collect();
        let mut per_gate = Vec::new();
        for n in [8usize, 16, 32] {
            let mut r = rand::rngs::StdRng::seed_from_u64(13);
            let t = n / 2 - 1;
            let engine = BaselineEngine::new(
                ProtocolParams::new(n, t, 1).unwrap(),
                ExecutionConfig::sweep(),
            );
            let run = engine
                .run(&mut r, &circuit, &[x.clone(), y.clone()], &Adversary::none())
                .unwrap();
            per_gate.push(run.elements("online/mult") as f64 / run.mul_gates as f64);
        }
        // Doubling n should roughly double online per-gate cost.
        assert!(per_gate[1] / per_gate[0] > 1.7, "{per_gate:?}");
        assert!(per_gate[2] / per_gate[1] > 1.7, "{per_gate:?}");
    }
}
