//! Bulletin-board message descriptors and size accounting.
//!
//! The simulation passes protocol data through typed structs (all
//! roles live in one process); the bulletin board records *what* was
//! posted and *how large* it was, so experiments measure exactly the
//! traffic a distributed deployment would broadcast.
//!
//! Sizes are counted in **ring elements** (the paper's unit; one
//! element of `F_p` = 8 bytes in the mock instantiation). A mock-TE or
//! PKE ciphertext is 2 elements; a sigma-protocol proof is
//! `rows + witness` elements.

use serde::{Deserialize, Serialize};
use yoso_runtime::transport::{BoardError, WireCursor, WireMessage};

/// What a posting contains (audit record on the board).
///
/// Most variants are pure size descriptors (the simulation keeps the
/// actual protocol data in process); [`Post::TransformSlice`] also
/// carries its payload on the wire, because in a distributed-transform
/// run the *other* workers need the values to recombine the batch
/// (DESIGN §13).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Post {
    /// A `TEnc` contribution with its encryption proof
    /// (offline Steps 1, 2, 4).
    Contribution {
        /// Which offline step.
        step: ContributionStep,
        /// Number of ciphertexts in the contribution.
        ciphertexts: u32,
    },
    /// A partial decryption with its correctness proof
    /// (offline Step 3 `Decrypt`).
    PartialDec,
    /// An encrypted partial decryption (a `Re-encrypt` posting:
    /// offline Steps 5–6, online key distribution and output).
    EncryptedPartial,
    /// A `tsk` re-share message (commitments + `n` encrypted
    /// subshares + proof), once per committee handover.
    TskReshare,
    /// A client's published `μ = v − λ` input values.
    InputMu {
        /// Number of input wires covered.
        wires: u32,
    },
    /// One committee member's μ-share for a multiplication batch,
    /// with its proof.
    MulShare,
    /// Baseline protocol: a client's encrypted input.
    BaselineInput,
    /// Baseline protocol: a partial decryption in the per-gate
    /// multiplication.
    BaselinePartialDec,
    /// One committee member's distributed-transform row for an offline
    /// pack batch (DESIGN §13): the member's α/β/γ packed-share
    /// ciphertexts, fused into one posting so the posting sequence is
    /// one record per member at any worker count. The payload is the
    /// canonical `u64` encodings of the ciphertext `(u, v)` pairs —
    /// public data under the mock TE, so posting it leaks nothing.
    TransformSlice {
        /// The committee member index (the share row).
        row: u32,
        /// Canonical field-element encodings of the row's ciphertext
        /// components, in `[αu, αv, βu, βv, γu, γv]` order.
        values: Vec<u64>,
    },
}

impl WireMessage for Post {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), BoardError> {
        match self {
            Post::Contribution { step, ciphertexts } => {
                out.push(0);
                out.push(match step {
                    ContributionStep::Beaver => 0,
                    ContributionStep::WireRandom => 1,
                    ContributionStep::PackHelper => 2,
                });
                out.extend_from_slice(&ciphertexts.to_le_bytes());
            }
            Post::PartialDec => out.push(1),
            Post::EncryptedPartial => out.push(2),
            Post::TskReshare => out.push(3),
            Post::InputMu { wires } => {
                out.push(4);
                out.extend_from_slice(&wires.to_le_bytes());
            }
            Post::MulShare => out.push(5),
            Post::BaselineInput => out.push(6),
            Post::BaselinePartialDec => out.push(7),
            Post::TransformSlice { row, values } => {
                out.push(8);
                out.extend_from_slice(&row.to_le_bytes());
                let count = u32::try_from(values.len()).map_err(|_| {
                    BoardError::Protocol("transform slice too long for wire".into())
                })?;
                out.extend_from_slice(&count.to_le_bytes());
                for v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        Ok(())
    }

    fn decode(cur: &mut WireCursor<'_>) -> Result<Self, BoardError> {
        match cur.u8()? {
            0 => {
                let step = match cur.u8()? {
                    0 => ContributionStep::Beaver,
                    1 => ContributionStep::WireRandom,
                    2 => ContributionStep::PackHelper,
                    other => {
                        return Err(BoardError::Protocol(format!(
                            "unknown contribution step tag {other}"
                        )))
                    }
                };
                Ok(Post::Contribution { step, ciphertexts: cur.u32()? })
            }
            1 => Ok(Post::PartialDec),
            2 => Ok(Post::EncryptedPartial),
            3 => Ok(Post::TskReshare),
            4 => Ok(Post::InputMu { wires: cur.u32()? }),
            5 => Ok(Post::MulShare),
            6 => Ok(Post::BaselineInput),
            7 => Ok(Post::BaselinePartialDec),
            8 => {
                let row = cur.u32()?;
                let count = cur.u32()? as usize;
                let mut values = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    values.push(cur.u64()?);
                }
                Ok(Post::TransformSlice { row, values })
            }
            other => Err(BoardError::Protocol(format!("unknown post tag {other}"))),
        }
    }
}

/// Which offline step a contribution belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContributionStep {
    /// Beaver-triple `a`-side or `b`-side contribution (Step 1).
    Beaver,
    /// Random wire mask contribution (Step 2).
    WireRandom,
    /// Packing helper randomness (Step 4).
    PackHelper,
}

/// Elements in a mock ciphertext (TE or linear PKE): `(u, v)`.
pub const CT_ELEMENTS: u64 = 2;

/// Elements in a cleartext partial decryption.
pub const PDEC_ELEMENTS: u64 = 1;

/// Elements in a linear sigma proof with `rows` rows and `witness`
/// variables.
pub const fn proof_elements(rows: u64, witness: u64) -> u64 {
    rows + witness
}

/// Elements in an encryption proof (2 rows, 2 witness variables).
pub const ENC_PROOF_ELEMENTS: u64 = proof_elements(2, 2);

/// Elements in a partial-decryption proof (2 rows, 1 witness).
pub const PDEC_PROOF_ELEMENTS: u64 = proof_elements(2, 1);

/// Elements in an encrypted-partial proof (3 rows, 2 witness: the
/// partial value and the encryption randomness).
pub const ENC_PDEC_PROOF_ELEMENTS: u64 = proof_elements(3, 2);

/// Elements in a μ-share proof (2 rows, 1 witness).
pub const MULSHARE_PROOF_ELEMENTS: u64 = proof_elements(2, 1);

/// Elements in a `tsk` re-share message for committee size `n`,
/// threshold `t`: `t+1` commitments, `n` encrypted subshares, and the
/// reshare proof (`(t+1) + 2n` rows, `(t+1) + n` witness variables).
pub const fn reshare_elements(n: u64, t: u64) -> u64 {
    (t + 1) + n * CT_ELEMENTS + proof_elements((t + 1) + 2 * n, (t + 1) + n)
}

/// Bytes per ring element in the mock instantiation.
pub const ELEMENT_BYTES: u64 = 8;

/// Converts an element count to bytes.
pub const fn to_bytes(elements: u64) -> u64 {
    elements * ELEMENT_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(CT_ELEMENTS, 2);
        assert_eq!(ENC_PROOF_ELEMENTS, 4);
        assert_eq!(PDEC_PROOF_ELEMENTS, 3);
        // n = 10, t = 2: 3 + 20 + (3 + 20 + 3 + 10) = 59.
        assert_eq!(reshare_elements(10, 2), 3 + 20 + 23 + 13);
        assert_eq!(to_bytes(5), 40);
    }

    #[test]
    fn post_wire_roundtrip() {
        let posts = [
            Post::Contribution { step: ContributionStep::Beaver, ciphertexts: 7 },
            Post::Contribution { step: ContributionStep::WireRandom, ciphertexts: 0 },
            Post::Contribution { step: ContributionStep::PackHelper, ciphertexts: u32::MAX },
            Post::PartialDec,
            Post::EncryptedPartial,
            Post::TskReshare,
            Post::InputMu { wires: 42 },
            Post::MulShare,
            Post::BaselineInput,
            Post::BaselinePartialDec,
            Post::TransformSlice { row: 3, values: vec![1, u64::MAX, 0, 7, 9, 11] },
            Post::TransformSlice { row: 0, values: Vec::new() },
        ];
        for p in posts {
            let mut buf = Vec::new();
            p.encode(&mut buf).unwrap();
            let mut cur = WireCursor::new(&buf);
            assert_eq!(Post::decode(&mut cur).unwrap(), p);
        }
    }

    #[test]
    fn post_decode_rejects_bad_tags() {
        let mut cur = WireCursor::new(&[99]);
        assert!(Post::decode(&mut cur).is_err());
        let mut cur = WireCursor::new(&[0, 9, 0, 0, 0, 0]);
        assert!(Post::decode(&mut cur).is_err());
        // TransformSlice truncated mid-payload.
        let mut cur = WireCursor::new(&[8, 0, 0, 0, 0, 2, 0, 0, 0, 1, 2, 3]);
        assert!(Post::decode(&mut cur).is_err());
    }
}
