//! Fail-stop tolerance (paper §5.4).
//!
//! All prior YOSO protocols fold crashed-but-honest parties into the
//! active corruption budget. The paper observes that with a gap
//! `t < n(1/2 − ε)`, halving the packing factor —
//! `k′ = ⌊nε/2⌋ + 1` instead of `k = ⌊nε⌋ + 1` — buys tolerance for
//! `⌊nε⌋` *additional* unresponsive honest parties:
//!
//! ```text
//! t + 2(k′−1) + 1  ≤  n/2 + 1  ≤  n − t − nε
//! ```
//!
//! so the `t + 2(k′−1) + 1` verified μ-shares needed for
//! reconstruction are still available when `nε` honest roles crash on
//! top of the `t` active corruptions.
//!
//! This module provides the parameter derivation (see
//! [`ProtocolParams::from_gap_failstop`]) and the trade-off analysis
//! used by experiment E5; the engine itself handles crashes uniformly
//! through [`yoso_runtime::Behavior::FailStop`].

use crate::{ProtocolError, ProtocolParams};

/// The §5.4 trade-off at committee size `n` and gap `ε`: full-packing
/// vs half-packing parameters and their crash tolerances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailstopTradeoff {
    /// Parameters with the full packing factor (no crash tolerance).
    pub full: ProtocolParams,
    /// Parameters with the halved packing factor (crash tolerance
    /// `⌊nε⌋`).
    pub halved: ProtocolParams,
}

impl FailstopTradeoff {
    /// Derives the trade-off for `(n, ε)`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::BadParameters`] when either variant is
    /// infeasible.
    pub fn derive(n: usize, epsilon: f64) -> Result<Self, ProtocolError> {
        Ok(FailstopTradeoff {
            full: ProtocolParams::from_gap(n, epsilon)?,
            halved: ProtocolParams::from_gap_failstop(n, epsilon)?,
        })
    }

    /// The largest number of crashes each variant tolerates while the
    /// reconstruction threshold stays reachable (`n − t − crashes ≥
    /// t + 2(k−1) + 1`).
    pub fn max_crashes(params: &ProtocolParams) -> usize {
        params
            .n
            .saturating_sub(params.t)
            .saturating_sub(params.reconstruction_threshold())
    }

    /// The online-cost ratio paid for crash tolerance: per-gate online
    /// cost is proportional to `n/k`, so halving `k` doubles it.
    pub fn online_cost_ratio(&self) -> f64 {
        self.full.k as f64 / self.halved.k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halved_packing_tolerates_n_epsilon_crashes() {
        let tr = FailstopTradeoff::derive(40, 0.2).unwrap();
        // Full packing: k = 9, no slack for crashes beyond the GOD margin.
        // Halved: k = 5, tolerates ⌊40·0.2⌋ = 8 crashes.
        assert_eq!(tr.full.k, 9);
        assert_eq!(tr.halved.k, 5);
        assert_eq!(tr.halved.failstops, 8);
        assert!(FailstopTradeoff::max_crashes(&tr.halved) >= 8);
        assert!(FailstopTradeoff::max_crashes(&tr.full) < 8);
    }

    #[test]
    fn cost_ratio_is_about_two() {
        let tr = FailstopTradeoff::derive(100, 0.2).unwrap();
        let ratio = tr.online_cost_ratio();
        assert!((1.5..=2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn out_of_range_gap_rejected() {
        assert!(FailstopTradeoff::derive(10, 0.5).is_err());
        assert!(FailstopTradeoff::derive(10, -0.1).is_err());
    }

    #[test]
    fn derived_parameters_are_always_feasible() {
        // `from_gap` builds in slack (floor − 1), so every in-range
        // (n, ε) with room for k ≥ 1 must validate.
        for n in [4usize, 10, 33, 100] {
            for eps in [0.01, 0.1, 0.25, 0.4] {
                let tr = FailstopTradeoff::derive(n, eps);
                assert!(tr.is_ok(), "n={n}, eps={eps}: {tr:?}");
            }
        }
    }
}
