//! Information-theoretic semi-honest YOSO MPC with packed sharing —
//! the feasibility direction the paper flags as future work (§7:
//! *"explore what the impact of the 'gap' is in the context of
//! information-theoretic security"*; §1.2 notes BGW is essentially
//! already YOSO in the semi-honest setting).
//!
//! This module implements packed BGW over a chain of committees with
//! **no cryptographic assumptions at the protocol level**: state moves
//! between committees by re-sharing (each member deals a fresh packed
//! sharing of its share, scaled by public Lagrange coefficients so the
//! sum reconstructs the right secrets), and multiplication is
//! share-wise followed by the same re-sharing, which doubles as degree
//! reduction.
//!
//! Because packed sharing keeps `k` values in SIMD lanes, the natural
//! computation model here is a **lanewise program** over `k`-vectors
//! ([`LaneProgram`]): lane-parallel add/mul plus a cross-lane sum.
//! (Arbitrary wire routing is exactly the *network routing problem*
//! Turbopack's preprocessing solves; without preprocessing, the IT
//! protocol covers the SIMD-aligned circuit class.)
//!
//! Costs, measured by the same bulletin-board meter as the main
//! protocol (experiment `it_comparison`):
//!
//! - re-share / degree-reduce: `n` posted shares per member per live
//!   vector per handover ⇒ `Θ(n²)` per layer-vector, i.e.
//!   **`Θ(n²/k)` per gate** — the gap helps the IT protocol too, by a
//!   factor `k`, but the online cost still grows with `n`, which is
//!   precisely why the paper moves to the computational setting.
//!
//! The member loops follow the same per-role work-item discipline as
//! the main protocol (each member's dealing draws from a child RNG
//! seeded from the parent stream, so the per-member work is
//! order-independent), but **cross-process role sharding stops at this
//! module's boundary**: the IT engine meters against its own internal
//! board, so there is no shared transcript for a [`crate::
//! RolePartition`] to synchronize on. Sharding it would first require
//! threading an external board through [`ItEngine::run`].
//!
//! The *transform* work of the degree-reduction cliff is sliceable
//! today, though: [`ItEngine::with_transform_slices`] routes every
//! member dealing through [`PackedSharing::share_slice_into`] in
//! partition-sized row ranges — the in-process analogue of the
//! distributed transform (DESIGN §13), with bit-identical share
//! values at any slice count (each slice replays the member's child
//! seed, so the union equals the full deal).

use rand::{Rng, SeedableRng};

use yoso_field::PrimeField;
use yoso_pss_sharing::{PackedSharing, PackedShares};
use yoso_runtime::{BulletinBoard, RoleId};

use crate::messages::{self, Post};
use crate::{ProtocolError, ProtocolParams};

/// A lanewise (SIMD) operation over `k`-vectors. Each op defines value
/// index `i` = its position in the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneOp {
    /// A `k`-vector of private inputs from `client`.
    Input {
        /// The contributing client.
        client: usize,
    },
    /// Lanewise addition.
    Add(usize, usize),
    /// Lanewise subtraction.
    Sub(usize, usize),
    /// Lanewise multiplication (costs a committee round).
    Mul(usize, usize),
    /// Cross-lane sum: every lane of the result holds `Σ_j v[j]`
    /// (costs a committee round, like a multiplication).
    SumLanes(usize),
    /// Reveals vector `0` to `client`.
    Output(usize, usize),
}

/// A lanewise program over `k`-vectors.
#[derive(Debug, Clone)]
pub struct LaneProgram {
    /// Number of lanes (the packing factor the program is written for).
    pub k: usize,
    /// The operation list (SSA: operands refer to earlier indices).
    pub ops: Vec<LaneOp>,
}

impl LaneProgram {
    /// Validates the program.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::BadParameters`] on malformed programs.
    pub fn validate(&self) -> Result<(), ProtocolError> {
        if self.k == 0 {
            return Err(ProtocolError::BadParameters("lane program with k = 0".into()));
        }
        let check = |pos: usize, i: usize| {
            if i >= pos {
                Err(ProtocolError::BadParameters(format!("op {pos} references future value {i}")))
            } else {
                Ok(())
            }
        };
        let mut outputs = 0;
        for (pos, op) in self.ops.iter().enumerate() {
            match *op {
                LaneOp::Input { .. } => {}
                LaneOp::Add(a, b) | LaneOp::Sub(a, b) | LaneOp::Mul(a, b) => {
                    check(pos, a)?;
                    check(pos, b)?;
                }
                LaneOp::SumLanes(a) => check(pos, a)?,
                LaneOp::Output(a, _) => {
                    check(pos, a)?;
                    outputs += 1;
                }
            }
        }
        if outputs == 0 {
            return Err(ProtocolError::BadParameters("lane program without outputs".into()));
        }
        Ok(())
    }

    /// Number of clients referenced.
    pub fn clients(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match *op {
                LaneOp::Input { client } => client + 1,
                LaneOp::Output(_, client) => client + 1,
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Number of communication rounds (Mul/SumLanes layers).
    pub fn round_ops(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, LaneOp::Mul(_, _) | LaneOp::SumLanes(_)))
            .count()
    }

    /// Total lane-gates (for per-gate normalization): `k` per Mul.
    pub fn mul_lane_gates(&self) -> usize {
        self.k * self.ops.iter().filter(|op| matches!(op, LaneOp::Mul(_, _))).count()
    }

    /// Reference lanewise evaluation on cleartext vectors.
    ///
    /// `inputs[c]` holds client `c`'s vectors in input-op order.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::BadParameters`] on input shape mismatch.
    pub fn evaluate<F: PrimeField>(
        &self,
        inputs: &[Vec<Vec<F>>],
    ) -> Result<Vec<Vec<Vec<F>>>, ProtocolError> {
        let mut values: Vec<Vec<F>> = Vec::with_capacity(self.ops.len());
        let mut next_input = vec![0usize; self.clients()];
        let mut outputs = vec![Vec::new(); self.clients()];
        for op in &self.ops {
            let v = match *op {
                LaneOp::Input { client } => {
                    let idx = next_input[client];
                    next_input[client] += 1;
                    let v = inputs
                        .get(client)
                        .and_then(|vs| vs.get(idx))
                        .ok_or_else(|| ProtocolError::BadParameters("missing input vector".into()))?;
                    if v.len() != self.k {
                        return Err(ProtocolError::BadParameters("input vector length != k".into()));
                    }
                    v.clone()
                }
                LaneOp::Add(a, b) => {
                    values[a].iter().zip(&values[b]).map(|(&x, &y)| x + y).collect()
                }
                LaneOp::Sub(a, b) => {
                    values[a].iter().zip(&values[b]).map(|(&x, &y)| x - y).collect()
                }
                LaneOp::Mul(a, b) => {
                    values[a].iter().zip(&values[b]).map(|(&x, &y)| x * y).collect()
                }
                LaneOp::SumLanes(a) => {
                    let s: F = values[a].iter().copied().sum();
                    vec![s; self.k]
                }
                LaneOp::Output(a, client) => {
                    outputs[client].push(values[a].clone());
                    values[a].clone()
                }
            };
            values.push(v);
        }
        Ok(outputs)
    }
}

/// Result of an IT protocol run.
#[derive(Debug, Clone)]
pub struct ItRunResult<F: PrimeField> {
    /// Per-client output vectors, in output-op order.
    pub outputs: Vec<Vec<Vec<F>>>,
    /// Per-phase communication statistics.
    pub phases: Vec<(String, yoso_runtime::PhaseStats)>,
    /// Lane-gates executed (k per Mul op).
    pub mul_lane_gates: usize,
}

impl<F: PrimeField> ItRunResult<F> {
    /// Elements posted under phases starting with `prefix`.
    pub fn elements(&self, prefix: &str) -> u64 {
        self.phases
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, s)| s.elements)
            .sum()
    }

    /// Online elements per lane-gate.
    pub fn elements_per_gate(&self) -> f64 {
        self.elements("it/") as f64 / self.mul_lane_gates.max(1) as f64
    }
}

/// Fetches the still-live shares in SSA slot `slot`. `LaneProgram::
/// validate` guarantees every operand is defined before use and live at
/// its use sites, so a miss is a driver bug surfaced as a typed error.
fn live<F: PrimeField>(
    state: &[Option<PackedShares<F>>],
    slot: usize,
) -> Result<&PackedShares<F>, ProtocolError> {
    state.get(slot).and_then(|s| s.as_ref()).ok_or(ProtocolError::Invariant(
        "validated lane program referenced a dead or undefined SSA slot",
    ))
}

/// Per-run re-sharing tables, computed once: the `k` recombination
/// vectors over all `n` nodes (row `j` recovers secret `j`) and their
/// per-member column sums (the cross-lane-sum coefficients `c_i`).
/// Every committee shares one evaluation-point layout, so these are
/// committee-independent — hoisting them out of the member loops turns
/// `n·k` interpolations per re-share into `k` per run.
struct ReshareTables<F: PrimeField> {
    recomb: Vec<Vec<F>>,
    lane_sum: Vec<F>,
}

impl<F: PrimeField> ReshareTables<F> {
    fn new(scheme: &PackedSharing<F>, n: usize, k: usize) -> Result<Self, ProtocolError> {
        let parties: Vec<usize> = (0..n).collect();
        let recomb: Vec<Vec<F>> = (0..k)
            .map(|j| scheme.recombination_vector(&parties, j))
            .collect::<Result<_, _>>()?;
        let lane_sum = (0..n).map(|i| recomb.iter().map(|w| w[i]).sum()).collect();
        Ok(ReshareTables { recomb, lane_sum })
    }
}

/// The information-theoretic semi-honest engine.
#[derive(Debug, Clone, Copy)]
pub struct ItEngine {
    params: ProtocolParams,
    transform_slices: usize,
}

impl ItEngine {
    /// Creates an engine; requires `2·(t + k − 1) < n` so share-wise
    /// products remain reconstructable.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::BadParameters`] otherwise.
    pub fn new(params: ProtocolParams) -> Result<Self, ProtocolError> {
        if 2 * params.packing_degree() >= params.n {
            return Err(ProtocolError::BadParameters(format!(
                "IT multiplication needs 2(t+k−1) = {} < n = {}",
                2 * params.packing_degree(),
                params.n
            )));
        }
        Ok(ItEngine { params, transform_slices: 1 })
    }

    /// Splits every re-share/degree-reduction dealing into `slices`
    /// contiguous row ranges computed through the slice-dealing API
    /// ([`PackedSharing::share_slice_into`]) — the in-process analogue
    /// of the distributed transform. `1` (the default) keeps the full
    /// transform deal. Any value produces bit-identical shares: each
    /// slice replays the member's child seed, so the stitched union
    /// equals the full deal.
    pub fn with_transform_slices(mut self, slices: usize) -> Self {
        self.transform_slices = slices.max(1);
        self
    }

    /// One member's re-share dealing, sliced per
    /// [`Self::with_transform_slices`]. The seed is the member's child
    /// seed drawn from the parent stream; every slice re-seeds from it
    /// so the tail randomness (drawn in full per slice) is identical
    /// and the union of slices is bit-for-bit the full deal.
    fn deal_distributed<F: PrimeField>(
        &self,
        scheme: &PackedSharing<F>,
        seed: u64,
        vector: &[F],
        degree: usize,
    ) -> Result<PackedShares<F>, ProtocolError> {
        if self.transform_slices == 1 {
            let mut mrng = rand::rngs::StdRng::seed_from_u64(seed);
            return Ok(scheme.share(&mut mrng, vector, degree)?);
        }
        let n = self.params.n;
        let mut values: Vec<F> = Vec::with_capacity(n);
        let mut slice = Vec::new();
        let mut scratch = yoso_pss_sharing::PssScratch::default();
        for w in 0..self.transform_slices {
            let part = crate::RolePartition::of_workers(w, self.transform_slices, n);
            let mut mrng = rand::rngs::StdRng::seed_from_u64(seed);
            scheme.share_slice_into(
                &mut mrng,
                vector,
                degree,
                part.lo(),
                part.hi(),
                &mut slice,
                &mut scratch,
            )?;
            values.extend_from_slice(&slice);
        }
        Ok(PackedShares::from_values(degree, values))
    }

    /// Runs the program (semi-honest, honest-but-curious committees).
    ///
    /// # Errors
    ///
    /// Propagates validation and sharing errors.
    pub fn run<F: PrimeField, R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        program: &LaneProgram,
        inputs: &[Vec<Vec<F>>],
    ) -> Result<ItRunResult<F>, ProtocolError> {
        program.validate()?;
        if program.k != self.params.k {
            return Err(ProtocolError::BadParameters(format!(
                "program lanes {} != params.k {}",
                program.k, self.params.k
            )));
        }
        let n = self.params.n;
        let d = self.params.packing_degree();
        let scheme = PackedSharing::<F>::with_layout(n, self.params.k, self.params.layout)?;
        let tables = ReshareTables::new(&scheme, n, self.params.k)?;
        let board: BulletinBoard<Post> = BulletinBoard::metered_only();

        // Last use of each value (to know what must survive a handover).
        let mut last_use = vec![0usize; program.ops.len()];
        for (pos, op) in program.ops.iter().enumerate() {
            let mut touch = |i: usize| last_use[i] = last_use[i].max(pos);
            match *op {
                LaneOp::Add(a, b) | LaneOp::Sub(a, b) | LaneOp::Mul(a, b) => {
                    touch(a);
                    touch(b);
                }
                LaneOp::SumLanes(a) | LaneOp::Output(a, _) => touch(a),
                LaneOp::Input { .. } => {}
            }
        }

        let mut state: Vec<Option<PackedShares<F>>> = Vec::with_capacity(program.ops.len());
        let mut next_input = vec![0usize; program.clients()];
        let mut outputs = vec![Vec::new(); program.clients()];
        let mut committee_idx = 0usize;

        for (pos, op) in program.ops.iter().enumerate() {
            let result: Option<PackedShares<F>> = match *op {
                LaneOp::Input { client } => {
                    // The client deals a fresh packed sharing (n shares
                    // posted, encrypted to the current committee).
                    let idx = next_input[client];
                    next_input[client] += 1;
                    let v = &inputs[client][idx];
                    if v.len() != program.k {
                        return Err(ProtocolError::BadParameters(
                            "input vector length != k".into(),
                        ));
                    }
                    let shares = scheme.share(rng, v, d)?;
                    board.post(
                        RoleId::new("it-client", client),
                        Post::Contribution {
                            step: crate::messages::ContributionStep::WireRandom,
                            ciphertexts: n as u32,
                        },
                        "it/input",
                        n as u64,
                        messages::to_bytes(n as u64),
                    )?;
                    Some(shares)
                }
                LaneOp::Add(a, b) => Some(live(&state, a)?.add(live(&state, b)?)),
                LaneOp::Sub(a, b) => Some(live(&state, a)?.sub(live(&state, b)?)),
                LaneOp::Mul(a, b) => {
                    // Share-wise product (degree 2d), then re-share /
                    // degree-reduce to the next committee, carrying all
                    // still-live vectors along.
                    let product = live(&state, a)?.mul_elementwise(live(&state, b)?);
                    let reduced =
                        self.reshare_vector(rng, &board, &scheme, &tables, &product, committee_idx)?;
                    self.handover_live(
                        rng, &board, &scheme, &tables, &mut state, &last_use, pos, committee_idx,
                    )?;
                    committee_idx += 1;
                    Some(reduced)
                }
                LaneOp::SumLanes(a) => {
                    let shares = live(&state, a)?;
                    let summed =
                        self.sum_lanes_vector(rng, &board, &scheme, &tables, shares, committee_idx)?;
                    self.handover_live(
                        rng, &board, &scheme, &tables, &mut state, &last_use, pos, committee_idx,
                    )?;
                    committee_idx += 1;
                    Some(summed)
                }
                LaneOp::Output(a, client) => {
                    // Members post their shares (encrypted to the
                    // client): n elements.
                    let shares = live(&state, a)?;
                    board.post(
                        RoleId::new(format!("it-committee-{committee_idx}"), 0),
                        Post::Contribution {
                            step: crate::messages::ContributionStep::WireRandom,
                            ciphertexts: n as u32,
                        },
                        "it/output",
                        n as u64,
                        messages::to_bytes(n as u64),
                    )?;
                    let all: Vec<usize> = (0..n).collect();
                    let v = scheme.reconstruct(&shares.select(&all), shares.degree())?;
                    outputs[client].push(v);
                    Some(shares.clone())
                }
            };
            state.push(result);
        }

        Ok(ItRunResult {
            outputs,
            phases: board.meter().phases(),
            mul_lane_gates: program.mul_lane_gates(),
        })
    }

    /// The core IT re-sharing step: each member `i` deals a fresh
    /// degree-`d` packed sharing of the vector
    /// `(l_i(e_1)·s_i, …, l_i(e_k)·s_i)` (where `s_i` is its share and
    /// `l_i` the Lagrange basis over all `n` nodes); the sum of the
    /// dealt sharings is a fresh degree-`d` sharing of the original
    /// secrets. Works for any source degree `< n`, so it is both the
    /// handover re-share (source degree `d`) and the multiplication
    /// degree reduction (source degree `2d`).
    ///
    /// Each member's dealing is one work item: its randomness comes
    /// from a child RNG seeded off the parent stream, so the item is
    /// independent of loop position (same discipline as the sharded
    /// phases, even though this board is process-internal).
    #[allow(clippy::too_many_arguments)]
    fn reshare_vector<F: PrimeField, R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        board: &BulletinBoard<Post>,
        scheme: &PackedSharing<F>,
        tables: &ReshareTables<F>,
        source: &PackedShares<F>,
        committee_idx: usize,
    ) -> Result<PackedShares<F>, ProtocolError> {
        let n = self.params.n;
        let d = self.params.packing_degree();
        let mut acc: Option<PackedShares<F>> = None;
        for i in 0..n {
            let seed = rng.next_u64();
            let s_i = source.share_of(i).value;
            let vector: Vec<F> =
                tables.recomb.iter().map(|w| w[i] * s_i).collect();
            let dealt = self.deal_distributed(scheme, seed, &vector, d)?;
            board.post(
                RoleId::new(format!("it-committee-{committee_idx}"), i),
                Post::Contribution {
                    step: crate::messages::ContributionStep::WireRandom,
                    ciphertexts: n as u32,
                },
                "it/reshare",
                n as u64,
                messages::to_bytes(n as u64),
            )?;
            acc = Some(match acc {
                None => dealt,
                Some(a) => a.add(&dealt),
            });
        }
        acc.ok_or(ProtocolError::Invariant("committee size n is zero"))
    }

    /// Cross-lane sum re-share: member `i` deals a sharing of the
    /// constant vector `(c_i·s_i, …, c_i·s_i)` with
    /// `c_i = Σ_j l_i(e_j)`; the sum of dealt sharings holds
    /// `Σ_j v[j]` in every lane. Same per-member work-item shape as
    /// [`Self::reshare_vector`].
    #[allow(clippy::too_many_arguments)]
    fn sum_lanes_vector<F: PrimeField, R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        board: &BulletinBoard<Post>,
        scheme: &PackedSharing<F>,
        tables: &ReshareTables<F>,
        source: &PackedShares<F>,
        committee_idx: usize,
    ) -> Result<PackedShares<F>, ProtocolError> {
        let n = self.params.n;
        let d = self.params.packing_degree();
        let mut acc: Option<PackedShares<F>> = None;
        for i in 0..n {
            let seed = rng.next_u64();
            let s_i = source.share_of(i).value;
            let vector = vec![tables.lane_sum[i] * s_i; self.params.k];
            let dealt = self.deal_distributed(scheme, seed, &vector, d)?;
            board.post(
                RoleId::new(format!("it-committee-{committee_idx}"), i),
                Post::Contribution {
                    step: crate::messages::ContributionStep::WireRandom,
                    ciphertexts: n as u32,
                },
                "it/reshare",
                n as u64,
                messages::to_bytes(n as u64),
            )?;
            acc = Some(match acc {
                None => dealt,
                Some(a) => a.add(&dealt),
            });
        }
        acc.ok_or(ProtocolError::Invariant("committee size n is zero"))
    }

    /// Re-shares every still-live vector to the next committee.
    #[allow(clippy::too_many_arguments)]
    fn handover_live<F: PrimeField, R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        board: &BulletinBoard<Post>,
        scheme: &PackedSharing<F>,
        tables: &ReshareTables<F>,
        state: &mut [Option<PackedShares<F>>],
        last_use: &[usize],
        pos: usize,
        committee_idx: usize,
    ) -> Result<(), ProtocolError> {
        for i in 0..state.len() {
            if last_use[i] > pos {
                if let Some(shares) = state[i].take() {
                    state[i] = Some(
                        self.reshare_vector(rng, board, scheme, tables, &shares, committee_idx)?,
                    );
                }
            } else {
                state[i] = None; // dead value: erase (YOSO state hygiene)
            }
        }
        Ok(())
    }
}

/// Builds the canonical SIMD workload: `batches` lanewise
/// multiplications, two clients, outputs of every product to client 0.
pub fn simd_workload(k: usize, batches: usize) -> LaneProgram {
    let mut ops = Vec::new();
    for _ in 0..batches {
        ops.push(LaneOp::Input { client: 0 });
        ops.push(LaneOp::Input { client: 1 });
    }
    for b in 0..batches {
        ops.push(LaneOp::Mul(2 * b, 2 * b + 1));
    }
    let first_mul = 2 * batches;
    for b in 0..batches {
        ops.push(LaneOp::Output(first_mul + b, 0));
    }
    LaneProgram { k, ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use yoso_field::F61;

    fn f(v: u64) -> F61 {
        F61::from(v)
    }

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn lanewise_multiplication() {
        let params = ProtocolParams::new(12, 2, 3).unwrap(); // 2(2+2)=8 < 12
        let engine = ItEngine::new(params).unwrap();
        let program = simd_workload(3, 2);
        let inputs = vec![
            vec![vec![f(1), f(2), f(3)], vec![f(4), f(5), f(6)]],
            vec![vec![f(10), f(20), f(30)], vec![f(40), f(50), f(60)]],
        ];
        let expected = program.evaluate(&inputs).unwrap();
        let run = engine.run(&mut rng(1), &program, &inputs).unwrap();
        assert_eq!(run.outputs, expected);
        assert_eq!(run.outputs[0][0], vec![f(10), f(40), f(90)]);
    }

    #[test]
    fn inner_product_via_sum_lanes() {
        let params = ProtocolParams::new(14, 2, 3).unwrap();
        let engine = ItEngine::new(params).unwrap();
        let program = LaneProgram {
            k: 3,
            ops: vec![
                LaneOp::Input { client: 0 },
                LaneOp::Input { client: 1 },
                LaneOp::Mul(0, 1),
                LaneOp::SumLanes(2),
                LaneOp::Output(3, 0),
            ],
        };
        let inputs = vec![
            vec![vec![f(1), f(2), f(3)]],
            vec![vec![f(4), f(5), f(6)]],
        ];
        let run = engine.run(&mut rng(2), &program, &inputs).unwrap();
        // <(1,2,3), (4,5,6)> = 32 in every lane.
        assert_eq!(run.outputs[0][0], vec![f(32), f(32), f(32)]);
    }

    #[test]
    fn subgroup_layout_matches_sequential_run() {
        // Same program, same seed, both point layouts: the share values
        // differ (different evaluation points) but every reconstructed
        // output must equal the cleartext evaluation.
        use yoso_pss_sharing::PointLayout;
        let program = simd_workload(4, 2);
        let inputs = vec![
            vec![vec![f(1), f(2), f(3), f(4)], vec![f(5), f(6), f(7), f(8)]],
            vec![vec![f(9), f(10), f(11), f(12)], vec![f(13), f(14), f(15), f(16)]],
        ];
        let expected = program.evaluate(&inputs).unwrap();
        let seq = ItEngine::new(ProtocolParams::new(14, 2, 4).unwrap()).unwrap();
        let sub = ItEngine::new(
            ProtocolParams::new(14, 2, 4).unwrap().with_layout(PointLayout::Subgroup),
        )
        .unwrap();
        assert_eq!(seq.run(&mut rng(11), &program, &inputs).unwrap().outputs, expected);
        assert_eq!(sub.run(&mut rng(11), &program, &inputs).unwrap().outputs, expected);
    }

    #[test]
    fn deep_chain_with_linear_ops() {
        let params = ProtocolParams::new(16, 2, 2).unwrap();
        let engine = ItEngine::new(params).unwrap();
        let program = LaneProgram {
            k: 2,
            ops: vec![
                LaneOp::Input { client: 0 },   // 0: x
                LaneOp::Input { client: 0 },   // 1: y
                LaneOp::Add(0, 1),             // 2: x+y
                LaneOp::Mul(2, 0),             // 3: (x+y)x
                LaneOp::Sub(3, 1),             // 4: (x+y)x − y
                LaneOp::Mul(4, 4),             // 5: squared
                LaneOp::Output(5, 0),
            ],
        };
        let inputs = vec![vec![vec![f(3), f(5)], vec![f(7), f(11)]]];
        let expected = program.evaluate(&inputs).unwrap();
        let run = engine.run(&mut rng(3), &program, &inputs).unwrap();
        assert_eq!(run.outputs, expected);
    }

    #[test]
    fn sliced_transform_dealing_is_bit_identical() {
        // The degree-reduction cliff through the slice-dealing API
        // must be invisible: same seed, any slice count (even uneven
        // splits and slice counts above n), identical outputs and
        // identical metered traffic.
        let params = ProtocolParams::new(14, 2, 3).unwrap();
        let program = LaneProgram {
            k: 3,
            ops: vec![
                LaneOp::Input { client: 0 },
                LaneOp::Input { client: 1 },
                LaneOp::Mul(0, 1),
                LaneOp::SumLanes(2),
                LaneOp::Output(3, 0),
            ],
        };
        let inputs = vec![
            vec![vec![f(1), f(2), f(3)]],
            vec![vec![f(4), f(5), f(6)]],
        ];
        let base = ItEngine::new(params)
            .unwrap()
            .run(&mut rng(17), &program, &inputs)
            .unwrap();
        for slices in [2usize, 3, 4, 8, 20] {
            let engine = ItEngine::new(params).unwrap().with_transform_slices(slices);
            let run = engine.run(&mut rng(17), &program, &inputs).unwrap();
            assert_eq!(run.outputs, base.outputs, "slices = {slices}");
            assert_eq!(run.phases, base.phases, "slices = {slices}");
        }
    }

    #[test]
    fn rejects_overfull_degree() {
        // Any GOD-valid ProtocolParams satisfies 2(t+k−1) < n, so the
        // engine accepts them all; a hand-built violating parameter set
        // is rejected.
        let valid = ProtocolParams::new(10, 3, 2).unwrap();
        assert!(ItEngine::new(valid).is_ok());
        let invalid = ProtocolParams { n: 10, t: 4, k: 2, failstops: 0, layout: Default::default() };
        assert!(ItEngine::new(invalid).is_err());
    }

    #[test]
    fn program_validation() {
        assert!(LaneProgram { k: 0, ops: vec![] }.validate().is_err());
        assert!(LaneProgram { k: 2, ops: vec![LaneOp::Input { client: 0 }] }
            .validate()
            .is_err()); // no outputs
        assert!(LaneProgram { k: 2, ops: vec![LaneOp::Add(0, 1), LaneOp::Output(0, 0)] }
            .validate()
            .is_err()); // forward reference
    }

    #[test]
    fn it_cost_scales_as_n_squared_over_k() {
        let per_gate = |n: usize, k: usize| {
            let t = 1;
            let params = ProtocolParams::new(n, t, k).unwrap();
            let engine = ItEngine::new(params).unwrap();
            let program = simd_workload(k, 2);
            let mut r = rng(4);
            let inputs: Vec<Vec<Vec<F61>>> = (0..2)
                .map(|_| {
                    (0..2)
                        .map(|_| (0..k).map(|_| yoso_field::PrimeField::random(&mut r)).collect())
                        .collect()
                })
                .collect();
            let run = engine.run(&mut r, &program, &inputs).unwrap();
            run.elements("it/reshare") as f64 / run.mul_lane_gates as f64
        };
        // Fixed k: doubling n should ≈quadruple the per-gate cost.
        let a = per_gate(16, 2);
        let b = per_gate(32, 2);
        assert!((3.0..5.0).contains(&(b / a)), "n²: {a} vs {b}");
        // Fixed n: doubling k should ≈halve the per-gate cost.
        let c = per_gate(32, 2);
        let d = per_gate(32, 4);
        assert!((1.5..2.5).contains(&(c / d)), "1/k: {c} vs {d}");
    }
}
