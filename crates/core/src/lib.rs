//! Scalable YOSO MPC via packed secret sharing — the paper's protocol
//! `Π = (Π_Setup, Π_Offline, Π_Online)` plus the CDN-style baseline it
//! improves on.
//!
//! # Protocol overview (paper §5)
//!
//! The protocol computes an arithmetic circuit among ever-changing
//! committees of `n` roles, `t < n(1/2 − ε)` of which are corrupt,
//! with **guaranteed output delivery**, in three phases:
//!
//! - **Setup** ([`setup`]): a threshold key pair `(tpk, tsk₁…tskₙ)` of
//!   a linearly homomorphic threshold encryption scheme is generated;
//!   *keys-for-future* (KFF) are published for every role of the later
//!   online committees (public part in the clear, secret part encrypted
//!   under `tpk`).
//! - **Offline** ([`offline`]): committees prepare, per circuit wire, a
//!   random mask `λ` encrypted under `tpk` (Beaver triples → dependent
//!   wire values `Γ = λ_α·λ_β − λ_γ` → homomorphic *packing* into
//!   degree-`(t+k−1)` packed shares → re-encryption of each share to
//!   the KFF of the online role that will consume it).
//! - **Online** ([`online`]): the first online committee re-encrypts
//!   the KFF secret keys to the now-known role keys; clients publish
//!   `μ = v − λ` for their inputs; addition is free; a batch of `k`
//!   multiplications costs each committee member a *single* published
//!   share `μᵢ^γ` (with a NIZK), reconstructed from any
//!   `t + 2(k−1) + 1` verified shares — `O(1)` amortized elements per
//!   gate, independent of `n`.
//!
//! The [`failstop`] configuration (§5.4) halves the packing factor to
//! tolerate `n·ε` crashed honest roles. The [`baseline`] module
//! implements the CDN-style protocol of Gentry et al. (CRYPTO'21) —
//! threshold decryption per multiplication, `O(n)` online elements per
//! gate — used as the comparison point in every experiment.
//!
//! All committee interaction goes through the `yoso-runtime` bulletin
//! board, so every experiment *measures* communication rather than
//! estimating it.
//!
//! # Example
//!
//! ```rust
//! use rand::SeedableRng;
//! use yoso_circuit::generators;
//! use yoso_core::{Engine, ExecutionConfig, ProtocolParams};
//! use yoso_field::F61;
//! use yoso_runtime::Adversary;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let circuit = generators::inner_product::<F61>(4)?;
//! let params = ProtocolParams::new(10, 2, 3)?; // n = 10, t = 2, k = 3
//! let engine = Engine::new(params, ExecutionConfig::default());
//! let inputs = vec![
//!     (1..=4u64).map(F61::from).collect::<Vec<_>>(),
//!     (5..=8u64).map(F61::from).collect::<Vec<_>>(),
//! ];
//! let run = engine.run(&mut rng, &circuit, &inputs, &Adversary::none())?;
//! assert_eq!(run.outputs[0], vec![F61::from(70u64)]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod disttransform;
pub mod dkg;
mod engine;
pub mod failstop;
pub mod itbgw;
pub mod messages;
pub mod offline;
pub mod online;
pub mod parallel;
mod params;
pub mod setup;
pub mod tsk;
pub mod workitem;

pub use engine::{crash_phases, BoardBackend, Engine, ExecutionConfig, RunResult};
pub use params::ProtocolParams;
pub use workitem::{RolePartition, ShardedBoard, WorkItem};
pub use yoso_pss_sharing::PointLayout;

use yoso_circuit::CircuitError;
use yoso_pss_sharing::PssError;
use yoso_the::TeError;

/// Errors produced by the MPC protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Parameters violate the protocol's constraints.
    BadParameters(String),
    /// Too few valid contributions to proceed (GOD violated — should be
    /// impossible within the corruption model).
    NotEnoughContributions {
        /// Which step starved.
        step: &'static str,
        /// Valid contributions observed.
        got: usize,
        /// Contributions required.
        need: usize,
    },
    /// An underlying threshold-encryption error.
    Te(TeError),
    /// An underlying secret-sharing error.
    Pss(PssError),
    /// An underlying circuit error.
    Circuit(CircuitError),
    /// An internal invariant did not hold. Reaching this is a bug in the
    /// protocol driver, not a property of the inputs; it exists so broken
    /// invariants surface as typed errors instead of panics (the YOSO
    /// model cannot tolerate a committee member aborting mid-epoch).
    Invariant(&'static str),
    /// The bulletin-board transport failed (I/O or protocol error on a
    /// remote backend; the in-process backend never produces this).
    Transport(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadParameters(msg) => write!(f, "bad protocol parameters: {msg}"),
            ProtocolError::NotEnoughContributions { step, got, need } => {
                write!(f, "not enough valid contributions in {step}: got {got}, need {need}")
            }
            ProtocolError::Te(e) => write!(f, "threshold encryption error: {e}"),
            ProtocolError::Pss(e) => write!(f, "secret sharing error: {e}"),
            ProtocolError::Circuit(e) => write!(f, "circuit error: {e}"),
            ProtocolError::Invariant(msg) => {
                write!(f, "internal invariant broken (bug): {msg}")
            }
            ProtocolError::Transport(msg) => write!(f, "board transport error: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Te(e) => Some(e),
            ProtocolError::Pss(e) => Some(e),
            ProtocolError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TeError> for ProtocolError {
    fn from(e: TeError) -> Self {
        ProtocolError::Te(e)
    }
}

impl From<PssError> for ProtocolError {
    fn from(e: PssError) -> Self {
        ProtocolError::Pss(e)
    }
}

impl From<CircuitError> for ProtocolError {
    fn from(e: CircuitError) -> Self {
        ProtocolError::Circuit(e)
    }
}

impl From<yoso_runtime::BoardError> for ProtocolError {
    fn from(e: yoso_runtime::BoardError) -> Self {
        ProtocolError::Transport(e.to_string())
    }
}
