//! Deterministic fan-out of independent protocol work.
//!
//! The engine's hot loops — one Beaver triple per multiplication gate
//! offline, one share computation per committee member online — are
//! data-parallel, but the naive loop threads a single RNG through every
//! iteration, serializing them. The engine instead derives one child
//! seed per work item *sequentially* from the caller's RNG (so the seed
//! sequence, and therefore every result, is independent of thread
//! count), runs the items on a scoped thread pool, and replays their
//! board posts in item-index order. Transcripts are byte-identical
//! whether `num_threads` is 1 or 16.
//!
//! Compiled without the `parallel` feature, [`par_map`] degrades to a
//! sequential loop over the same per-item seeds — results are still
//! identical, only wall-clock changes.

use std::sync::Arc;

use yoso_runtime::{BoardError, BulletinBoard, PostRecord, RoleId};

use crate::messages::{self, Post};

/// A single board post produced away from the board (e.g. on a worker
/// thread), replayed later in deterministic item order.
///
/// Holds only public accounting data — the posting role, the post
/// kind, the phase label, and the element count. Message *payloads*
/// never enter the buffer (the board model tracks sizes, not bytes),
/// so the derived `Debug` cannot leak secrets.
#[derive(Debug, Clone)]
struct BufferedPost {
    /// Whether the recording worker's [`crate::workitem::RolePartition`]
    /// owns the member this post belongs to. Solo runs own everything;
    /// a role-sharded worker buffers *every* post for position
    /// accounting but appends only the owned ones to the board.
    owned: bool,
    role: RoleId,
    post: Post,
    phase: &'static str,
    elements: u64,
}

/// An append-only buffer of board posts owned by one parallel worker.
///
/// Workers must not touch the shared [`BulletinBoard`] directly — the
/// transcript order would then depend on thread scheduling. Instead
/// each worker records into its own `PostBuffer` and the coordinator
/// replays the buffers in item-index order ([`Self::flush`]), keeping
/// transcripts byte-identical at any thread count.
#[derive(Debug, Clone, Default)]
pub(crate) struct PostBuffer {
    posts: Vec<BufferedPost>,
}

impl PostBuffer {
    pub(crate) fn new() -> Self {
        PostBuffer { posts: Vec::new() }
    }

    /// Records one post for later replay. `owned` says whether the
    /// current worker's role partition owns the posting member (always
    /// true in solo runs).
    pub(crate) fn record(
        &mut self,
        owned: bool,
        role: RoleId,
        post: Post,
        phase: &'static str,
        elements: u64,
    ) {
        self.posts.push(BufferedPost { owned, role, post, phase, elements });
    }

    /// Converts the buffer into a lazy stream of transport records in
    /// recording order, tagged with the recorder's ownership flags.
    /// Consecutive posts sharing a phase label share one `Arc<str>`
    /// allocation.
    pub(crate) fn into_record_iter(
        self,
    ) -> impl Iterator<Item = (bool, PostRecord<Post>)> {
        let mut last: Option<(&'static str, Arc<str>)> = None;
        self.posts.into_iter().map(move |p| {
            let phase = match &last {
                Some((label, shared)) if *label == p.phase => Arc::clone(shared),
                _ => {
                    let shared: Arc<str> = Arc::from(p.phase);
                    last = Some((p.phase, Arc::clone(&shared)));
                    shared
                }
            };
            (
                p.owned,
                PostRecord {
                    from: p.role,
                    phase,
                    message: p.post,
                    elements: p.elements,
                    bytes: messages::to_bytes(p.elements),
                },
            )
        })
    }

    /// Replays the buffered posts onto the board, in recording order,
    /// as **one** transport flush: the write lock (or TCP connection)
    /// is taken once per buffer instead of once per post, and records
    /// stream straight into the transport's frame encoder without an
    /// intermediate `Vec<PostRecord>`.
    pub(crate) fn flush(self, board: &BulletinBoard<Post>) -> Result<(), BoardError> {
        board.post_record_stream(self.into_record_iter().map(|(_, r)| r)).map(|_| ())
    }
}

/// Below this many items per prospective worker thread, [`par_map`]
/// runs inline: thread spawn + synchronization overhead exceeds the
/// work itself at small batches (measured as `reenc_speedup` 0.80 at
/// n = 32 before the threshold existed).
#[cfg(feature = "parallel")]
pub(crate) const MIN_ITEMS_PER_THREAD: usize = 32;

/// Maps `f` over `items`, preserving order, using up to `num_threads`
/// worker threads.
///
/// `f` receives `(index, &item)` and must be pure per item (any
/// randomness comes from a per-item seed inside `item`). Runs inline
/// on the caller's thread when `num_threads <= 1`, when the batch is
/// too small to amortize thread fan-out (fewer than
/// [`MIN_ITEMS_PER_THREAD`] items per worker after clamping to the
/// host's available parallelism), or with the `parallel` feature
/// disabled. The results are identical either way — the threshold is
/// a pure wall-clock guard.
pub fn par_map<T, U, F>(num_threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    #[cfg(feature = "parallel")]
    {
        let hw = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
        let workers = num_threads.min(hw).min(items.len() / MIN_ITEMS_PER_THREAD);
        if workers > 1 {
            return par_map_threaded(workers, items, &f);
        }
    }
    let _ = num_threads;
    items.iter().enumerate().map(|(i, item)| f(i, item)).collect()
}

#[cfg(feature = "parallel")]
fn par_map_threaded<T, U, F>(workers: usize, items: &[T], f: &F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(i, &items[i]);
                *results[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                // lint:allow(panic): provable — the scope above joins all
                // workers before returning, every index < len is claimed
                // exactly once, and a worker panic propagates at scope
                // exit, so each slot is Some here.
                .expect("every work item produced a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [0, 1, 2, 7, 64] {
            assert_eq!(par_map(threads, &items, |_, &x| x * x), expect, "threads={threads}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let items: Vec<usize> = (0..50).collect();
        let got = par_map(4, &items, |i, &x| (i, x));
        for (i, &(gi, gx)) in got.iter().enumerate() {
            assert_eq!((gi, gx), (i, i));
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(8, &[] as &[u32], |_, &x| x), Vec::<u32>::new());
        assert_eq!(par_map(8, &[5u32], |_, &x| x + 1), vec![6]);
    }

    /// The hw/threshold clamp in [`par_map`] can make the threaded path
    /// unreachable on small hosts (1 hardware thread ⇒ always inline),
    /// so the thread pool itself is exercised directly here.
    #[cfg(feature = "parallel")]
    #[test]
    fn threaded_path_preserves_order_and_values() {
        let items: Vec<u64> = (0..200).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for workers in [2, 4, 8] {
            assert_eq!(
                par_map_threaded(workers, &items, &|_, &x: &u64| x * 3 + 1),
                expect,
                "workers={workers}"
            );
        }
    }

    /// Small batches must not fan out: below the per-thread minimum the
    /// map runs inline regardless of the requested thread count.
    #[test]
    fn small_batches_stay_inline() {
        let items: Vec<u64> = (0..31).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x + 7).collect();
        assert_eq!(par_map(64, &items, |_, &x| x + 7), expect);
    }
}
