//! Protocol parameters and their consistency constraints.

use serde::{Deserialize, Serialize};

use yoso_pss_sharing::PointLayout;

use crate::ProtocolError;

/// Parameters of one protocol instance.
///
/// The committee size `n`, corruption threshold `t` and packing factor
/// `k` must satisfy the paper's GOD condition (§5.4):
///
/// ```text
/// n ≥ (t + 2(k−1) + 1) + t + failstops
/// ```
///
/// i.e. the `t + 2(k−1) + 1` shares needed to reconstruct a packed
/// multiplication result must be available from the honest,
/// non-crashed members alone. Equivalently, with `t < n(1/2 − ε)` the
/// packing factor can reach `k − 1 ≤ n·ε` (no fail-stops) or
/// `k − 1 ≤ n·ε/2` while tolerating `n·ε` crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolParams {
    /// Committee size.
    pub n: usize,
    /// Maximum number of actively corrupt roles per committee.
    pub t: usize,
    /// Packing factor (secrets per packed sharing).
    pub k: usize,
    /// Number of fail-stop (crash) roles tolerated per committee.
    pub failstops: usize,
    /// Where the sharing schemes place their evaluation points. A
    /// protocol-wide parameter: every role derives its points from it.
    /// [`PointLayout::Subgroup`] unlocks `O(n log n)` transform dealing
    /// and reconstruction with bit-identical outputs; the default
    /// [`PointLayout::Sequential`] is the paper's presentation.
    #[serde(default)]
    pub layout: PointLayout,
}

impl ProtocolParams {
    /// Creates parameters with no fail-stop allowance.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::BadParameters`] if the GOD condition is
    /// violated.
    pub fn new(n: usize, t: usize, k: usize) -> Result<Self, ProtocolError> {
        Self::with_failstops(n, t, k, 0)
    }

    /// Creates parameters tolerating `failstops` crashed roles per
    /// committee (§5.4).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::BadParameters`] if the GOD condition is
    /// violated or any parameter is degenerate.
    pub fn with_failstops(
        n: usize,
        t: usize,
        k: usize,
        failstops: usize,
    ) -> Result<Self, ProtocolError> {
        if n == 0 || k == 0 {
            return Err(ProtocolError::BadParameters(format!("degenerate n={n}, k={k}")));
        }
        if k > n {
            return Err(ProtocolError::BadParameters(format!("packing k={k} exceeds n={n}")));
        }
        let params = ProtocolParams { n, t, k, failstops, layout: PointLayout::default() };
        let available = n
            .checked_sub(t + failstops)
            .ok_or_else(|| ProtocolError::BadParameters(format!("t+failstops exceed n={n}")))?;
        if available < params.reconstruction_threshold() {
            return Err(ProtocolError::BadParameters(format!(
                "GOD violated: n−t−failstops = {available} honest shares < t+2(k−1)+1 = {}",
                params.reconstruction_threshold()
            )));
        }
        // The λ-packing degree must stay below n for shares to exist.
        if params.packing_degree() >= n {
            return Err(ProtocolError::BadParameters(format!(
                "packing degree t+k−1 = {} must be below n = {n}",
                params.packing_degree()
            )));
        }
        Ok(params)
    }

    /// Derives the largest GOD-compatible parameters for committee size
    /// `n` and gap `ε` (`t = ⌊n(1/2 − ε)⌋ − 1`, `k = ⌊nε⌋ + 1`, no
    /// fail-stops), the paper's recommended instantiation.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::BadParameters`] for infeasible `(n, ε)`.
    pub fn from_gap(n: usize, epsilon: f64) -> Result<Self, ProtocolError> {
        if !(0.0..0.5).contains(&epsilon) {
            return Err(ProtocolError::BadParameters(format!("gap ε={epsilon} out of range")));
        }
        let t = ((n as f64) * (0.5 - epsilon)).floor() as usize;
        let t = t.saturating_sub(1);
        let k = ((n as f64) * epsilon).floor() as usize + 1;
        Self::new(n, t, k)
    }

    /// The §5.4 fail-stop variant for `(n, ε)`: packing `k ≈ nε/2 + 1`
    /// tolerating `⌊nε⌋` crashes.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::BadParameters`] for infeasible `(n, ε)`.
    pub fn from_gap_failstop(n: usize, epsilon: f64) -> Result<Self, ProtocolError> {
        if !(0.0..0.5).contains(&epsilon) {
            return Err(ProtocolError::BadParameters(format!("gap ε={epsilon} out of range")));
        }
        let t = (((n as f64) * (0.5 - epsilon)).floor() as usize).saturating_sub(1);
        let k = ((n as f64) * epsilon / 2.0).floor() as usize + 1;
        let failstops = ((n as f64) * epsilon).floor() as usize;
        Self::with_failstops(n, t, k, failstops)
    }

    /// Selects the [`PointLayout`] for every sharing scheme the
    /// protocol builds. Validity is unaffected — both layouts use
    /// pairwise-distinct points — so this is a plain builder.
    #[must_use]
    pub fn with_layout(mut self, layout: PointLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Number of verified μ-shares needed to reconstruct a packed
    /// multiplication output: `t + 2(k−1) + 1`.
    pub fn reconstruction_threshold(&self) -> usize {
        self.t + 2 * (self.k - 1) + 1
    }

    /// Degree of the packed λ-sharings: `t + k − 1`.
    pub fn packing_degree(&self) -> usize {
        self.t + self.k - 1
    }

    /// The implied gap `ε` (from `t < n(1/2 − ε)`).
    pub fn epsilon(&self) -> f64 {
        0.5 - self.t as f64 / self.n as f64
    }

    /// The role range worker `worker` (of `total`) owns in a
    /// role-sharded run of these parameters — the canonical contiguous
    /// split of `0..n` (see [`crate::RolePartition::of_workers`]). All
    /// workers of one run must use the same `total`.
    pub fn worker_role_range(&self, worker: usize, total: usize) -> crate::RolePartition {
        crate::RolePartition::of_workers(worker, total, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_parameters() {
        let p = ProtocolParams::new(10, 2, 3).unwrap();
        assert_eq!(p.reconstruction_threshold(), 7);
        assert_eq!(p.packing_degree(), 4);
        // 10 − 2 = 8 ≥ 7 ✓
    }

    #[test]
    fn rejects_god_violation() {
        // n = 10, t = 3, k = 3: need 3 + 4 + 1 = 8 > 10 − 3 = 7.
        assert!(ProtocolParams::new(10, 3, 3).is_err());
        assert!(ProtocolParams::new(10, 3, 2).is_ok()); // need 6 ≤ 7
    }

    #[test]
    fn rejects_degenerate() {
        assert!(ProtocolParams::new(0, 0, 1).is_err());
        assert!(ProtocolParams::new(5, 0, 0).is_err());
        assert!(ProtocolParams::new(5, 0, 6).is_err());
        assert!(ProtocolParams::new(5, 6, 1).is_err());
    }

    #[test]
    fn failstops_consume_budget() {
        // n = 12, t = 2, k = 3: need 2+4+1 = 7 ≤ 12−2−failstops.
        assert!(ProtocolParams::with_failstops(12, 2, 3, 3).is_ok());
        assert!(ProtocolParams::with_failstops(12, 2, 3, 4).is_err());
    }

    #[test]
    fn from_gap_matches_paper_formulas() {
        // n = 20, ε = 0.1: t = ⌊20·0.4⌋−1 = 7, k = ⌊2⌋+1 = 3.
        let p = ProtocolParams::from_gap(20, 0.1).unwrap();
        assert_eq!((p.n, p.t, p.k), (20, 7, 3));
        assert!(p.epsilon() > 0.1);
        // Reconstruction: 7 + 4 + 1 = 12 ≤ 20 − 7 = 13 ✓
    }

    #[test]
    fn from_gap_failstop_halves_packing() {
        let full = ProtocolParams::from_gap(40, 0.2).unwrap();
        let fs = ProtocolParams::from_gap_failstop(40, 0.2).unwrap();
        assert_eq!(fs.k, 5); // ⌊40·0.1⌋ + 1
        assert_eq!(full.k, 9); // ⌊40·0.2⌋ + 1
        assert_eq!(fs.failstops, 8);
    }

    #[test]
    fn traditional_yoso_is_k_equals_one() {
        // ε = 0 ⇒ k = 1 (no packing): t can reach (n−1)/2... minus GOD slack.
        let p = ProtocolParams::new(11, 5, 1).unwrap();
        assert_eq!(p.reconstruction_threshold(), 6);
    }
}
