//! Dealer-free distributed key generation for the threshold key.
//!
//! The paper assumes a trusted setup for `(tpk, tsk₁…tskₙ)` (§5.1) and
//! points to Braun et al. (CRYPTO'23) for removing it. This module
//! implements the YOSO-friendly joint-Feldman DKG over the mock
//! threshold scheme, removing the dealer for the *threshold key* — the
//! cryptographically sensitive part (the KFF key material is generated
//! per future role and is not a shared secret; see §5.1):
//!
//! - every member of the first committee deals a Feldman VSS of a
//!   random contribution (commitments on the board, subshares
//!   encrypted to the committee's role keys, one re-share-style NIZK);
//! - the *qualified set* is the members whose proofs verify (under
//!   `t < n/2` it always has ≥ n − t ≥ t + 1 members);
//! - the threshold public key, the verification keys and each member's
//!   share are public linear combinations of the qualified deals.
//!
//! The classic rushing-bias caveat (Gennaro et al.): a rushing
//! adversary can bias the *distribution* of `tpk` (not learn the key).
//! As in most deployed DKGs this bias is benign for encryption keys;
//! eliminating it (e.g. with Pedersen commitments + extraction) is
//! orthogonal to the protocol reproduced here.

use rand::Rng;

use yoso_field::PrimeField;
use yoso_runtime::{Behavior, BulletinBoard, Committee};
use yoso_the::mock::{Ciphertext, KeyShare, LinearPke, PkeKeyPair, PkePublicKey, PublicKey};
use yoso_the::nizk::{self, linear::Statement};

use crate::messages::{self, Post};
use crate::tsk::TskChain;
use crate::{ExecutionConfig, ProtocolError};

const DOMAIN_DKG: &[u8] = b"yoso-pss/nizk/dkg-deal/v1";

/// One member's posted deal.
struct Deal<F: PrimeField> {
    commitments: Vec<F>,
    enc_subshares: Vec<Ciphertext<F>>,
    valid: bool,
}

/// The statement a dealer proves: knowledge of polynomial coefficients
/// `(a_0 … a_t)` and encryption randomness `(r_1 … r_n)` with
/// `C_l = a_l·g` and `ct_j = Enc(pk_j, f(j+1); r_j)` — the same linear
/// shape as the tsk re-share proof, with the base `g` fixed by the DKG
/// domain instead of an existing threshold key.
fn deal_statement<F: PrimeField>(
    g: F,
    commitments: &[F],
    recipient_pks: &[PkePublicKey<F>],
    enc_subshares: &[Ciphertext<F>],
) -> Statement<F> {
    let t1 = commitments.len();
    let n = recipient_pks.len();
    let wlen = t1 + n;
    let mut matrix = Vec::with_capacity(t1 + 2 * n);
    let mut targets = Vec::with_capacity(t1 + 2 * n);
    for (l, &c) in commitments.iter().enumerate() {
        let mut row = vec![F::ZERO; wlen];
        row[l] = g;
        matrix.push(row);
        targets.push(c);
    }
    for (j, (rpk, ct)) in recipient_pks.iter().zip(enc_subshares).enumerate() {
        let x = F::from_u64(j as u64 + 1);
        let mut row_u = vec![F::ZERO; wlen];
        row_u[t1 + j] = rpk.g;
        matrix.push(row_u);
        targets.push(ct.u);
        let mut row_v = vec![F::ZERO; wlen];
        let mut xp = F::ONE;
        for cell in row_v.iter_mut().take(t1) {
            *cell = xp;
            xp *= x;
        }
        row_v[t1 + j] = rpk.h;
        matrix.push(row_v);
        targets.push(ct.v);
    }
    Statement::new(matrix, targets)
}

/// Runs the DKG among `committee` (whose members hold `role_keys`),
/// producing a threshold key custody chain equivalent to `TKGen`'s —
/// with no dealer.
///
/// # Errors
///
/// Returns [`ProtocolError::NotEnoughContributions`] if fewer than
/// `t + 1` deals verify (impossible under the corruption model).
#[allow(clippy::needless_range_loop)]
pub fn run_dkg<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    board: &BulletinBoard<Post>,
    committee: &Committee,
    role_keys: &[PkeKeyPair<F>],
    t: usize,
    cfg: &ExecutionConfig,
) -> Result<TskChain<F>, ProtocolError> {
    let sb = crate::workitem::ShardedBoard::new(board, cfg.partition)?;
    run_dkg_in(rng, &sb, committee, role_keys, t, cfg)
}

/// [`run_dkg`] posting through an existing sharded board, with
/// per-member child RNGs (same sharding contract as the tsk
/// operations: values are drawn identically on every worker, proofs
/// run only for owned members).
#[allow(clippy::needless_range_loop)]
pub(crate) fn run_dkg_in<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    sb: &crate::workitem::ShardedBoard<'_>,
    committee: &Committee,
    role_keys: &[PkeKeyPair<F>],
    t: usize,
    cfg: &ExecutionConfig,
) -> Result<TskChain<F>, ProtocolError> {
    use rand::SeedableRng;

    let n = committee.n();
    assert_eq!(role_keys.len(), n, "one role key per member");
    // The base g is a public constant derived from the DKG domain.
    let g = derive_base::<F>();
    let recipient_pks: Vec<PkePublicKey<F>> = role_keys.iter().map(|kp| kp.public).collect();

    let phase = "setup/dkg";
    let mut deals: Vec<Deal<F>> = Vec::new();
    for i in 0..n {
        let behavior = committee.behavior(i);
        if !behavior.participates_at(crate::engine::phase_index(phase)) {
            continue;
        }
        let mut mrng = rand::rngs::StdRng::seed_from_u64(rng.next_u64());
        let owned = cfg.partition.owns(i);
        let prove = cfg.produce_proofs && owned;
        let deal = match behavior {
            Behavior::Honest | Behavior::Leaky | Behavior::FailStop { .. } => {
                let coeffs: Vec<F> = (0..=t).map(|_| F::random(&mut mrng)).collect();
                let commitments: Vec<F> = coeffs.iter().map(|&a| a * g).collect();
                let mut enc = Vec::with_capacity(n);
                let mut rands = Vec::with_capacity(n);
                for j in 0..n {
                    let x = F::from_u64(j as u64 + 1);
                    let mut acc = F::ZERO;
                    for &a in coeffs.iter().rev() {
                        acc = acc * x + a;
                    }
                    let (ct, r) = LinearPke::encrypt(&mut mrng, &recipient_pks[j], acc);
                    enc.push(ct);
                    rands.push(r);
                }
                let valid = if prove {
                    let st = deal_statement(g, &commitments, &recipient_pks, &enc);
                    let mut witness = coeffs.clone();
                    witness.extend_from_slice(&rands);
                    let proof = nizk::prove_linear(&mut mrng, DOMAIN_DKG, &st, &witness);
                    nizk::verify_linear(DOMAIN_DKG, &st, &proof)
                } else {
                    true
                };
                Deal { commitments, enc_subshares: enc, valid }
            }
            Behavior::Malicious(_) => {
                let commitments: Vec<F> = (0..=t).map(|_| F::random(&mut mrng)).collect();
                let enc: Vec<Ciphertext<F>> = (0..n)
                    .map(|j| {
                        let junk = F::random(&mut mrng);
                        LinearPke::encrypt(&mut mrng, &recipient_pks[j], junk).0
                    })
                    .collect();
                let valid = if prove {
                    let st = deal_statement(g, &commitments, &recipient_pks, &enc);
                    let proof = nizk::LinearProof::<F> {
                        commitment: (0..st.targets.len()).map(|_| F::random(&mut mrng)).collect(),
                        response: (0..st.witness_len()).map(|_| F::random(&mut mrng)).collect(),
                    };
                    nizk::verify_linear(DOMAIN_DKG, &st, &proof)
                } else {
                    false
                };
                Deal { commitments, enc_subshares: enc, valid }
            }
        };
        let elements = messages::reshare_elements(n as u64, t as u64);
        sb.post(owned, committee.role(i), Post::TskReshare, phase, elements)?;
        deals.push(deal);
    }

    let qualified: Vec<&Deal<F>> = deals.iter().filter(|d| d.valid).collect();
    if qualified.len() < t + 1 {
        return Err(ProtocolError::NotEnoughContributions {
            step: "dkg qualified set",
            got: qualified.len(),
            need: t + 1,
        });
    }

    // tpk: h = Σ C_{i,0}; vk_j = Σ_i Σ_l (j+1)^l C_{i,l};
    // share_j = Σ_i f_i(j+1).
    let h: F = qualified.iter().map(|d| d.commitments[0]).sum();
    let mut vks = Vec::with_capacity(n);
    for j in 0..n {
        let x = F::from_u64(j as u64 + 1);
        let mut vk = F::ZERO;
        for d in &qualified {
            let mut acc = F::ZERO;
            for &c in d.commitments.iter().rev() {
                acc = acc * x + c;
            }
            vk += acc;
        }
        vks.push(vk);
    }
    let shares: Vec<Option<KeyShare<F>>> = (0..n)
        .map(|j| {
            let value: F = qualified
                .iter()
                .map(|d| LinearPke::decrypt(&role_keys[j].secret, &d.enc_subshares[j]))
                .sum();
            Some(KeyShare { party: j, value })
        })
        .collect();

    let pk = PublicKey { n, t, g, h, vks };
    Ok(TskChain::from_parts(pk, shares))
}

/// Derives the public base `g ≠ 0` from the DKG domain separator.
fn derive_base<F: PrimeField>() -> F {
    let mut tr = yoso_crypto::Transcript::new(b"yoso-pss/dkg/base/v1");
    loop {
        let g: F = tr.challenge_field(b"g");
        if !g.is_zero() {
            return g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use yoso_field::F61;
    use yoso_runtime::{ActiveAttack, Adversary};
    use yoso_the::mock::MockTe;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(888)
    }

    fn role_keys(r: &mut rand::rngs::StdRng, n: usize) -> Vec<PkeKeyPair<F61>> {
        (0..n).map(|_| LinearPke::keygen(r)).collect()
    }

    #[test]
    fn dkg_key_encrypts_and_decrypts() {
        let mut r = rng();
        let (n, t) = (7usize, 3usize);
        let board = BulletinBoard::new();
        let committee = Committee::honest("dkg", n);
        let keys = role_keys(&mut r, n);
        let cfg = ExecutionConfig::default();
        let chain = run_dkg::<F61, _>(&mut r, &board, &committee, &keys, t, &cfg).unwrap();

        let m = F61::from(31_337u64);
        let (ct, _) = MockTe::encrypt(&mut r, &chain.pk, m);
        let dec = Committee::honest("d", n);
        assert_eq!(chain.decrypt(&mut r, &board, &dec, &cfg, "x", &[ct]).unwrap(), vec![m]);
        // Feldman consistency: vk_j = share_j · g.
        for j in 0..n {
            assert_eq!(chain.pk.vks[j], chain.share_of(j).unwrap().value * chain.pk.g);
        }
        // DKG traffic was metered.
        assert!(board.meter().phase("setup/dkg").messages == n as u64);
    }

    #[test]
    fn dkg_survives_malicious_dealers() {
        let mut r = rng();
        let (n, t) = (9usize, 3usize);
        let board = BulletinBoard::new();
        let adv = Adversary::active(t, ActiveAttack::WrongValue);
        let committee = adv.sample_committee(&mut r, "dkg", n);
        let keys = role_keys(&mut r, n);
        let cfg = ExecutionConfig::default();
        let chain = run_dkg::<F61, _>(&mut r, &board, &committee, &keys, t, &cfg).unwrap();
        let m = F61::from(5u64);
        let (ct, _) = MockTe::encrypt(&mut r, &chain.pk, m);
        let dec = Committee::honest("d", n);
        assert_eq!(chain.decrypt(&mut r, &board, &dec, &cfg, "x", &[ct]).unwrap(), vec![m]);
    }

    #[test]
    fn dkg_chain_supports_handover_and_reencrypt() {
        let mut r = rng();
        let (n, t) = (6usize, 2usize);
        let board = BulletinBoard::new();
        let committee = Committee::honest("dkg", n);
        let keys = role_keys(&mut r, n);
        let cfg = ExecutionConfig::default();
        let mut chain = run_dkg::<F61, _>(&mut r, &board, &committee, &keys, t, &cfg).unwrap();

        let m = F61::from(777u64);
        let (ct, _) = MockTe::encrypt(&mut r, &chain.pk, m);
        // Handover to a fresh committee, then re-encrypt to a target.
        let next = role_keys(&mut r, n);
        chain.handover(&mut r, &board, &committee, &cfg, "offline/handover", &next).unwrap();
        let target = LinearPke::<F61>::keygen(&mut r);
        let vals = chain.reencrypt(
            &mut r,
            &board,
            &Committee::honest("c2", n),
            &cfg,
            "x",
            &[(target.public, ct)],
        )
        .unwrap();
        assert_eq!(vals[0].open(target.secret.scalar).unwrap(), m);
    }

    #[test]
    fn all_silent_dealers_starve_the_dkg() {
        let mut r = rng();
        let (n, t) = (5usize, 2usize);
        let board = BulletinBoard::new();
        let committee = Committee::with_behaviors(
            "dkg",
            vec![Behavior::Malicious(ActiveAttack::Silent); n],
        );
        let keys = role_keys(&mut r, n);
        let cfg = ExecutionConfig::default();
        let err = run_dkg::<F61, _>(&mut r, &board, &committee, &keys, t, &cfg).unwrap_err();
        assert!(matches!(err, ProtocolError::NotEnoughContributions { .. }));
    }
}
