//! Custody of the threshold secret key across committees.
//!
//! The threshold key `tsk` is Shamir-shared among the current
//! committee. A committee holding it can, each role speaking once:
//!
//! - **decrypt** ciphertexts publicly ([`TskChain::decrypt`], the
//!   paper's `Decrypt` / Protocol 2): each role posts cleartext
//!   partial decryptions with correctness NIZKs;
//! - **re-encrypt** ciphertexts to a target public key
//!   ([`TskChain::reencrypt`], the paper's `Re-encrypt` / Protocol 1):
//!   each role posts its partial decryptions *encrypted* under the
//!   target key, again with NIZKs — only the target learns the value;
//! - **hand over** the key to the next committee
//!   ([`TskChain::handover`], `TKRes`/`TKRec`): each role posts
//!   Feldman commitments plus subshares encrypted to the next
//!   committee's role keys, with a re-share NIZK; everyone derives the
//!   next verification keys publicly.
//!
//! Malicious roles post garbage (their proofs fail), silent/crashed
//! roles post nothing; all consumers filter to proof-verified
//! contributions, which under `t < n/2` always suffice — this is where
//! guaranteed output delivery comes from.

use rand::{Rng, RngCore, SeedableRng};

use yoso_field::{lagrange, PrimeField};
use yoso_pss_sharing::shamir;
use yoso_runtime::{ActiveAttack, Behavior, BulletinBoard, Committee, LeakLog};
use yoso_the::mock::{Ciphertext, KeyShare, LinearPke, MockTe, PkeKeyPair, PkePublicKey, PublicKey};
use yoso_the::nizk::{
    self, pdec_proof, reshare_proof, verify_pdec_proof, verify_reshare_proof, PdecProof,
    ReshareProof,
};

use crate::messages::{
    self, Post, CT_ELEMENTS, ENC_PDEC_PROOF_ELEMENTS, PDEC_ELEMENTS, PDEC_PROOF_ELEMENTS,
};
use crate::{ExecutionConfig, ProtocolError};

/// One provider's encrypted partial decryption for a re-encrypted
/// value.
#[derive(Debug, Clone)]
pub struct ProviderPost<F: PrimeField> {
    /// 0-based index of the providing committee member.
    pub provider: usize,
    /// The partial decryption, encrypted under the target's key.
    pub ct: Ciphertext<F>,
    /// Whether the provider's NIZK verified.
    pub valid: bool,
}

/// A value re-encrypted from `tpk` to a target public key: the
/// collection of encrypted partial decryptions posted on the board.
///
/// The target opens it with its secret key; *anyone* can compute the
/// public opening coefficients `(a, b)` with `value = a − sk·b`, which
/// is what the online μ-share NIZK binds against.
#[derive(Debug, Clone)]
pub struct ReencryptedValue<F: PrimeField> {
    /// The target public key the partials are encrypted under.
    pub target: PkePublicKey<F>,
    /// The `v` component of the source ciphertext (public on the
    /// board): the opened value is `source_v − s·u_source`.
    pub source_v: F,
    /// Provider posts (all of them; consumers filter by `valid`).
    pub posts: Vec<ProviderPost<F>>,
    /// Threshold: `t + 1` valid posts are needed to open.
    pub t: usize,
}

impl<F: PrimeField> ReencryptedValue<F> {
    /// The canonical opening subset: the first `t + 1` valid posts.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::NotEnoughContributions`] if fewer than
    /// `t + 1` posts are valid.
    pub fn canonical_subset(&self) -> Result<Vec<&ProviderPost<F>>, ProtocolError> {
        let subset: Vec<&ProviderPost<F>> =
            self.posts.iter().filter(|p| p.valid).take(self.t + 1).collect();
        if subset.len() < self.t + 1 {
            return Err(ProtocolError::NotEnoughContributions {
                step: "re-encrypt opening",
                got: subset.len(),
                need: self.t + 1,
            });
        }
        Ok(subset)
    }

    /// The public opening coefficients `(a, b)` such that the
    /// underlying value equals `a − sk·b` for the target's secret
    /// key `sk`.
    ///
    /// The Lagrange recombination of the partial decryptions happens
    /// *inside* the ciphertexts: combining `(u_j, v_j)` with
    /// coefficients `w_j` yields an encryption of the combined partial
    /// `s·u_ct`, so `value = v_ct − (a_v − sk·a_u)` … folded into
    /// `(a, b)` below.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::canonical_subset`] errors.
    pub fn opening_coefficients(&self) -> Result<(F, F), ProtocolError> {
        let subset = self.canonical_subset()?;
        let points: Vec<F> = subset.iter().map(|p| F::from_u64(p.provider as u64 + 1)).collect();
        let w = lagrange::basis_at(&points, F::ZERO)
            .map_err(|e| ProtocolError::Pss(yoso_pss_sharing::PssError::Field(e)))?;
        // Combined encrypted partial: Σ w_j (u_j, v_j) encrypts s·u_ct.
        let mut a_u = F::ZERO;
        let mut a_v = F::ZERO;
        for (p, &wj) in subset.iter().zip(&w) {
            a_u += wj * p.ct.u;
            a_v += wj * p.ct.v;
        }
        // s·u_ct = a_v − sk·a_u; value = source_v − s·u_ct
        //        = (source_v − a_v) + sk·a_u  =  a − sk·b
        Ok((self.source_v - a_v, -a_u))
    }

    /// Opens the value with the target's secret key.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::opening_coefficients`] errors.
    pub fn open(&self, sk_scalar: F) -> Result<F, ProtocolError> {
        let (a, b) = self.opening_coefficients()?;
        Ok(a - sk_scalar * b)
    }
}

/// One committee's posted `tsk` re-share (handover) message.
#[derive(Debug, Clone)]
pub struct PostedReshare<F: PrimeField> {
    /// The providing member of the outgoing committee.
    pub from: usize,
    /// Feldman commitments to the sub-sharing polynomial.
    pub commitments: Vec<F>,
    /// Subshares encrypted to the next committee's role keys.
    pub enc_subshares: Vec<Ciphertext<F>>,
    /// Whether the re-share NIZK verified.
    pub valid: bool,
}

/// The threshold key's custody state: the public key (with the current
/// committee's verification keys) plus each current member's share.
// lint:redact: the derived Debug delegates to KeyShare's redacted impl
// (party index only), so no share values are printed.
#[derive(Debug, Clone)]
pub struct TskChain<F: PrimeField> {
    /// The threshold public key (vks track the current committee).
    pub pk: PublicKey<F>,
    /// The current committee's shares (`None` = member never received
    /// or lost its share — e.g. crashed during handover).
    shares: Vec<Option<KeyShare<F>>>,
    /// Custody epoch (increments at each handover; used to label which
    /// sharing of `tsk` a corrupted member exposes).
    epoch: u64,
    /// Adversarial-view recorder (empty by default).
    leak: LeakLog,
}

impl<F: PrimeField> TskChain<F> {
    /// Initializes the chain by running `TKGen`, giving the shares to
    /// the first committee.
    ///
    /// # Errors
    ///
    /// Propagates key-generation errors.
    pub fn keygen<R: Rng + ?Sized>(rng: &mut R, n: usize, t: usize) -> Result<Self, ProtocolError> {
        let (pk, shares) = MockTe::keygen(rng, n, t)?;
        Ok(TskChain {
            pk,
            shares: shares.into_iter().map(Some).collect(),
            epoch: 0,
            leak: LeakLog::new(),
        })
    }

    /// Builds a chain from an externally generated key (e.g. the
    /// dealer-free DKG of [`crate::dkg`]).
    pub fn from_parts(pk: PublicKey<F>, shares: Vec<Option<KeyShare<F>>>) -> Self {
        assert_eq!(pk.n, shares.len(), "one share slot per member");
        TskChain { pk, shares, epoch: 0, leak: LeakLog::new() }
    }

    /// Attaches an adversarial-view recorder: corrupted (malicious or
    /// leaky) committee members will log their exposure of `tsk`
    /// shares, labelled by custody epoch.
    pub fn set_leak_log(&mut self, log: LeakLog) {
        self.leak = log;
    }

    /// Records the `tsk`-share exposures of a committee's corrupted
    /// members (called once per operation the committee performs).
    fn record_leaks(&self, committee: &Committee) {
        for i in 0..committee.n() {
            if matches!(committee.behavior(i), Behavior::Malicious(_) | Behavior::Leaky)
                && self.shares[i].is_some()
            {
                self.leak.record(committee.role(i), format!("tsk/epoch{}", self.epoch), i);
            }
        }
    }

    /// The threshold `t`.
    pub fn t(&self) -> usize {
        self.pk.t
    }

    /// Test/diagnostic access to a member's share.
    pub fn share_of(&self, i: usize) -> Option<&KeyShare<F>> {
        self.shares.get(i).and_then(|s| s.as_ref())
    }

    /// Public `Decrypt` of a batch of ciphertexts by `committee`
    /// (paper Protocol 2, minus the handover — call
    /// [`Self::handover`] separately once per committee).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::NotEnoughContributions`] if fewer than
    /// `t + 1` partials verify for some ciphertext.
    pub fn decrypt<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        board: &BulletinBoard<Post>,
        committee: &Committee,
        cfg: &ExecutionConfig,
        phase: &'static str,
        cts: &[Ciphertext<F>],
    ) -> Result<Vec<F>, ProtocolError> {
        let sb = crate::workitem::ShardedBoard::new(board, cfg.partition)?;
        self.decrypt_in(rng, &sb, committee, cfg, phase, cts)
    }

    /// [`Self::decrypt`] posting through an existing sharded board.
    ///
    /// Each member runs from its own child RNG so a role-sharded
    /// worker that skips proof work for non-owned members still draws
    /// identical values everywhere.
    pub(crate) fn decrypt_in<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sb: &crate::workitem::ShardedBoard<'_>,
        committee: &Committee,
        cfg: &ExecutionConfig,
        phase: &'static str,
        cts: &[Ciphertext<F>],
    ) -> Result<Vec<F>, ProtocolError> {
        self.record_leaks(committee);
        let mut partials: Vec<Vec<(usize, F, bool)>> = vec![Vec::new(); cts.len()];
        for i in 0..committee.n() {
            let Some(share) = &self.shares[i] else { continue };
            let behavior = committee.behavior(i);
            if !behavior.participates_at(crate::engine::phase_index(phase)) {
                continue;
            }
            let mut mrng = rand::rngs::StdRng::seed_from_u64(rng.next_u64());
            let owned = cfg.partition.owns(i);
            let prove = cfg.produce_proofs && owned;
            for (c_idx, ct) in cts.iter().enumerate() {
                let (value, valid) = match behavior {
                    Behavior::Honest | Behavior::Leaky | Behavior::FailStop { .. } => {
                        let pd = MockTe::partial_decrypt(share, ct);
                        let ok = if prove {
                            let proof =
                                pdec_proof(&mut mrng, &self.pk, ct, i, share.value, pd.value);
                            verify_pdec_proof(&self.pk, ct, i, pd.value, &proof)
                        } else {
                            true
                        };
                        (pd.value, ok)
                    }
                    Behavior::Malicious(attack) => {
                        let wrong = match attack {
                            ActiveAttack::BadProof => MockTe::partial_decrypt(share, ct).value,
                            _ => F::random(&mut mrng),
                        };
                        let ok = if prove {
                            let proof = PdecProof::garbage(&mut mrng);
                            verify_pdec_proof(&self.pk, ct, i, wrong, &proof)
                        } else {
                            false
                        };
                        (wrong, ok)
                    }
                };
                sb.post(
                    owned,
                    committee.role(i),
                    Post::PartialDec,
                    phase,
                    PDEC_ELEMENTS + PDEC_PROOF_ELEMENTS,
                )?;
                partials[c_idx].push((i, value, valid));
            }
        }

        cts.iter()
            .zip(partials)
            .map(|(ct, posts)| {
                let valid: Vec<yoso_the::mock::PartialDec<F>> = posts
                    .iter()
                    .filter(|(_, _, ok)| *ok)
                    .take(self.pk.t + 1)
                    .map(|&(party, value, _)| yoso_the::mock::PartialDec { party, value })
                    .collect();
                if valid.len() < self.pk.t + 1 {
                    return Err(ProtocolError::NotEnoughContributions {
                        step: "threshold decrypt",
                        got: valid.len(),
                        need: self.pk.t + 1,
                    });
                }
                Ok(MockTe::combine(&self.pk, ct, &valid)?)
            })
            .collect()
    }

    /// `Re-encrypt` of a batch of `(target, ciphertext)` pairs by
    /// `committee` (paper Protocol 1, minus the handover).
    ///
    /// Items are independent, so each one runs from its own child RNG
    /// (seeds drawn sequentially from `rng`, one per item) on up to
    /// `cfg.num_threads` workers — the same buffer-and-replay shape as
    /// Beaver triple generation. Each worker owns a
    /// [`crate::parallel::PostBuffer`]; buffers are flushed in item
    /// order, so the board transcript is byte-identical at any thread
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Transport`] if replaying the buffered
    /// posts onto the board fails (remote backends only).
    pub fn reencrypt<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        board: &BulletinBoard<Post>,
        committee: &Committee,
        cfg: &ExecutionConfig,
        phase: &'static str,
        items: &[(PkePublicKey<F>, Ciphertext<F>)],
    ) -> Result<Vec<ReencryptedValue<F>>, ProtocolError> {
        let sb = crate::workitem::ShardedBoard::new(board, cfg.partition)?;
        self.reencrypt_in(rng, &sb, committee, cfg, phase, items)
    }

    /// [`Self::reencrypt`] posting through an existing sharded board.
    ///
    /// Inside each item, every member additionally runs from its own
    /// child RNG (seeded from the item RNG), so a role-sharded worker
    /// skipping non-owned members' proof work draws identical
    /// ciphertexts for all of them.
    pub(crate) fn reencrypt_in<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sb: &crate::workitem::ShardedBoard<'_>,
        committee: &Committee,
        cfg: &ExecutionConfig,
        phase: &'static str,
        items: &[(PkePublicKey<F>, Ciphertext<F>)],
    ) -> Result<Vec<ReencryptedValue<F>>, ProtocolError> {
        self.record_leaks(committee);
        let seeds: Vec<u64> = items.iter().map(|_| rng.next_u64()).collect();
        let worker_out = crate::parallel::par_map(cfg.num_threads, &seeds, |item_idx, &seed| {
            let mut irng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut posts = crate::parallel::PostBuffer::new();
            let (target, ct) = &items[item_idx];
            let mut val = ReencryptedValue {
                target: *target,
                source_v: ct.v,
                posts: Vec::new(),
                t: self.pk.t,
            };
            for i in 0..committee.n() {
                let Some(share) = &self.shares[i] else { continue };
                let behavior = committee.behavior(i);
                if !behavior.participates_at(crate::engine::phase_index(phase)) {
                    continue;
                }
                let mut mrng = rand::rngs::StdRng::seed_from_u64(irng.next_u64());
                let owned = cfg.partition.owns(i);
                let prove = cfg.produce_proofs && owned;
                let (enc, valid) = match behavior {
                    Behavior::Honest | Behavior::Leaky | Behavior::FailStop { .. } => {
                        let d = share.value * ct.u;
                        let (enc, r) = LinearPke::encrypt(&mut mrng, target, d);
                        let ok = if prove {
                            let proof = encrypted_partial_proof(
                                &mut mrng, &self.pk, i, ct, target, &enc, d, r,
                            );
                            verify_encrypted_partial(&self.pk, i, ct, target, &enc, &proof)
                        } else {
                            true
                        };
                        (enc, ok)
                    }
                    Behavior::Malicious(attack) => {
                        let d = match attack {
                            ActiveAttack::BadProof => share.value * ct.u,
                            _ => F::random(&mut mrng),
                        };
                        let (enc, _) = LinearPke::encrypt(&mut mrng, target, d);
                        let ok = if prove {
                            let proof = nizk::LinearProof::<F> {
                                commitment: vec![F::random(&mut mrng); 3],
                                response: vec![F::random(&mut mrng); 2],
                            };
                            verify_encrypted_partial(&self.pk, i, ct, target, &enc, &proof)
                        } else {
                            false
                        };
                        (enc, ok)
                    }
                };
                posts.record(
                    owned,
                    committee.role(i),
                    Post::EncryptedPartial,
                    phase,
                    CT_ELEMENTS + ENC_PDEC_PROOF_ELEMENTS,
                );
                val.posts.push(ProviderPost { provider: i, ct: enc, valid });
            }
            (val, posts)
        });
        let mut out = Vec::with_capacity(items.len());
        for (val, posts) in worker_out {
            sb.flush_buffer(posts)?;
            out.push(val);
        }
        Ok(out)
    }

    /// Hands the key over to `next` (whose members' role key pairs are
    /// `next_keys`): `TKRes` + `TKRec` + public derivation of the next
    /// verification keys.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::NotEnoughContributions`] if fewer than
    /// `t + 1` re-share messages verify.
    #[allow(clippy::needless_range_loop)]
    pub fn handover<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        board: &BulletinBoard<Post>,
        outgoing: &Committee,
        cfg: &ExecutionConfig,
        phase: &'static str,
        next_keys: &[PkeKeyPair<F>],
    ) -> Result<(), ProtocolError> {
        let sb = crate::workitem::ShardedBoard::new(board, cfg.partition)?;
        self.handover_in(rng, &sb, outgoing, cfg, phase, next_keys)
    }

    /// [`Self::handover`] posting through an existing sharded board,
    /// with per-member child RNGs (same sharding contract as
    /// [`Self::decrypt_in`]).
    #[allow(clippy::needless_range_loop)]
    pub(crate) fn handover_in<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        sb: &crate::workitem::ShardedBoard<'_>,
        outgoing: &Committee,
        cfg: &ExecutionConfig,
        phase: &'static str,
        next_keys: &[PkeKeyPair<F>],
    ) -> Result<(), ProtocolError> {
        self.record_leaks(outgoing);
        let n = self.pk.n;
        let t = self.pk.t;
        assert_eq!(next_keys.len(), n, "next committee must have n role keys");
        let recipient_pks: Vec<PkePublicKey<F>> = next_keys.iter().map(|kp| kp.public).collect();

        let mut msgs: Vec<PostedReshare<F>> = Vec::new();
        for i in 0..outgoing.n() {
            let Some(share) = &self.shares[i] else { continue };
            let behavior = outgoing.behavior(i);
            if !behavior.participates_at(crate::engine::phase_index(phase)) {
                continue;
            }
            let mut mrng = rand::rngs::StdRng::seed_from_u64(rng.next_u64());
            let owned = cfg.partition.owns(i);
            let prove = cfg.produce_proofs && owned;
            let posted = match behavior {
                Behavior::Honest | Behavior::Leaky | Behavior::FailStop { .. } => {
                    // Sample the sub-sharing polynomial explicitly so we
                    // can both encrypt subshares and prove.
                    let mut coeffs = Vec::with_capacity(t + 1);
                    coeffs.push(share.value);
                    for _ in 0..t {
                        coeffs.push(F::random(&mut mrng));
                    }
                    let commitments: Vec<F> = coeffs.iter().map(|&a| a * self.pk.g).collect();
                    let mut enc_subshares = Vec::with_capacity(n);
                    let mut rands = Vec::with_capacity(n);
                    for m in 0..n {
                        let x = F::from_u64(m as u64 + 1);
                        let mut acc = F::ZERO;
                        for &a in coeffs.iter().rev() {
                            acc = acc * x + a;
                        }
                        let (ct, r) = LinearPke::encrypt(&mut mrng, &recipient_pks[m], acc);
                        enc_subshares.push(ct);
                        rands.push(r);
                    }
                    let valid = if prove {
                        let proof = reshare_proof(
                            &mut mrng,
                            &self.pk,
                            &commitments,
                            &recipient_pks,
                            &enc_subshares,
                            &coeffs,
                            &rands,
                        );
                        verify_reshare_proof(
                            &self.pk,
                            i,
                            &commitments,
                            &recipient_pks,
                            &enc_subshares,
                            &proof,
                        )
                    } else {
                        true
                    };
                    PostedReshare { from: i, commitments, enc_subshares, valid }
                }
                Behavior::Malicious(_) => {
                    let commitments: Vec<F> = (0..=t).map(|_| F::random(&mut mrng)).collect();
                    let enc_subshares: Vec<Ciphertext<F>> = (0..n)
                        .map(|m| {
                            let junk = F::random(&mut mrng);
                            LinearPke::encrypt(&mut mrng, &recipient_pks[m], junk).0
                        })
                        .collect();
                    let valid = if prove {
                        let proof = ReshareProof::<F>::garbage(&mut mrng, n, t);
                        verify_reshare_proof(
                            &self.pk,
                            i,
                            &commitments,
                            &recipient_pks,
                            &enc_subshares,
                            &proof,
                        )
                    } else {
                        false
                    };
                    PostedReshare { from: i, commitments, enc_subshares, valid }
                }
            };
            let elements = messages::reshare_elements(n as u64, t as u64);
            sb.post(owned, outgoing.role(i), Post::TskReshare, phase, elements)?;
            msgs.push(posted);
        }

        let providers: Vec<&PostedReshare<F>> =
            msgs.iter().filter(|m| m.valid).take(t + 1).collect();
        if providers.len() < t + 1 {
            return Err(ProtocolError::NotEnoughContributions {
                step: "tsk handover",
                got: providers.len(),
                need: t + 1,
            });
        }
        let provider_indices: Vec<usize> = providers.iter().map(|m| m.from).collect();

        // Each next-committee member decrypts its subshares and
        // recombines.
        let mut new_shares = Vec::with_capacity(n);
        for (j, kp) in next_keys.iter().enumerate() {
            let subs: Vec<F> = providers
                .iter()
                .map(|m| LinearPke::decrypt(&kp.secret, &m.enc_subshares[j]))
                .collect();
            let value = shamir::recombine_subshares(&provider_indices, &subs, t)?;
            new_shares.push(Some(KeyShare { party: j, value }));
        }

        // Public derivation of the next verification keys from the
        // Feldman commitments.
        let provider_points: Vec<F> =
            provider_indices.iter().map(|&p| F::from_u64(p as u64 + 1)).collect();
        let lag = lagrange::basis_at(&provider_points, F::ZERO)
            .map_err(|e| ProtocolError::Pss(yoso_pss_sharing::PssError::Field(e)))?;
        let mut vks = Vec::with_capacity(n);
        for j in 0..n {
            let x = F::from_u64(j as u64 + 1);
            let mut vk = F::ZERO;
            for (m, &li) in providers.iter().zip(&lag) {
                let mut acc = F::ZERO;
                for &c in m.commitments.iter().rev() {
                    acc = acc * x + c;
                }
                vk += li * acc;
            }
            vks.push(vk);
        }
        self.pk.vks = vks;
        self.shares = new_shares;
        self.epoch += 1;
        Ok(())
    }
}

/// Builds and proves the `Re-encrypt` posting relation: the published
/// ciphertext encrypts the *correct* partial decryption of `ct`
/// (bound to the Feldman verification key `vk_i`).
///
/// Witness `(d, r)`; rows: `d·g = vk_i·u_ct`, `enc.u = r·g_T`,
/// `enc.v = d + r·h_T`.
#[allow(clippy::too_many_arguments)]
pub fn encrypted_partial_proof<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    tpk: &PublicKey<F>,
    provider: usize,
    ct: &Ciphertext<F>,
    target: &PkePublicKey<F>,
    enc: &Ciphertext<F>,
    d: F,
    r: F,
) -> nizk::LinearProof<F> {
    let st = encrypted_partial_statement(tpk, provider, ct, target, enc);
    nizk::prove_linear(rng, b"yoso-pss/nizk/enc-pdec/v1", &st, &[d, r])
}

/// Verifies a `Re-encrypt` posting proof.
pub fn verify_encrypted_partial<F: PrimeField>(
    tpk: &PublicKey<F>,
    provider: usize,
    ct: &Ciphertext<F>,
    target: &PkePublicKey<F>,
    enc: &Ciphertext<F>,
    proof: &nizk::LinearProof<F>,
) -> bool {
    if provider >= tpk.vks.len() {
        return false;
    }
    let st = encrypted_partial_statement(tpk, provider, ct, target, enc);
    nizk::verify_linear(b"yoso-pss/nizk/enc-pdec/v1", &st, proof)
}

fn encrypted_partial_statement<F: PrimeField>(
    tpk: &PublicKey<F>,
    provider: usize,
    ct: &Ciphertext<F>,
    target: &PkePublicKey<F>,
    enc: &Ciphertext<F>,
) -> yoso_the::nizk::linear::Statement<F> {
    yoso_the::nizk::linear::Statement::new(
        vec![
            vec![tpk.g, F::ZERO],
            vec![F::ZERO, target.g],
            vec![F::ONE, target.h],
        ],
        vec![tpk.vks[provider] * ct.u, enc.u, enc.v],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use yoso_field::F61;
    use yoso_runtime::Adversary;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(4242)
    }

    fn cfg() -> ExecutionConfig {
        ExecutionConfig::default()
    }

    #[test]
    fn decrypt_honest_committee() {
        let mut r = rng();
        let board = BulletinBoard::new();
        let chain = TskChain::<F61>::keygen(&mut r, 7, 2).unwrap();
        let committee = Committee::honest("d1", 7);
        let m = F61::from(777u64);
        let (ct, _) = MockTe::encrypt(&mut r, &chain.pk, m);
        let got = chain.decrypt(&mut r, &board, &committee, &cfg(), "offline/dep", &[ct]).unwrap();
        assert_eq!(got, vec![m]);
        // All 7 members posted one partial each.
        assert_eq!(board.len().unwrap(), 7);
    }

    #[test]
    fn decrypt_with_malicious_members() {
        let mut r = rng();
        let board = BulletinBoard::new();
        let chain = TskChain::<F61>::keygen(&mut r, 7, 2).unwrap();
        let adv = Adversary::active(2, ActiveAttack::WrongValue);
        let committee = adv.sample_committee(&mut r, "d1", 7);
        let m = F61::from(31337u64);
        let (ct, _) = MockTe::encrypt(&mut r, &chain.pk, m);
        let got = chain.decrypt(&mut r, &board, &committee, &cfg(), "offline/dep", &[ct]).unwrap();
        assert_eq!(got, vec![m], "bad partials must be filtered by proofs");
    }

    #[test]
    fn reencrypt_and_open() {
        let mut r = rng();
        let board = BulletinBoard::new();
        let chain = TskChain::<F61>::keygen(&mut r, 7, 2).unwrap();
        let committee = Committee::honest("r1", 7);
        let target = LinearPke::<F61>::keygen(&mut r);
        let m = F61::from(99u64);
        let (ct, _) = MockTe::encrypt(&mut r, &chain.pk, m);
        let vals = chain.reencrypt(
            &mut r,
            &board,
            &committee,
            &cfg(),
            "offline/reenc",
            &[(target.public, ct)],
        )
        .unwrap();
        let got = vals[0].open(target.secret.scalar).unwrap();
        assert_eq!(got, m);
        // Opening coefficients satisfy value = a − sk·b.
        let (a, b) = vals[0].opening_coefficients().unwrap();
        assert_eq!(a - target.secret.scalar * b, m);
    }

    #[test]
    fn reencrypt_survives_malicious_providers() {
        let mut r = rng();
        let board = BulletinBoard::new();
        let chain = TskChain::<F61>::keygen(&mut r, 7, 3).unwrap();
        let adv = Adversary::active(3, ActiveAttack::WrongValue);
        let committee = adv.sample_committee(&mut r, "r1", 7);
        let target = LinearPke::<F61>::keygen(&mut r);
        let m = F61::from(5u64);
        let (ct, _) = MockTe::encrypt(&mut r, &chain.pk, m);
        let vals = chain
            .reencrypt(&mut r, &board, &committee, &cfg(), "x", &[(target.public, ct)])
            .unwrap();
        assert_eq!(vals[0].open(target.secret.scalar).unwrap(), m);
    }

    #[test]
    fn handover_chain_preserves_key() {
        let mut r = rng();
        let board = BulletinBoard::new();
        let mut chain = TskChain::<F61>::keygen(&mut r, 6, 2).unwrap();
        let m = F61::from(123u64);
        let (ct, _) = MockTe::encrypt(&mut r, &chain.pk, m);

        for epoch in 0..3 {
            let outgoing = Committee::honest(format!("h{epoch}"), 6);
            let next_keys: Vec<PkeKeyPair<F61>> =
                (0..6).map(|_| LinearPke::keygen(&mut r)).collect();
            chain
                .handover(&mut r, &board, &outgoing, &cfg(), "offline/handover", &next_keys)
                .unwrap();
        }
        let committee = Committee::honest("final", 6);
        let got = chain.decrypt(&mut r, &board, &committee, &cfg(), "x", &[ct]).unwrap();
        assert_eq!(got, vec![m]);
    }

    #[test]
    fn handover_with_malicious_outgoing_members() {
        let mut r = rng();
        let board = BulletinBoard::new();
        let mut chain = TskChain::<F61>::keygen(&mut r, 7, 2).unwrap();
        let m = F61::from(4242u64);
        let (ct, _) = MockTe::encrypt(&mut r, &chain.pk, m);
        let adv = Adversary::active(2, ActiveAttack::WrongValue);
        let outgoing = adv.sample_committee(&mut r, "h0", 7);
        let next_keys: Vec<PkeKeyPair<F61>> = (0..7).map(|_| LinearPke::keygen(&mut r)).collect();
        chain.handover(&mut r, &board, &outgoing, &cfg(), "x", &next_keys).unwrap();
        let committee = Committee::honest("final", 7);
        assert_eq!(chain.decrypt(&mut r, &board, &committee, &cfg(), "x", &[ct]).unwrap(), vec![m]);
    }

    #[test]
    fn vks_stay_consistent_after_handover() {
        let mut r = rng();
        let board = BulletinBoard::new();
        let mut chain = TskChain::<F61>::keygen(&mut r, 5, 1).unwrap();
        let outgoing = Committee::honest("h0", 5);
        let next_keys: Vec<PkeKeyPair<F61>> = (0..5).map(|_| LinearPke::keygen(&mut r)).collect();
        chain.handover(&mut r, &board, &outgoing, &cfg(), "x", &next_keys).unwrap();
        for j in 0..5 {
            let share = chain.share_of(j).unwrap();
            assert_eq!(chain.pk.vks[j], share.value * chain.pk.g);
        }
    }
}
