//! Distributed share transforms (DESIGN §13): fanning the offline
//! packing transforms out across the worker fleet.
//!
//! In the baseline pipeline every worker computes the full Step-4
//! packing for every batch — all `n` dealing rows and all `n`
//! homomorphic evaluations — so the dealer-side transform cost is
//! *replicated* per worker and adding workers never reduces per-worker
//! compute. This module is the split: each worker materialises only
//! the dealing rows of the committee members its [`RolePartition`]
//! owns ([`PackedSharing::dealing_basis_rows_slice`]), evaluates only
//! those members' packed-share ciphertexts, and publishes them as
//! [`Post::TransformSlice`] records through the [`ShardedBoard`]'s
//! position accounting. After a mid-round [`ShardedBoard::exchange`]
//! every worker reads the batch's `n` member rows back off the board
//! and recombines them in member order.
//!
//! # Transcript discipline
//!
//! The posting unit is one record **per committee member**, not per
//! worker: member `i`'s α/β/Γ packed-share ciphertexts are fused into
//! a single [`Post::TransformSlice`] authored by `("pack-transform",
//! i)`, and the [`ShardedBoard`] appends them in member order at the
//! exchange. The posting sequence is therefore `n` member-ordered
//! records at *any* worker count, and the payload values are
//! bit-identical across workers (exact arithmetic on the same rows),
//! so the transcript of a fleet run is byte-identical to a solo run
//! with the same flag. The payload is public under the mock TE —
//! packed-share *ciphertexts*, the same values Step 6 re-encrypts —
//! so publishing it leaks nothing.

use yoso_field::{transformstats, PrimeField};
use yoso_pss_sharing::PackedSharing;
use yoso_runtime::RoleId;
use yoso_the::mock::{Ciphertext, MockTe};

use crate::messages::{Post, CT_ELEMENTS};
use crate::workitem::ShardedBoard;
use crate::ProtocolError;

/// Ciphertexts fused into one [`Post::TransformSlice`] record: the α,
/// β and Γ packed shares of one member.
pub const PACKS_PER_SLICE: usize = 3;

/// The phase label the transform-slice records are metered under —
/// distinct from `offline/4-pack` so the bench can report the
/// distributed-transform traffic as its own line.
pub const DIST_PACK_PHASE: &str = "offline/4-pack-dist";

/// One pack's inputs: the batch's per-wire mask ciphertexts and the
/// `t` summed helper-randomness ciphertexts.
#[derive(Debug, Clone, Copy)]
pub struct PackInputs<'a, F: PrimeField> {
    /// The `k_b` wire ciphertexts, batch order.
    pub wires: &'a [Ciphertext<F>],
    /// The `t` helper ciphertexts.
    pub helpers: &'a [Ciphertext<F>],
}

/// Distributed Step-4 packing of one batch: computes the `n` α/β/Γ
/// packed-share ciphertext vectors with each worker evaluating only
/// its owned members' rows, exchanging them through `sb`.
///
/// Equivalent to three [`crate::offline::pack_ciphertexts`] calls on
/// the same scheme (bit-identical values), but the per-worker hot work
/// is `O((hi − lo) · m)` row evaluations instead of `O(n · m)`, and
/// each batch costs one [`ShardedBoard::exchange`] (no round tick).
///
/// # Errors
///
/// [`ProtocolError::Invariant`] on malformed pack inputs,
/// [`ProtocolError::Transport`] on board failures, exchange timeouts,
/// or a read-back that does not match the expected member rows.
pub(crate) fn dist_pack_batch<F: PrimeField>(
    sb: &ShardedBoard<'_>,
    scheme: &PackedSharing<F>,
    t: usize,
    packs: [PackInputs<'_, F>; PACKS_PER_SLICE],
    phase: &'static str,
) -> Result<[Vec<Ciphertext<F>>; PACKS_PER_SLICE], ProtocolError> {
    let n = scheme.n();
    let k_b = scheme.k();
    for pack in &packs {
        if pack.helpers.len() != t {
            return Err(ProtocolError::Invariant("need exactly t helper ciphertexts for packing"));
        }
        if pack.wires.len() != k_b {
            return Err(ProtocolError::Invariant(
                "packing scheme width does not match the wire count",
            ));
        }
    }
    let degree = t + k_b - 1;
    let partition = sb.partition();
    let (lo, hi) =
        if partition.is_solo() { (0, n) } else { (partition.lo().min(n), partition.hi().min(n)) };

    // Owned rows only: the slice of the dealing map this worker pays
    // for. Each row evaluation is a ciphertext dot product — 2·m field
    // multiplications per pack — reported to the transform-work ledger
    // so the bench can compare per-worker cost across fleet sizes.
    let rows = scheme.dealing_basis_rows_slice(degree, lo, hi)?;
    let m = k_b + t;
    transformstats::bump_slice_muls((rows.len() * PACKS_PER_SLICE * 2 * m) as u64);
    let all: Vec<Vec<Ciphertext<F>>> = packs
        .iter()
        .map(|pack| {
            let mut cts = pack.wires.to_vec();
            cts.extend_from_slice(pack.helpers);
            cts
        })
        .collect();
    let mut local: Vec<[Ciphertext<F>; PACKS_PER_SLICE]> = Vec::with_capacity(hi - lo);
    for row in &rows {
        local.push([
            MockTe::eval(&all[0], row)?,
            MockTe::eval(&all[1], row)?,
            MockTe::eval(&all[2], row)?,
        ]);
    }

    // Publish: one fused record per member, in member order. Non-owned
    // members only advance the position accounting (their owning
    // worker appends the real record at the exchange).
    let start = sb.position()?;
    for i in 0..n {
        let owned = partition.owns(i);
        let values: Vec<u64> = if owned {
            local[i - lo].iter().flat_map(|ct| [ct.u.as_u64(), ct.v.as_u64()]).collect()
        } else {
            Vec::new()
        };
        sb.post(
            owned,
            RoleId::new("pack-transform", i),
            Post::TransformSlice { row: i as u32, values },
            phase,
            (PACKS_PER_SLICE as u64) * CT_ELEMENTS,
        )?;
    }
    sb.exchange()?;

    // Recombine. A solo worker computed every row locally, so the
    // read-back is skipped (the posts already passed through). Sharded
    // workers read the batch's n records back off the board; faster
    // peers may have appended beyond the batch already, so only the
    // first n records from the cursor are consumed.
    let mut out: [Vec<Ciphertext<F>>; PACKS_PER_SLICE] =
        [Vec::with_capacity(n), Vec::with_capacity(n), Vec::with_capacity(n)];
    if partition.is_solo() {
        for cts in &local {
            for (slot, &ct) in out.iter_mut().zip(cts.iter()) {
                slot.push(ct);
            }
        }
        return Ok(out);
    }
    let postings = sb.board().postings_from(start as usize)?;
    if postings.len() < n {
        return Err(ProtocolError::Transport(format!(
            "distributed transform read-back returned {} records, expected at least {n}",
            postings.len()
        )));
    }
    for (i, posting) in postings.iter().take(n).enumerate() {
        match &posting.message {
            Post::TransformSlice { row, values }
                if *row as usize == i && values.len() == PACKS_PER_SLICE * 2 =>
            {
                for (slot, pair) in out.iter_mut().zip(values.chunks_exact(2)) {
                    slot.push(Ciphertext { u: F::from_u64(pair[0]), v: F::from_u64(pair[1]) });
                }
            }
            other => {
                return Err(ProtocolError::Transport(format!(
                    "distributed transform read-back desync at member {i}: {other:?}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::pack_ciphertexts;
    use crate::workitem::RolePartition;
    use rand::SeedableRng;
    use yoso_field::F61;
    use yoso_runtime::BulletinBoard;

    fn cts(r: &mut rand::rngs::StdRng, count: usize) -> Vec<Ciphertext<F61>> {
        (0..count)
            .map(|_| Ciphertext { u: F61::random(r), v: F61::random(r) })
            .collect()
    }

    type PackVecs = (Vec<Ciphertext<F61>>, Vec<Ciphertext<F61>>);

    fn inputs(r: &mut rand::rngs::StdRng, k_b: usize, t: usize) -> [PackVecs; PACKS_PER_SLICE] {
        [(cts(r, k_b), cts(r, t)), (cts(r, k_b), cts(r, t)), (cts(r, k_b), cts(r, t))]
    }

    #[test]
    fn solo_dist_pack_matches_pack_ciphertexts() {
        let mut r = rand::rngs::StdRng::seed_from_u64(99);
        let (n, t, k_b) = (9, 2, 3);
        let scheme = PackedSharing::<F61>::new(n, k_b).unwrap();
        let packs = inputs(&mut r, k_b, t);
        let board: BulletinBoard<Post> = BulletinBoard::new();
        let sb = ShardedBoard::solo(&board);
        let got = dist_pack_batch(
            &sb,
            &scheme,
            t,
            [
                PackInputs { wires: &packs[0].0, helpers: &packs[0].1 },
                PackInputs { wires: &packs[1].0, helpers: &packs[1].1 },
                PackInputs { wires: &packs[2].0, helpers: &packs[2].1 },
            ],
            DIST_PACK_PHASE,
        )
        .unwrap();
        for (pack, out) in packs.iter().zip(&got) {
            let want = pack_ciphertexts(&scheme, t, &pack.0, &pack.1).unwrap();
            assert_eq!(out, &want);
        }
        // One record per member, in member order, fused payload.
        let postings = board.postings().unwrap();
        assert_eq!(postings.len(), n);
        for (i, p) in postings.iter().enumerate() {
            assert_eq!(p.from, RoleId::new("pack-transform", i));
            match &p.message {
                Post::TransformSlice { row, values } => {
                    assert_eq!(*row as usize, i);
                    assert_eq!(values.len(), PACKS_PER_SLICE * 2);
                }
                other => panic!("unexpected post {other:?}"),
            }
        }
    }

    #[test]
    fn two_worker_dist_pack_matches_solo_transcript_and_values() {
        let mut r = rand::rngs::StdRng::seed_from_u64(7);
        let (n, t, k_b) = (10, 2, 3);
        let scheme = PackedSharing::<F61>::new(n, k_b).unwrap();
        let packs = inputs(&mut r, k_b, t);
        let run = |board: &BulletinBoard<Post>, partition: RolePartition| {
            let sb = ShardedBoard::new(board, partition).unwrap();
            dist_pack_batch(
                &sb,
                &scheme,
                t,
                [
                    PackInputs { wires: &packs[0].0, helpers: &packs[0].1 },
                    PackInputs { wires: &packs[1].0, helpers: &packs[1].1 },
                    PackInputs { wires: &packs[2].0, helpers: &packs[2].1 },
                ],
                DIST_PACK_PHASE,
            )
        };
        let solo_board: BulletinBoard<Post> = BulletinBoard::new();
        let solo = {
            let sb = ShardedBoard::solo(&solo_board);
            dist_pack_batch(
                &sb,
                &scheme,
                t,
                [
                    PackInputs { wires: &packs[0].0, helpers: &packs[0].1 },
                    PackInputs { wires: &packs[1].0, helpers: &packs[1].1 },
                    PackInputs { wires: &packs[2].0, helpers: &packs[2].1 },
                ],
                DIST_PACK_PHASE,
            )
            .unwrap()
        };
        let fleet_board: BulletinBoard<Post> = BulletinBoard::new();
        let (ra, rb) = std::thread::scope(|s| {
            let ha = s.spawn(|| run(&fleet_board, RolePartition::range(0, 4)));
            let hb = s.spawn(|| run(&fleet_board, RolePartition::range(4, 10)));
            (ha.join().unwrap().unwrap(), hb.join().unwrap().unwrap())
        });
        assert_eq!(ra, solo);
        assert_eq!(rb, solo);
        // Byte-identical posting sequence: same authors, same messages.
        let sp = solo_board.postings().unwrap();
        let fp = fleet_board.postings().unwrap();
        assert_eq!(sp.len(), fp.len());
        for (a, b) in sp.iter().zip(&fp) {
            assert_eq!(a.from, b.from);
            assert_eq!(a.message, b.message);
        }
    }

    #[test]
    fn dist_pack_rejects_malformed_inputs() {
        let mut r = rand::rngs::StdRng::seed_from_u64(3);
        let scheme = PackedSharing::<F61>::new(6, 2).unwrap();
        let board: BulletinBoard<Post> = BulletinBoard::new();
        let sb = ShardedBoard::solo(&board);
        let wires = cts(&mut r, 2);
        let helpers = cts(&mut r, 1); // wrong: t = 2
        let err = dist_pack_batch(
            &sb,
            &scheme,
            2,
            [
                PackInputs { wires: &wires, helpers: &helpers },
                PackInputs { wires: &wires, helpers: &helpers },
                PackInputs { wires: &wires, helpers: &helpers },
            ],
            DIST_PACK_PHASE,
        )
        .unwrap_err();
        assert!(matches!(err, ProtocolError::Invariant(_)));
    }
}
