//! The online phase `Π_YOSO-Online` (paper §5.3).
//!
//! Once inputs are known:
//!
//! - **Future key distribution**: the first online committee
//!   `Re-encrypt`s every KFF secret key to the now-known YOSO role key
//!   of its owner, then hands `tsk` to the output committee. After
//!   this, `tsk` is never re-shared again (`Re-encrypt*`).
//! - **Input**: each client opens its re-encrypted wire masks with its
//!   KFF secret and publishes `μ = v − λ` — one element per input
//!   wire.
//! - **Addition** (and all linear gates): `μ` propagates locally, zero
//!   communication.
//! - **Multiplication**: for a batch of `k` gates, member `i` of the
//!   layer committee opens its three packed shares
//!   (`λ_α`, `λ_β`, `Γ`), computes
//!   `μᵢ^γ = μᵢ^α·μᵢ^β + μᵢ^α·λᵢ^β + μᵢ^β·λᵢ^α + Γᵢ`
//!   and publishes it with a NIZK binding it to the on-board
//!   ciphertexts through its KFF public key. Any `t + 2(k−1) + 1`
//!   verified shares reconstruct `μ^γ` — `n/k = O(1/ε)` elements per
//!   gate, **independent of `n`**.
//! - **Output**: the output committee `Re-encrypt*`s each output-wire
//!   mask to the receiving client, who computes `v = μ + λ`.

// BTreeMap (not HashMap): wire and width keys are iterated below, and the
// posting order must never depend on hasher state — the engine promises
// byte-identical transcripts for every `--threads` value.
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use rand::{Rng, SeedableRng};

use yoso_circuit::{BatchedCircuit, Gate};
use yoso_field::PrimeField;
use yoso_pss_sharing::{PackedSharing, ScratchPool, Share};
use yoso_runtime::{ActiveAttack, Adversary, Behavior, BulletinBoard, LeakLog, RoleId};
use yoso_the::mock::{LinearPke, PkeKeyPair, PkePublicKey};
use yoso_the::nizk::{share_proof, verify_share_proof, ShareProof};

use crate::messages::{Post, MULSHARE_PROOF_ELEMENTS};
use crate::offline::OfflineArtifacts;
use crate::setup::SetupArtifacts;
use crate::tsk::ReencryptedValue;
use crate::{ExecutionConfig, ProtocolError};

/// The result of the online phase.
#[derive(Debug, Clone)]
pub struct OnlineResult<F: PrimeField> {
    /// Per-client outputs, in output-gate order.
    pub outputs: Vec<Vec<F>>,
    /// The public `μ` value of every wire (diagnostics / tests).
    pub mu: Vec<F>,
}

/// Runs the full online phase.
///
/// `inputs[c]` are client `c`'s input values in input-gate order.
///
/// # Errors
///
/// Propagates sub-step errors; within the corruption model none occur.
#[allow(clippy::too_many_arguments)]
pub fn run_online<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    params: &crate::ProtocolParams,
    board: &BulletinBoard<Post>,
    adversary: &Adversary,
    cfg: &ExecutionConfig,
    bc: &BatchedCircuit<F>,
    setup: &SetupArtifacts<F>,
    offline: OfflineArtifacts<F>,
    inputs: &[Vec<F>],
    leak: &LeakLog,
) -> Result<OnlineResult<F>, ProtocolError> {
    let sb = crate::workitem::ShardedBoard::new(board, cfg.partition)?;
    let pool = ScratchPool::new(cfg.streaming);
    run_online_in(rng, params, &sb, adversary, cfg, bc, setup, offline, inputs, leak, &pool)
}

/// [`run_online`] posting through an existing sharded board (the
/// engine-level entry point for role-sharded workers).
#[allow(clippy::too_many_lines, clippy::too_many_arguments, clippy::needless_range_loop)]
pub(crate) fn run_online_in<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    params: &crate::ProtocolParams,
    sb: &crate::workitem::ShardedBoard<'_>,
    adversary: &Adversary,
    cfg: &ExecutionConfig,
    bc: &BatchedCircuit<F>,
    setup: &SetupArtifacts<F>,
    offline: OfflineArtifacts<F>,
    inputs: &[Vec<F>],
    leak: &LeakLog,
    pool: &ScratchPool<F>,
) -> Result<OnlineResult<F>, ProtocolError> {
    let n = params.n;
    let circuit = &bc.circuit;
    let layers = circuit.mul_depth();
    let clients = circuit.clients();
    let mut tsk = offline.tsk;

    // Role assignment for the online committees and clients: fresh
    // role keys become known only now.
    let role_keys: Vec<Vec<PkeKeyPair<F>>> = (0..layers)
        .map(|_| (0..n).map(|_| LinearPke::keygen(rng)).collect())
        .collect();
    let client_role_keys: Vec<PkeKeyPair<F>> =
        (0..clients).map(|_| LinearPke::keygen(rng)).collect();

    // ---- Future key distribution.
    let kd = adversary.sample_committee(rng, "on-keydist", n);
    let phase_kd = "online/1-keydist";
    let mut items: Vec<(PkePublicKey<F>, yoso_the::mock::Ciphertext<F>)> = Vec::new();
    for l in 0..layers {
        for i in 0..n {
            items.push((role_keys[l][i].public, setup.kff_cts[l][i]));
        }
    }
    for c in 0..clients {
        items.push((client_role_keys[c].public, setup.client_kff_cts[c]));
    }
    let mut kff_prime = tsk.reencrypt_in(rng, sb, &kd, cfg, phase_kd, &items)?;
    let client_kff_prime: Vec<ReencryptedValue<F>> = kff_prime.split_off(layers * n);
    // kff_prime[l*n + i] targets role (l, i).

    // Hand tsk to the output committee (the last holder; Re-encrypt*
    // afterwards performs no further resharing).
    let output_keys: Vec<PkeKeyPair<F>> = (0..n).map(|_| LinearPke::keygen(rng)).collect();
    tsk.handover_in(rng, sb, &kd, cfg, "online/handover", &output_keys)?;
    sb.advance_round()?;

    // Clients recover their KFF secrets through the protocol path.
    let client_kff_sk: Vec<F> = (0..clients)
        .map(|c| client_kff_prime[c].open(client_role_keys[c].secret.scalar))
        .collect::<Result<_, _>>()?;

    // ---- Input: clients publish μ = v − λ per input wire.
    let phase_in = "online/2-input";
    let mut mu: Vec<Option<F>> = vec![None; circuit.wire_count()];
    let mut input_reenc_by_wire: BTreeMap<usize, &ReencryptedValue<F>> = BTreeMap::new();
    for (w, _client, rv) in &offline.input_reenc {
        input_reenc_by_wire.insert(*w, rv);
    }
    for (client, wires) in circuit.inputs_per_client().iter().enumerate() {
        for (idx, w) in wires.iter().enumerate() {
            let rv = input_reenc_by_wire
                .get(&w.0)
                .ok_or(ProtocolError::Invariant(
                    "offline phase re-encrypted no mask for an input wire",
                ))?;
            let lambda = rv.open(client_kff_sk[client])?;
            let v = inputs[client][idx];
            mu[w.0] = Some(v - lambda);
        }
        if !wires.is_empty() {
            let elements = wires.len() as u64;
            // Client posts are not member-indexed: the leader worker
            // appends them.
            sb.post(
                sb.is_leader(),
                yoso_runtime::RoleId::new("client", client),
                Post::InputMu { wires: wires.len() as u32 },
                phase_in,
                elements,
            )?;
        }
    }

    sb.advance_round()?;

    // ---- Gate-by-gate μ propagation; multiplications per batch.
    // Pre-index batches by layer for the committee loop.
    let phase_mul = "online/3-mult";
    let mut batches_by_layer: Vec<Vec<usize>> = vec![Vec::new(); layers];
    for (b_idx, batch) in bc.mul_batches.iter().enumerate() {
        batches_by_layer[batch.layer].push(b_idx);
    }

    // Propagate linear gates in a single topological pass over the
    // SSA gate list: each linear gate is computable exactly when the
    // deepest mul layer below it has been reconstructed, so bucketing
    // gates by multiplicative depth visits every gate once — stage 0
    // before the first layer, stage l + 1 right after layer l's
    // batches fill their wires. O(gates) total, where resweeping the
    // whole list per layer was O(layers · gates).
    let depths = circuit.depths();
    let mut linear_by_stage: Vec<Vec<usize>> = vec![Vec::new(); layers + 1];
    for (w, gate) in circuit.gates().iter().enumerate() {
        // Input wires are filled by the input phase, mul wires by
        // their batch; neither is propagated.
        if !matches!(gate, Gate::Mul(_, _) | Gate::Input { .. }) {
            linear_by_stage[depths[w]].push(w);
        }
    }
    const MU_MISSING: &str = "linear-gate operand μ missing at its depth stage";
    let propagate_stage = |mu: &mut Vec<Option<F>>, stage: usize| -> Result<(), ProtocolError> {
        for &w in &linear_by_stage[stage] {
            mu[w] = Some(match circuit.gates()[w] {
                Gate::Const(c) => c,
                Gate::Add(a, b) => {
                    mu[a.0].ok_or(ProtocolError::Invariant(MU_MISSING))?
                        + mu[b.0].ok_or(ProtocolError::Invariant(MU_MISSING))?
                }
                Gate::Sub(a, b) => {
                    mu[a.0].ok_or(ProtocolError::Invariant(MU_MISSING))?
                        - mu[b.0].ok_or(ProtocolError::Invariant(MU_MISSING))?
                }
                Gate::MulConst(a, c) => mu[a.0].ok_or(ProtocolError::Invariant(MU_MISSING))? * c,
                Gate::Output(a, _) => mu[a.0].ok_or(ProtocolError::Invariant(MU_MISSING))?,
                Gate::Input { .. } | Gate::Mul(_, _) => {
                    return Err(ProtocolError::Invariant(
                        "non-linear gate bucketed into a propagation stage",
                    ))
                }
            });
        }
        Ok(())
    };

    // One sharing scheme per batch width, shared across layers: the
    // evaluation-domain caches inside `PackedSharing` make repeated
    // `share_public`/`reconstruct` calls O(n) dot products. The share
    // buffers below are the per-batch hot path — in arena mode they
    // keep their capacity across every batch and layer.
    let mut schemes: BTreeMap<usize, PackedSharing<F>> = BTreeMap::new();
    let mut mu_alpha_vals: Vec<F> = Vec::new();
    let mut mu_beta_vals: Vec<F> = Vec::new();
    let mut mu_gamma: Vec<F> = Vec::new();
    for (layer_idx, layer_batches) in batches_by_layer.iter().enumerate() {
        propagate_stage(&mut mu, layer_idx)?;
        let committee = adversary.sample_committee(rng, format!("on-mult-{layer_idx}"), n);
        for &b_idx in layer_batches {
            let batch = &bc.mul_batches[b_idx];
            let shares = &offline.batch_shares[b_idx];
            let k_b = batch.gates.len();
            let scheme = match schemes.entry(k_b) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(v) => v.insert(PackedSharing::<F>::with_layout(n, k_b, params.layout)?),
            };
            let rec_degree = params.t + 2 * (k_b - 1);

            // Public degree-(k_b − 1) packed sharings of the μ vectors.
            let mu_alpha: Vec<F> = batch
                .left_wires(circuit)
                .iter()
                .map(|w| {
                    mu[w.0].ok_or(ProtocolError::Invariant(
                        "mul-gate left input μ not propagated before its layer",
                    ))
                })
                .collect::<Result<_, _>>()?;
            let mu_beta: Vec<F> = batch
                .right_wires(circuit)
                .iter()
                .map(|w| {
                    mu[w.0].ok_or(ProtocolError::Invariant(
                        "mul-gate right input μ not propagated before its layer",
                    ))
                })
                .collect::<Result<_, _>>()?;
            if !pool.reuse() {
                // Fresh-buffer mode: re-grow per batch, the legacy
                // allocation profile the scale bench compares against.
                mu_alpha_vals = Vec::new();
                mu_beta_vals = Vec::new();
                mu_gamma = Vec::new();
            }
            scheme.share_public_into(&mu_alpha, &mut mu_alpha_vals)?;
            scheme.share_public_into(&mu_beta, &mut mu_beta_vals)?;

            // Per-member share computation is independent: fan out on
            // child RNGs seeded sequentially (one per member, drawn
            // whether or not the member participates, so the seed
            // stream is behavior- and thread-count-independent), then
            // replay posts and leak records in member order.
            struct MemberOut<F: PrimeField> {
                share: Option<Share<F>>,
                posts: crate::parallel::PostBuffer,
                leaks: Vec<(RoleId, String, usize)>,
            }
            let seeds: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
            let member_results = crate::parallel::par_map(
                cfg.num_threads,
                &seeds,
                |i, &seed| -> Result<MemberOut<F>, ProtocolError> {
                    let mut mrng = rand::rngs::StdRng::seed_from_u64(seed);
                    let mut out = MemberOut {
                        share: None,
                        posts: crate::parallel::PostBuffer::new(),
                        leaks: Vec::new(),
                    };
                    let behavior = committee.behavior(i);
                    if !behavior.participates_at(crate::engine::phase_index(phase_mul)) {
                        return Ok(out);
                    }
                    let owned = cfg.partition.owns(i);
                    let prove = cfg.produce_proofs && owned;
                    let kff_pk = setup.kff_pairs[layer_idx][i].public;
                    let ma = mu_alpha_vals[i];
                    let mb = mu_beta_vals[i];
                    // Public opening coefficients of the three
                    // re-encrypted packed shares (value = a − sk·b).
                    let (a_al, b_al) = shares.alpha[i].opening_coefficients()?;
                    let (a_be, b_be) = shares.beta[i].opening_coefficients()?;
                    let (a_ga, b_ga) = shares.gamma[i].opening_coefficients()?;
                    let offset = ma * mb + ma * a_be + mb * a_al + a_ga;
                    let slope = ma * b_be + mb * b_al + b_ga;

                    if matches!(behavior, Behavior::Malicious(_) | Behavior::Leaky) {
                        // The corrupted role's KFF opens all three of
                        // its packed shares — record the exposure.
                        for which in ["alpha", "beta", "gamma"] {
                            out.leaks.push((
                                committee.role(i),
                                format!("batch{b_idx}/{which}"),
                                i,
                            ));
                        }
                    }
                    let (value, valid) = match behavior {
                        Behavior::Honest | Behavior::Leaky | Behavior::FailStop { .. } => {
                            // Recover the KFF secret via the role key,
                            // then compute the share honestly.
                            let kff_sk = kff_prime[layer_idx * n + i]
                                .open(role_keys[layer_idx][i].secret.scalar)?;
                            let value = offset - kff_sk * slope;
                            let ok = if prove {
                                let proof =
                                    share_proof(&mut mrng, &kff_pk, slope, offset, value, kff_sk);
                                verify_share_proof(&kff_pk, slope, offset, value, &proof)
                            } else {
                                true
                            };
                            (value, ok)
                        }
                        Behavior::Malicious(attack) => {
                            let kff_sk = kff_prime[layer_idx * n + i]
                                .open(role_keys[layer_idx][i].secret.scalar)?;
                            let honest = offset - kff_sk * slope;
                            let value = match attack {
                                ActiveAttack::BadProof => honest,
                                ActiveAttack::AdditiveOffset => honest + F::ONE,
                                _ => F::random(&mut mrng),
                            };
                            let ok = if prove {
                                let proof = ShareProof::<F>::garbage(&mut mrng);
                                verify_share_proof(&kff_pk, slope, offset, value, &proof)
                            } else {
                                false
                            };
                            (value, ok)
                        }
                    };
                    out.posts.record(
                        owned,
                        committee.role(i),
                        Post::MulShare,
                        phase_mul,
                        1 + MULSHARE_PROOF_ELEMENTS,
                    );
                    if valid {
                        out.share = Some(Share { party: i, value });
                    }
                    Ok(out)
                },
            );
            let mut posted: Vec<Share<F>> = Vec::new();
            for result in member_results {
                let out = result?;
                sb.flush_buffer(out.posts)?;
                for (role, object, piece) in out.leaks {
                    leak.record(role, object, piece);
                }
                if let Some(share) = out.share {
                    posted.push(share);
                }
            }

            if posted.len() < rec_degree + 1 {
                return Err(ProtocolError::NotEnoughContributions {
                    step: "mul-share reconstruction",
                    got: posted.len(),
                    need: rec_degree + 1,
                });
            }
            pool.with(|scratch| {
                scheme.reconstruct_into(&posted[..rec_degree + 1], rec_degree, &mut mu_gamma, scratch)
            })?;
            for (j, gw) in batch.gates.iter().enumerate() {
                mu[gw.0] = Some(mu_gamma[j]);
            }
        }
        sb.advance_round()?;
    }
    propagate_stage(&mut mu, layers)?;

    // ---- Output: Re-encrypt* each output-wire mask to its client.
    let phase_out = "online/4-output";
    let out_committee = adversary.sample_committee(rng, "on-output", n);
    let out_items: Vec<(PkePublicKey<F>, yoso_the::mock::Ciphertext<F>)> = circuit
        .outputs()
        .iter()
        .map(|&(w, client)| (client_role_keys[client].public, offline.lambda_cts[w.0]))
        .collect();
    let out_vals = tsk.reencrypt_in(rng, sb, &out_committee, cfg, phase_out, &out_items)?;

    let mut outputs: Vec<Vec<F>> = vec![Vec::new(); clients];
    for ((&(w, client), rv), _) in circuit.outputs().iter().zip(&out_vals).zip(0..) {
        let lambda = rv.open(client_role_keys[client].secret.scalar)?;
        let mu_w = mu[w.0].ok_or(ProtocolError::Invariant(
            "output-wire μ not propagated by the final sweep",
        ))?;
        outputs[client].push(mu_w + lambda);
    }

    let mu_final: Vec<F> = mu
        .into_iter()
        .map(|m| m.unwrap_or(F::ZERO))
        .collect();
    Ok(OnlineResult { outputs, mu: mu_final })
}
