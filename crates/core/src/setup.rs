//! The setup phase `Π_YOSO-Setup` (paper §5.1).
//!
//! Generates:
//!
//! 1. **Keys-for-future (KFF)**: a key pair for every role of every
//!    *online* committee and for every input-contributing client. The
//!    public halves are published; the secret halves are encrypted
//!    under the threshold key `tpk` and posted, to be re-encrypted to
//!    the real YOSO role keys once those exist (online phase, "future
//!    key distribution").
//! 2. The NIZK setup (Fiat–Shamir domain separators — nothing to
//!    generate in this instantiation).
//! 3. The threshold key pair `(tpk, tsk₁…tskₙ)`; the shares go to the
//!    first offline committee.
//!
//! The setup is modelled as a trusted dealer, exactly as the paper
//! assumes (removing it via class-group DKG is listed as future work,
//! §7).

use rand::Rng;

use yoso_field::PrimeField;
use yoso_runtime::{BulletinBoard, RoleId};
use yoso_the::mock::{Ciphertext, LinearPke, MockTe, PkeKeyPair};

use crate::messages::{ContributionStep, Post, CT_ELEMENTS};
use crate::tsk::TskChain;
use crate::{ProtocolError, ProtocolParams};

/// Everything the setup phase produces.
///
/// The `kff_pairs` fields retain the secret halves **only for test
/// assertions**; the protocol path never reads them — online roles
/// recover their KFF secrets through the re-encryption chain.
#[derive(Debug, Clone)]
pub struct SetupArtifacts<F: PrimeField> {
    /// The threshold-key custody chain, currently held by the first
    /// offline committee.
    pub tsk: TskChain<F>,
    /// KFF key pairs per online multiplication committee (layer ×
    /// member).
    pub kff_pairs: Vec<Vec<PkeKeyPair<F>>>,
    /// `TEnc(tpk, kff_sk)` per online committee role.
    pub kff_cts: Vec<Vec<Ciphertext<F>>>,
    /// KFF key pairs per client.
    pub client_kff_pairs: Vec<PkeKeyPair<F>>,
    /// `TEnc(tpk, kff_sk)` per client.
    pub client_kff_cts: Vec<Ciphertext<F>>,
}

/// Runs `Π_YOSO-Setup` for a circuit with `layers` multiplication
/// layers and `clients` clients.
///
/// # Errors
///
/// Propagates key-generation errors.
pub fn run_setup<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    params: &ProtocolParams,
    board: &BulletinBoard<Post>,
    layers: usize,
    clients: usize,
) -> Result<SetupArtifacts<F>, ProtocolError> {
    let sb = crate::workitem::ShardedBoard::solo(board);
    run_setup_in(rng, params, &sb, layers, clients)
}

/// [`run_setup`] posting through an existing sharded board. The
/// dealer's posts are not member-indexed, so the leader worker appends
/// all of them; every worker still replicates the key generation (the
/// artifacts are the shared protocol state).
pub(crate) fn run_setup_in<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    params: &ProtocolParams,
    sb: &crate::workitem::ShardedBoard<'_>,
    layers: usize,
    clients: usize,
) -> Result<SetupArtifacts<F>, ProtocolError> {
    let tsk = TskChain::keygen(rng, params.n, params.t)?;
    let dealer = RoleId::new("setup", 0);
    let leader = sb.is_leader();

    let mut kff_pairs = Vec::with_capacity(layers);
    let mut kff_cts = Vec::with_capacity(layers);
    for _ in 0..layers {
        let mut pairs = Vec::with_capacity(params.n);
        let mut cts = Vec::with_capacity(params.n);
        for _ in 0..params.n {
            let kp = LinearPke::keygen(rng);
            let (ct, _) = MockTe::encrypt(rng, &tsk.pk, kp.secret.scalar);
            // Public key (2 elements) + encrypted secret (2 elements).
            sb.post(
                leader,
                dealer.clone(),
                Post::Contribution { step: ContributionStep::WireRandom, ciphertexts: 1 },
                "setup",
                2 * CT_ELEMENTS,
            )?;
            pairs.push(kp);
            cts.push(ct);
        }
        kff_pairs.push(pairs);
        kff_cts.push(cts);
    }

    let mut client_kff_pairs = Vec::with_capacity(clients);
    let mut client_kff_cts = Vec::with_capacity(clients);
    for _ in 0..clients {
        let kp = LinearPke::keygen(rng);
        let (ct, _) = MockTe::encrypt(rng, &tsk.pk, kp.secret.scalar);
        sb.post(
            leader,
            dealer.clone(),
            Post::Contribution { step: ContributionStep::WireRandom, ciphertexts: 1 },
            "setup",
            2 * CT_ELEMENTS,
        )?;
        client_kff_pairs.push(kp);
        client_kff_cts.push(ct);
    }

    Ok(SetupArtifacts { tsk, kff_pairs, kff_cts, client_kff_pairs, client_kff_cts })
}

/// Re-keys a setup onto a different threshold key: re-encrypts every
/// KFF secret under the new chain's `tpk` (used when the dealer's key
/// is replaced by the DKG one — the KFF secrets themselves are
/// unchanged, only their threshold-encrypted copies move).
///
/// # Errors
///
/// Propagates encryption errors (none occur).
pub fn rekey_setup<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    params: &ProtocolParams,
    board: &BulletinBoard<Post>,
    setup: SetupArtifacts<F>,
    chain: TskChain<F>,
) -> Result<SetupArtifacts<F>, ProtocolError> {
    let sb = crate::workitem::ShardedBoard::solo(board);
    rekey_setup_in(rng, params, &sb, setup, chain)
}

/// [`rekey_setup`] posting through an existing sharded board
/// (leader-owned dealer posts, same contract as [`run_setup_in`]).
pub(crate) fn rekey_setup_in<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    _params: &ProtocolParams,
    sb: &crate::workitem::ShardedBoard<'_>,
    mut setup: SetupArtifacts<F>,
    chain: TskChain<F>,
) -> Result<SetupArtifacts<F>, ProtocolError> {
    let dealer = RoleId::new("setup-rekey", 0);
    let leader = sb.is_leader();
    for (layer, pairs) in setup.kff_pairs.iter().enumerate() {
        for (i, kp) in pairs.iter().enumerate() {
            let (ct, _) = MockTe::encrypt(rng, &chain.pk, kp.secret.scalar);
            setup.kff_cts[layer][i] = ct;
            sb.post(
                leader,
                dealer.clone(),
                Post::Contribution { step: ContributionStep::WireRandom, ciphertexts: 1 },
                "setup",
                CT_ELEMENTS,
            )?;
        }
    }
    for (c, kp) in setup.client_kff_pairs.iter().enumerate() {
        let (ct, _) = MockTe::encrypt(rng, &chain.pk, kp.secret.scalar);
        setup.client_kff_cts[c] = ct;
        sb.post(
            leader,
            dealer.clone(),
            Post::Contribution { step: ContributionStep::WireRandom, ciphertexts: 1 },
            "setup",
            CT_ELEMENTS,
        )?;
    }
    setup.tsk = chain;
    Ok(setup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use yoso_field::F61;
    use yoso_runtime::Committee;

    #[test]
    fn setup_shapes_and_kff_decryptability() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let params = ProtocolParams::new(6, 1, 2).unwrap();
        let board = BulletinBoard::new();
        let s = run_setup::<F61, _>(&mut rng, &params, &board, 3, 2).unwrap();
        assert_eq!(s.kff_pairs.len(), 3);
        assert_eq!(s.kff_cts[0].len(), 6);
        assert_eq!(s.client_kff_pairs.len(), 2);
        // The encrypted KFF secrets decrypt (via tsk) to the real secrets.
        let committee = Committee::honest("d", 6);
        let cfg = crate::ExecutionConfig::default();
        let got = s
            .tsk
            .decrypt(&mut rng, &board, &committee, &cfg, "test", &[s.kff_cts[1][3]])
            .unwrap();
        assert_eq!(got[0], s.kff_pairs[1][3].secret.scalar);
        // Setup posted (3·6 + 2) KFF records.
        assert_eq!(board.meter().phase("setup").messages, 20);
    }
}
